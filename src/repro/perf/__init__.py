"""Hot-path observability: lightweight counters and wall-time probes.

The ROADMAP's "fast as the hardware allows" goal is gated on the
per-subframe tick, so this package gives the simulator a cheap,
opt-in instrumentation surface plus a benchmark harness
(:mod:`repro.perf.bench`) that turns it into a recorded trajectory
(``BENCH_hotpath.json``, emitted by ``python -m repro perf``).

Design constraints:

* **Zero overhead when off.**  Every hook site holds an optional
  reference that defaults to ``None``; the hot loops pay one attribute
  load and an ``is None`` test, nothing else.
* **No behavioural footprint.**  Counters never feed back into
  simulation decisions, so an instrumented run is byte-identical to an
  uninstrumented one (the determinism suite is the oracle for this).
* **Cheap counters, opt-in timers.**  Integer counters are always
  maintained once a :class:`PerfCounters` is attached; wall-clock
  subsystem timers additionally require ``time_subsystems=True``
  because ``perf_counter()`` calls in a per-subframe loop are not free.
"""

from __future__ import annotations

import time
from typing import Iterator

__all__ = ["PerfCounters"]


class PerfCounters:
    """Shared counter block for one simulation's hot paths.

    Attach one instance to the pieces you want to observe::

        perf = PerfCounters(time_subsystems=True)
        sim = Simulator(perf_counters=perf)
        network = CellularNetwork(sim, carriers, perf_counters=perf)
        ...
        print(perf.format())

    or pass it to :class:`repro.harness.runner.Experiment`, which wires
    both for you.  Counters:

    ``ticks``
        subframes the MAC engine processed.
    ``events_popped``
        events the simulator executed (live pops).
    ``events_cancelled_popped``
        lazily-deleted events that were popped and skipped.
    ``events_scheduled``
        total events pushed onto the heap.
    ``heap_compactions``
        times the simulator rebuilt its heap to evict cancelled
        entries (see :meth:`Simulator.schedule`'s lazy deletion).
    ``ack_batches`` / ``acks_batched``
        grant-cycle flushes the columnar transport engine delivered as
        one :class:`~repro.net.packet.AckBatch` event, and how many
        ACKs rode in them (single-ACK flushes stay scalar).
    ``timers``
        ``{subsystem: seconds}`` wall time, populated only with
        ``time_subsystems=True``.
    """

    __slots__ = ("ticks", "events_popped", "events_cancelled_popped",
                 "events_scheduled", "heap_compactions", "ack_batches",
                 "acks_batched", "timers", "time_subsystems", "_t0")

    def __init__(self, time_subsystems: bool = False) -> None:
        self.time_subsystems = time_subsystems
        self.reset()

    def reset(self) -> None:
        """Zero every counter (the attachment points are kept)."""
        self.ticks = 0
        self.events_popped = 0
        self.events_cancelled_popped = 0
        self.events_scheduled = 0
        self.heap_compactions = 0
        self.ack_batches = 0
        self.acks_batched = 0
        self.timers: dict[str, float] = {}
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    # Subsystem wall-time probes
    # ------------------------------------------------------------------
    def timed(self, key: str) -> "_Timed":
        """Context manager accumulating wall time under ``timers[key]``.

        A no-op (but still valid) context when ``time_subsystems`` is
        off, so call sites do not need to branch.
        """
        return _Timed(self, key)

    def add_time(self, key: str, seconds: float) -> None:
        self.timers[key] = self.timers.get(key, 0.0) + seconds

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def cancelled_event_ratio(self) -> float:
        """Fraction of popped events that were dead on arrival."""
        total = self.events_popped + self.events_cancelled_popped
        if total == 0:
            return 0.0
        return self.events_cancelled_popped / total

    def ticks_per_second(self) -> float:
        """Subframes processed per wall-clock second since reset."""
        elapsed = time.perf_counter() - self._t0
        if elapsed <= 0.0:
            return 0.0
        return self.ticks / elapsed

    def as_dict(self) -> dict:
        """JSON-ready snapshot (the ``counters`` block of the bench)."""
        return {
            "ticks": self.ticks,
            "events_popped": self.events_popped,
            "events_cancelled_popped": self.events_cancelled_popped,
            "events_scheduled": self.events_scheduled,
            "heap_compactions": self.heap_compactions,
            "ack_batches": self.ack_batches,
            "acks_batched": self.acks_batched,
            "cancelled_event_ratio": round(self.cancelled_event_ratio, 6),
            "timers_s": {k: round(v, 6)
                         for k, v in sorted(self.timers.items())},
        }

    def format(self) -> str:
        """One-line human summary for progress/stderr output."""
        parts = [f"ticks={self.ticks}",
                 f"events={self.events_popped}",
                 f"cancelled={self.events_cancelled_popped} "
                 f"({100 * self.cancelled_event_ratio:.1f}%)",
                 f"compactions={self.heap_compactions}"]
        if self.timers:
            timing = ", ".join(f"{k}={v:.3f}s"
                               for k, v in sorted(self.timers.items()))
            parts.append(timing)
        return " ".join(parts)


class _Timed:
    """Wall-clock accumulator used by :meth:`PerfCounters.timed`."""

    __slots__ = ("_perf", "_key", "_start")

    def __init__(self, perf: PerfCounters, key: str) -> None:
        self._perf = perf
        self._key = key
        self._start = 0.0

    def __enter__(self) -> "_Timed":
        if self._perf.time_subsystems:
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._perf.time_subsystems:
            self._perf.add_time(self._key,
                                time.perf_counter() - self._start)
