"""Hot-path benchmark suite → ``BENCH_hotpath.json``.

Four benches cover the measured hot paths of the subframe loop, from
micro to macro:

``estimator``
    :meth:`CellCapacityEstimator.estimate` under the real call pattern
    (one :meth:`update` per subframe, several differently-windowed
    estimates between updates — the memo's hit pattern).
``scheduler``
    :func:`allocate_prbs` water-filling over a mixed population of
    small capped demands and large backlogged ones.
``subframe_loop``
    a busy 2-carrier cell with a PBE flow and background users,
    reported as subframes (ticks) per wall second via
    :class:`repro.perf.PerfCounters`.
``sweep``
    the end-to-end Table-1-style stationary sweep (the ISSUE's ≥2×
    acceptance metric is measured on this number).

``run_benchmarks`` returns a JSON-ready dict (schema
``repro.perf/bench_hotpath/v1``).  ``python -m repro perf`` writes it
to disk; CI records the file as an artifact so regressions show up as
a trajectory rather than a gate.
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Optional

from ..cell.scheduler import DemandEntry, allocate_prbs
from ..monitor.capacity import CellCapacityEstimator
from ..phy.dci import DciMessage, SubframeRecord
from . import PerfCounters

#: Version tag of the emitted document.
SCHEMA = "repro.perf/bench_hotpath/v1"


def _bench_estimator(n_subframes: int) -> dict:
    """Feed a busy cell's control channel; estimate() per subframe."""
    est = CellCapacityEstimator(cell_id=0, total_prbs=100, own_rnti=1)
    estimates = 0
    t0 = time.perf_counter()
    for sf in range(n_subframes):
        record = SubframeRecord(sf, 0, 100)
        msgs = record.messages
        msgs.append(DciMessage(sf, 0, 1, 20 + sf % 5, 15, 2,
                               tbs_bits=(20 + sf % 5) * 500))
        for user in range(4):
            msgs.append(DciMessage(sf, 0, 100 + user, 10 + user, 12, 1,
                                   tbs_bits=(10 + user) * 300))
        est.update(record, own_rate_hint=500, ber_hint=1e-5)
        # Real monitors ask for a couple of RTprop-sized windows per
        # feedback burst — same window repeatedly (memo hits) plus an
        # occasional different one.
        for window in (40, 40, 40, 80):
            est.estimate(window)
            estimates += 1
    wall = time.perf_counter() - t0
    return {"subframes": n_subframes, "estimates": estimates,
            "wall_s": round(wall, 6),
            "estimates_per_s": round(estimates / wall, 1) if wall else 0.0}


def _bench_scheduler(rounds: int) -> dict:
    """Water-filling over capped + backlogged users on one carrier."""
    demands = (
        [DemandEntry(rnti=i, demand_bits=4_000, bits_per_prb=400)
         for i in range(4)]                      # small, will be capped
        + [DemandEntry(rnti=100 + i, demand_bits=10**7,
                       bits_per_prb=500 + 37 * i)
           for i in range(8)])                   # backlogged
    calls = 0
    t0 = time.perf_counter()
    for r in range(rounds):
        allocate_prbs(100, demands, rotation=r)
        calls += 1
    wall = time.perf_counter() - t0
    return {"users": len(demands), "calls": calls,
            "wall_s": round(wall, 6),
            "calls_per_s": round(calls / wall, 1) if wall else 0.0}


def _bench_subframe_loop(duration_s: float) -> dict:
    """Busy 2-carrier cell + PBE flow; ticks per wall second."""
    from ..harness import Experiment, FlowSpec, Scenario
    perf = PerfCounters()
    scenario = Scenario(name="bench", aggregated_cells=2,
                        mean_sinr_db=18.0, busy=True,
                        background_users=4, duration_s=duration_s,
                        seed=1)
    experiment = Experiment(scenario, perf_counters=perf)
    experiment.add_flow(FlowSpec(scheme="pbe"))
    t0 = time.perf_counter()
    experiment.run()
    wall = time.perf_counter() - t0
    return {"sim_s": duration_s, "wall_s": round(wall, 6),
            "ticks": perf.ticks,
            "ticks_per_s": round(perf.ticks / wall, 1) if wall else 0.0,
            "counters": perf.as_dict()}


def _bench_sweep(duration_s: float) -> dict:
    """End-to-end mini Table-1 stationary sweep (single process)."""
    from ..harness.experiments import run_stationary_sweep
    t0 = time.perf_counter()
    sweep = run_stationary_sweep(schemes=("pbe", "bbr"), n_busy=2,
                                 n_idle=1, duration_s=duration_s,
                                 jobs=1)
    wall = time.perf_counter() - t0
    return {"entries": len(sweep.entries), "flow_s": duration_s,
            "wall_s": round(wall, 6)}


def run_benchmarks(smoke: bool = False,
                   progress: Optional[object] = None) -> dict:
    """Run the suite; ``smoke=True`` shrinks every bench for CI.

    ``progress`` is an optional file-like object for one-line status
    updates (the CLI passes stderr).
    """

    def say(message: str) -> None:
        if progress is not None:
            print(f"[repro perf] {message}", file=progress, flush=True)

    say("estimator bench...")
    estimator = _bench_estimator(2_000 if smoke else 20_000)
    say("scheduler bench...")
    scheduler = _bench_scheduler(2_000 if smoke else 20_000)
    say("subframe-loop bench...")
    loop = _bench_subframe_loop(1.0 if smoke else 6.0)
    say("end-to-end sweep bench...")
    sweep = _bench_sweep(1.0 if smoke else 4.0)
    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "platform": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "benches": {
            "estimator": estimator,
            "scheduler": scheduler,
            "subframe_loop": loop,
            "sweep": sweep,
        },
    }
