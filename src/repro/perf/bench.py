"""Hot-path benchmark suite → ``BENCH_hotpath.json``.

Nine benches cover the measured hot paths of the subframe loop, from
micro to macro:

``estimator``
    :meth:`CellCapacityEstimator.estimate` under the real call pattern
    (one :meth:`update` per subframe, several differently-windowed
    estimates between updates — the memo's hit pattern).
``scheduler``
    :func:`allocate_prbs` water-filling over a mixed population of
    small capped demands and large backlogged ones.
``channel_block``
    the per-subframe SINR→MCS→rate→BER chain, sampled one subframe at
    a time versus in 64-subframe blocks via
    :meth:`ChannelModel.sinr_block` and the vectorized PHY maps (the
    two paths are bitwise-identical; this measures the speed gap).
``dci_batch``
    :class:`~repro.monitor.pbe.PbeMonitor` ingest of a busy cell's
    control channel: per-record reference path versus the columnar
    :class:`~repro.phy.dci.SubframeBatch` fold.
``transport_batch``
    sender-side ACK clocking over a grant-cycle uplink: the scalar
    per-packet :meth:`Sender.receive` path versus the columnar
    :meth:`Sender.receive_batch` block loop fed one
    :class:`~repro.net.packet.AckBatch` per flush.  The two end states
    are asserted equal; the headline is the speedup.
``cc_block``
    the congestion controllers themselves: each scheme's sequential
    ``on_ack`` loop versus its columnar :meth:`on_ack_block` over the
    same synthetic grant-cycle ACK blocks (PBE with scripted
    :class:`~repro.core.feedback.PbeFeedback`, BBR, CUBIC, Copa).
    End decisions are asserted equal; the headline is the aggregate
    speedup.
``subframe_loop``
    a busy 2-carrier cell with a PBE flow and background users,
    reported as subframes (ticks) per wall second via
    :class:`repro.perf.PerfCounters`.
``sweep``
    the end-to-end Table-1-style stationary sweep.
``metro_smoke``
    one sparse ≥100-cell :mod:`repro.metro` shard (mostly idle cells,
    a single busy hotspot) run batched versus scalar, with the two run
    fingerprints asserted byte-identical.  This is the scenario the
    idle-cell fast-forward exists for; its headline is the speedup.

``run_benchmarks`` returns a JSON-ready dict (schema
``repro.perf/bench_hotpath/v5``); its ``only`` parameter (CLI:
``python -m repro perf --only NAME``) restricts a run to named
benches, which :func:`compare_benchmarks` treats as a partial
document.  ``python -m repro perf`` writes it to disk;
``python -m repro perf --compare OLD.json NEW.json`` diffs two such
documents.  CI records the file as an artifact and soft-compares
against the committed baseline so regressions show up as a trajectory
(and a warning), not a gate.
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Optional

from ..cell.scheduler import DemandEntry, allocate_prbs
from ..monitor.capacity import CellCapacityEstimator
from ..phy.dci import DciMessage, SubframeRecord
from . import PerfCounters

#: Version tag of the emitted document.  v2 added the
#: ``channel_block`` and ``dci_batch`` microbenches; v3 added the
#: ``metro_smoke`` macrobench; v4 added the ``transport_batch``
#: microbench for the columnar per-ACK transport core; v5 added the
#: ``cc_block`` microbench for the per-scheme columnar ``on_ack_block``
#: implementations (and documents may now be partial — ``--only``).
SCHEMA = "repro.perf/bench_hotpath/v5"


def _bench_estimator(n_subframes: int) -> dict:
    """Feed a busy cell's control channel; estimate() per subframe."""
    est = CellCapacityEstimator(cell_id=0, total_prbs=100, own_rnti=1)
    estimates = 0
    t0 = time.perf_counter()
    for sf in range(n_subframes):
        record = SubframeRecord(sf, 0, 100)
        msgs = record.messages
        msgs.append(DciMessage(sf, 0, 1, 20 + sf % 5, 15, 2,
                               tbs_bits=(20 + sf % 5) * 500))
        for user in range(4):
            msgs.append(DciMessage(sf, 0, 100 + user, 10 + user, 12, 1,
                                   tbs_bits=(10 + user) * 300))
        est.update(record, own_rate_hint=500, ber_hint=1e-5)
        # Real monitors ask for a couple of RTprop-sized windows per
        # feedback burst — same window repeatedly (memo hits) plus an
        # occasional different one.
        for window in (40, 40, 40, 80):
            est.estimate(window)
            estimates += 1
    wall = time.perf_counter() - t0
    return {"subframes": n_subframes, "estimates": estimates,
            "wall_s": round(wall, 6),
            "estimates_per_s": round(estimates / wall, 1) if wall else 0.0}


def _bench_scheduler(rounds: int) -> dict:
    """Water-filling over capped + backlogged users on one carrier."""
    demands = (
        [DemandEntry(rnti=i, demand_bits=4_000, bits_per_prb=400)
         for i in range(4)]                      # small, will be capped
        + [DemandEntry(rnti=100 + i, demand_bits=10**7,
                       bits_per_prb=500 + 37 * i)
           for i in range(8)])                   # backlogged
    calls = 0
    t0 = time.perf_counter()
    for r in range(rounds):
        allocate_prbs(100, demands, rotation=r)
        calls += 1
    wall = time.perf_counter() - t0
    return {"users": len(demands), "calls": calls,
            "wall_s": round(wall, 6),
            "calls_per_s": round(calls / wall, 1) if wall else 0.0}


#: Subframes per channel block in the batched engine (mirrors
#: :data:`repro.cell.basestation.CHANNEL_BLOCK_SUBFRAMES`).
_BLOCK = 64


def _bench_channel_block(n_subframes: int) -> dict:
    """Scalar vs block-sampled SINR→MCS→rate→BER chain."""
    from ..net.units import SUBFRAME_US
    from ..phy.channel import GaussMarkovChannel
    from ..phy.error import sinr_to_ber, sinr_to_ber_block
    from ..phy.mcs import (bits_per_prb, bits_per_prb_block, sinr_to_mcs,
                           sinr_to_mcs_block)

    n_subframes -= n_subframes % _BLOCK
    channel = GaussMarkovChannel(mean_sinr_db=18.0, seed=3)
    now = 0
    t0 = time.perf_counter()
    for _ in range(n_subframes):
        sinr = channel.sinr_db(now)
        bits_per_prb(sinr_to_mcs(sinr), 2)
        sinr_to_ber(sinr)
        now += SUBFRAME_US
    scalar_wall = time.perf_counter() - t0

    channel = GaussMarkovChannel(mean_sinr_db=18.0, seed=3)
    now = 0
    t0 = time.perf_counter()
    for _ in range(n_subframes // _BLOCK):
        sinr = channel.sinr_block(now, _BLOCK)
        bits_per_prb_block(sinr_to_mcs_block(sinr), 2)
        sinr_to_ber_block(sinr)
        now += _BLOCK * SUBFRAME_US
    block_wall = time.perf_counter() - t0

    return {
        "subframes": n_subframes, "block_subframes": _BLOCK,
        "scalar_wall_s": round(scalar_wall, 6),
        "block_wall_s": round(block_wall, 6),
        "scalar_subframes_per_s": (round(n_subframes / scalar_wall, 1)
                                   if scalar_wall else 0.0),
        "block_subframes_per_s": (round(n_subframes / block_wall, 1)
                                  if block_wall else 0.0),
        "speedup": (round(scalar_wall / block_wall, 2)
                    if block_wall else 0.0),
    }


def _bench_dci_batch(n_subframes: int) -> dict:
    """Per-record vs columnar PbeMonitor ingest of a busy cell."""
    from ..monitor.pbe import PbeMonitor

    def records():
        for sf in range(n_subframes):
            record = SubframeRecord(sf, 0, 100)
            msgs = record.messages
            msgs.append(DciMessage(sf, 0, 1, 20 + sf % 5, 15, 2,
                                   tbs_bits=(20 + sf % 5) * 500))
            for user in range(4):
                msgs.append(DciMessage(sf, 0, 100 + user, 10 + user, 12, 1,
                                       tbs_bits=(10 + user) * 300))
            yield sf, record

    walls = {}
    for mode, batched in (("scalar", False), ("batch", True)):
        monitor = PbeMonitor(own_rnti=1, cell_prbs={0: 100},
                             primary_cell=0,
                             own_rate_hint=lambda: (500, 1e-5),
                             batch_ingest=batched)
        callback = monitor.decoder_callback(0)
        t0 = time.perf_counter()
        for sf, record in records():
            callback(record)
            if sf % 20 == 19:
                monitor.report(40, now_subframe=sf)
        walls[mode] = time.perf_counter() - t0

    return {
        "subframes": n_subframes,
        "scalar_wall_s": round(walls["scalar"], 6),
        "batch_wall_s": round(walls["batch"], 6),
        "scalar_rows_per_s": (round(n_subframes / walls["scalar"], 1)
                              if walls["scalar"] else 0.0),
        "batch_rows_per_s": (round(n_subframes / walls["batch"], 1)
                             if walls["batch"] else 0.0),
        "speedup": (round(walls["scalar"] / walls["batch"], 2)
                    if walls["batch"] else 0.0),
    }


def _bench_transport_batch(sim_s: float) -> dict:
    """Scalar vs columnar per-ACK transport over a grant-cycle uplink.

    A fixed-rate sender drives a clean loss-free loop: data through a
    propagation pipe to an :class:`AckingReceiver`, ACKs back through a
    :class:`BatchingPipe` (5 ms grant cycle) into the sender.  The only
    variable is the pipe's ``batched`` flag — one :class:`AckBatch`
    event per flush into :meth:`Sender.receive_batch` versus one
    scheduled ``receive`` per ACK.  End states must agree exactly.
    """
    from ..baselines.base import AckingReceiver, Sender
    from ..baselines.fixedrate import FixedRate
    from ..net.link import BatchingPipe, DelayPipe
    from ..net.sim import Simulator
    from ..net.units import us_from_seconds

    walls = {}
    states = {}
    for mode, batched in (("scalar", False), ("batch", True)):
        sim = Simulator()
        sender = Sender(sim, flow_id=1, cc=FixedRate(rate_bps=120e6),
                        egress=None)
        uplink = BatchingPipe(sim, sender, delay_us=2_000,
                              batch_interval_us=5_000, batched=batched)
        receiver = AckingReceiver(sim, 1, uplink)
        sender.egress = DelayPipe(sim, receiver, delay_us=6_000)
        sender.start()
        end_us = us_from_seconds(sim_s)
        sim.schedule(end_us, sender.stop)
        t0 = time.perf_counter()
        sim.run(until_us=end_us + 100_000)
        walls[mode] = time.perf_counter() - t0
        states[mode] = (sender.acked_packets, sender.srtt_us,
                        sender.min_rtt_us, sender.delivered_bits,
                        sender.delivered_time_us, sender.highest_acked)
    if states["batch"] != states["scalar"]:
        raise AssertionError("transport_batch: batched and scalar end "
                             "states differ")
    acks = states["batch"][0]
    return {
        "acks": acks, "sim_s": sim_s,
        "scalar_wall_s": round(walls["scalar"], 6),
        "batch_wall_s": round(walls["batch"], 6),
        "scalar_acks_per_s": (round(acks / walls["scalar"], 1)
                              if walls["scalar"] else 0.0),
        "batch_acks_per_s": (round(acks / walls["batch"], 1)
                             if walls["batch"] else 0.0),
        "speedup": (round(walls["scalar"] / walls["batch"], 2)
                    if walls["batch"] else 0.0),
    }


def _bench_cc_block(n_blocks: int) -> dict:
    """Scalar ``on_ack`` loop vs columnar ``on_ack_block`` per scheme.

    Replays the same synthetic grant-cycle ACK stream (5 ms blocks of
    8–16 ACKs with jittered RTT/rate samples, scripted
    :class:`PbeFeedback` for PBE) through both entry points of each
    controller and asserts the end decisions — pacing rate and cwnd at
    the final tick — agree.  Filters warm up within the first blocks,
    so the steady state this measures is the block fast paths, not the
    cold-start scalar fallbacks.
    """
    from ..baselines.base import AckContext
    from ..baselines.bbr import Bbr
    from ..baselines.copa import Copa
    from ..baselines.cubic import Cubic
    from ..core.feedback import PbeFeedback
    from ..core.sender import PbeSender
    from ..net.packet import Packet
    from ..net.units import MSS_BITS

    def make_stream(pbe: bool) -> list[list[AckContext]]:
        blocks = []
        now = 0
        seq = 0
        srtt = 24_000
        for b in range(n_blocks):
            now += 5_000
            block = []
            for _ in range(8 + (b % 9)):
                feedback = None
                if pbe:
                    feedback = PbeFeedback.from_rates(
                        40e6 + (seq % 11) * 1e6,
                        30e6 + (seq % 7) * 1e6,
                        internet_bottleneck=(b % 97) < 8,
                        stale=(seq % 211 == 0))
                ack = Packet(1, seq, is_ack=True, acked_seq=seq,
                             feedback=feedback)
                rtt = 22_000 + (seq * 37) % 9_000
                srtt = round(0.875 * srtt + 0.125 * rtt)
                block.append(AckContext(
                    ack=ack, now_us=now, rtt_us=rtt,
                    delivery_rate_bps=45e6 + ((seq * 13) % 23) * 4e5,
                    newly_acked_bits=MSS_BITS,
                    inflight_bits=40 * MSS_BITS,
                    app_limited=(seq % 301 == 0),
                    srtt_us=srtt))
                seq += 1
            blocks.append(block)
        return blocks

    schemes = {
        "pbe": lambda: PbeSender(initial_rate_bps=6e6),
        "bbr": lambda: Bbr(initial_rate_bps=6e6),
        "cubic": Cubic,
        "copa": Copa,
    }
    per_scheme = {}
    totals = {"scalar": 0.0, "block": 0.0}
    contexts = 0
    for name, factory in schemes.items():
        blocks = make_stream(name == "pbe")
        end_us = blocks[-1][-1].now_us
        contexts = sum(len(b) for b in blocks)
        walls = {}
        decisions = {}
        for mode in ("scalar", "block"):
            cc = factory()
            t0 = time.perf_counter()
            if mode == "scalar":
                on_ack = cc.on_ack
                for block in blocks:
                    for ctx in block:
                        on_ack(ctx)
            else:
                on_ack_block = cc.on_ack_block
                for block in blocks:
                    on_ack_block(block)
            walls[mode] = time.perf_counter() - t0
            decisions[mode] = (cc.pacing_rate_bps(end_us),
                               cc.cwnd_bits(end_us))
        if decisions["block"] != decisions["scalar"]:
            raise AssertionError(f"cc_block[{name}]: block and scalar "
                                 "decisions differ")
        totals["scalar"] += walls["scalar"]
        totals["block"] += walls["block"]
        per_scheme[name] = {
            "scalar_wall_s": round(walls["scalar"], 6),
            "block_wall_s": round(walls["block"], 6),
            "speedup": (round(walls["scalar"] / walls["block"], 2)
                        if walls["block"] else 0.0),
        }
    return {
        "blocks": n_blocks,
        "contexts_per_scheme": contexts,
        "schemes": per_scheme,
        "scalar_wall_s": round(totals["scalar"], 6),
        "block_wall_s": round(totals["block"], 6),
        "block_contexts_per_s": (
            round(len(schemes) * contexts / totals["block"], 1)
            if totals["block"] else 0.0),
        "speedup": (round(totals["scalar"] / totals["block"], 2)
                    if totals["block"] else 0.0),
    }


def _bench_subframe_loop(duration_s: float) -> dict:
    """Busy 2-carrier cell + PBE flow; ticks per wall second."""
    from ..harness import Experiment, FlowSpec, Scenario
    perf = PerfCounters()
    scenario = Scenario(name="bench", aggregated_cells=2,
                        mean_sinr_db=18.0, busy=True,
                        background_users=4, duration_s=duration_s,
                        seed=1)
    experiment = Experiment(scenario, perf_counters=perf)
    experiment.add_flow(FlowSpec(scheme="pbe"))
    t0 = time.perf_counter()
    experiment.run()
    wall = time.perf_counter() - t0
    return {"sim_s": duration_s, "wall_s": round(wall, 6),
            "ticks": perf.ticks,
            "ticks_per_s": round(perf.ticks / wall, 1) if wall else 0.0,
            "counters": perf.as_dict()}


def _bench_sweep(duration_s: float) -> dict:
    """End-to-end mini Table-1 stationary sweep (single process)."""
    from ..harness.experiments import run_stationary_sweep
    t0 = time.perf_counter()
    sweep = run_stationary_sweep(schemes=("pbe", "bbr"), n_busy=2,
                                 n_idle=1, duration_s=duration_s,
                                 jobs=1)
    wall = time.perf_counter() - t0
    return {"entries": len(sweep.entries), "flow_s": duration_s,
            "wall_s": round(wall, 6)}


def _bench_metro_smoke(hour_s: float) -> dict:
    """Batched vs scalar on one sparse ≥100-cell metro shard.

    The grid is mostly idle (one busy hotspot, thin background
    population, no walkers), which is exactly the population the
    batched engine's idle-cell fast-forward targets.  Both runs must
    produce the same :func:`repro.metro.shard_fingerprint`; the
    headline metric is the batched-over-scalar speedup.
    """
    from ..metro import GridSpec, MetroSet, shard_fingerprint, shard_jobs

    mset = MetroSet(
        name="bench-sparse", description="sparse metro bench shard",
        grid=GridSpec(name="bench-sparse", n_cells=240,
                      hotspot_fraction=0.005, seed=13),
        hours=(3, 14), hour_s=hour_s, shard_cells=240,
        users_scale=0.005, max_users_per_cell=2, walkers_per_shard=0,
        fleet=("pbe",))
    (job,) = shard_jobs(mset)
    walls = {}
    digests = {}
    for mode, batched in (("batch", True), ("scalar", False)):
        t0 = time.perf_counter()
        digests[mode] = shard_fingerprint(job.params, batched=batched)
        walls[mode] = time.perf_counter() - t0
    if digests["batch"] != digests["scalar"]:
        raise AssertionError("metro_smoke: batched and scalar shard "
                             "fingerprints differ")
    return {
        "cells": mset.grid.n_cells,
        "sim_s": round(len(mset.hours) * hour_s, 6),
        "fingerprint": digests["batch"][:16],
        "scalar_wall_s": round(walls["scalar"], 6),
        "batch_wall_s": round(walls["batch"], 6),
        "speedup": (round(walls["scalar"] / walls["batch"], 2)
                    if walls["batch"] else 0.0),
    }


#: The suite, in run order: ``name -> (bench fn, smoke size, full size)``.
_BENCH_PLAN: dict = {
    "estimator": (_bench_estimator, 2_000, 20_000),
    "scheduler": (_bench_scheduler, 2_000, 20_000),
    "channel_block": (_bench_channel_block, 10_000, 100_000),
    "dci_batch": (_bench_dci_batch, 5_000, 50_000),
    "transport_batch": (_bench_transport_batch, 0.5, 5.0),
    "cc_block": (_bench_cc_block, 400, 4_000),
    "subframe_loop": (_bench_subframe_loop, 1.0, 6.0),
    "sweep": (_bench_sweep, 1.0, 4.0),
    "metro_smoke": (_bench_metro_smoke, 0.4, 1.2),
}


def bench_names() -> tuple[str, ...]:
    """The suite's bench names, in run order (for CLI ``--only``)."""
    return tuple(_BENCH_PLAN)


def run_benchmarks(smoke: bool = False,
                   progress: Optional[object] = None,
                   only: Optional[object] = None) -> dict:
    """Run the suite; ``smoke=True`` shrinks every bench for CI.

    ``progress`` is an optional file-like object for one-line status
    updates (the CLI passes stderr).  ``only`` optionally restricts
    the run to the named benches (any iterable of names from
    :func:`bench_names`); the emitted document then carries just that
    subset, which :func:`compare_benchmarks` handles as partial.
    """
    selected = None if only is None else set(only)
    if selected is not None:
        unknown = selected - set(_BENCH_PLAN)
        if unknown:
            raise ValueError(f"unknown benches: {', '.join(sorted(unknown))}"
                             f" (have: {', '.join(_BENCH_PLAN)})")

    def say(message: str) -> None:
        if progress is not None:
            print(f"[repro perf] {message}", file=progress, flush=True)

    benches = {}
    for name, (fn, smoke_size, full_size) in _BENCH_PLAN.items():
        if selected is not None and name not in selected:
            continue
        say(f"{name} bench...")
        benches[name] = fn(smoke_size if smoke else full_size)
    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "platform": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "benches": benches,
    }


#: Headline metric per bench for :func:`compare_benchmarks` —
#: ``(json key, higher_is_better)``.
_HEADLINE = {
    "estimator": ("estimates_per_s", True),
    "scheduler": ("calls_per_s", True),
    "channel_block": ("block_subframes_per_s", True),
    "dci_batch": ("batch_rows_per_s", True),
    "transport_batch": ("speedup", True),
    "cc_block": ("speedup", True),
    "subframe_loop": ("ticks_per_s", True),
    "sweep": ("wall_s", False),
    "metro_smoke": ("speedup", True),
}

#: Relative slowdown beyond which :func:`compare_benchmarks` flags a
#: bench as regressed.  Wide on purpose: single-run wall clocks on
#: shared CI runners jitter by tens of percent.
REGRESSION_TOLERANCE = 0.25


def compare_benchmarks(old: dict, new: dict) -> tuple[list[str], list[str]]:
    """Diff two benchmark documents on their headline metrics.

    Returns ``(lines, regressions)``: human-readable per-bench delta
    lines, and the names of benches whose headline metric got worse by
    more than :data:`REGRESSION_TOLERANCE`.  Comparison is advisory —
    callers are expected to warn, not fail (wall-clock numbers from
    different machines or loads are not commensurable).
    """
    lines = []
    regressions = []
    if old.get("schema") != new.get("schema"):
        lines.append(f"note: schema differs ({old.get('schema')} vs "
                     f"{new.get('schema')}); comparing shared benches only")
    if old.get("smoke") != new.get("smoke"):
        lines.append(f"note: smoke flags differ ({old.get('smoke')} vs "
                     f"{new.get('smoke')}); sizes are not comparable")
    old_benches = old.get("benches", {})
    new_benches = new.get("benches", {})
    for name in new_benches:
        if name not in old_benches:
            lines.append(f"{name}: new bench (no baseline)")
            continue
        key, higher_better = _HEADLINE.get(name, ("wall_s", False))
        before = old_benches[name].get(key)
        after = new_benches[name].get(key)
        if not before or after is None:
            lines.append(f"{name}: {key} missing; skipped")
            continue
        change = (after - before) / before
        improved = change > 0 if higher_better else change < 0
        direction = "faster" if improved else "slower"
        lines.append(f"{name}: {key} {before:g} -> {after:g} "
                     f"({abs(change) * 100.0:.1f}% {direction})")
        loss = -change if higher_better else change
        if loss > REGRESSION_TOLERANCE:
            regressions.append(name)
    for name in old_benches:
        if name not in new_benches:
            lines.append(f"{name}: dropped (present only in baseline)")
    return lines, regressions
