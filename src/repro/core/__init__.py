"""PBE-CC: the paper's primary contribution.

The end-to-end congestion-control algorithm driven by physical-layer
bandwidth measurements: the server-side :class:`PbeSender`, the
mobile-side :class:`PbeClient` (which owns a
:class:`~repro.monitor.PbeMonitor`) and the ACK feedback encoding.
"""

from .client import (
    DELAY_MARGIN_US,
    DPROP_WINDOW_US,
    FAIR_SHARE_FRACTION,
    INTERNET,
    SWITCH_SUBFRAMES,
    WIRELESS,
    PbeClient,
)
from .feedback import PbeFeedback, decode_rate_bps, encode_interval_us
from .guard import FeedbackGuard
from .sender import DRAIN, RAMP_RTTS, STARTUP, PbeSender

__all__ = [
    "DELAY_MARGIN_US", "DPROP_WINDOW_US", "DRAIN", "FAIR_SHARE_FRACTION",
    "FeedbackGuard", "INTERNET", "PbeClient", "PbeFeedback", "PbeSender", "RAMP_RTTS",
    "STARTUP", "SWITCH_SUBFRAMES", "WIRELESS", "decode_rate_bps",
    "encode_interval_us",
]
