"""Misreported-feedback detection (§7, "Misreported congestion feedback").

PBE-CC trusts the mobile's capacity reports; a malicious client could
report a rate far above what the network supports and trigger a flood.
The paper proposes a server-side BBR-like throughput estimator — built
purely from send/ACK timestamps, with no client involvement — whose
achieved-throughput estimate is compared against the client's reported
capacity.  A client that *consistently* reports more than it ever
delivers is flagged, after which the sender caps its rate at the
measured throughput instead of the report.
"""

from __future__ import annotations

from ..baselines.windowed import WindowedMax
from ..net.units import US_PER_S

#: Reported/achieved ratio above which a window counts as suspicious.
SUSPICION_RATIO = 1.5
#: Consecutive suspicious windows before the client is flagged.
FLAG_AFTER_WINDOWS = 5
#: Evaluation window length, µs.
WINDOW_US = 1_000_000
#: Rate cap applied to a flagged client, relative to achieved rate.
CAPPED_HEADROOM = 1.2


class FeedbackGuard:
    """Server-side plausibility check on client capacity reports."""

    def __init__(self, suspicion_ratio: float = SUSPICION_RATIO,
                 flag_after: int = FLAG_AFTER_WINDOWS,
                 window_us: int = WINDOW_US) -> None:
        if suspicion_ratio <= 1.0:
            raise ValueError("suspicion ratio must exceed 1")
        if flag_after < 1 or window_us < 1:
            raise ValueError("windows must be positive")
        self.suspicion_ratio = suspicion_ratio
        self.flag_after = flag_after
        self.window_us = window_us
        self._achieved = WindowedMax(10 * US_PER_S)
        self._window_start = 0
        self._window_max_reported = 0.0
        self._suspicious_run = 0
        self.flagged = False
        self.windows_evaluated = 0

    @property
    def achieved_bps(self) -> float:
        """BBR-style delivered-throughput estimate (timestamps only)."""
        return self._achieved.get() or 0.0

    def observe(self, now_us: int, reported_bps: float,
                delivery_rate_bps: float) -> None:
        """Feed one ACK's report and delivery-rate sample."""
        if delivery_rate_bps > 0:
            self._achieved.update(now_us, delivery_rate_bps)
        self._window_max_reported = max(self._window_max_reported,
                                        reported_bps)
        if now_us - self._window_start < self.window_us:
            return
        self._evaluate()
        self._window_start = now_us
        self._window_max_reported = 0.0

    def _evaluate(self) -> None:
        self.windows_evaluated += 1
        achieved = self.achieved_bps
        if achieved <= 0:
            return
        if self._window_max_reported > self.suspicion_ratio * achieved:
            self._suspicious_run += 1
            if self._suspicious_run >= self.flag_after:
                self.flagged = True
        else:
            self._suspicious_run = 0

    def cap_rate(self, requested_bps: float) -> float:
        """Rate actually granted: capped once the client is flagged."""
        if not self.flagged or self.achieved_bps <= 0:
            return requested_bps
        return min(requested_bps, CAPPED_HEADROOM * self.achieved_bps)
