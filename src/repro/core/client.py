"""The PBE-CC mobile client (§4.2.2, §5).

Runs on the phone: for every received data packet it estimates the
one-way propagation delay ``Dprop`` (10-second min filter, as BBR does
for RTprop), classifies the connection's bottleneck state, and attaches
a capacity report to the outgoing ACK:

* **Wireless-bottleneck state** — the feedback carries the translated
  capacity estimate ``Ct`` (Eqns. 3+5) for the sender to pace at.
* **Internet-bottleneck state** — entered after ``Npkt`` consecutive
  packets exceed the delay threshold ``Dth = Dprop + 3·8 + 3`` ms
  (three chained HARQ retransmissions plus measured jitter); the
  feedback's state bit tells the sender to fall back to its
  cellular-tailored BBR, and carries the fair share ``Cf`` as the
  probing cap (Eqn. 7).  The client returns to the wireless state once
  ``Npkt`` consecutive packets are back under the threshold *and* the
  receive rate has reached the fair share (§4.2.3, "switching back").

Decisions use delay *differences* against ``Dprop``, so no clock
synchronization between server and phone is required (§4.2.2).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..baselines.base import AckingReceiver
from ..baselines.windowed import WindowedMin
from ..monitor.pbe import MonitorReport, PbeMonitor
from ..net.link import Receiver
from ..net.packet import Packet
from ..net.sim import Simulator
from ..net.units import MSS_BITS, US_PER_MS, US_PER_S
from .feedback import PbeFeedback, encode_interval_us

#: Dprop min-filter window (§4.2.2: minimum over a 10-second window).
DPROP_WINDOW_US = 10 * US_PER_S
#: Delay-threshold margin: three chained 8 ms retransmissions + 3 ms
#: jitter (94.1% of measured jitter is ≤ 3 ms).
DELAY_MARGIN_US = (3 * 8 + 3) * US_PER_MS
#: Npkt = SWITCH_SUBFRAMES · Ct / MSS (Eqn. 6).
SWITCH_SUBFRAMES = 6
#: Fraction of the fair share the receive rate must reach before
#: switching back to the wireless-bottleneck state.
FAIR_SHARE_FRACTION = 0.9

WIRELESS, INTERNET = "wireless", "internet"


class PbeClient(AckingReceiver):
    """Mobile-side PBE-CC endpoint: delay tracking + capacity feedback."""

    #: Checkpointing: the monitor is snapshotted once per flow by the
    #: checkpoint layer (sim/uplink skips inherited from the base).
    SNAPSHOT_SKIP = ("monitor",)

    def __init__(self, sim: Simulator, flow_id: int, uplink: Receiver,
                 monitor: PbeMonitor,
                 default_rtprop_us: int = 40_000,
                 delay_margin_us: int = DELAY_MARGIN_US) -> None:
        """``delay_margin_us`` is the §4.2.2 threshold margin above
        Dprop (default 3·8+3 ms); an ablation knob — 0 reproduces the
        "theoretical threshold" the paper shows works poorly."""
        super().__init__(sim, flow_id, uplink)
        if delay_margin_us < 0:
            raise ValueError("delay margin must be non-negative")
        self.monitor = monitor
        self.default_rtprop_us = default_rtprop_us
        self.delay_margin_us = delay_margin_us
        self.state = WIRELESS
        self._dprop = WindowedMin(DPROP_WINDOW_US)
        self._over_threshold_run = 0
        self._under_threshold_run = 0
        #: Receive-rate window: (arrival_us, bits).
        self._recent: deque[tuple[int, int]] = deque()
        #: Running Σ size_bits over ``_recent`` (ints, so the rolling
        #: sum is exactly the re-summed window).
        self._recent_bits = 0
        self._last_report: Optional[MonitorReport] = None
        self.state_changes: list[tuple[int, str]] = []
        #: Time spent in each state, µs (for §6.3.1's 18%/4% statistic).
        self.time_in_state = {WIRELESS: 0, INTERNET: 0}
        self._state_since = 0
        #: ACKs that carried a stale-flagged report (decode gaps).
        self.stale_reports = 0

    # ------------------------------------------------------------------
    # Delay bookkeeping
    # ------------------------------------------------------------------
    @property
    def dprop_us(self) -> int:
        value = self._dprop.get()
        return int(value) if value is not None else 0

    @property
    def delay_threshold_us(self) -> int:
        """``Dth`` of §4.2.2."""
        return self.dprop_us + self.delay_margin_us

    def _rtprop_us(self, packet: Packet) -> int:
        srtt = packet.meta.get("srtt_us", 0)
        return srtt if srtt > 0 else self.default_rtprop_us

    def _prune_recent(self, horizon_us: int) -> None:
        recent = self._recent
        while recent and recent[0][0] < horizon_us:
            self._recent_bits -= recent.popleft()[1]

    def _receive_rate_bps(self, now_us: int, window_us: int) -> float:
        self._prune_recent(now_us - window_us)
        bits = self._recent_bits
        return bits * US_PER_S / window_us if window_us > 0 else 0.0

    def _npkt(self, ct_bits_per_subframe: float) -> int:
        """Consecutive-packet threshold Npkt (Eqn. 6), at least 3.

        ``Npkt = 6 · Ct / MSS`` with Ct in bits per subframe — the
        number of packets the current rate carries in six subframes.
        """
        return max(3, round(SWITCH_SUBFRAMES * ct_bits_per_subframe
                            / MSS_BITS))

    # ------------------------------------------------------------------
    # Per-packet processing
    # ------------------------------------------------------------------
    def feedback_for(self, packet: Packet) -> PbeFeedback:
        now = self.sim.now
        delay = now - packet.sent_time_us
        self._dprop.update(now, delay)
        self._recent.append((now, packet.size_bits))
        self._recent_bits += packet.size_bits

        rtprop_us = self._rtprop_us(packet)
        # Keep the receive-rate window bounded on *every* packet.  It
        # used to be pruned only on the Internet-bottleneck branch
        # below, so a flow that stayed wireless-bottlenecked grew the
        # deque by one entry per packet for the whole run.
        self._prune_recent(now - rtprop_us)
        rtprop_subframes = max(1, rtprop_us // 1_000)
        # The UE's subframe clock keeps ticking even when the decoder
        # is dark — pass it so the report carries a staleness signal.
        report = self.monitor.report(rtprop_subframes,
                                     now_subframe=now // US_PER_MS)
        self._last_report = report

        threshold = self.delay_threshold_us
        npkt = self._npkt(report.transport_capacity)
        if delay > threshold:
            self._over_threshold_run += 1
            self._under_threshold_run = 0
        else:
            self._under_threshold_run += 1
            self._over_threshold_run = 0

        if self.state == WIRELESS:
            if self._over_threshold_run >= npkt:
                self._switch(INTERNET, now)
        else:
            receive_rate = self._receive_rate_bps(now, rtprop_us)
            fair = report.transport_fair_share_bps
            if (self._under_threshold_run >= npkt
                    and receive_rate >= FAIR_SHARE_FRACTION * fair):
                self._switch(WIRELESS, now)

        # §4.1/§4.2.1: the sender offers at least its fair share of the
        # cell (so an under-allocated flow keeps pressure on the
        # scheduler and converges back to the equal split), and more
        # when idle capacity makes Cp exceed the fair share.  The base
        # station's per-user fairness arbitrates any overshoot.
        target = max(report.transport_capacity_bps,
                     report.transport_fair_share_bps)
        if report.is_stale:
            self.stale_reports += 1
        return PbeFeedback.from_rates(
            target_rate_bps=target,
            fair_rate_bps=report.transport_fair_share_bps,
            internet_bottleneck=(self.state == INTERNET),
            carrier_activated=report.carrier_activated,
            stale=report.is_stale)

    def _switch(self, state: str, now_us: int) -> None:
        self.time_in_state[self.state] += now_us - self._state_since
        self._state_since = now_us
        self.state = state
        self.state_changes.append((now_us, state))
        self._over_threshold_run = 0
        self._under_threshold_run = 0

    # ------------------------------------------------------------------
    # Columnar receive (batched ACK generation)
    # ------------------------------------------------------------------
    def receive_block(self, packets: list[Packet]) -> None:
        """One transport block's deliveries → one run of feedback ACKs.

        Fuses the base class's record-and-ack loop with
        :meth:`feedback_for`, byte-identical, with the per-packet state
        hoisted into locals: the Dprop min-deque is manipulated
        directly (its 10 s window is fixed and every sample carries
        ``now``, so one up-front expiry covers the block), the
        receive-rate window keeps its per-packet pruning (its horizon
        tracks the packet's own stamped srtt), and the monitor report
        is re-read only when its inputs can have changed — a new
        averaging window, a consumed carrier-activation edge, or
        pending decode hints — mirroring the monitor's own memo key,
        which cannot otherwise change inside one flush event.

        The fusion assumes :meth:`feedback_for` is this class's own —
        an instance monkeypatch or a subclass override (tests tap it
        to observe the feedback stream) demotes the block to the
        per-packet reference loop so the hook sees every packet.
        """
        if ("feedback_for" in self.__dict__
                or type(self).feedback_for is not PbeClient.feedback_for):
            receive = self.receive
            for packet in packets:
                receive(packet)
            return
        now = self.sim.now
        flow_id = self.flow_id
        record = self.stats.record
        monitor = self.monitor
        feedback_cls = PbeFeedback
        default_rtprop = self.default_rtprop_us
        margin = self.delay_margin_us
        recent = self._recent
        recent_append = recent.append
        recent_bits = self._recent_bits
        dprop_samples = self._dprop._samples
        horizon = now - self._dprop.window_us
        while dprop_samples and dprop_samples[0][0] < horizon:
            dprop_samples.popleft()
        state = self.state
        over_run = self._over_threshold_run
        under_run = self._under_threshold_run
        stale_reports = 0
        now_subframe = now // US_PER_MS
        report = None
        report_window = -1
        npkt = 0
        target = fair_bps = 0.0
        activated = is_stale = False
        acks: list[Packet] = []
        ack_append = acks.append

        for packet in packets:
            if packet.is_ack or packet.flow_id != flow_id:
                continue
            size_bits = packet.size_bits
            delay = now - packet.sent_time_us
            record(now, size_bits, delay)

            # _dprop.update(now, delay): tail-domination pops + append.
            while dprop_samples and dprop_samples[-1][1] >= delay:
                dprop_samples.pop()
            dprop_samples.append((now, delay))
            recent_append((now, size_bits))
            recent_bits += size_bits

            srtt = packet.meta.get("srtt_us", 0)
            rtprop_us = srtt if srtt > 0 else default_rtprop
            prune_horizon = now - rtprop_us
            while recent and recent[0][0] < prune_horizon:
                recent_bits -= recent.popleft()[1]
            rtprop_subframes = max(1, rtprop_us // 1_000)
            if (rtprop_subframes != report_window or activated
                    or monitor._activation_pending
                    or monitor._pending_hints):
                report = monitor.report(rtprop_subframes,
                                        now_subframe=now_subframe)
                report_window = rtprop_subframes
                npkt = max(3, round(SWITCH_SUBFRAMES
                                    * report.transport_capacity
                                    / MSS_BITS))
                target = max(report.transport_capacity_bps,
                             report.transport_fair_share_bps)
                fair_bps = report.transport_fair_share_bps
                activated = report.carrier_activated
                is_stale = report.is_stale
                # from_rates, with the encodes hoisted per report.
                target_interval = encode_interval_us(target)
                fair_interval = encode_interval_us(fair_bps)

            threshold = dprop_samples[0][1] + margin
            if delay > threshold:
                over_run += 1
                under_run = 0
            else:
                under_run += 1
                over_run = 0

            if state == WIRELESS:
                if over_run >= npkt:
                    self.time_in_state[state] += now - self._state_since
                    self._state_since = now
                    state = INTERNET
                    self.state_changes.append((now, state))
                    over_run = 0
                    under_run = 0
            else:
                receive_rate = recent_bits * US_PER_S / rtprop_us
                if (under_run >= npkt
                        and receive_rate >= FAIR_SHARE_FRACTION * fair_bps):
                    self.time_in_state[state] += now - self._state_since
                    self._state_since = now
                    state = WIRELESS
                    self.state_changes.append((now, state))
                    over_run = 0
                    under_run = 0

            if is_stale:
                stale_reports += 1
            ack_append(packet.make_ack(now, feedback=feedback_cls(
                target_interval, fair_interval,
                state == INTERNET, activated, is_stale)))

        self._recent_bits = recent_bits
        self.state = state
        self._over_threshold_run = over_run
        self._under_threshold_run = under_run
        self.stale_reports += stale_reports
        if report is not None:
            self._last_report = report
        if acks:
            self._forward_acks(acks)

    # ------------------------------------------------------------------
    def state_fractions(self, now_us: int) -> dict[str, float]:
        """Fraction of connection time spent in each bottleneck state."""
        totals = dict(self.time_in_state)
        totals[self.state] += now_us - self._state_since
        span = sum(totals.values())
        if span == 0:
            return {WIRELESS: 1.0, INTERNET: 0.0}
        return {k: v / span for k, v in totals.items()}
