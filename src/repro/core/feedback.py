"""ACK feedback encoding (§5 of the paper).

The PBE-CC mobile client describes capacity to the sender as "an
interval in milliseconds between sending two 1500-byte packets,
represented with a 32-bit integer", plus one bit identifying the
current bottleneck state.  We encode the interval in *microseconds*
(the natural fixed-point reading of the paper's description — a whole-
millisecond interval could not express rates above 12 Mbit/s), so the
representable rate range is 12 kbit/s … 12 Tbit/s and quantization
error stays under 1% for rates below 120 Mbit/s (≤6% out to 1.2 Gbit/s).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.units import MSS_BITS, US_PER_S

_UINT32_MAX = 2**32 - 1


def encode_interval_us(rate_bps: float) -> int:
    """Inter-packet interval (µs between 1500-byte packets) for a rate.

    Rate 0 (or absurdly small) saturates to the maximum interval, which
    decodes back to the minimum representable rate.
    """
    if rate_bps <= 0:
        return _UINT32_MAX
    interval = round(MSS_BITS * US_PER_S / rate_bps)
    return max(1, min(_UINT32_MAX, interval))


def decode_rate_bps(interval_us: int) -> float:
    """Inverse of :func:`encode_interval_us`."""
    if not 1 <= interval_us <= _UINT32_MAX:
        raise ValueError(f"interval out of 32-bit range: {interval_us}")
    return MSS_BITS * US_PER_S / interval_us


@dataclass(frozen=True)
class PbeFeedback:
    """The capacity report riding on every PBE-CC acknowledgement."""

    #: Encoded send-rate interval the sender should pace at (µs/packet).
    target_interval_us: int
    #: Encoded fair-share interval (probe cap when Internet-bottlenecked).
    fair_interval_us: int
    #: The bottleneck-state bit: True = Internet bottleneck detected.
    internet_bottleneck: bool
    #: Secondary-carrier (re)activation flag: sender restarts its
    #: fair-share approach (§4.1).
    carrier_activated: bool = False

    @classmethod
    def from_rates(cls, target_rate_bps: float, fair_rate_bps: float,
                   internet_bottleneck: bool,
                   carrier_activated: bool = False) -> "PbeFeedback":
        return cls(encode_interval_us(target_rate_bps),
                   encode_interval_us(fair_rate_bps),
                   internet_bottleneck, carrier_activated)

    @property
    def target_rate_bps(self) -> float:
        return decode_rate_bps(self.target_interval_us)

    @property
    def fair_rate_bps(self) -> float:
        return decode_rate_bps(self.fair_interval_us)
