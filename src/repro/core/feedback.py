"""ACK feedback encoding (§5 of the paper).

The PBE-CC mobile client describes capacity to the sender as "an
interval in milliseconds between sending two 1500-byte packets,
represented with a 32-bit integer", plus one bit identifying the
current bottleneck state.  We encode the interval in *microseconds*
(the natural fixed-point reading of the paper's description — a whole-
millisecond interval could not express rates above 12 Mbit/s), so the
representable rate range is 12 kbit/s … 12 Tbit/s and quantization
error stays under 1% for rates below 120 Mbit/s (≤6% out to 1.2 Gbit/s).

Decoding is *saturating*: a corrupted interval (e.g. a flipped field on
a mangled ACK) clamps to the representable range instead of raising, so
one bad ACK can never kill the sender; clamp events are counted for
telemetry (:func:`decode_clamp_count`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.units import MSS_BITS, US_PER_S

_UINT32_MAX = 2**32 - 1

#: Count of out-of-range intervals clamped by :func:`decode_rate_bps`
#: since process start / the last :func:`reset_decode_clamp_count`.
_clamp_events = 0


def decode_clamp_count() -> int:
    """Out-of-range feedback intervals saturated so far (telemetry)."""
    return _clamp_events


def reset_decode_clamp_count() -> None:
    """Zero the clamp-event counter (test/experiment isolation)."""
    global _clamp_events
    _clamp_events = 0


def encode_interval_us(rate_bps: float) -> int:
    """Inter-packet interval (µs between 1500-byte packets) for a rate.

    Rate 0 (or absurdly small) saturates to the maximum interval, which
    decodes back to the minimum representable rate.
    """
    if rate_bps <= 0:
        return _UINT32_MAX
    interval = round(MSS_BITS * US_PER_S / rate_bps)
    return max(1, min(_UINT32_MAX, interval))


def decode_rate_bps(interval_us: int) -> float:
    """Inverse of :func:`encode_interval_us`, saturating.

    Out-of-range intervals — which a well-behaved client never sends,
    but a corrupted ACK can carry — clamp to the representable range
    and bump the clamp-event counter instead of raising.
    """
    if not 1 <= interval_us <= _UINT32_MAX:
        global _clamp_events
        _clamp_events += 1
        interval_us = min(max(int(interval_us), 1), _UINT32_MAX)
    return MSS_BITS * US_PER_S / interval_us


@dataclass(frozen=True)
class PbeFeedback:
    """The capacity report riding on every PBE-CC acknowledgement."""

    #: Encoded send-rate interval the sender should pace at (µs/packet).
    target_interval_us: int
    #: Encoded fair-share interval (probe cap when Internet-bottlenecked).
    fair_interval_us: int
    #: The bottleneck-state bit: True = Internet bottleneck detected.
    internet_bottleneck: bool
    #: Secondary-carrier (re)activation flag: sender restarts its
    #: fair-share approach (§4.1).
    carrier_activated: bool = False
    #: Staleness bit: the client's monitor report has outlived its
    #: decode stream (gap/outage), so the rates above are echoes of an
    #: old estimate — the sender should not steer by them.
    stale: bool = False

    @classmethod
    def from_rates(cls, target_rate_bps: float, fair_rate_bps: float,
                   internet_bottleneck: bool,
                   carrier_activated: bool = False,
                   stale: bool = False) -> "PbeFeedback":
        return cls(encode_interval_us(target_rate_bps),
                   encode_interval_us(fair_rate_bps),
                   internet_bottleneck, carrier_activated, stale)

    @property
    def target_rate_bps(self) -> float:
        return decode_rate_bps(self.target_interval_us)

    @property
    def fair_rate_bps(self) -> float:
        return decode_rate_bps(self.fair_interval_us)
