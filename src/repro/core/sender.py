"""The PBE-CC sender (§4.1-§4.2.3).

A rate-based controller driven by the mobile client's explicit capacity
feedback:

* **Startup (§4.1)** — linear rate increase from zero to the fair-share
  rate ``Cf`` over three RTTs, so the cell tower and competing users
  have time to react.  The ramp restarts whenever the network activates
  another component carrier.
* **Wireless-bottleneck state (§4.2.1)** — pace exactly at the reported
  transport capacity ``Ct``, with inflight capped at the BDP
  (``Ct × RTprop``) so delayed feedback cannot flood the network.
* **Internet-bottleneck state (§4.2.3)** — after a one-RTprop drain
  phase at ``0.5·BtlBw``, run a cellular-tailored BBR whose probing
  rate is capped at the wireless fair share:
  ``Cprobe = min(1.25·BtlBw, Cf)`` (Eqn. 7).
* **Feedback-loss fallback** — a watchdog tracks the freshness of the
  client's capacity reports.  When reports go stale (decoder outage,
  lost/corrupted ACK feedback, a client that stops reporting — §7),
  the sender falls back to the same embedded delay-based BBR, which
  every ACK has kept warm; when fresh reports resume it re-syncs by
  ramping from the fallback operating point back to the reported fair
  share, reusing the §4.1 startup machinery.
"""

from __future__ import annotations

from typing import Optional

from ..baselines.base import AckContext, CongestionControl
from ..baselines.bbr import PROBE_BW, Bbr
from ..net.packet import Packet
from ..net.units import MSS_BITS, US_PER_S
from .feedback import PbeFeedback
from .guard import FeedbackGuard

STARTUP, WIRELESS, DRAIN, INTERNET, FALLBACK = (
    "startup", "wireless", "drain", "internet", "fallback")

#: Startup ramp length, in round-trip times (§4.1: three RTTs).
RAMP_RTTS = 3
#: Wireless-state pacing gain.  The paper's binding control is the
#: congestion window ("PBE-CC limits the amount of inflight data to the
#: bandwidth-delay product ... with a congestion window", §4) — pacing
#: runs slightly above the capacity estimate so the BDP window stays
#: full and dips in the estimate cannot starve the wireless scheduler.
WIRELESS_PACING_GAIN = 1.25
#: Drain-phase pacing gain on entering the Internet-bottleneck state.
DRAIN_GAIN = 0.5
#: cwnd headroom above the BDP, packets.
CWND_SLACK_PACKETS = 4
#: Two HARQ retransmission cycles (16 ms), µs: the BDP window must absorb
#: the receiver-side reordering stalls of §3/Figure 3, otherwise every
#: 8 ms stall blocks the window and the paced sender can never win the
#: time back.
RETX_MARGIN_US = 16_000
#: Floor of the feedback watchdog timeout, µs (the auto timeout is
#: ``max(4·RTprop, this)`` so ordinary ACK batching never trips it).
MIN_FEEDBACK_TIMEOUT_US = 100_000


class PbeSender(CongestionControl):
    """Server-side PBE-CC congestion control."""

    name = "pbe"

    def __init__(self, initial_rate_bps: float = 1.2e6,
                 mss_bits: int = MSS_BITS,
                 ramp_rtts: float = RAMP_RTTS,
                 pacing_gain: float = WIRELESS_PACING_GAIN,
                 retx_margin_us: int = RETX_MARGIN_US,
                 cap_probe_at_fair_share: bool = True,
                 guard: Optional[FeedbackGuard] = None,
                 feedback_timeout_us: Optional[int] = None) -> None:
        """Ablation knobs (defaults are the paper's design):

        ``ramp_rtts=0`` jumps straight to Cf instead of the §4.1 linear
        ramp; ``retx_margin_us=0`` sizes the cwnd at the bare BDP;
        ``cap_probe_at_fair_share=False`` probes at plain 1.25·BtlBw
        instead of Eqn. 7's ``min(1.25·BtlBw, Cf)``.

        ``guard`` optionally attaches the §7 misreported-feedback
        detector: once it flags the client, the sender ignores inflated
        capacity reports and caps at the measured throughput.

        ``feedback_timeout_us`` overrides the feedback watchdog: with
        no fresh (non-stale) capacity report for this long, the sender
        falls back to its delay-based estimator.  ``None`` sizes the
        timeout automatically as ``max(4·RTprop, 100 ms)``.
        """
        if initial_rate_bps <= 0:
            raise ValueError("initial rate must be positive")
        if ramp_rtts < 0 or retx_margin_us < 0 or pacing_gain <= 0:
            raise ValueError("ablation knobs must be non-negative")
        if feedback_timeout_us is not None and feedback_timeout_us <= 0:
            raise ValueError("feedback timeout must be positive")
        self.mss_bits = mss_bits
        self.initial_rate_bps = initial_rate_bps
        self.ramp_rtts = ramp_rtts
        self.pacing_gain = pacing_gain
        self.retx_margin_us = retx_margin_us
        self.cap_probe_at_fair_share = cap_probe_at_fair_share
        self.guard = guard
        self.state = STARTUP

        #: Embedded cellular-tailored BBR: fed every ACK so its BtlBw /
        #: RTprop filters are warm the instant the bottleneck moves into
        #: the Internet.  Its probing rate is capped at Cf (Eqn. 7).
        self.bbr = Bbr(initial_rate_bps=initial_rate_bps,
                       mss_bits=mss_bits,
                       probe_rate_cap=self._fair_share_cap)

        self.target_rate_bps = 0.0
        self.fair_rate_bps = 0.0
        self._srtt_us = 0
        self._ramp_start_us: Optional[int] = None
        self._ramp_base_bps = 0.0
        self._drain_until_us = 0
        self.state_changes: list[tuple[int, str]] = []

        #: Feedback watchdog: timestamp of the last fresh (non-stale)
        #: capacity report; falls back to the first ACK of any kind so
        #: a client that never reports (§7) still triggers a fallback.
        self.feedback_timeout_us = feedback_timeout_us
        self._last_fresh_us: Optional[int] = None
        self._first_ack_us: Optional[int] = None
        self.fallback_entries = 0
        self.stale_feedback_acks = 0

    # ------------------------------------------------------------------
    def _fair_share_cap(self) -> Optional[float]:
        if not self.cap_probe_at_fair_share:
            return None
        return self.fair_rate_bps if self.fair_rate_bps > 0 else None

    @property
    def rtprop_us(self) -> int:
        rtprop = self.bbr.rtprop_us
        if rtprop:
            return rtprop
        return self._srtt_us or 40_000

    def _switch(self, state: str, now_us: int) -> None:
        self.state = state
        self.state_changes.append((now_us, state))

    def state_durations_us(self, now_us: int) -> dict[str, int]:
        """Cumulative time spent in each state up to ``now_us``."""
        durations = dict.fromkeys(
            (STARTUP, WIRELESS, DRAIN, INTERNET, FALLBACK), 0)
        prev_t, prev_state = 0, STARTUP
        for t, state in self.state_changes:
            durations[prev_state] += max(0, t - prev_t)
            prev_t, prev_state = t, state
        durations[prev_state] += max(0, now_us - prev_t)
        return durations

    # ------------------------------------------------------------------
    # Feedback watchdog (graceful degradation)
    # ------------------------------------------------------------------
    def _watchdog_timeout_us(self) -> int:
        if self.feedback_timeout_us is not None:
            return self.feedback_timeout_us
        return max(4 * self.rtprop_us, MIN_FEEDBACK_TIMEOUT_US)

    def _check_watchdog(self, now_us: int) -> None:
        """Fall back to the delay-based estimator on stale feedback.

        Armed by the first ACK of any kind, refreshed by every fresh
        (non-stale) capacity report.  The embedded BBR has been fed
        every ACK, so its BtlBw/RTprop filters are warm the instant we
        hand it control.
        """
        reference = (self._last_fresh_us if self._last_fresh_us is not None
                     else self._first_ack_us)
        if self.state == FALLBACK or reference is None:
            return
        if now_us - reference <= self._watchdog_timeout_us():
            return
        self.fallback_entries += 1
        self.bbr.filled_pipe = True
        if self.bbr.state != PROBE_BW:
            self.bbr.enter_probe_bw(now_us)
        self._switch(FALLBACK, now_us)

    def _resync_after_fallback(self, now_us: int) -> None:
        """Fresh reports resumed: ramp back onto explicit feedback.

        Reuses the §4.1 startup machinery — ramp from the fallback
        operating point (BBR's bandwidth estimate) to the reported
        fair share over three RTTs, so the re-entry cannot shock the
        cell any more than a carrier activation does.
        """
        self._ramp_base_bps = max(self.initial_rate_bps,
                                  self.bbr.btlbw_bps)
        self._ramp_start_us = now_us
        self._switch(STARTUP, now_us)

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_ack(self, ctx: AckContext) -> None:
        now = ctx.now_us
        if self._first_ack_us is None:
            self._first_ack_us = now
        # The transport layer already runs the standard EWMA srtt filter
        # over every ACK; adopt its estimate instead of re-deriving one
        # in parallel (the two filters used to run side by side and
        # could only stay equal by construction — now they cannot
        # drift by definition).
        self._srtt_us = ctx.srtt_us
        self.bbr.on_ack(ctx)

        feedback = ctx.ack.feedback
        if not isinstance(feedback, PbeFeedback):
            # Feedback lost/corrupted off this ACK; the watchdog decides
            # when the silence has lasted long enough to fall back.
            self._check_watchdog(now)
            return
        if feedback.stale:
            # The client itself flagged the report as an echo of a dead
            # decode stream — do not steer by its rates.
            self.stale_feedback_acks += 1
            self._check_watchdog(now)
            return
        if self.state == FALLBACK:
            self._resync_after_fallback(now)
        self._last_fresh_us = now
        target_rate = feedback.target_rate_bps
        self.target_rate_bps = target_rate
        self.fair_rate_bps = feedback.fair_rate_bps
        if self.guard is not None:
            self.guard.observe(now, target_rate,
                               ctx.delivery_rate_bps)
        if (self.state == STARTUP and self._ramp_start_us is None
                and self.fair_rate_bps > 0):
            self._ramp_start_us = now  # first Cf report arms the ramp

        if feedback.carrier_activated and self.state in (WIRELESS, STARTUP):
            # §4.1: more carriers activated -> restart the fair-share
            # approach from the current operating rate.
            self._ramp_base_bps = self._current_wireless_rate(now)
            self._ramp_start_us = now
            self._switch(STARTUP, now)
            return

        if feedback.internet_bottleneck:
            if self.state in (STARTUP, WIRELESS):
                # §4.2.3: drain the queue for one RTprop first.
                self._drain_until_us = now + self.rtprop_us
                self._switch(DRAIN, now)
            elif self.state == DRAIN and now >= self._drain_until_us:
                self.bbr.filled_pipe = True
                if self.bbr.state != PROBE_BW:
                    self.bbr.enter_probe_bw(now)
                self._switch(INTERNET, now)
            return

        if self.state in (DRAIN, INTERNET):
            self._switch(WIRELESS, now)
        elif self.state == STARTUP and self._ramp_progress(now) >= 1.0:
            self._switch(WIRELESS, now)

    def on_ack_block(self, contexts: list[AckContext]) -> None:
        """Columnar §4.1 update loop over one grant cycle's ACKs.

        PBE's own control is a sequential state machine (every ACK can
        flip the bottleneck state that reshapes how the next one is
        interpreted), so that machine still runs per ACK — but the
        embedded BBR's per-ACK feeding is *deferred* into runs handed
        to :meth:`Bbr.on_ack_block`, where the filter work collapses to
        per-block aggregates.  A run is flushed before any path that
        reads or mutates BBR state (the watchdog's RTprop read, the
        fallback resync's BtlBw read, the §4.2.3 Internet-bottleneck
        branch), so the interleaving of BBR updates with those reads is
        exactly the scalar loop's.  The steady wireless-state path —
        fresh feedback, no bottleneck shift — touches no BBR state, so
        a busy flow's whole batch becomes a single deferred run.
        """
        if len(contexts) == 1:
            self.on_ack(contexts[0])
            return
        if self._first_ack_us is None:
            self._first_ack_us = contexts[0].now_us
        bbr = self.bbr
        bbr_block = bbr.on_ack_block
        run: list[AckContext] = []
        run_append = run.append

        for ctx in contexts:
            now = ctx.now_us
            self._srtt_us = ctx.srtt_us
            run_append(ctx)

            feedback = ctx.ack.feedback
            if not isinstance(feedback, PbeFeedback):
                bbr_block(run)
                run.clear()
                self._check_watchdog(now)
                continue
            if feedback.stale:
                self.stale_feedback_acks += 1
                bbr_block(run)
                run.clear()
                self._check_watchdog(now)
                continue
            if self.state == FALLBACK:
                bbr_block(run)
                run.clear()
                self._resync_after_fallback(now)  # reads bbr.btlbw_bps
            self._last_fresh_us = now
            target_rate = feedback.target_rate_bps
            self.target_rate_bps = target_rate
            self.fair_rate_bps = feedback.fair_rate_bps
            if self.guard is not None:
                self.guard.observe(now, target_rate,
                                   ctx.delivery_rate_bps)
            if (self.state == STARTUP and self._ramp_start_us is None
                    and self.fair_rate_bps > 0):
                self._ramp_start_us = now  # first Cf report arms the ramp

            if (feedback.carrier_activated
                    and self.state in (WIRELESS, STARTUP)):
                # §4.1 restart reads no BBR state: keep the run open.
                self._ramp_base_bps = self._current_wireless_rate(now)
                self._ramp_start_us = now
                self._switch(STARTUP, now)
                continue

            if feedback.internet_bottleneck:
                if run:  # may be empty after a same-ACK fallback resync
                    bbr_block(run)
                    run.clear()
                if self.state in (STARTUP, WIRELESS):
                    # §4.2.3: drain the queue for one RTprop first.
                    self._drain_until_us = now + self.rtprop_us
                    self._switch(DRAIN, now)
                elif self.state == DRAIN and now >= self._drain_until_us:
                    bbr.filled_pipe = True
                    if bbr.state != PROBE_BW:
                        bbr.enter_probe_bw(now)
                    self._switch(INTERNET, now)
                continue

            if self.state in (DRAIN, INTERNET):
                self._switch(WIRELESS, now)
            elif self.state == STARTUP and self._ramp_progress(now) >= 1.0:
                self._switch(WIRELESS, now)
        if run:
            bbr_block(run)

    def on_timeout(self, now_us: int) -> None:
        self.bbr.on_timeout(now_us)
        self._ramp_base_bps = 0.0
        self._ramp_start_us = now_us
        self._switch(STARTUP, now_us)

    def on_send(self, packet: Packet) -> None:
        # The client needs the connection RTT to size its averaging
        # window (§4.2.1) — piggyback it on every data packet.
        packet.meta["srtt_us"] = self._srtt_us
        packet.meta["phase"] = self.state

    # ------------------------------------------------------------------
    # Rate control
    # ------------------------------------------------------------------
    def _ramp_progress(self, now_us: int) -> float:
        if self._ramp_start_us is None:
            return 0.0
        ramp_us = self.ramp_rtts * max(self._srtt_us, 10_000)
        if ramp_us <= 0:
            return 1.0
        return min(1.0, (now_us - self._ramp_start_us) / ramp_us)

    def _current_wireless_rate(self, now_us: int) -> float:
        if self.state == STARTUP:
            if self._ramp_start_us is None:
                return self.initial_rate_bps
            progress = self._ramp_progress(now_us)
            goal = self.fair_rate_bps or self.initial_rate_bps
            rate = max(self.initial_rate_bps,
                       self._ramp_base_bps
                       + (goal - self._ramp_base_bps) * progress)
        else:
            rate = self.target_rate_bps or self.initial_rate_bps
        if self.guard is not None:
            rate = max(self.initial_rate_bps, self.guard.cap_rate(rate))
        return rate

    def pacing_rate_bps(self, now_us: int) -> float:
        self._check_watchdog(now_us)
        if self.state == STARTUP:
            return self._current_wireless_rate(now_us)
        if self.state == WIRELESS:
            return self.pacing_gain * self._current_wireless_rate(now_us)
        if self.state == DRAIN:
            btlbw = self.bbr.btlbw_bps or self.target_rate_bps
            return max(self.initial_rate_bps, DRAIN_GAIN * btlbw)
        return self.bbr.pacing_rate_bps(now_us)

    def cwnd_bits(self, now_us: int) -> Optional[float]:
        self._check_watchdog(now_us)
        slack = CWND_SLACK_PACKETS * self.mss_bits
        if self.state in (STARTUP, WIRELESS, DRAIN):
            rate = self._current_wireless_rate(now_us)
            bdp = rate * (self.rtprop_us + self.retx_margin_us) / US_PER_S
            return bdp + slack
        return self.bbr.cwnd_bits(now_us)
