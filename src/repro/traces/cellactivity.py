"""Diurnal cell-activity traces (micro-benchmark of §6.2, Figure 11).

The paper measures, over 24 hours, how many distinct users exchange
data with a 20 MHz and a 10 MHz cell each hour (peak-hour averages of
181 and 97, maxima of 233 and 135, and the 10 MHz cell switched off
between midnight and 3 am), and the distribution of the users'
physical data rates (77.4% / 71.9% of users below half the 1.8
Mbit/s/PRB maximum).  This module generates a synthetic population
with those properties, which the Figure 11 bench then measures.
"""

from __future__ import annotations

import numpy as np

from ..phy.channel import StaticChannel
from ..phy.mcs import bits_per_prb, sinr_to_mcs

#: Normalized diurnal shape (fraction of peak activity per hour 0-23).
DIURNAL_SHAPE = np.array([
    0.10, 0.07, 0.06, 0.06, 0.08, 0.12, 0.25, 0.45, 0.62, 0.72,
    0.80, 0.88, 0.95, 0.97, 1.00, 0.98, 0.96, 0.97, 0.95, 0.90,
    0.75, 0.55, 0.35, 0.18,
])


class DiurnalCellActivity:
    """Synthetic 24-hour user population for one cell."""

    def __init__(self, peak_users_per_hour: int = 190,
                 off_hours: tuple[int, ...] = (), seed: int = 0) -> None:
        if peak_users_per_hour < 1:
            raise ValueError("peak user count must be positive")
        if any(not 0 <= h < 24 for h in off_hours):
            raise ValueError("off hours must be in [0, 24)")
        self.peak_users_per_hour = peak_users_per_hour
        self.off_hours = set(off_hours)
        self._rng = np.random.default_rng(seed)

    def hourly_user_counts(self) -> list[int]:
        """Detected distinct users for each hour of the day."""
        counts = []
        for hour in range(24):
            if hour in self.off_hours:
                counts.append(0)
                continue
            mean = self.peak_users_per_hour * DIURNAL_SHAPE[hour]
            counts.append(int(self._rng.poisson(max(1.0, mean))))
        return counts

    def user_sinrs_db(self, n_users: int) -> np.ndarray:
        """SINR draws for a user population.

        A two-component mixture: most users sit at cell-median SINR
        (many are indoors or at cell edge), a minority are close-in
        high-SINR users — yielding the paper's observation that over
        70% of users run below half the maximum per-PRB rate.
        """
        if n_users < 0:
            raise ValueError("user count must be non-negative")
        edge = self._rng.normal(8.0, 6.0, size=n_users)
        near = self._rng.normal(24.0, 4.0, size=n_users)
        is_near = self._rng.random(n_users) < 0.25
        return np.where(is_near, near, edge)

    def user_rates_mbps_per_prb(self, n_users: int) -> np.ndarray:
        """Physical data rates (Mbit/s/PRB) for ``n_users`` (Fig. 11b)."""
        sinrs = self.user_sinrs_db(n_users)
        rates = np.empty(n_users)
        for i, sinr in enumerate(sinrs):
            mcs = sinr_to_mcs(float(sinr))
            streams = 2 if sinr >= 18.0 else 1
            # bits per PRB per 1 ms subframe -> Mbit/s per PRB.
            rates[i] = bits_per_prb(mcs, streams) / 1_000.0
        return rates


def paper_cells(seed: int = 0) -> dict[str, DiurnalCellActivity]:
    """The two §6.2 cells: a 20 MHz one and a 10 MHz one (off 0-3 am)."""
    return {
        "20MHz": DiurnalCellActivity(peak_users_per_hour=190, seed=seed),
        "10MHz": DiurnalCellActivity(peak_users_per_hour=100,
                                     off_hours=(0, 1, 2), seed=seed + 1),
    }
