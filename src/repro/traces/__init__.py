"""Workload, mobility and cell-activity trace generators.

Everything the experiments need that the paper obtained from the real
world: offered-load schedules, random background users, scripted RSSI
trajectories and diurnal cell populations.  All randomness derives from
explicit seeds (:func:`derived_seed` splits one seed into independent
named streams), so trace-driven runs are replayable.
"""

from .cellactivity import DIURNAL_SHAPE, DiurnalCellActivity, paper_cells
from .mobility import paper_trajectory, random_walk_trajectory
from .replay import CapacityTrace, TraceLink
from .seeds import derived_seed
from .workload import CbrDemand, OnOffRandomDemand, ScheduledDemand

__all__ = [
    "CbrDemand", "DIURNAL_SHAPE", "DiurnalCellActivity",
    "CapacityTrace", "OnOffRandomDemand", "ScheduledDemand",
    "TraceLink", "derived_seed", "paper_cells",
    "paper_trajectory", "random_walk_trajectory",
]
