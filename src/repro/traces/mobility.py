"""Mobility trajectories (§6.3.2, Figures 16-17).

The paper's mobility experiment moves the phone from an RSSI of
−85 dBm to −105 dBm over 13 seconds, back at a faster speed in about
4 seconds, then holds — a 40-second script.  :func:`paper_trajectory`
builds exactly that trace; :func:`random_walk_trajectory` provides a
generic stochastic alternative for wider testing.
"""

from __future__ import annotations

import numpy as np

from ..net.units import US_PER_S
from ..phy.channel import TraceChannel
from .seeds import derived_seed


def paper_trajectory(strong_rssi_dbm: float = -85.0,
                     weak_rssi_dbm: float = -105.0,
                     fading_std_db: float = 1.5,
                     time_scale: float = 1.0,
                     seed: int = 0) -> TraceChannel:
    """The §6.3.2 script: 13 s hold, 13 s out, 4 s back, 10 s hold.

    ``time_scale`` shrinks/stretches the whole 40-second script (the
    benchmarks run a compressed version to bound runtimes).
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    s = US_PER_S * time_scale
    waypoints = [
        (0, strong_rssi_dbm),
        (int(13 * s), strong_rssi_dbm),  # stationary at the start point
        (int(26 * s), weak_rssi_dbm),    # slow move out
        (int(30 * s), strong_rssi_dbm),  # fast move back
        (int(40 * s), strong_rssi_dbm),  # stationary again
    ]
    return TraceChannel(waypoints, fading_std_db=fading_std_db, seed=seed)


def random_walk_trajectory(duration_s: float, mean_rssi_dbm: float = -95.0,
                           step_db: float = 3.0, interval_s: float = 2.0,
                           bounds_dbm: tuple[float, float] = (-113.0, -80.0),
                           fading_std_db: float = 1.5,
                           seed: int = 0) -> TraceChannel:
    """A bounded Gaussian random walk in RSSI.

    The walk and the fading process draw from two *derived* streams of
    the one explicit ``seed`` — passing the raw seed to both (as an
    earlier version did) made the fading noise replay the walk's draws.
    """
    if duration_s <= 0 or interval_s <= 0:
        raise ValueError("durations must be positive")
    rng = np.random.default_rng(derived_seed(seed, "random-walk", "walk"))
    lo, hi = bounds_dbm
    waypoints = []
    rssi = mean_rssi_dbm
    t = 0.0
    while t <= duration_s:
        waypoints.append((int(t * US_PER_S), rssi))
        rssi = float(np.clip(rssi + rng.normal(0.0, step_db), lo, hi))
        t += interval_s
    return TraceChannel(waypoints, fading_std_db=fading_std_db,
                        seed=derived_seed(seed, "random-walk", "fading"))
