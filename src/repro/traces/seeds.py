"""Deterministic seed derivation for trace processes.

Every stochastic object in a metro-scale scenario — thousands of
per-cell activity traces, per-user demand sources, fading channels and
mobility walks — must draw from an *independent* stream that is fully
determined by one top-level scenario seed.  Passing the same integer to
two ``default_rng`` calls produces the identical stream, and ad-hoc
arithmetic (``seed + i``) collides as soon as two call sites pick the
same offset.  :func:`derived_seed` avoids both failure modes by hashing
the seed together with a string scope path, the same construction as
``repro.faults.spec.derived_rng``.
"""

from __future__ import annotations

import hashlib


def derived_seed(seed: int, *scope: object) -> int:
    """A 64-bit seed for the independent stream named by ``scope``.

    ``derived_seed(7, "cell", 12, "fading")`` and
    ``derived_seed(7, "cell", 12, "walk")`` are unrelated streams even
    though they share the scenario seed; the same arguments always
    return the same value.
    """
    key = ":".join(str(part) for part in (seed, *scope))
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
