"""Capacity-trace recording and replay (Mahimahi-style).

Cellular CC research commonly evaluates over *recorded* capacity
traces (Sprout's and Verus's evaluations, the Pantheon/Mahimahi
toolchain).  This module closes the loop for the simulator:

* :class:`CapacityTrace` — a per-millisecond deliverable-bits series.
  It can be measured off a saturated run's decoded control channel
  (`from_served_records`), loaded from or saved to the Mahimahi packet-
  delivery-opportunity format (one line per 1500-byte delivery, the
  line being its millisecond timestamp), or built synthetically.
* :class:`TraceLink` — a link whose deliverable budget follows a
  trace (looping), with a droptail queue and propagation delay, so any
  congestion controller in :mod:`repro.baselines` can be evaluated
  trace-driven without the full cell simulation.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from ..net.link import Receiver
from ..net.packet import Packet
from ..net.sim import Simulator
from ..net.units import MSS_BITS, SUBFRAME_US
from ..phy.dci import SubframeRecord


class CapacityTrace:
    """A periodic per-millisecond capacity series (bits per ms)."""

    def __init__(self, bits_per_ms: Sequence[int]) -> None:
        if not bits_per_ms:
            raise ValueError("trace must be non-empty")
        if any(b < 0 for b in bits_per_ms):
            raise ValueError("capacities must be non-negative")
        self.bits_per_ms = list(bits_per_ms)

    def __len__(self) -> int:
        """Trace length in milliseconds."""
        return len(self.bits_per_ms)

    @property
    def mean_bps(self) -> float:
        """Long-run capacity of the looping trace, bits/second."""
        return sum(self.bits_per_ms) / len(self.bits_per_ms) * 1_000

    def budget(self, subframe: int) -> int:
        """Deliverable bits in the given millisecond (trace loops)."""
        return self.bits_per_ms[subframe % len(self.bits_per_ms)]

    # ------------------------------------------------------------------
    # Recording from a simulated cell
    # ------------------------------------------------------------------
    @classmethod
    def from_served_records(cls, records: Iterable[SubframeRecord],
                            rnti: Optional[int] = None) -> \
            "CapacityTrace":
        """Measure a trace from decoded control-channel records.

        With ``rnti`` the trace is that user's served bits per subframe
        (a saturated flow's service process *is* the capacity trace it
        experienced); without it, the whole cell's.
        """
        bits = []
        for record in records:
            if rnti is None:
                bits.append(sum(m.tbs_bits for m in record.messages))
            else:
                bits.append(sum(m.tbs_bits for m in record.messages
                                if m.rnti == rnti))
        if not bits:
            raise ValueError("no records to measure")
        return cls(bits)

    # ------------------------------------------------------------------
    # Mahimahi interoperability
    # ------------------------------------------------------------------
    def to_mahimahi_lines(self) -> list[str]:
        """One line per 1500-byte delivery opportunity (ms timestamps).

        Fractional-packet remainders carry over between milliseconds,
        exactly like Mahimahi's trace semantics.
        """
        lines = []
        carry = 0
        for ms_index, bits in enumerate(self.bits_per_ms, start=1):
            carry += bits
            while carry >= MSS_BITS:
                lines.append(str(ms_index))
                carry -= MSS_BITS
        return lines

    @classmethod
    def from_mahimahi_lines(cls, lines: Iterable[str]) -> \
            "CapacityTrace":
        """Parse the Mahimahi format back into a bits/ms series."""
        timestamps = [int(line) for line in lines
                      if line.strip() and not line.startswith("#")]
        if not timestamps:
            raise ValueError("empty trace")
        if any(t <= 0 for t in timestamps):
            raise ValueError("timestamps must be positive")
        duration_ms = max(timestamps)
        bits = [0] * duration_ms
        for t in timestamps:
            bits[t - 1] += MSS_BITS
        return cls(bits)

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as a Mahimahi-format file."""
        Path(path).write_text("\n".join(self.to_mahimahi_lines()) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CapacityTrace":
        """Read a Mahimahi-format trace file."""
        return cls.from_mahimahi_lines(
            Path(path).read_text().splitlines())


class TraceLink(Receiver):
    """A trace-driven bottleneck link.

    Every millisecond it forwards up to the trace's budget from its
    droptail queue, then propagates for ``delay_us`` — the standard
    Mahimahi link model, usable as the ``egress`` of any
    :class:`~repro.baselines.base.Sender`.
    """

    def __init__(self, sim: Simulator, sink: Receiver,
                 trace: CapacityTrace, delay_us: int = 0,
                 queue_packets: int = 1000, name: str = "trace") -> None:
        if queue_packets < 1:
            raise ValueError("queue must hold at least one packet")
        if delay_us < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.sink = sink
        self.trace = trace
        self.delay_us = delay_us
        self.queue_packets = queue_packets
        self.name = name
        self._queue: deque[list] = deque()  # [packet, remaining_bits]
        self._subframe = 0
        self._carry = 0
        self.forwarded = 0
        self.dropped = 0
        self._started = False

    def start(self) -> None:
        """Begin the per-millisecond service loop."""
        if self._started:
            raise RuntimeError("trace link already started")
        self._started = True
        self.sim.schedule(0, self._tick)

    def receive(self, packet: Packet) -> None:
        """Enqueue a packet (droptail beyond the queue limit)."""
        if len(self._queue) >= self.queue_packets:
            self.dropped += 1
            return
        packet.hops += 1
        self._queue.append([packet, packet.size_bits])

    def _tick(self) -> None:
        budget = self.trace.budget(self._subframe) + self._carry
        self._subframe += 1
        while self._queue and budget > 0:
            entry = self._queue[0]
            packet, remaining = entry
            take = min(remaining, budget)
            entry[1] -= take
            budget -= take
            if entry[1] == 0:
                self._queue.popleft()
                self.forwarded += 1
                self.sim.schedule(self.delay_us, self.sink.receive,
                                  packet)
        # Unused budget is lost (a radio cannot bank airtime), but a
        # partially-served head packet keeps its progress.
        self._carry = 0
        self.sim.schedule(SUBFRAME_US, self._tick)
