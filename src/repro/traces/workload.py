"""Synthetic demand sources for background/competing users.

These implement :class:`repro.cell.DemandSource` — per-subframe bit
arrivals into a base-station queue — and model the paper's two kinds of
competition: *controlled* (a fixed-rate flow switched on and off on a
schedule, §6.3.3) and *uncontrolled* (random background users of a busy
cell, §6.3.1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..cell.basestation import DemandSource
from ..net.units import US_PER_S


class CbrDemand(DemandSource):
    """Constant bit-rate demand (a fixed offered load, e.g. Figure 2)."""

    def __init__(self, rate_bps: float) -> None:
        if rate_bps < 0:
            raise ValueError("rate must be non-negative")
        self.rate_bps = rate_bps
        self._carry = 0.0

    def bits(self, subframe: int) -> int:
        self._carry += self.rate_bps / 1_000.0  # bits per 1 ms subframe
        whole = int(self._carry)
        self._carry -= whole
        return whole


class ScheduledDemand(DemandSource):
    """Piecewise-constant offered load from a ``(start_s, rate_bps)`` list.

    The schedule must be sorted by start time; the rate before the first
    entry is zero.  Used for Figure 2's 40→6 Mbit/s step and the on-off
    competitor of Figures 18-19.
    """

    def __init__(self, schedule: Sequence[tuple[float, float]]) -> None:
        if not schedule:
            raise ValueError("schedule must be non-empty")
        starts = [s for s, _ in schedule]
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ValueError("schedule times must be strictly increasing")
        self._starts_subframes = [int(s * 1_000) for s in starts]
        self._rates = [r for _, r in schedule]
        self._carry = 0.0

    @classmethod
    def on_off(cls, period_s: float, on_s: float, rate_bps: float,
               total_s: float, offset_s: float = 0.0) -> "ScheduledDemand":
        """Periodic on-off load (the §6.3.3 controlled competitor)."""
        if on_s <= 0 or period_s <= on_s:
            raise ValueError("need 0 < on_s < period_s")
        schedule = []
        t = offset_s
        while t < total_s:
            schedule.append((t, rate_bps))
            schedule.append((t + on_s, 0.0))
            t += period_s
        return cls(schedule)

    def rate_at(self, subframe: int) -> float:
        rate = 0.0
        for start, value in zip(self._starts_subframes, self._rates):
            if subframe >= start:
                rate = value
            else:
                break
        return rate

    def bits(self, subframe: int) -> int:
        self._carry += self.rate_at(subframe) / 1_000.0
        whole = int(self._carry)
        self._carry -= whole
        return whole


class OnOffRandomDemand(DemandSource):
    """Random on-off background user (uncontrolled busy-cell traffic).

    Exponentially distributed on/off durations; each on-period draws a
    fresh rate uniformly from ``rate_range_bps``.
    """

    def __init__(self, mean_on_s: float = 2.0, mean_off_s: float = 4.0,
                 rate_range_bps: tuple[float, float] = (2e6, 12e6),
                 seed: int = 0) -> None:
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("durations must be positive")
        lo, hi = rate_range_bps
        if not 0 <= lo <= hi:
            raise ValueError("invalid rate range")
        self._rng = np.random.default_rng(seed)
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.rate_range_bps = rate_range_bps
        self._on = self._rng.random() < (mean_on_s
                                         / (mean_on_s + mean_off_s))
        self._phase_left_subframes = self._draw_duration()
        self._rate_bps = self._draw_rate() if self._on else 0.0
        self._carry = 0.0

    def _draw_duration(self) -> int:
        mean = self.mean_on_s if self._on else self.mean_off_s
        return max(1, int(self._rng.exponential(mean) * 1_000))

    def _draw_rate(self) -> float:
        lo, hi = self.rate_range_bps
        return float(self._rng.uniform(lo, hi))

    def bits(self, subframe: int) -> int:
        if self._phase_left_subframes <= 0:
            self._on = not self._on
            self._phase_left_subframes = self._draw_duration()
            self._rate_bps = self._draw_rate() if self._on else 0.0
        self._phase_left_subframes -= 1
        self._carry += self._rate_bps / 1_000.0
        whole = int(self._carry)
        self._carry -= whole
        return whole
