"""CQI / MCS tables and physical-rate computation.

The paper's monitor extracts, from each decoded control message, the
modulation-and-coding scheme (MCS) and number of spatial streams, and
turns them into a wireless physical data rate ``Rw`` in *bits per PRB*
(Eqn. 2).  This module provides that mapping.

The CQI table follows 3GPP TS 36.213 Table 7.2.3-1 (extended with the
256-QAM entries of Table 7.2.3-2) — spectral efficiency in bits per
resource element.  One PRB pair carries 168 resource elements per
subframe of which roughly 120 carry data after reference-signal and
control overhead; with 2 spatial streams and 256-QAM this yields the
~1.8 Mbit/s/PRB maximum rate the paper reports in Figure 11(b).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

#: Resource elements per PRB pair per subframe (12 subcarriers × 14 syms).
RE_PER_PRB = 168
#: Fraction of REs usable for data after pilots/PDCCH overhead.
DATA_RE_FRACTION = 0.72
#: Data-carrying resource elements per PRB pair.
DATA_RE_PER_PRB = int(RE_PER_PRB * DATA_RE_FRACTION)  # = 120


@dataclass(frozen=True)
class McsEntry:
    """One modulation-and-coding-scheme table row."""

    index: int
    modulation: str
    bits_per_symbol: int
    code_rate: float

    @property
    def efficiency(self) -> float:
        """Information bits per resource element."""
        return self.bits_per_symbol * self.code_rate


#: CQI-indexed MCS table.  Index 0 means out-of-range (no transmission).
#: Entries 1-15 follow TS 36.213 Table 7.2.3-1; 16-17 extend to 256-QAM.
MCS_TABLE: tuple[McsEntry, ...] = (
    McsEntry(0, "none", 0, 0.0),
    McsEntry(1, "QPSK", 2, 0.0762),
    McsEntry(2, "QPSK", 2, 0.1172),
    McsEntry(3, "QPSK", 2, 0.1885),
    McsEntry(4, "QPSK", 2, 0.3008),
    McsEntry(5, "QPSK", 2, 0.4385),
    McsEntry(6, "QPSK", 2, 0.5879),
    McsEntry(7, "16QAM", 4, 0.3691),
    McsEntry(8, "16QAM", 4, 0.4785),
    McsEntry(9, "16QAM", 4, 0.6016),
    McsEntry(10, "64QAM", 6, 0.4551),
    McsEntry(11, "64QAM", 6, 0.5537),
    McsEntry(12, "64QAM", 6, 0.6504),
    McsEntry(13, "64QAM", 6, 0.7539),
    McsEntry(14, "64QAM", 6, 0.8525),
    McsEntry(15, "64QAM", 6, 0.9258),
    McsEntry(16, "256QAM", 8, 0.8408),
    McsEntry(17, "256QAM", 8, 0.9258),
)

MAX_MCS_INDEX = len(MCS_TABLE) - 1

#: Minimum SINR (dB) at which each CQI/MCS index becomes usable.  Derived
#: from the standard ~2 dB-per-CQI-step rule of thumb anchored at
#: QPSK 1/13 ≈ -6 dB and 256-QAM 0.93 ≈ 28 dB.
_SINR_THRESHOLDS_DB: tuple[float, ...] = (
    -6.0, -4.0, -2.0, 0.0, 2.0, 4.0, 6.0, 8.0, 10.0,
    12.0, 14.0, 16.0, 18.0, 20.0, 22.0, 25.0, 28.0,
)


#: numpy view of the thresholds for the block (searchsorted) path.
_SINR_THRESHOLDS_ARR = np.asarray(_SINR_THRESHOLDS_DB, dtype=np.float64)

#: Single-stream bits per PRB indexed by MCS — the LUT both the scalar
#: and the block rate paths read (``int(efficiency · DATA_RE_PER_PRB)``
#: precomputed per table row).
_BITS_PER_PRB_BY_MCS: tuple[int, ...] = tuple(
    int(entry.efficiency * DATA_RE_PER_PRB) for entry in MCS_TABLE)
_BITS_PER_PRB_ARR = np.asarray(_BITS_PER_PRB_BY_MCS, dtype=np.int64)


def sinr_to_mcs(sinr_db: float, max_index: int = MAX_MCS_INDEX) -> int:
    """Highest MCS index supported at ``sinr_db`` (0 if below range).

    ``max_index`` caps the result, modelling UE category limits (e.g. a
    phone without 256-QAM support passes ``max_index=15``).
    """
    if max_index < 1 or max_index > MAX_MCS_INDEX:
        raise ValueError(f"max_index out of range: {max_index}")
    index = bisect.bisect_right(_SINR_THRESHOLDS_DB, sinr_db)
    return min(index, max_index)


def sinr_to_mcs_block(sinr_db: np.ndarray,
                      max_index: int = MAX_MCS_INDEX) -> np.ndarray:
    """Vectorized :func:`sinr_to_mcs` over an SINR trajectory.

    ``np.searchsorted(side="right")`` is element-for-element identical
    to ``bisect.bisect_right``, so the returned indices match n scalar
    calls exactly.
    """
    if max_index < 1 or max_index > MAX_MCS_INDEX:
        raise ValueError(f"max_index out of range: {max_index}")
    index = np.searchsorted(_SINR_THRESHOLDS_ARR, sinr_db, side="right")
    return np.minimum(index, max_index)


def bits_per_prb(mcs_index: int, spatial_streams: int = 1) -> int:
    """Transport bits carried by one PRB pair in one subframe.

    This is the per-PRB physical rate ``Rw`` of Eqns. 2-3 (units: bits
    per PRB per subframe; divide by 1 ms for bits/s).
    """
    if not 0 <= mcs_index <= MAX_MCS_INDEX:
        raise ValueError(f"MCS index out of range: {mcs_index}")
    if not 1 <= spatial_streams <= 4:
        raise ValueError(f"spatial streams out of range: {spatial_streams}")
    return _BITS_PER_PRB_BY_MCS[mcs_index] * spatial_streams


def bits_per_prb_block(mcs_index: np.ndarray,
                       spatial_streams: np.ndarray | int) -> np.ndarray:
    """Vectorized :func:`bits_per_prb` (fancy-indexed LUT gather).

    ``spatial_streams`` may be a scalar or a per-element array; values
    are assumed already validated (they come from
    :func:`sinr_to_mcs_block` and the UE category).
    """
    return _BITS_PER_PRB_ARR[mcs_index] * spatial_streams


def max_bits_per_prb(spatial_streams: int = 2) -> int:
    """Peak per-PRB rate (the paper's 1.8 Mbit/s/PRB for 2 streams)."""
    return bits_per_prb(MAX_MCS_INDEX, spatial_streams)


def transport_block_bits(n_prbs: int, mcs_index: int,
                         spatial_streams: int = 1) -> int:
    """Transport block size for an allocation of ``n_prbs`` PRBs."""
    if n_prbs < 0:
        raise ValueError("PRB count must be non-negative")
    return n_prbs * bits_per_prb(mcs_index, spatial_streams)
