"""LTE/5G physical-layer substrate.

Everything the paper's §3 primer describes: the PRB grid, CQI/MCS
tables, SINR channel models, the transport-block error model of
Figure 6, HARQ retransmission timing with the receiver reordering
buffer of Figure 3, downlink control messages (DCI) and component-
carrier descriptions for carrier aggregation.
"""

from .carrier import (
    NR_PRBS_30KHZ,
    AggregationState,
    CarrierConfig,
    nr_carrier,
)
from .channel import (
    NOISE_FLOOR_DBM,
    ChannelModel,
    GaussMarkovChannel,
    StaticChannel,
    TraceChannel,
    rssi_to_sinr_db,
)
from .dci import DciMessage, SubframeRecord
from .error import (
    HARQ_COMBINING_GAIN,
    block_error_rate,
    retransmission_ber,
    sinr_to_ber,
)
from .harq import (
    MAX_RETRANSMISSIONS,
    RETX_DELAY_SUBFRAMES,
    HarqProcess,
    ReorderingBuffer,
)
from .mcs import (
    DATA_RE_PER_PRB,
    MAX_MCS_INDEX,
    MCS_TABLE,
    McsEntry,
    bits_per_prb,
    max_bits_per_prb,
    sinr_to_mcs,
    transport_block_bits,
)
from .prb import (
    PRB_BANDWIDTH_HZ,
    PRBS_PER_BANDWIDTH_MHZ,
    SUBFRAME_US,
    prbs_for_bandwidth,
)

__all__ = [
    "AggregationState", "CarrierConfig", "ChannelModel", "DATA_RE_PER_PRB",
    "DciMessage", "GaussMarkovChannel", "HARQ_COMBINING_GAIN", "HarqProcess",
    "MAX_MCS_INDEX", "MAX_RETRANSMISSIONS", "MCS_TABLE", "McsEntry",
    "NR_PRBS_30KHZ", "nr_carrier",
    "NOISE_FLOOR_DBM", "PRBS_PER_BANDWIDTH_MHZ", "PRB_BANDWIDTH_HZ",
    "RETX_DELAY_SUBFRAMES", "ReorderingBuffer", "SUBFRAME_US",
    "StaticChannel", "SubframeRecord", "TraceChannel", "bits_per_prb",
    "block_error_rate", "max_bits_per_prb", "prbs_for_bandwidth",
    "retransmission_ber", "rssi_to_sinr_db", "sinr_to_ber", "sinr_to_mcs",
    "transport_block_bits",
]
