"""Transport-block error model (§4.2.1, Figure 6 of the paper).

The paper models transport-block errors from an i.i.d. per-bit error
probability ``p``:  ``TBLER(L) = 1 - (1 - p)^L`` for a block of ``L``
bits, and reports a good fit against measurements with ``p`` between
1e-6 (strong signal, −98 dBm) and 5e-6 (weak signal, −113 dBm).

We calibrate a log-linear SINR→BER mapping to reproduce those anchor
points: −98 dBm ≈ 13 dB SINR → 1e-6, −113 dBm ≈ −2 dB SINR → 5e-6
(see :data:`repro.phy.channel.NOISE_FLOOR_DBM`).
"""

from __future__ import annotations

import math

import numpy as np

#: BER calibration anchors: (SINR dB, BER).
_ANCHOR_HIGH = (13.0, 1e-6)
_ANCHOR_LOW = (-2.0, 5e-6)
#: log10(BER) slope per dB of SINR, from the two anchors.
_SLOPE = ((math.log10(_ANCHOR_HIGH[1]) - math.log10(_ANCHOR_LOW[1]))
          / (_ANCHOR_HIGH[0] - _ANCHOR_LOW[0]))
_INTERCEPT = math.log10(_ANCHOR_LOW[1]) - _SLOPE * _ANCHOR_LOW[0]

#: Clamp bounds keeping the model in the regime the paper measured.
MIN_BER = 1e-8
MAX_BER = 1e-4

#: Per-retransmission BER reduction from HARQ chase combining.
HARQ_COMBINING_GAIN = 0.1


def sinr_to_ber(sinr_db: float) -> float:
    """Residual post-FEC bit error rate at a given SINR."""
    ber = 10.0 ** (_INTERCEPT + _SLOPE * sinr_db)
    return min(MAX_BER, max(MIN_BER, ber))


def sinr_to_ber_block(sinr_db: np.ndarray) -> np.ndarray:
    """Vectorized :func:`sinr_to_ber` over an SINR trajectory.

    Same log-linear map and clamp.  ``np.float_power`` (not ``**``) is
    deliberate: the ``**`` array ufunc takes a SIMD path whose results
    differ from libm's ``pow`` by 1 ulp on some inputs, while
    ``float_power`` resolves to the same libm call as the scalar
    ``10.0 ** x`` — the equivalence tests assert bitwise identity.
    """
    exponent = _INTERCEPT + _SLOPE * np.asarray(sinr_db, dtype=np.float64)
    return np.clip(np.float_power(10.0, exponent), MIN_BER, MAX_BER)


def block_error_rate(ber: float, tb_bits: int) -> float:
    """Transport-block error rate ``1 - (1-p)^L`` (paper Eqn. 5 term).

    Uses ``expm1``/``log1p`` for numerical accuracy at the small ``p``
    and large ``L`` this model lives in.
    """
    if not 0.0 <= ber <= 1.0:
        raise ValueError(f"BER out of range: {ber}")
    if tb_bits < 0:
        raise ValueError("TB size must be non-negative")
    if tb_bits == 0 or ber == 0.0:
        return 0.0
    return -math.expm1(tb_bits * math.log1p(-ber))


def retransmission_ber(ber: float, attempt: int,
                       combining_gain: float = HARQ_COMBINING_GAIN) -> float:
    """Effective BER on the ``attempt``-th HARQ try (0 = first Tx).

    Each retransmission benefits from chase combining with the earlier
    (failed) copies, modelled as a constant multiplicative BER gain.
    """
    if attempt < 0:
        raise ValueError("attempt must be non-negative")
    return ber * (combining_gain ** attempt)
