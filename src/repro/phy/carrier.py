"""Component carriers and per-user carrier-aggregation state (§3).

By default a user is served by its *primary* component carrier (CC).
When a user's traffic exceeds what the serving cell(s) can carry, the
network activates the next *secondary* CC from the user's configured
aggregation list, and deactivates it again once the extra capacity goes
unused (Figure 2).  The activation policy itself lives in
:class:`repro.cell.ca_manager.CarrierAggregationManager`; this module
holds the static carrier descriptions and the per-user activation state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .prb import prbs_for_bandwidth


@dataclass(frozen=True)
class CarrierConfig:
    """Static description of one component carrier (one cell).

    ``prb_override`` sets the PRB count directly for non-LTE grids —
    5G NR carriers have their own bandwidth/SCS tables (e.g. a 100 MHz
    NR carrier at 30 kHz subcarrier spacing exposes 273 PRBs).  Use
    :func:`nr_carrier` for the common NR configurations.
    """

    cell_id: int
    bandwidth_mhz: float = 20.0
    frequency_ghz: float = 1.94
    prb_override: int = 0

    @property
    def total_prbs(self) -> int:
        """PRBs available per subframe on this carrier."""
        if self.prb_override:
            return self.prb_override
        return prbs_for_bandwidth(self.bandwidth_mhz)


#: 5G NR FR1 bandwidth (MHz) → PRB count at 30 kHz subcarrier spacing
#: (3GPP TS 38.101-1 Table 5.3.2-1).
NR_PRBS_30KHZ = {
    20.0: 51,
    40.0: 106,
    50.0: 133,
    60.0: 162,
    80.0: 217,
    100.0: 273,
}


def nr_carrier(cell_id: int, bandwidth_mhz: float = 100.0,
               frequency_ghz: float = 3.5) -> CarrierConfig:
    """A 5G NR FR1 component carrier (30 kHz SCS).

    The scheduler still works on 1 ms intervals — for 30 kHz SCS that
    aggregates two 0.5 ms slots per decision, which leaves per-PRB-pair
    rates identical and only coarsens scheduling granularity slightly.
    """
    try:
        prbs = NR_PRBS_30KHZ[float(bandwidth_mhz)]
    except KeyError:
        valid = sorted(NR_PRBS_30KHZ)
        raise ValueError(
            f"non-standard NR bandwidth {bandwidth_mhz} MHz; "
            f"expected one of {valid}") from None
    return CarrierConfig(cell_id=cell_id, bandwidth_mhz=bandwidth_mhz,
                         frequency_ghz=frequency_ghz,
                         prb_override=prbs)


@dataclass
class AggregationState:
    """One user's carrier-aggregation state.

    ``configured`` is the ordered list of cell ids the network may
    aggregate for this user (primary first); ``active_count`` says how
    many of them are currently activated (always ≥ 1: the primary cell
    can never be deactivated).
    """

    configured: list[int] = field(default_factory=list)
    active_count: int = 1

    def __post_init__(self) -> None:
        if not self.configured:
            raise ValueError("a user needs at least a primary cell")
        if not 1 <= self.active_count <= len(self.configured):
            raise ValueError("active_count out of range")

    @property
    def primary_cell(self) -> int:
        return self.configured[0]

    @property
    def active_cells(self) -> list[int]:
        """Cell ids currently serving this user, primary first."""
        return self.configured[:self.active_count]

    @property
    def can_activate(self) -> bool:
        return self.active_count < len(self.configured)

    @property
    def can_deactivate(self) -> bool:
        return self.active_count > 1

    def activate_next(self) -> int:
        """Activate the next configured cell; returns its id."""
        if not self.can_activate:
            raise ValueError("all configured cells already active")
        self.active_count += 1
        return self.configured[self.active_count - 1]

    def deactivate_last(self) -> int:
        """Deactivate the most recently activated cell; returns its id."""
        if not self.can_deactivate:
            raise ValueError("primary cell cannot be deactivated")
        cell = self.configured[self.active_count - 1]
        self.active_count -= 1
        return cell
