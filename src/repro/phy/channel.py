"""Wireless channel models.

The paper's capacity fluctuations come from three sources (§1): shared-
medium competition, carrier (de)activation, and wireless channel quality
varying at the channel coherence time.  The competition and carrier
dynamics are modelled by the MAC layer (:mod:`repro.cell`); this module
models the third source — a per-user SINR process sampled once per
subframe, from which MCS, physical rate and bit error rate derive.

Models:

* :class:`StaticChannel` — constant SINR plus optional fast-fading
  jitter.  Stationary-location experiments (§6.3.1).
* :class:`GaussMarkovChannel` — AR(1) shadowing around a mean SINR, the
  usual Gauss-Markov mobility-fading abstraction.
* :class:`TraceChannel` — piecewise-linear RSSI trajectory, used for the
  scripted mobility experiments of Figures 16-17.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence

import numpy as np

from ..net.units import SUBFRAME_US

#: Thermal noise floor plus typical interference margin for a 20 MHz
#: carrier, dBm.  RSSI −85 dBm maps to ≈26 dB SINR and −113 dBm to ≈−2 dB,
#: spanning the paper's measurement locations.
NOISE_FLOOR_DBM = -111.0


def rssi_to_sinr_db(rssi_dbm: float,
                    noise_floor_dbm: float = NOISE_FLOOR_DBM) -> float:
    """Convert a received signal strength to an SINR estimate."""
    return rssi_dbm - noise_floor_dbm


class ChannelModel:
    """Base class: a subframe-sampled SINR process."""

    def sinr_db(self, now_us: int) -> float:  # pragma: no cover
        """SINR (dB) seen by the user at simulation time ``now_us``."""
        raise NotImplementedError

    def sinr_block(self, start_us: int, n_subframes: int) -> np.ndarray:
        """SINR for ``n_subframes`` consecutive subframes, as one array.

        Equivalent — including the random stream consumed — to calling
        :meth:`sinr_db` once per subframe at ``start_us``,
        ``start_us + SUBFRAME_US``, …; the batched engine relies on the
        bitwise identity of the two paths.  Subclasses override this
        with a vectorized implementation; the base class falls back to
        the scalar calls so custom channel models stay correct.
        """
        return np.array([self.sinr_db(start_us + k * SUBFRAME_US)
                         for k in range(n_subframes)], dtype=np.float64)

    def state_checkpoint(self) -> object:
        """Opaque snapshot of the sampling state (RNG position etc.).

        Together with :meth:`state_restore` this lets a block-sampling
        caller *rewind* draws it speculated past — e.g. when a channel
        block cache is released half-consumed — leaving the model
        exactly where per-subframe sampling would have left it.  Only
        models declared block-safe by the engine need to implement it.
        """
        raise NotImplementedError

    def state_restore(self, state: object) -> None:
        """Restore a snapshot taken by :meth:`state_checkpoint`."""
        raise NotImplementedError


class StaticChannel(ChannelModel):
    """Constant mean SINR with i.i.d. Gaussian fast-fading jitter."""

    def __init__(self, mean_sinr_db: float, fading_std_db: float = 0.0,
                 seed: int = 0) -> None:
        if fading_std_db < 0:
            raise ValueError("fading std must be non-negative")
        self.mean_sinr_db = mean_sinr_db
        self.fading_std_db = fading_std_db
        self._rng = np.random.default_rng(seed)

    def sinr_db(self, now_us: int) -> float:
        if self.fading_std_db == 0.0:
            return self.mean_sinr_db
        return self.mean_sinr_db + self._rng.normal(0.0, self.fading_std_db)

    def sinr_block(self, start_us: int, n_subframes: int) -> np.ndarray:
        # One block draw consumes the generator stream identically to n
        # scalar draws (numpy fills arrays with sequential variates).
        if self.fading_std_db == 0.0:
            return np.full(n_subframes, self.mean_sinr_db)
        return self.mean_sinr_db + self._rng.normal(
            0.0, self.fading_std_db, n_subframes)

    def state_checkpoint(self) -> object:
        return self._rng.bit_generator.state

    def state_restore(self, state: object) -> None:
        self._rng.bit_generator.state = state


class GaussMarkovChannel(ChannelModel):
    """AR(1) shadowing process: ``s[k+1] = a·s[k] + (1-a)·noise``.

    ``coherence_us`` controls how often the shadowing state advances —
    the wireless channel coherence time of §1, which can be milliseconds
    under vehicular mobility.
    """

    def __init__(self, mean_sinr_db: float, std_db: float = 3.0,
                 memory: float = 0.95, coherence_us: int = 10_000,
                 seed: int = 0) -> None:
        if not 0.0 <= memory < 1.0:
            raise ValueError("memory must be in [0, 1)")
        if coherence_us <= 0:
            raise ValueError("coherence time must be positive")
        self.mean_sinr_db = mean_sinr_db
        self.std_db = std_db
        self.memory = memory
        self.coherence_us = coherence_us
        self._rng = np.random.default_rng(seed)
        self._state = 0.0
        self._last_step = -1

    def sinr_db(self, now_us: int) -> float:
        step = now_us // self.coherence_us
        while self._last_step < step:
            innovation = self._rng.normal(0.0, self.std_db)
            self._state = (self.memory * self._state
                           + math.sqrt(1 - self.memory ** 2) * innovation)
            self._last_step += 1
        return self.mean_sinr_db + self._state

    def sinr_block(self, start_us: int, n_subframes: int) -> np.ndarray:
        if n_subframes == 0:
            return np.empty(0, dtype=np.float64)
        steps = ((start_us + SUBFRAME_US
                  * np.arange(n_subframes, dtype=np.int64))
                 // self.coherence_us)
        last = self._last_step
        final = int(steps[-1])
        if final <= last:
            return np.full(n_subframes, self.mean_sinr_db + self._state)
        # Draw exactly the innovations the scalar while-loop would, in
        # one block, then run the (inherently sequential) AR(1)
        # recurrence over them — the state trajectory per coherence
        # step, from which every subframe's value is a gather.
        innovations = self._rng.normal(0.0, self.std_db, final - last)
        scale = math.sqrt(1 - self.memory ** 2)
        memory = self.memory
        state = self._state
        states = np.empty(final - last + 1, dtype=np.float64)
        states[0] = state
        for i, innovation in enumerate(innovations):
            state = memory * state + scale * innovation
            states[i + 1] = state
        self._state = state
        self._last_step = final
        return self.mean_sinr_db + states[np.maximum(steps - last, 0)]

    def state_checkpoint(self) -> object:
        return (self._rng.bit_generator.state, self._state, self._last_step)

    def state_restore(self, state: object) -> None:
        rng_state, ar_state, last_step = state
        self._rng.bit_generator.state = rng_state
        self._state = ar_state
        self._last_step = last_step


class TraceChannel(ChannelModel):
    """Piecewise-linear RSSI trajectory (mobility experiments).

    ``waypoints`` is a sequence of ``(time_us, rssi_dbm)`` pairs sorted
    by time; RSSI is linearly interpolated between waypoints and held
    constant beyond the ends.  Optional fading jitter rides on top.
    """

    def __init__(self, waypoints: Sequence[tuple[int, float]],
                 fading_std_db: float = 1.0, seed: int = 0,
                 noise_floor_dbm: float = NOISE_FLOOR_DBM) -> None:
        if len(waypoints) < 1:
            raise ValueError("need at least one waypoint")
        times = [t for t, _ in waypoints]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("waypoint times must be strictly increasing")
        self._times = np.asarray(times, dtype=np.int64)
        self._rssi = np.asarray([r for _, r in waypoints], dtype=np.float64)
        self.fading_std_db = fading_std_db
        self.noise_floor_dbm = noise_floor_dbm
        self._rng = np.random.default_rng(seed)
        # Precomputed per-segment slopes, replicating np.interp's exact
        # arithmetic — slope = Δy/Δx, value = slope·(x-x_lo) + y_lo — so
        # per-call interpolation is one bisect plus one fused multiply-
        # add instead of an np.interp array round-trip.
        rssi = [float(r) for _, r in waypoints]
        self._times_list = times
        self._rssi_list = rssi
        self._slopes_list = [
            (rssi[j + 1] - rssi[j]) / (times[j + 1] - times[j])
            for j in range(len(times) - 1)]
        self._slopes = np.asarray(self._slopes_list, dtype=np.float64)

    def rssi_dbm(self, now_us: int) -> float:
        """Interpolated RSSI along the trajectory."""
        times = self._times_list
        if now_us <= times[0]:
            return self._rssi_list[0]
        if now_us >= times[-1]:
            return self._rssi_list[-1]
        j = bisect.bisect_right(times, now_us) - 1
        return (self._slopes_list[j] * (now_us - times[j])
                + self._rssi_list[j])

    def _rssi_block(self, times_us: np.ndarray) -> np.ndarray:
        times, rssi = self._times, self._rssi
        if len(times) == 1:
            return np.full(len(times_us), rssi[0])
        j = np.clip(np.searchsorted(times, times_us, side="right") - 1,
                    0, len(times) - 2)
        out = self._slopes[j] * (times_us - times[j]) + rssi[j]
        out[times_us <= times[0]] = rssi[0]
        out[times_us >= times[-1]] = rssi[-1]
        return out

    def sinr_db(self, now_us: int) -> float:
        sinr = rssi_to_sinr_db(self.rssi_dbm(now_us), self.noise_floor_dbm)
        if self.fading_std_db > 0:
            sinr += self._rng.normal(0.0, self.fading_std_db)
        return sinr

    def sinr_block(self, start_us: int, n_subframes: int) -> np.ndarray:
        times_us = (start_us
                    + SUBFRAME_US * np.arange(n_subframes, dtype=np.int64))
        sinr = self._rssi_block(times_us) - self.noise_floor_dbm
        if self.fading_std_db > 0:
            sinr += self._rng.normal(0.0, self.fading_std_db, n_subframes)
        return sinr

    def state_checkpoint(self) -> object:
        return self._rng.bit_generator.state

    def state_restore(self, state: object) -> None:
        self._rng.bit_generator.state = state
