"""Wireless channel models.

The paper's capacity fluctuations come from three sources (§1): shared-
medium competition, carrier (de)activation, and wireless channel quality
varying at the channel coherence time.  The competition and carrier
dynamics are modelled by the MAC layer (:mod:`repro.cell`); this module
models the third source — a per-user SINR process sampled once per
subframe, from which MCS, physical rate and bit error rate derive.

Models:

* :class:`StaticChannel` — constant SINR plus optional fast-fading
  jitter.  Stationary-location experiments (§6.3.1).
* :class:`GaussMarkovChannel` — AR(1) shadowing around a mean SINR, the
  usual Gauss-Markov mobility-fading abstraction.
* :class:`TraceChannel` — piecewise-linear RSSI trajectory, used for the
  scripted mobility experiments of Figures 16-17.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

#: Thermal noise floor plus typical interference margin for a 20 MHz
#: carrier, dBm.  RSSI −85 dBm maps to ≈26 dB SINR and −113 dBm to ≈−2 dB,
#: spanning the paper's measurement locations.
NOISE_FLOOR_DBM = -111.0


def rssi_to_sinr_db(rssi_dbm: float,
                    noise_floor_dbm: float = NOISE_FLOOR_DBM) -> float:
    """Convert a received signal strength to an SINR estimate."""
    return rssi_dbm - noise_floor_dbm


class ChannelModel:
    """Base class: a subframe-sampled SINR process."""

    def sinr_db(self, now_us: int) -> float:  # pragma: no cover
        """SINR (dB) seen by the user at simulation time ``now_us``."""
        raise NotImplementedError


class StaticChannel(ChannelModel):
    """Constant mean SINR with i.i.d. Gaussian fast-fading jitter."""

    def __init__(self, mean_sinr_db: float, fading_std_db: float = 0.0,
                 seed: int = 0) -> None:
        if fading_std_db < 0:
            raise ValueError("fading std must be non-negative")
        self.mean_sinr_db = mean_sinr_db
        self.fading_std_db = fading_std_db
        self._rng = np.random.default_rng(seed)

    def sinr_db(self, now_us: int) -> float:
        if self.fading_std_db == 0.0:
            return self.mean_sinr_db
        return self.mean_sinr_db + self._rng.normal(0.0, self.fading_std_db)


class GaussMarkovChannel(ChannelModel):
    """AR(1) shadowing process: ``s[k+1] = a·s[k] + (1-a)·noise``.

    ``coherence_us`` controls how often the shadowing state advances —
    the wireless channel coherence time of §1, which can be milliseconds
    under vehicular mobility.
    """

    def __init__(self, mean_sinr_db: float, std_db: float = 3.0,
                 memory: float = 0.95, coherence_us: int = 10_000,
                 seed: int = 0) -> None:
        if not 0.0 <= memory < 1.0:
            raise ValueError("memory must be in [0, 1)")
        if coherence_us <= 0:
            raise ValueError("coherence time must be positive")
        self.mean_sinr_db = mean_sinr_db
        self.std_db = std_db
        self.memory = memory
        self.coherence_us = coherence_us
        self._rng = np.random.default_rng(seed)
        self._state = 0.0
        self._last_step = -1

    def sinr_db(self, now_us: int) -> float:
        step = now_us // self.coherence_us
        while self._last_step < step:
            innovation = self._rng.normal(0.0, self.std_db)
            self._state = (self.memory * self._state
                           + math.sqrt(1 - self.memory ** 2) * innovation)
            self._last_step += 1
        return self.mean_sinr_db + self._state


class TraceChannel(ChannelModel):
    """Piecewise-linear RSSI trajectory (mobility experiments).

    ``waypoints`` is a sequence of ``(time_us, rssi_dbm)`` pairs sorted
    by time; RSSI is linearly interpolated between waypoints and held
    constant beyond the ends.  Optional fading jitter rides on top.
    """

    def __init__(self, waypoints: Sequence[tuple[int, float]],
                 fading_std_db: float = 1.0, seed: int = 0,
                 noise_floor_dbm: float = NOISE_FLOOR_DBM) -> None:
        if len(waypoints) < 1:
            raise ValueError("need at least one waypoint")
        times = [t for t, _ in waypoints]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("waypoint times must be strictly increasing")
        self._times = np.asarray(times, dtype=np.int64)
        self._rssi = np.asarray([r for _, r in waypoints], dtype=np.float64)
        self.fading_std_db = fading_std_db
        self.noise_floor_dbm = noise_floor_dbm
        self._rng = np.random.default_rng(seed)

    def rssi_dbm(self, now_us: int) -> float:
        """Interpolated RSSI along the trajectory."""
        return float(np.interp(now_us, self._times, self._rssi))

    def sinr_db(self, now_us: int) -> float:
        sinr = rssi_to_sinr_db(self.rssi_dbm(now_us), self.noise_floor_dbm)
        if self.fading_std_db > 0:
            sinr += self._rng.normal(0.0, self.fading_std_db)
        return sinr
