"""Physical resource block (PRB) grid constants (§3 of the paper).

LTE divides the spectrum into 180 kHz chunks and time into 0.5 ms slots;
the smallest allocatable unit is a PRB.  Two slots form a 1 ms subframe
and the PRB allocation of both slots inside one subframe is identical,
so the scheduler in this reproduction works on whole subframes (PRB
pairs), exactly the granularity the paper's control messages describe.
"""

from __future__ import annotations

#: PRB bandwidth in Hz.
PRB_BANDWIDTH_HZ = 180_000
#: Slot duration in microseconds.
SLOT_US = 500
#: Subframe duration in microseconds (two slots).
SUBFRAME_US = 1_000
#: Subframes per LTE radio frame.
SUBFRAMES_PER_FRAME = 10

#: Standard LTE channel bandwidth (MHz) → number of PRBs (3GPP TS 36.101).
PRBS_PER_BANDWIDTH_MHZ = {
    1.4: 6,
    3.0: 15,
    5.0: 25,
    10.0: 50,
    15.0: 75,
    20.0: 100,
}


def prbs_for_bandwidth(bandwidth_mhz: float) -> int:
    """Number of PRBs for a standard LTE channel bandwidth.

    Raises ``ValueError`` for non-standard bandwidths so configuration
    typos fail loudly.
    """
    try:
        return PRBS_PER_BANDWIDTH_MHZ[float(bandwidth_mhz)]
    except KeyError:
        valid = sorted(PRBS_PER_BANDWIDTH_MHZ)
        raise ValueError(
            f"non-standard LTE bandwidth {bandwidth_mhz} MHz; "
            f"expected one of {valid}") from None
