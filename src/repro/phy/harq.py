"""HARQ retransmission constants and the receiver reordering buffer (§3).

The cellular network retransmits an erroneous transport block exactly
eight subframes (8 ms) after the original transmission, at most three
times.  To guarantee in-order delivery the mobile buffers every
correctly received out-of-sequence transport block in a *reordering
buffer* until the erroneous block is finally received (or abandoned),
which is what quantizes one-way delay into 8 ms steps (Figure 8) and
motivates PBE-CC's delay threshold ``Dprop + 3·8 + 3`` ms (§4.2.2).
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

#: Subframes between a failed transmission and its retransmission.
RETX_DELAY_SUBFRAMES = 8
#: Maximum number of retransmissions of one transport block (3GPP TS 36.213).
MAX_RETRANSMISSIONS = 3

T = TypeVar("T")


class ReorderingBuffer(Generic[T]):
    """In-order delivery of transport blocks keyed by sequence number.

    ``insert`` returns the payloads that become deliverable (in order);
    ``abandon`` gives up on a sequence number (HARQ failure after the
    maximum number of retransmissions) and releases anything it was
    blocking.
    """

    def __init__(self) -> None:
        self._expected = 0
        self._held: dict[int, T] = {}
        #: Sequence numbers abandoned before their turn came up.
        self._abandoned: set[int] = set()
        self.max_held = 0

    @property
    def expected_seq(self) -> int:
        """Next sequence number the buffer will release."""
        return self._expected

    @property
    def held(self) -> int:
        """Blocks currently parked waiting for an earlier block."""
        return len(self._held)

    def insert(self, seq: int, payload: T) -> list[T]:
        """Accept block ``seq``; return now-deliverable payloads in order."""
        if seq < self._expected or seq in self._held:
            return []  # duplicate of something already delivered/held
        self._held[seq] = payload
        released = self._drain()
        self.max_held = max(self.max_held, len(self._held))
        return released

    def abandon(self, seq: int) -> list[T]:
        """Give up waiting for block ``seq``; release anything blocked."""
        if seq < self._expected:
            return []
        self._abandoned.add(seq)
        return self._drain()

    def _drain(self) -> list[T]:
        released: list[T] = []
        while True:
            if self._expected in self._held:
                released.append(self._held.pop(self._expected))
                self._expected += 1
            elif self._expected in self._abandoned:
                self._abandoned.discard(self._expected)
                self._expected += 1
            else:
                break
        return released


class HarqProcess(Generic[T]):
    """Sender-side HARQ state for one in-flight transport block."""

    __slots__ = ("seq", "payload", "attempt", "tb_bits")

    def __init__(self, seq: int, payload: T, tb_bits: int) -> None:
        self.seq = seq
        self.payload = payload
        self.tb_bits = tb_bits
        #: 0 on the initial transmission, incremented per retransmission.
        self.attempt = 0

    def can_retransmit(self) -> bool:
        """Whether another retransmission is allowed."""
        return self.attempt < MAX_RETRANSMISSIONS

    def next_attempt(self) -> Optional[int]:
        """Advance to the next attempt; returns its number, or ``None``."""
        if not self.can_retransmit():
            return None
        self.attempt += 1
        return self.attempt
