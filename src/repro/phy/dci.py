"""Downlink control information (DCI) messages and subframe records.

The base station announces every user's bandwidth allocation (number and
position of PRBs), MCS, spatial-stream count and new-data indicator in a
control message on the physical control channel, once per subframe (§3).
PBE-CC's key primitive is that the mobile decodes *all* of these
messages — its own and other users' — to see the cell's full occupancy.

In this reproduction the scheduler emits :class:`DciMessage` objects and
groups them into a per-subframe :class:`SubframeRecord`; the emulated
decoder in :mod:`repro.monitor` consumes that stream, exactly like the
paper's SDR decoder consumes decoded control channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DciMessage:
    """One decoded downlink control message."""

    subframe: int          #: Subframe index (1 per millisecond).
    cell_id: int           #: Component carrier / cell identifier.
    rnti: int              #: Radio network temporary identifier (user id).
    n_prbs: int            #: Number of PRBs allocated this subframe.
    mcs: int               #: Modulation-and-coding-scheme index.
    spatial_streams: int   #: Number of MIMO spatial streams.
    tbs_bits: int          #: Transport block size, bits.
    new_data: bool = True  #: New-data indicator (False = retransmission).
    is_control: bool = False  #: Parameter-update (control-plane) traffic.

    def __post_init__(self) -> None:
        if self.n_prbs < 0:
            raise ValueError("PRB count must be non-negative")
        if self.tbs_bits < 0:
            raise ValueError("TBS must be non-negative")


@dataclass
class SubframeRecord:
    """Everything decoded from one cell's control channel in one subframe."""

    subframe: int
    cell_id: int
    total_prbs: int
    messages: list[DciMessage] = field(default_factory=list)

    @property
    def allocated_prbs(self) -> int:
        """PRBs granted to any user this subframe."""
        return sum(m.n_prbs for m in self.messages)

    @property
    def idle_prbs(self) -> int:
        """PRBs left unallocated this subframe (Eqn. 4 numerator term)."""
        idle = self.total_prbs - self.allocated_prbs
        if idle < 0:
            raise ValueError(
                f"over-allocated subframe {self.subframe} on cell "
                f"{self.cell_id}: {self.allocated_prbs}/{self.total_prbs}")
        return idle

    def prbs_for(self, rnti: int) -> int:
        """PRBs allocated to one user this subframe."""
        return sum(m.n_prbs for m in self.messages if m.rnti == rnti)

    def active_rntis(self) -> set[int]:
        """Users that received any allocation this subframe."""
        return {m.rnti for m in self.messages if m.n_prbs > 0}


class SubframeBatch:
    """Columnar (struct-of-arrays) block of one cell's decoded subframes.

    The scalar pipeline hands one :class:`SubframeRecord` — a list of
    :class:`DciMessage` objects — per cell per subframe through a chain
    of Python callbacks.  The batched pipeline instead accumulates the
    same information as parallel plain-``int`` columns and lets the
    consumers (:mod:`repro.monitor`) fold whole blocks at once, without
    per-record dispatch or per-message attribute access.

    Layout: ``subframes[k]`` / ``msg_counts[k]`` describe row ``k``; its
    messages occupy the next ``msg_counts[k]`` entries of the flat
    message columns (``rnti``, ``prbs``, ``mcs``, ``streams``, ``ndi``,
    ``tbs_bits``, ``is_control``), in decode order.  A batch holds
    whatever was appended and carries no alignment promises of its own
    — consumers check what they need.
    """

    __slots__ = ("cell_id", "total_prbs", "subframes", "msg_counts",
                 "rnti", "prbs", "mcs", "streams", "ndi", "tbs_bits",
                 "is_control", "n_messages")

    def __init__(self, cell_id: int, total_prbs: int) -> None:
        self.cell_id = cell_id
        self.total_prbs = total_prbs
        self.subframes: list[int] = []
        self.msg_counts: list[int] = []
        self.rnti: list[int] = []
        self.prbs: list[int] = []
        self.mcs: list[int] = []
        self.streams: list[int] = []
        self.ndi: list[bool] = []
        self.tbs_bits: list[int] = []
        self.is_control: list[bool] = []
        self.n_messages = 0

    def __len__(self) -> int:
        return len(self.subframes)

    def append_record(self, record: SubframeRecord) -> None:
        """Fold one scalar record into the columns."""
        self.subframes.append(record.subframe)
        messages = record.messages
        self.msg_counts.append(len(messages))
        self.n_messages += len(messages)
        rnti, prbs, mcs = self.rnti, self.prbs, self.mcs
        streams, ndi = self.streams, self.ndi
        tbs, ctrl = self.tbs_bits, self.is_control
        for m in messages:
            rnti.append(m.rnti)
            prbs.append(m.n_prbs)
            mcs.append(m.mcs)
            streams.append(m.spatial_streams)
            ndi.append(m.new_data)
            tbs.append(m.tbs_bits)
            ctrl.append(m.is_control)

    def clear(self) -> None:
        """Reset to empty (buffers are reused between blocks)."""
        self.subframes.clear()
        self.msg_counts.clear()
        self.rnti.clear()
        self.prbs.clear()
        self.mcs.clear()
        self.streams.clear()
        self.ndi.clear()
        self.tbs_bits.clear()
        self.is_control.clear()
        self.n_messages = 0

    def to_records(self) -> list[SubframeRecord]:
        """Materialize scalar records (reference/debug path)."""
        out = []
        base = 0
        for k, subframe in enumerate(self.subframes):
            count = self.msg_counts[k]
            messages = [
                DciMessage(subframe, self.cell_id, self.rnti[i],
                           self.prbs[i], self.mcs[i], self.streams[i],
                           tbs_bits=self.tbs_bits[i], new_data=self.ndi[i],
                           is_control=self.is_control[i])
                for i in range(base, base + count)]
            base += count
            out.append(SubframeRecord(subframe, self.cell_id,
                                      self.total_prbs, messages))
        return out
