"""Downlink control information (DCI) messages and subframe records.

The base station announces every user's bandwidth allocation (number and
position of PRBs), MCS, spatial-stream count and new-data indicator in a
control message on the physical control channel, once per subframe (§3).
PBE-CC's key primitive is that the mobile decodes *all* of these
messages — its own and other users' — to see the cell's full occupancy.

In this reproduction the scheduler emits :class:`DciMessage` objects and
groups them into a per-subframe :class:`SubframeRecord`; the emulated
decoder in :mod:`repro.monitor` consumes that stream, exactly like the
paper's SDR decoder consumes decoded control channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DciMessage:
    """One decoded downlink control message."""

    subframe: int          #: Subframe index (1 per millisecond).
    cell_id: int           #: Component carrier / cell identifier.
    rnti: int              #: Radio network temporary identifier (user id).
    n_prbs: int            #: Number of PRBs allocated this subframe.
    mcs: int               #: Modulation-and-coding-scheme index.
    spatial_streams: int   #: Number of MIMO spatial streams.
    tbs_bits: int          #: Transport block size, bits.
    new_data: bool = True  #: New-data indicator (False = retransmission).
    is_control: bool = False  #: Parameter-update (control-plane) traffic.

    def __post_init__(self) -> None:
        if self.n_prbs < 0:
            raise ValueError("PRB count must be non-negative")
        if self.tbs_bits < 0:
            raise ValueError("TBS must be non-negative")


@dataclass
class SubframeRecord:
    """Everything decoded from one cell's control channel in one subframe."""

    subframe: int
    cell_id: int
    total_prbs: int
    messages: list[DciMessage] = field(default_factory=list)

    @property
    def allocated_prbs(self) -> int:
        """PRBs granted to any user this subframe."""
        return sum(m.n_prbs for m in self.messages)

    @property
    def idle_prbs(self) -> int:
        """PRBs left unallocated this subframe (Eqn. 4 numerator term)."""
        idle = self.total_prbs - self.allocated_prbs
        if idle < 0:
            raise ValueError(
                f"over-allocated subframe {self.subframe} on cell "
                f"{self.cell_id}: {self.allocated_prbs}/{self.total_prbs}")
        return idle

    def prbs_for(self, rnti: int) -> int:
        """PRBs allocated to one user this subframe."""
        return sum(m.n_prbs for m in self.messages if m.rnti == rnti)

    def active_rntis(self) -> set[int]:
        """Users that received any allocation this subframe."""
        return {m.rnti for m in self.messages if m.n_prbs > 0}
