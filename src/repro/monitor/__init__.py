"""PBE physical-layer bandwidth measurement module (the paper's §4.2.1/§5).

The mobile-endpoint measurement stack: per-cell control-channel
decoders, subframe-aligned message fusion, active-user filtering,
capacity estimation (Eqns. 1-4) and cross-layer rate translation
(Eqn. 5), packaged behind :class:`PbeMonitor`.
"""

from .bursttracker import (
    IDLE,
    UPSTREAM_BOTTLENECK,
    WIRELESS_BOTTLENECK,
    BurstTracker,
    BurstWindow,
)
from .capacity import CellCapacityEstimator, CellEstimate, CellSample
from .occupancy import OccupancyAnalyzer, UserOccupancy
from .decoder import (
    N_DCI_FORMATS,
    N_SEARCH_POSITIONS,
    ControlChannelDecoder,
    MessageFusion,
)
from .filters import (
    DEFAULT_WINDOW_SUBFRAMES,
    MIN_ACTIVE_SUBFRAMES,
    MIN_AVG_PRBS,
    ActiveUserFilter,
    UserActivity,
)
from .pbe import SECONDARY_INACTIVE_TIMEOUT, MonitorReport, PbeMonitor
from .translation import (
    PROTOCOL_OVERHEAD,
    TranslationTable,
    physical_from_transport,
    transport_from_physical,
)

__all__ = [
    "ActiveUserFilter", "BurstTracker", "BurstWindow",
    "CellCapacityEstimator", "CellEstimate",
    "CellSample", "ControlChannelDecoder", "DEFAULT_WINDOW_SUBFRAMES",
    "MIN_ACTIVE_SUBFRAMES", "MIN_AVG_PRBS", "MessageFusion",
    "IDLE", "MonitorReport", "N_DCI_FORMATS", "N_SEARCH_POSITIONS",
    "OccupancyAnalyzer", "UserOccupancy",
    "UPSTREAM_BOTTLENECK", "WIRELESS_BOTTLENECK",
    "PROTOCOL_OVERHEAD", "PbeMonitor", "SECONDARY_INACTIVE_TIMEOUT",
    "TranslationTable", "UserActivity", "physical_from_transport",
    "transport_from_physical",
]
