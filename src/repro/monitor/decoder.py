"""Emulated cellular control-channel decoder (§5 of the paper).

The paper's prototype decodes each cell's physical control channel on a
USRP software-defined radio, blind-searching every candidate message
position and all ten DCI formats until a CRC passes.  Our substrate
already produces decoded :class:`~repro.phy.dci.SubframeRecord` streams,
so this class emulates the decoder *interface and cost model*: it
forwards records (optionally after a configurable decode latency) and
keeps the blind-search statistics the paper's §7 power discussion cites
(messages per subframe, search attempts).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..phy.dci import SubframeBatch, SubframeRecord

#: DCI formats defined by the 3GPP standard the decoder must try (§5).
N_DCI_FORMATS = 10
#: Candidate control-channel positions searched per subframe.
N_SEARCH_POSITIONS = 16


class ControlChannelDecoder:
    """One cell's decoder feeding a fusion/estimation sink."""

    #: Checkpointing: the sink callable is rebuilt monitor wiring.
    SNAPSHOT_SKIP = ("sink",)

    def __init__(self, cell_id: int,
                 sink: Callable[[SubframeRecord], None],
                 decode_latency_subframes: int = 0) -> None:
        if decode_latency_subframes < 0:
            raise ValueError("latency must be non-negative")
        self.cell_id = cell_id
        self.sink = sink
        self.decode_latency_subframes = decode_latency_subframes
        self._pending: list[SubframeRecord] = []
        self.subframes_decoded = 0
        self.messages_decoded = 0
        self.search_attempts = 0

    def on_subframe(self, record: SubframeRecord) -> None:
        """Entry point: attach this to the cell's control channel."""
        if record.cell_id != self.cell_id:
            raise ValueError(
                f"decoder for cell {self.cell_id} received record for "
                f"cell {record.cell_id}")
        self.subframes_decoded += 1
        self.messages_decoded += len(record.messages)
        # Blind-search cost model: every occupied position costs up to
        # N_DCI_FORMATS format trials; empty positions cost one look.
        occupied = len(record.messages)
        self.search_attempts += (occupied * N_DCI_FORMATS
                                 + (N_SEARCH_POSITIONS - occupied))
        if self.decode_latency_subframes == 0:
            self.sink(record)
            return
        self._pending.append(record)
        if len(self._pending) > self.decode_latency_subframes:
            self.sink(self._pending.pop(0))

    def ingest_batch(self, batch: SubframeBatch) -> None:
        """Fold a columnar block's decode statistics in, O(1) per block.

        The per-record arithmetic telescopes: each record costs
        ``occupied · N_DCI_FORMATS + (N_SEARCH_POSITIONS - occupied)``
        search attempts, so a block of ``n`` records with ``m`` total
        messages costs ``m·(N_DCI_FORMATS - 1) + n·N_SEARCH_POSITIONS``
        — identical to ``n`` scalar :meth:`on_subframe` calls.  Batch
        ingestion bypasses the latency buffer and the sink; the batched
        monitor drains blocks itself (scalar ingest is the reference
        path for latency/fault configurations).
        """
        if batch.cell_id != self.cell_id:
            raise ValueError(
                f"decoder for cell {self.cell_id} received batch for "
                f"cell {batch.cell_id}")
        n = len(batch)
        self.subframes_decoded += n
        self.messages_decoded += batch.n_messages
        self.search_attempts += (batch.n_messages * (N_DCI_FORMATS - 1)
                                 + n * N_SEARCH_POSITIONS)

    def flush(self) -> None:
        """Drain the latency buffer at end of stream.

        With ``decode_latency_subframes > 0`` the last records of a run
        would otherwise sit in ``_pending`` forever; the monitor
        teardown path calls this so every decoded subframe reaches the
        sink exactly once.
        """
        pending, self._pending = self._pending, []
        for record in pending:
            self.sink(record)

    @property
    def mean_messages_per_subframe(self) -> float:
        """Average decoded control messages per subframe (§7 figure)."""
        if self.subframes_decoded == 0:
            return 0.0
        return self.messages_decoded / self.subframes_decoded


class MessageFusion:
    """Align decoded records from multiple cells by subframe index (§5).

    Emits ``{cell_id: record}`` snapshots, one per subframe, once every
    subscribed cell has reported that subframe (or as soon as a later
    subframe arrives, so a stalled decoder cannot block the pipeline).
    """

    SNAPSHOT_SKIP = ("sink",)

    def __init__(self, cell_ids: list[int],
                 sink: Callable[[dict[int, SubframeRecord]], None]) -> None:
        if not cell_ids:
            raise ValueError("need at least one cell")
        self.cell_ids = set(cell_ids)
        self.sink = sink
        self._buffers: dict[int, dict[int, SubframeRecord]] = {}
        self.emitted = 0

    def on_record(self, record: SubframeRecord) -> None:
        if record.cell_id not in self.cell_ids:
            raise ValueError(f"unsubscribed cell {record.cell_id}")
        bucket = self._buffers.setdefault(record.subframe, {})
        bucket[record.cell_id] = record
        if len(bucket) == len(self.cell_ids):
            self._emit(record.subframe)
        else:
            # Flush any strictly older, incomplete subframes.
            for subframe in sorted(self._buffers):
                if subframe < record.subframe - 1:
                    self._emit(subframe)

    def flush(self) -> None:
        """Emit every buffered (possibly incomplete) subframe, in order.

        Called at end of stream, after the per-cell decoders have
        flushed their own latency buffers, so a run's final subframes
        are not silently lost.
        """
        for subframe in sorted(self._buffers):
            self._emit(subframe)

    def _emit(self, subframe: int) -> None:
        bucket = self._buffers.pop(subframe)
        self.emitted += 1
        self.sink(bucket)
