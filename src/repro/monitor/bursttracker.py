"""BurstTracker-style bottleneck localization (§2 related work).

BurstTracker [Balasingam et al., MobiCom 2019] localizes a flow's
bottleneck from the downlink scheduler's behaviour: when the LTE link
is the bottleneck, the user is backlogged at the base station, so its
grants *fill* the capacity available to it; when the bottleneck is
upstream, the queue repeatedly runs dry — the user still gets
scheduled whenever a trickle of data arrives, but its grants are small
while the cell has PRBs to spare.

Per classification window we therefore measure, over the subframes in
which the user was scheduled, the share of *claimable* PRBs (its own
grant plus the cell's idle PRBs) that the grant actually consumed:

* share ≈ 1  →  backlogged  →  the wireless link is the bottleneck;
* share ≪ 1  →  starved     →  the bottleneck is upstream;
* never scheduled            →  idle.

This classifier runs on the same decoded control channel PBE-CC's
monitor consumes, giving an independent check of the client's
Dth-based bottleneck-state machine (§4.2.2): the two should agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..phy.dci import SubframeBatch, SubframeRecord

#: Default classification window (subframes = ms).
DEFAULT_WINDOW = 100
#: Mean claimed share above which the user counts as backlogged.
BACKLOGGED_SHARE = 0.8
#: Scheduled in at least this fraction of subframes to be non-idle.
MIN_DUTY = 0.05

WIRELESS_BOTTLENECK = "wireless"
UPSTREAM_BOTTLENECK = "upstream"
IDLE = "idle"


@dataclass
class BurstWindow:
    """One classification window's raw observations."""

    start_subframe: int
    scheduled: int        #: subframes with an own-RNTI grant
    total: int
    #: Sum over scheduled subframes of own/(own+idle) PRBs.
    claimed_share_sum: float
    longest_gap: int      #: longest unscheduled run inside the window

    @property
    def duty_cycle(self) -> float:
        return self.scheduled / self.total if self.total else 0.0

    @property
    def mean_claimed_share(self) -> float:
        """How much of the claimable capacity the user's grants took."""
        if self.scheduled == 0:
            return 0.0
        return self.claimed_share_sum / self.scheduled


class BurstTracker:
    """Per-user downlink bottleneck classifier from DCI observations."""

    def __init__(self, own_rnti: int,
                 window_subframes: int = DEFAULT_WINDOW) -> None:
        if window_subframes < 10:
            raise ValueError("window must be at least 10 subframes")
        self.own_rnti = own_rnti
        self.window_subframes = window_subframes
        self._count = 0
        self._scheduled = 0
        self._share_sum = 0.0
        self._gap = 0
        self._longest_gap = 0
        self._window_start = 0
        self.windows: list[BurstWindow] = []
        self.classifications: list[str] = []

    def update(self, record: SubframeRecord) -> None:
        """Fold one decoded subframe in; closes windows as they fill."""
        if self._count == 0:
            self._window_start = record.subframe
        own = record.prbs_for(self.own_rnti)
        self._count += 1
        if own > 0:
            self._scheduled += 1
            claimable = own + record.idle_prbs
            self._share_sum += own / claimable
            self._gap = 0
        else:
            self._gap += 1
            self._longest_gap = max(self._longest_gap, self._gap)
        if self._count == self.window_subframes:
            self._close_window()

    def ingest_batch(self, batch: SubframeBatch) -> None:
        """Fold a columnar block in — equivalent to feeding
        ``batch.to_records()`` through :meth:`update` one by one
        (same windows, same float share sums, same classifications)."""
        counts = batch.msg_counts
        rnti_col, prbs_col = batch.rnti, batch.prbs
        own_rnti = self.own_rnti
        total = batch.total_prbs
        base = 0
        for k, sf in enumerate(batch.subframes):
            if self._count == 0:
                self._window_start = sf
            own = 0
            allocated = 0
            for i in range(base, base + counts[k]):
                p = prbs_col[i]
                allocated += p
                if rnti_col[i] == own_rnti:
                    own += p
            base += counts[k]
            self._count += 1
            if own > 0:
                self._scheduled += 1
                self._share_sum += own / (own + total - allocated)
                self._gap = 0
            else:
                self._gap += 1
                if self._gap > self._longest_gap:
                    self._longest_gap = self._gap
            if self._count == self.window_subframes:
                self._close_window()

    def _close_window(self) -> None:
        window = BurstWindow(self._window_start, self._scheduled,
                             self._count, self._share_sum,
                             self._longest_gap)
        self._count = 0
        self._scheduled = 0
        self._share_sum = 0.0
        self._gap = 0
        self._longest_gap = 0
        self.windows.append(window)
        self.classifications.append(self._classify(window))

    @staticmethod
    def _classify(window: BurstWindow) -> str:
        if window.duty_cycle < MIN_DUTY:
            return IDLE
        if window.mean_claimed_share >= BACKLOGGED_SHARE:
            return WIRELESS_BOTTLENECK
        return UPSTREAM_BOTTLENECK

    # ------------------------------------------------------------------
    def fraction(self, label: str) -> float:
        """Fraction of closed windows carrying ``label``."""
        if not self.classifications:
            return 0.0
        return (sum(1 for c in self.classifications if c == label)
                / len(self.classifications))

    def verdict(self) -> str:
        """Majority classification over non-idle windows."""
        active = [c for c in self.classifications if c != IDLE]
        if not active:
            return IDLE
        wireless = sum(1 for c in active if c == WIRELESS_BOTTLENECK)
        return (WIRELESS_BOTTLENECK if wireless >= len(active) / 2
                else UPSTREAM_BOTTLENECK)
