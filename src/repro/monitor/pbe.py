"""The PBE measurement module: fused multi-cell capacity reports.

:class:`PbeMonitor` is the mobile-side physical-layer measurement API
the paper argues for (§1): it owns one control-channel decoder per
configured cell, fuses their outputs by subframe, tracks which cells
are currently activated for this user, and on demand produces a
:class:`MonitorReport` containing the available capacity ``Cp``, the
fair share ``Cf`` (Eqns. 1-3) and their transport-layer translations
(Eqn. 5) for the congestion-control client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..net.units import SUBFRAME_US, US_PER_S
from ..phy.dci import SubframeRecord
from .capacity import CellCapacityEstimator, CellEstimate
from .decoder import ControlChannelDecoder, MessageFusion
from .translation import TranslationTable

#: A secondary cell with no grant for this user for this many subframes
#: is considered deactivated by the network.
SECONDARY_INACTIVE_TIMEOUT = 300

#: A report older than this many subframes is flagged stale: the
#: decode stream has been silent longer than any scheduling artefact
#: can explain, so the estimate no longer tracks the cell.
STALE_AFTER_SUBFRAMES = 50
#: Confidence decays to zero over this much report staleness.
CONFIDENCE_HORIZON_SUBFRAMES = 100
#: Reports with confidence below this are flagged stale even when
#: recent (e.g. a heavily gapped averaging window).
MIN_CONFIDENCE = 0.25


@dataclass
class MonitorReport:
    """One capacity snapshot handed to the congestion-control client."""

    subframe: int
    #: Available physical capacity Cp, bits per subframe (Eqn. 3).
    physical_capacity: float
    #: Transport-layer translation Ct of Cp, bits per subframe (Eqn. 5).
    transport_capacity: float
    #: Fair-share physical capacity Cf, bits per subframe (Eqns. 1-2).
    fair_share: float
    #: Transport-layer translation of Cf.
    transport_fair_share: float
    #: Data users sharing each active cell ({cell_id: N_i}).
    users_per_cell: dict
    #: Cells currently activated for this user (primary first).
    active_cells: list
    #: True when a secondary cell was (re)activated since the last
    #: report — the client restarts its fair-share approach (§4.1).
    carrier_activated: bool
    per_cell: list
    #: Subframes elapsed since the last fused decoder snapshot (0 when
    #: the caller supplied no clock, or the stream is current).
    staleness_subframes: int = 0
    #: How much to trust this report: window decode coverage decayed by
    #: staleness.  1.0 = gap-free and current, 0.0 = flying blind.
    confidence: float = 1.0

    @property
    def is_stale(self) -> bool:
        """True when the estimate should no longer drive the sender."""
        return (self.staleness_subframes > STALE_AFTER_SUBFRAMES
                or self.confidence < MIN_CONFIDENCE)

    @property
    def transport_capacity_bps(self) -> float:
        """Ct in bits/second (1 subframe = 1 ms)."""
        return self.transport_capacity * US_PER_S / SUBFRAME_US

    @property
    def transport_fair_share_bps(self) -> float:
        """Cf in bits/second."""
        return self.transport_fair_share * US_PER_S / SUBFRAME_US


class PbeMonitor:
    """Mobile-endpoint physical-layer bandwidth measurement module."""

    def __init__(self, own_rnti: int, cell_prbs: dict[int, int],
                 primary_cell: int,
                 own_rate_hint: Callable[[], tuple[int, float]],
                 user_window_subframes: int = 40,
                 decode_latency_subframes: int = 0,
                 filter_control_users: bool = True,
                 averaging_window_override: Optional[int] = None) -> None:
        """``cell_prbs`` maps every *configured* cell id to its PRB count.

        ``own_rate_hint()`` returns ``(bits_per_prb, ber)`` from the
        UE's local channel measurements — used when the user has no
        decoded allocation of its own to read its MCS from.

        Ablation knobs: ``filter_control_users=False`` counts every
        detected user in N; ``averaging_window_override`` replaces the
        RTprop averaging window (1 = instantaneous estimates).
        """
        if primary_cell not in cell_prbs:
            raise ValueError("primary cell must be configured")
        if (averaging_window_override is not None
                and averaging_window_override < 1):
            raise ValueError("averaging window must be positive")
        self.own_rnti = own_rnti
        self.primary_cell = primary_cell
        self.own_rate_hint = own_rate_hint
        self.averaging_window_override = averaging_window_override
        self.estimators = {
            cell_id: CellCapacityEstimator(
                cell_id, total, own_rnti, user_window_subframes,
                filter_control_users=filter_control_users)
            for cell_id, total in cell_prbs.items()}
        self.fusion = MessageFusion(list(cell_prbs), self._on_snapshot)
        self.decoders = {
            cell_id: ControlChannelDecoder(
                cell_id, self.fusion.on_record, decode_latency_subframes)
            for cell_id in cell_prbs}
        self.translation = TranslationTable()
        self.last_subframe = -1
        self._activation_pending = False
        self._previously_active: set[int] = {primary_cell}
        #: Decode-gap telemetry: distinct discontinuities in the fused
        #: snapshot stream, and total subframes never fused.
        self.gap_events = 0
        self.missed_subframes = 0

    # ------------------------------------------------------------------
    def decoder_callback(self, cell_id: int):
        """The callable to attach to one cell's control channel."""
        return self.decoders[cell_id].on_subframe

    def set_primary(self, cell_id: int) -> None:
        """Re-anchor on a new primary cell after a handover (§1).

        The UE's RRC layer knows its serving cell; the monitor just
        follows.  The target cell must be among the configured
        decoders (a phone can only decode bands it is tuned to).
        """
        if cell_id not in self.estimators:
            raise ValueError(f"cell {cell_id} has no decoder configured")
        self.primary_cell = cell_id
        self._previously_active = {cell_id}
        self._activation_pending = False

    def _on_snapshot(self, records: dict[int, SubframeRecord]) -> None:
        rate, ber = self.own_rate_hint()
        snapshot_subframe = self.last_subframe
        for cell_id, record in records.items():
            self.estimators[cell_id].update(record, rate, ber)
            snapshot_subframe = max(snapshot_subframe, record.subframe)
        if (self.last_subframe >= 0
                and snapshot_subframe > self.last_subframe + 1):
            self.gap_events += 1
            self.missed_subframes += (snapshot_subframe
                                      - self.last_subframe - 1)
        self.last_subframe = snapshot_subframe
        active = set(self.active_cells())
        newly_active = active - self._previously_active
        if newly_active:
            self._activation_pending = True
        self._previously_active = active

    def flush(self) -> None:
        """End-of-stream teardown: drain decoder latency buffers.

        With ``decode_latency_subframes > 0`` each per-cell decoder
        holds its last records in a pending queue; flushing pushes them
        through the fusion stage (which then emits its own residual,
        possibly incomplete, subframes) so the final estimates account
        for every decoded subframe.
        """
        for decoder in self.decoders.values():
            decoder.flush()
        self.fusion.flush()

    # ------------------------------------------------------------------
    def active_cells(self) -> list[int]:
        """Cells currently activated for this user, primary first.

        The primary cell is always active; a secondary counts as active
        while the user has received a grant on it recently (its
        deactivation is not announced to the UE in a way our decoder
        models, so we age it out — §3's deactivation is driven by the
        network observing unused capacity).
        """
        cells = [self.primary_cell]
        for cell_id, est in self.estimators.items():
            if cell_id == self.primary_cell:
                continue
            age = self.last_subframe - est.last_own_grant_subframe
            if (est.last_own_grant_subframe >= 0
                    and age <= SECONDARY_INACTIVE_TIMEOUT):
                cells.append(cell_id)
        return cells

    def report(self, rtprop_subframes: int,
               now_subframe: Optional[int] = None) -> MonitorReport:
        """Produce the capacity snapshot for the current subframe.

        ``rtprop_subframes`` sets the averaging window (§4.2.1: average
        over the most recent RTprop worth of subframes).

        ``now_subframe`` is the caller's wall clock (the UE knows the
        subframe count even when its decoder is dark); supplying it
        lets the report carry a staleness/confidence signal so the
        client can flag estimates that have outlived the decode stream.
        """
        window = max(1, rtprop_subframes)
        if self.averaging_window_override is not None:
            window = self.averaging_window_override
        active = self.active_cells()
        estimates: list[CellEstimate] = [
            self.estimators[cell_id].estimate(window)
            for cell_id in active]
        # §4.1: per-cell rates are computed separately and summed, so the
        # Eqn. 5 TB-size term uses each carrier's own transport-block
        # size rather than pretending the aggregate is one giant TB.
        # (One fused left-to-right pass: report() runs once per
        # feedback, and the separate genexpr sums were measurable.)
        transport_rate = self.translation.transport_rate
        cp = cf = ct = cf_t = cov = 0.0
        for e in estimates:
            cp += e.physical_capacity
            cf += e.fair_share
            ct += transport_rate(e.physical_capacity, e.mean_ber)
            cf_t += transport_rate(e.fair_share, e.mean_ber)
            cov += e.coverage
        activated = self._activation_pending
        self._activation_pending = False
        staleness = 0
        if now_subframe is not None and self.last_subframe >= 0:
            staleness = max(0, now_subframe - self.last_subframe)
        coverage = cov / len(estimates) if estimates else 0.0
        decay = max(0.0, 1.0 - staleness / CONFIDENCE_HORIZON_SUBFRAMES)
        return MonitorReport(
            subframe=self.last_subframe,
            physical_capacity=cp, transport_capacity=ct,
            fair_share=cf, transport_fair_share=cf_t,
            users_per_cell={e.cell_id: e.users for e in estimates},
            active_cells=active, carrier_activated=activated,
            per_cell=estimates,
            staleness_subframes=staleness,
            confidence=coverage * decay)
