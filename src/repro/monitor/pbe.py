"""The PBE measurement module: fused multi-cell capacity reports.

:class:`PbeMonitor` is the mobile-side physical-layer measurement API
the paper argues for (§1): it owns one control-channel decoder per
configured cell, fuses their outputs by subframe, tracks which cells
are currently activated for this user, and on demand produces a
:class:`MonitorReport` containing the available capacity ``Cp``, the
fair share ``Cf`` (Eqns. 1-3) and their transport-layer translations
(Eqn. 5) for the congestion-control client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..net.units import SUBFRAME_US, US_PER_S
from ..phy.dci import SubframeBatch, SubframeRecord
from .capacity import CellCapacityEstimator, CellEstimate
from .decoder import ControlChannelDecoder, MessageFusion
from .translation import TranslationTable

#: A secondary cell with no grant for this user for this many subframes
#: is considered deactivated by the network.
SECONDARY_INACTIVE_TIMEOUT = 300

#: A report older than this many subframes is flagged stale: the
#: decode stream has been silent longer than any scheduling artefact
#: can explain, so the estimate no longer tracks the cell.
STALE_AFTER_SUBFRAMES = 50
#: Confidence decays to zero over this much report staleness.
CONFIDENCE_HORIZON_SUBFRAMES = 100
#: Reports with confidence below this are flagged stale even when
#: recent (e.g. a heavily gapped averaging window).
MIN_CONFIDENCE = 0.25


@dataclass
class MonitorReport:
    """One capacity snapshot handed to the congestion-control client."""

    subframe: int
    #: Available physical capacity Cp, bits per subframe (Eqn. 3).
    physical_capacity: float
    #: Transport-layer translation Ct of Cp, bits per subframe (Eqn. 5).
    transport_capacity: float
    #: Fair-share physical capacity Cf, bits per subframe (Eqns. 1-2).
    fair_share: float
    #: Transport-layer translation of Cf.
    transport_fair_share: float
    #: Data users sharing each active cell ({cell_id: N_i}).
    users_per_cell: dict
    #: Cells currently activated for this user (primary first).
    active_cells: list
    #: True when a secondary cell was (re)activated since the last
    #: report — the client restarts its fair-share approach (§4.1).
    carrier_activated: bool
    per_cell: list
    #: Subframes elapsed since the last fused decoder snapshot (0 when
    #: the caller supplied no clock, or the stream is current).
    staleness_subframes: int = 0
    #: How much to trust this report: window decode coverage decayed by
    #: staleness.  1.0 = gap-free and current, 0.0 = flying blind.
    confidence: float = 1.0

    @property
    def is_stale(self) -> bool:
        """True when the estimate should no longer drive the sender."""
        return (self.staleness_subframes > STALE_AFTER_SUBFRAMES
                or self.confidence < MIN_CONFIDENCE)

    @property
    def transport_capacity_bps(self) -> float:
        """Ct in bits/second (1 subframe = 1 ms)."""
        return self.transport_capacity * US_PER_S / SUBFRAME_US

    @property
    def transport_fair_share_bps(self) -> float:
        """Cf in bits/second."""
        return self.transport_fair_share * US_PER_S / SUBFRAME_US


class PbeMonitor:
    """Mobile-endpoint physical-layer bandwidth measurement module."""

    #: Checkpointing: the rate hint is a rebuilt-wiring closure, the
    #: translation table and report memo are pure caches (identical
    #: values recompute on demand).
    SNAPSHOT_SKIP = ("own_rate_hint", "translation", "_report_memo")

    def _after_restore(self) -> None:
        self._report_memo = None

    def __init__(self, own_rnti: int, cell_prbs: dict[int, int],
                 primary_cell: int,
                 own_rate_hint: Callable[[], tuple[int, float]],
                 user_window_subframes: int = 40,
                 decode_latency_subframes: int = 0,
                 filter_control_users: bool = True,
                 averaging_window_override: Optional[int] = None,
                 batch_ingest: bool = True) -> None:
        """``cell_prbs`` maps every *configured* cell id to its PRB count.

        ``own_rate_hint()`` returns ``(bits_per_prb, ber)`` from the
        UE's local channel measurements — used when the user has no
        decoded allocation of its own to read its MCS from.

        Ablation knobs: ``filter_control_users=False`` counts every
        detected user in N; ``averaging_window_override`` replaces the
        RTprop averaging window (1 = instantaneous estimates).

        ``batch_ingest=True`` (default) buffers decoded subframes as a
        columnar :class:`~repro.phy.dci.SubframeBatch` per cell and
        folds whole blocks into the estimators on demand — byte-
        identical to the per-record path, which remains the reference
        (and is selected automatically when ``decode_latency_subframes
        > 0``, whose timing semantics are inherently per-record; the
        fault injectors likewise bypass batching by design).
        """
        if primary_cell not in cell_prbs:
            raise ValueError("primary cell must be configured")
        if (averaging_window_override is not None
                and averaging_window_override < 1):
            raise ValueError("averaging window must be positive")
        self.own_rnti = own_rnti
        self.primary_cell = primary_cell
        self.own_rate_hint = own_rate_hint
        self.averaging_window_override = averaging_window_override
        self.estimators = {
            cell_id: CellCapacityEstimator(
                cell_id, total, own_rnti, user_window_subframes,
                filter_control_users=filter_control_users)
            for cell_id, total in cell_prbs.items()}
        self.fusion = MessageFusion(list(cell_prbs), self._on_snapshot)
        self.decoders = {
            cell_id: ControlChannelDecoder(
                cell_id, self.fusion.on_record, decode_latency_subframes)
            for cell_id in cell_prbs}
        self.translation = TranslationTable()
        self._last_subframe = -1
        self._activation_pending = False
        self._previously_active: set[int] = {primary_cell}
        #: Decode-gap telemetry: distinct discontinuities in the fused
        #: snapshot stream, and total subframes never fused.
        self._gap_events = 0
        self._missed_subframes = 0
        self.batch_ingest = (bool(batch_ingest)
                             and decode_latency_subframes == 0)
        #: Configured cells in attachment (= engine tick) order.
        self._cell_order = list(cell_prbs)
        self._batches = {
            cell_id: SubframeBatch(cell_id, total)
            for cell_id, total in cell_prbs.items()} \
            if self.batch_ingest else {}
        #: One ``(rate, ber)`` hint per buffered subframe, captured the
        #: moment the subframe's last cell reported — exactly when the
        #: scalar fusion stage would have called ``own_rate_hint``.
        self._pending_hints: list[tuple[int, float]] = []
        self._arrivals = 0
        #: Total subframes ever folded in (memo version stamp).
        self._ingest_version = 0
        self._report_memo: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Telemetry reads drain any buffered subframes first so external
    # observers always see the same values the scalar path would show.
    @property
    def last_subframe(self) -> int:
        """Latest subframe folded into the estimators."""
        if self._pending_hints:
            self._drain()
        return self._last_subframe

    @last_subframe.setter
    def last_subframe(self, value: int) -> None:
        self._last_subframe = value

    @property
    def gap_events(self) -> int:
        """Distinct discontinuities seen in the decoded stream."""
        if self._pending_hints:
            self._drain()
        return self._gap_events

    @property
    def missed_subframes(self) -> int:
        """Total subframes never decoded (sum over all gaps)."""
        if self._pending_hints:
            self._drain()
        return self._missed_subframes

    # ------------------------------------------------------------------
    def decoder_callback(self, cell_id: int):
        """The callable to attach to one cell's control channel."""
        if not self.batch_ingest:
            return self.decoders[cell_id].on_subframe
        append = self._batches[cell_id].append_record
        n_cells = len(self._cell_order)
        hints = self._pending_hints
        hint = self.own_rate_hint

        def on_subframe(record: SubframeRecord) -> None:
            append(record)
            self._arrivals += 1
            if self._arrivals == n_cells:
                self._arrivals = 0
                hints.append(hint())

        return on_subframe

    def _drain(self) -> None:
        """Fold every buffered subframe into the estimators.

        Each buffered subframe's message columns are scanned exactly
        once, producing the per-subframe figures
        (:meth:`CellCapacityEstimator.update_block` inputs) plus the
        carrier-activation / gap-telemetry replay the scalar
        ``_on_snapshot`` performs per snapshot — same final state,
        no per-record dispatch.
        """
        hints = self._pending_hints
        n = len(hints)
        if n == 0:
            return
        order = self._cell_order
        batches = [self._batches[c] for c in order]
        subframes = batches[0].subframes
        for b in batches[1:]:
            if len(b) != n or b.subframes != subframes:
                raise RuntimeError(
                    "batch ingest requires cell-aligned subframe "
                    "streams; use scalar ingest (batch_ingest=False)")
        if len(batches[0]) != n:
            raise RuntimeError("hint/row count mismatch in batch ingest")
        own = self.own_rnti
        if n == 1:
            # Steady state under ACK clocking: each feedback drains the
            # single subframe buffered since the previous one, so skip
            # the block machinery (per-cell column lists, zip folds)
            # and do the one-row scan directly.
            sf = subframes[0]
            rate_hint, ber = hints[0]
            primary = self.primary_cell
            active = {primary}
            for cell_id, batch in zip(order, batches):
                prbs_col, rnti_col = batch.prbs, batch.rnti
                tbs_col = batch.tbs_bits
                own_prbs = 0
                own_rate = rate_hint
                allocated = 0
                alloc: dict[int, int] = {}
                for i in range(len(prbs_col)):
                    p = prbs_col[i]
                    allocated += p
                    if p > 0:
                        r = rnti_col[i]
                        alloc[r] = alloc.get(r, 0) + p
                        if r == own:
                            own_prbs += p
                            own_rate = max(1, tbs_col[i] // p)
                est = self.estimators[cell_id]
                est.update_one(sf, own_prbs,
                               batch.total_prbs - allocated, own_rate,
                               ber, alloc)
                self.decoders[cell_id].ingest_batch(batch)
                if cell_id != primary:
                    g = est.last_own_grant_subframe
                    if g >= 0 and sf - g <= SECONDARY_INACTIVE_TIMEOUT:
                        active.add(cell_id)
                batch.clear()
            last = self._last_subframe
            if last >= 0 and sf > last + 1:
                self._gap_events += 1
                self._missed_subframes += sf - last - 1
            self._last_subframe = sf
            if active - self._previously_active:
                self._activation_pending = True
            self._previously_active = active
            self._ingest_version += 1
            hints.clear()
            return
        own_prbs_by_cell: dict[int, list[int]] = {}
        pre_grant = {c: self.estimators[c].last_own_grant_subframe
                     for c in order}
        for cell_id, batch in zip(order, batches):
            total = batch.total_prbs
            counts = batch.msg_counts
            rnti_col, prbs_col = batch.rnti, batch.prbs
            tbs_col = batch.tbs_bits
            own_prbs_list: list[int] = []
            idle_list: list[int] = []
            rate_list: list[int] = []
            ber_list: list[float] = []
            alloc_list: list[dict[int, int]] = []
            base = 0
            for k in range(n):
                own_prbs = 0
                own_rate = hints[k][0]
                allocated = 0
                alloc: dict[int, int] = {}
                for i in range(base, base + counts[k]):
                    p = prbs_col[i]
                    allocated += p
                    if p > 0:
                        r = rnti_col[i]
                        alloc[r] = alloc.get(r, 0) + p
                        if r == own:
                            own_prbs += p
                            own_rate = max(1, tbs_col[i] // p)
                base += counts[k]
                own_prbs_list.append(own_prbs)
                # The engine never over-allocates, so idle needs no
                # non-negativity check here (the scalar path's
                # record.idle_prbs validation is construction-time).
                idle_list.append(total - allocated)
                rate_list.append(own_rate)
                ber_list.append(hints[k][1])
                alloc_list.append(alloc)
            self.estimators[cell_id].update_block(
                subframes, own_prbs_list, idle_list, rate_list,
                ber_list, alloc_list)
            self.decoders[cell_id].ingest_batch(batch)
            own_prbs_by_cell[cell_id] = own_prbs_list

        # Replay the per-snapshot bookkeeping: gap telemetry, and the
        # carrier-activation edge detection (a secondary may time out
        # and re-activate *within* a block, so end-state comparison is
        # not enough — walk every subframe).
        primary = self.primary_cell
        prev_active = self._previously_active
        pending = self._activation_pending
        last = self._last_subframe
        gap_events, missed = self._gap_events, self._missed_subframes
        secondaries = [c for c in order if c != primary]
        grant_age = {c: pre_grant[c] for c in secondaries}
        for k in range(n):
            sf = subframes[k]
            if last >= 0 and sf > last + 1:
                gap_events += 1
                missed += sf - last - 1
            last = sf
            active = {primary}
            for c in secondaries:
                if own_prbs_by_cell[c][k] > 0:
                    grant_age[c] = sf
                g = grant_age[c]
                if g >= 0 and sf - g <= SECONDARY_INACTIVE_TIMEOUT:
                    active.add(c)
            if active - prev_active:
                pending = True
            prev_active = active
        self._last_subframe = last
        self._gap_events, self._missed_subframes = gap_events, missed
        self._activation_pending = pending
        self._previously_active = prev_active
        self._ingest_version += n
        for b in batches:
            b.clear()
        hints.clear()

    def set_primary(self, cell_id: int) -> None:
        """Re-anchor on a new primary cell after a handover (§1).

        The UE's RRC layer knows its serving cell; the monitor just
        follows.  The target cell must be among the configured
        decoders (a phone can only decode bands it is tuned to).
        """
        if cell_id not in self.estimators:
            raise ValueError(f"cell {cell_id} has no decoder configured")
        self._drain()
        self.primary_cell = cell_id
        self._previously_active = {cell_id}
        self._activation_pending = False
        self._report_memo = None

    def _on_snapshot(self, records: dict[int, SubframeRecord]) -> None:
        rate, ber = self.own_rate_hint()
        snapshot_subframe = self._last_subframe
        for cell_id, record in records.items():
            self.estimators[cell_id].update(record, rate, ber)
            snapshot_subframe = max(snapshot_subframe, record.subframe)
        if (self._last_subframe >= 0
                and snapshot_subframe > self._last_subframe + 1):
            self._gap_events += 1
            self._missed_subframes += (snapshot_subframe
                                       - self._last_subframe - 1)
        self._last_subframe = snapshot_subframe
        self._ingest_version += 1
        active = set(self.active_cells())
        newly_active = active - self._previously_active
        if newly_active:
            self._activation_pending = True
        self._previously_active = active

    def flush(self) -> None:
        """End-of-stream teardown: drain decoder latency buffers.

        With ``decode_latency_subframes > 0`` each per-cell decoder
        holds its last records in a pending queue; flushing pushes them
        through the fusion stage (which then emits its own residual,
        possibly incomplete, subframes) so the final estimates account
        for every decoded subframe.
        """
        self._drain()
        for decoder in self.decoders.values():
            decoder.flush()
        self.fusion.flush()

    # ------------------------------------------------------------------
    def active_cells(self) -> list[int]:
        """Cells currently activated for this user, primary first.

        The primary cell is always active; a secondary counts as active
        while the user has received a grant on it recently (its
        deactivation is not announced to the UE in a way our decoder
        models, so we age it out — §3's deactivation is driven by the
        network observing unused capacity).
        """
        if self._pending_hints:
            self._drain()
        cells = [self.primary_cell]
        for cell_id, est in self.estimators.items():
            if cell_id == self.primary_cell:
                continue
            age = self._last_subframe - est.last_own_grant_subframe
            if (est.last_own_grant_subframe >= 0
                    and age <= SECONDARY_INACTIVE_TIMEOUT):
                cells.append(cell_id)
        return cells

    def report(self, rtprop_subframes: int,
               now_subframe: Optional[int] = None) -> MonitorReport:
        """Produce the capacity snapshot for the current subframe.

        ``rtprop_subframes`` sets the averaging window (§4.2.1: average
        over the most recent RTprop worth of subframes).

        ``now_subframe`` is the caller's wall clock (the UE knows the
        subframe count even when its decoder is dark); supplying it
        lets the report carry a staleness/confidence signal so the
        client can flag estimates that have outlived the decode stream.
        """
        if self._pending_hints:
            self._drain()
        window = max(1, rtprop_subframes)
        if self.averaging_window_override is not None:
            window = self.averaging_window_override
        # Reports are pure in (ingested stream, window, clock, primary)
        # except for the consumed carrier_activated edge — so a repeat
        # call with the same key returns the memoized report, and a
        # pending activation simply skips the memo (the *next* identical
        # call re-computes with the flag consumed, then memoizes).
        key = (self._ingest_version, window, now_subframe,
               self.primary_cell)
        memo = self._report_memo
        if (memo is not None and memo[0] == key
                and not self._activation_pending):
            return memo[1]
        active = self.active_cells()
        estimates: list[CellEstimate] = [
            self.estimators[cell_id].estimate(window)
            for cell_id in active]
        # §4.1: per-cell rates are computed separately and summed, so the
        # Eqn. 5 TB-size term uses each carrier's own transport-block
        # size rather than pretending the aggregate is one giant TB.
        # (One fused left-to-right pass: report() runs once per
        # feedback, and the separate genexpr sums were measurable.)
        transport_rate = self.translation.transport_rate
        cp = cf = ct = cf_t = cov = 0.0
        for e in estimates:
            cp += e.physical_capacity
            cf += e.fair_share
            ct += transport_rate(e.physical_capacity, e.mean_ber)
            cf_t += transport_rate(e.fair_share, e.mean_ber)
            cov += e.coverage
        activated = self._activation_pending
        self._activation_pending = False
        staleness = 0
        if now_subframe is not None and self._last_subframe >= 0:
            staleness = max(0, now_subframe - self._last_subframe)
        coverage = cov / len(estimates) if estimates else 0.0
        decay = max(0.0, 1.0 - staleness / CONFIDENCE_HORIZON_SUBFRAMES)
        report = MonitorReport(
            subframe=self._last_subframe,
            physical_capacity=cp, transport_capacity=ct,
            fair_share=cf, transport_fair_share=cf_t,
            users_per_cell={e.cell_id: e.users for e in estimates},
            active_cells=active, carrier_activated=activated,
            per_cell=estimates,
            staleness_subframes=staleness,
            confidence=coverage * decay)
        # Only activation-free reports are repeatable (the flag is a
        # consumed edge); callers treat reports as read-only, like the
        # memoized CellEstimates they embed.
        self._report_memo = None if activated else (key, report)
        return report
