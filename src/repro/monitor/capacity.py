"""Per-cell capacity estimation (Eqns. 1-4 of the paper).

For each activated cell ``i`` the mobile estimates its available
physical capacity as

    Cp_i = Rw_i · (Pa_i + Pidle_i / N_i)          (Eqn. 3 term)

and its fair share as

    Cf_i = Rw_i · Pcell_i / N_i                   (Eqns. 1-2)

where ``Rw`` is the user's own per-PRB physical rate, ``Pa`` its own
allocated PRBs, ``Pidle`` the cell's unallocated PRBs (counting *all*
users, Eqn. 4) and ``N`` the filtered data-user count.  All terms are
averaged over the most recent RTprop worth of subframes (§4.2.1) to
smooth the estimate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..phy.dci import SubframeRecord
from .filters import ActiveUserFilter


@dataclass
class CellSample:
    """One subframe's raw measurements on one cell."""

    subframe: int
    own_prbs: int       #: Pa — PRBs allocated to this user.
    idle_prbs: int      #: Pidle — Eqn. 4.
    own_rate: int       #: Rw — bits per PRB at the user's current MCS.
    ber: float          #: SINR-estimated residual bit error rate.


@dataclass
class CellEstimate:
    """Averaged per-cell capacity figures."""

    cell_id: int
    physical_capacity: float   #: Cp_i, bits per subframe.
    fair_share: float          #: Cf_i, bits per subframe.
    own_allocation: float      #: mean Pa, PRBs.
    idle: float                #: mean Pidle, PRBs.
    users: int                 #: N_i.
    mean_ber: float
    #: Fraction of the averaged window's subframes actually decoded
    #: (1.0 = gap-free; decode outages push it toward 0).
    coverage: float = 1.0


class CellCapacityEstimator:
    """Sliding-window capacity estimator for one component carrier."""

    #: Upper bound on the averaging window, subframes (RTprop can grow).
    MAX_WINDOW = 400

    def __init__(self, cell_id: int, total_prbs: int, own_rnti: int,
                 user_window_subframes: int = 40,
                 filter_control_users: bool = True) -> None:
        """``filter_control_users=False`` disables the §4.2.1 Ta/Pa
        filter: every detected user counts toward N (ablation knob —
        the paper shows this inflates N from ~1.3 to ~15 on busy
        cells)."""
        self.cell_id = cell_id
        self.total_prbs = total_prbs
        self.own_rnti = own_rnti
        self.filter_control_users = filter_control_users
        self.users = ActiveUserFilter(user_window_subframes)
        self._samples: deque[CellSample] = deque(maxlen=self.MAX_WINDOW)
        self.last_subframe = -1
        #: Last subframe in which this user itself received a grant.
        self.last_own_grant_subframe = -1

    def update(self, record: SubframeRecord, own_rate_hint: int,
               ber_hint: float) -> None:
        """Fold one decoded subframe in.

        ``own_rate_hint``/``ber_hint`` supply the user's own physical
        rate and BER from its local channel measurements (CQI reporting
        path) for subframes where it received no allocation — when it
        did, the decoded DCI's own MCS is authoritative.
        """
        if record.cell_id != self.cell_id:
            raise ValueError(
                f"record for cell {record.cell_id} fed to estimator "
                f"for cell {self.cell_id}")
        self.users.update(record)
        own_prbs = 0
        own_rate = own_rate_hint
        for message in record.messages:
            if message.rnti == self.own_rnti and message.n_prbs > 0:
                own_prbs += message.n_prbs
                own_rate = max(1, message.tbs_bits // message.n_prbs)
        if own_prbs > 0:
            self.last_own_grant_subframe = record.subframe
        self._samples.append(CellSample(
            record.subframe, own_prbs, record.idle_prbs, own_rate,
            ber_hint))
        self.last_subframe = record.subframe

    # ------------------------------------------------------------------
    def estimate(self, window_subframes: int) -> CellEstimate:
        """Average the most recent ``window_subframes`` samples (Eqn. 3)."""
        if window_subframes < 1:
            raise ValueError("window must be positive")
        if not self._samples:
            return CellEstimate(self.cell_id, 0.0, 0.0, 0.0, 0.0, 1, 0.0,
                                coverage=0.0)
        window = list(self._samples)[-window_subframes:]
        n = len(window)
        mean_pa = sum(s.own_prbs for s in window) / n
        mean_idle = sum(s.idle_prbs for s in window) / n
        mean_rate = sum(s.own_rate for s in window) / n
        mean_ber = sum(s.ber for s in window) / n
        # Decode gaps widen the subframe span the n samples cover.
        span = max(1, window[-1].subframe - window[0].subframe + 1)
        coverage = min(1.0, n / span)
        if self.filter_control_users:
            users = self.users.data_user_count(include=self.own_rnti)
        else:
            users = max(1, len(self.users.detected_users()
                               | {self.own_rnti}))
        physical = mean_rate * (mean_pa + mean_idle / users)
        fair = mean_rate * self.total_prbs / users
        return CellEstimate(self.cell_id, physical, fair, mean_pa,
                            mean_idle, users, mean_ber,
                            coverage=coverage)
