"""Per-cell capacity estimation (Eqns. 1-4 of the paper).

For each activated cell ``i`` the mobile estimates its available
physical capacity as

    Cp_i = Rw_i · (Pa_i + Pidle_i / N_i)          (Eqn. 3 term)

and its fair share as

    Cf_i = Rw_i · Pcell_i / N_i                   (Eqns. 1-2)

where ``Rw`` is the user's own per-PRB physical rate, ``Pa`` its own
allocated PRBs, ``Pidle`` the cell's unallocated PRBs (counting *all*
users, Eqn. 4) and ``N`` the filtered data-user count.  All terms are
averaged over the most recent RTprop worth of subframes (§4.2.1) to
smooth the estimate.

``estimate()`` is called for every capacity feedback — a measured hot
path — so the sliding-window averages are served from ring buffers
with O(1) rolling integer sums instead of copying the sample deque and
re-summing the window on every call.  The integer fields (PRBs, rate)
use prefix-sum differences, which are exact; the float BER field is
summed chronologically on demand and memoized per window size, so
every returned figure is bit-identical to the naive windowed average
(``tests/test_hotpath_regressions.py`` holds the equivalence suite).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..phy.dci import SubframeRecord
from .filters import ActiveUserFilter


@dataclass
class CellSample:
    """One subframe's raw measurements on one cell."""

    subframe: int
    own_prbs: int       #: Pa — PRBs allocated to this user.
    idle_prbs: int      #: Pidle — Eqn. 4.
    own_rate: int       #: Rw — bits per PRB at the user's current MCS.
    ber: float          #: SINR-estimated residual bit error rate.


@dataclass
class CellEstimate:
    """Averaged per-cell capacity figures."""

    cell_id: int
    physical_capacity: float   #: Cp_i, bits per subframe.
    fair_share: float          #: Cf_i, bits per subframe.
    own_allocation: float      #: mean Pa, PRBs.
    idle: float                #: mean Pidle, PRBs.
    users: int                 #: N_i.
    mean_ber: float
    #: Fraction of the averaged window's subframes actually decoded
    #: (1.0 = gap-free; decode outages push it toward 0).
    coverage: float = 1.0


class CellCapacityEstimator:
    """Sliding-window capacity estimator for one component carrier."""

    #: Upper bound on the averaging window, subframes (RTprop can grow).
    MAX_WINDOW = 400

    #: Checkpointing: the per-window memo is a pure cache (identical
    #: estimates recompute from the snapshotted rings).
    SNAPSHOT_SKIP = ("_memo",)

    def _after_restore(self) -> None:
        self._memo = {}
        self._memo_version = -1

    def __init__(self, cell_id: int, total_prbs: int, own_rnti: int,
                 user_window_subframes: int = 40,
                 filter_control_users: bool = True) -> None:
        """``filter_control_users=False`` disables the §4.2.1 Ta/Pa
        filter: every detected user counts toward N (ablation knob —
        the paper shows this inflates N from ~1.3 to ~15 on busy
        cells)."""
        self.cell_id = cell_id
        self.total_prbs = total_prbs
        self.own_rnti = own_rnti
        self.filter_control_users = filter_control_users
        self.users = ActiveUserFilter(user_window_subframes)
        cap = self.MAX_WINDOW
        self._cap = cap
        #: Total samples ever folded in (also the memo version stamp).
        self._count = 0
        # Ring buffers over the last MAX_WINDOW samples.
        self._subframes = [0] * cap
        self._bers = [0.0] * cap
        # Prefix sums C(k) = Σ field over samples 1..k, stored for the
        # last MAX_WINDOW+1 sample indices so any window w ≤ MAX_WINDOW
        # resolves as C(count) - C(count - w) in O(1) exact integer
        # arithmetic.
        self._cum_pa = [0] * (cap + 1)
        self._cum_idle = [0] * (cap + 1)
        self._cum_rate = [0] * (cap + 1)
        #: ``{window: estimate}`` memo for the current sample version.
        self._memo: dict[int, CellEstimate] = {}
        self._memo_version = -1
        self.last_subframe = -1
        #: Last subframe in which this user itself received a grant.
        self.last_own_grant_subframe = -1

    def update(self, record: SubframeRecord, own_rate_hint: int,
               ber_hint: float) -> None:
        """Fold one decoded subframe in.

        ``own_rate_hint``/``ber_hint`` supply the user's own physical
        rate and BER from its local channel measurements (CQI reporting
        path) for subframes where it received no allocation — when it
        did, the decoded DCI's own MCS is authoritative.
        """
        if record.cell_id != self.cell_id:
            raise ValueError(
                f"record for cell {record.cell_id} fed to estimator "
                f"for cell {self.cell_id}")
        self.users.update(record)
        own_prbs = 0
        own_rate = own_rate_hint
        for message in record.messages:
            if message.rnti == self.own_rnti and message.n_prbs > 0:
                own_prbs += message.n_prbs
                own_rate = max(1, message.tbs_bits // message.n_prbs)
        if own_prbs > 0:
            self.last_own_grant_subframe = record.subframe
        count = self._count
        slot = count % self._cap
        self._subframes[slot] = record.subframe
        self._bers[slot] = ber_hint
        cum_slot = count % (self._cap + 1)
        next_slot = (count + 1) % (self._cap + 1)
        self._cum_pa[next_slot] = self._cum_pa[cum_slot] + own_prbs
        self._cum_idle[next_slot] = self._cum_idle[cum_slot] \
            + record.idle_prbs
        self._cum_rate[next_slot] = self._cum_rate[cum_slot] + own_rate
        self._count = count + 1
        self.last_subframe = record.subframe

    def update_block(self, subframes: list[int], own_prbs: list[int],
                     idle_prbs: list[int], own_rates: list[int],
                     bers: list[float],
                     allocations: list[dict[int, int]]) -> None:
        """Fold a block of pre-scanned subframes in (batch ingest).

        The columnar drain scans each subframe's message columns once
        and hands the derived per-subframe figures here; this loop then
        only touches the rings and the user filter — no records, no
        per-message dispatch.  State after the call is identical to the
        same subframes fed one by one through :meth:`update`.
        """
        count = self._count
        cap, cap1 = self._cap, self._cap + 1
        subs, brs = self._subframes, self._bers
        cum_pa, cum_idle = self._cum_pa, self._cum_idle
        cum_rate = self._cum_rate
        users_update = self.users.update_allocations
        for sf, pa, idle, rate, ber, alloc in zip(
                subframes, own_prbs, idle_prbs, own_rates, bers,
                allocations):
            users_update(sf, alloc)
            if pa > 0:
                self.last_own_grant_subframe = sf
            slot = count % cap
            subs[slot] = sf
            brs[slot] = ber
            cum = count % cap1
            nxt = (count + 1) % cap1
            cum_pa[nxt] = cum_pa[cum] + pa
            cum_idle[nxt] = cum_idle[cum] + idle
            cum_rate[nxt] = cum_rate[cum] + rate
            count += 1
        self._count = count
        if subframes:
            self.last_subframe = subframes[-1]

    def update_one(self, sf: int, pa: int, idle: int, rate: int,
                   ber: float, alloc: dict[int, int]) -> None:
        """Single-subframe :meth:`update_block` (the per-ACK drain in
        steady state folds exactly one buffered subframe, so the block
        machinery's list/zip setup was pure overhead there)."""
        self.users.update_allocations(sf, alloc)
        if pa > 0:
            self.last_own_grant_subframe = sf
        count = self._count
        cap1 = self._cap + 1
        self._subframes[count % self._cap] = sf
        self._bers[count % self._cap] = ber
        cum = count % cap1
        nxt = (count + 1) % cap1
        self._cum_pa[nxt] = self._cum_pa[cum] + pa
        self._cum_idle[nxt] = self._cum_idle[cum] + idle
        self._cum_rate[nxt] = self._cum_rate[cum] + rate
        self._count = count + 1
        self.last_subframe = sf

    # ------------------------------------------------------------------
    def samples(self) -> list[CellSample]:
        """The retained sample window, oldest first (introspection)."""
        count = self._count
        n = min(count, self._cap)
        out = []
        for k in range(count - n, count):
            cum, nxt = k % (self._cap + 1), (k + 1) % (self._cap + 1)
            out.append(CellSample(
                self._subframes[k % self._cap],
                self._cum_pa[nxt] - self._cum_pa[cum],
                self._cum_idle[nxt] - self._cum_idle[cum],
                self._cum_rate[nxt] - self._cum_rate[cum],
                self._bers[k % self._cap]))
        return out

    # ------------------------------------------------------------------
    def estimate(self, window_subframes: int) -> CellEstimate:
        """Average the most recent ``window_subframes`` samples (Eqn. 3).

        Estimates are memoized per window size until the next
        :meth:`update`; callers must treat the returned
        :class:`CellEstimate` as read-only.
        """
        if window_subframes < 1:
            raise ValueError("window must be positive")
        count = self._count
        if count == 0:
            return CellEstimate(self.cell_id, 0.0, 0.0, 0.0, 0.0, 1, 0.0,
                                coverage=0.0)
        if self._memo_version != count:
            self._memo.clear()
            self._memo_version = count
        cached = self._memo.get(window_subframes)
        if cached is not None:
            return cached

        n = min(window_subframes, count, self._cap)
        cap, cap1 = self._cap, self._cap + 1
        lo, hi = (count - n) % cap1, count % cap1
        mean_pa = (self._cum_pa[hi] - self._cum_pa[lo]) / n
        mean_idle = (self._cum_idle[hi] - self._cum_idle[lo]) / n
        mean_rate = (self._cum_rate[hi] - self._cum_rate[lo]) / n
        # The BER field is a float: a prefix-sum difference would round
        # differently from the naive chronological sum, so it is summed
        # left-to-right over the window (then memoized until the next
        # sample arrives).
        bers = self._bers
        ber_sum = 0.0
        for k in range(count - n, count):
            ber_sum += bers[k % cap]
        mean_ber = ber_sum / n
        # Decode gaps widen the subframe span the n samples cover.
        first = self._subframes[(count - n) % cap]
        last = self._subframes[(count - 1) % cap]
        span = max(1, last - first + 1)
        coverage = min(1.0, n / span)
        if self.filter_control_users:
            users = self.users.data_user_count(include=self.own_rnti)
        else:
            users = max(1, len(self.users.detected_users()
                               | {self.own_rnti}))
        physical = mean_rate * (mean_pa + mean_idle / users)
        fair = mean_rate * self.total_prbs / users
        out = CellEstimate(self.cell_id, physical, fair, mean_pa,
                           mean_idle, users, mean_ber,
                           coverage=coverage)
        self._memo[window_subframes] = out
        return out
