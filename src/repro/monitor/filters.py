"""Active-user detection and control-traffic filtering (§4.2.1).

The monitor counts the users sharing each cell, but many detected users
are only receiving parameter updates (Figure 7): 68.2% are active for
exactly one subframe on exactly four PRBs.  Counting them in the
fair-share denominator ``N`` would starve real data flows, so the paper
filters on activity length and bandwidth: ``Ta > 1`` subframes and
``Pa > 4`` PRBs.  Idle-PRB accounting (Eqn. 4), by contrast, uses
*every* identified user.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..phy.dci import SubframeRecord

#: Default sliding-window length for user counting (the paper uses 40 ms).
DEFAULT_WINDOW_SUBFRAMES = 40
#: Filter thresholds from §4.2.1.
MIN_ACTIVE_SUBFRAMES = 2   # Ta > 1
MIN_AVG_PRBS = 5           # Pa > 4


@dataclass
class UserActivity:
    """Aggregate activity of one RNTI inside the sliding window."""

    active_subframes: int = 0
    total_prbs: int = 0

    @property
    def average_prbs(self) -> float:
        if self.active_subframes == 0:
            return 0.0
        return self.total_prbs / self.active_subframes


@dataclass
class _SubframeUsers:
    subframe: int
    #: ``{rnti: prbs}`` allocations seen this subframe.
    allocations: dict = field(default_factory=dict)


class ActiveUserFilter:
    """Sliding-window user tracker for one cell's control channel.

    The per-user aggregates are maintained *incrementally*: each
    decoded subframe adds its allocations on entry and subtracts them
    when it slides out of the window.  The queries — called once per
    capacity estimate, a measured hot path — then read a small
    ``{rnti: UserActivity}`` dict instead of re-scanning ``window ×
    users`` allocations.  All counters are integers, so the running
    aggregates are exactly what a full rescan would produce.
    """

    def __init__(self,
                 window_subframes: int = DEFAULT_WINDOW_SUBFRAMES) -> None:
        if window_subframes < 1:
            raise ValueError("window must be positive")
        self.window_subframes = window_subframes
        self._window: deque[_SubframeUsers] = deque()
        #: Running per-user aggregates over the current window.
        self._activity: dict[int, UserActivity] = {}

    def update(self, record: SubframeRecord) -> None:
        """Fold one decoded subframe into the window."""
        allocations: dict[int, int] = {}
        for message in record.messages:
            if message.n_prbs > 0:
                allocations[message.rnti] = (
                    allocations.get(message.rnti, 0) + message.n_prbs)
        self.update_allocations(record.subframe, allocations)

    def update_allocations(self, subframe: int,
                           allocations: dict[int, int]) -> None:
        """Fold one subframe's prebuilt ``{rnti: prbs}`` map in.

        Batch-ingest entry point: the columnar drain already scans the
        message columns once, so it hands the aggregated allocations
        straight in instead of paying a second per-message pass here.
        """
        activity = self._activity
        for rnti, prbs in allocations.items():
            act = activity.get(rnti)
            if act is None:
                act = activity[rnti] = UserActivity()
            act.active_subframes += 1
            act.total_prbs += prbs
        window = self._window
        window.append(_SubframeUsers(subframe, allocations))
        if len(window) > self.window_subframes:
            evicted = window.popleft()
            for rnti, prbs in evicted.allocations.items():
                act = activity[rnti]
                act.active_subframes -= 1
                act.total_prbs -= prbs
                if act.active_subframes == 0:
                    del activity[rnti]

    # ------------------------------------------------------------------
    def activity(self) -> dict[int, UserActivity]:
        """Per-user activity aggregated over the window.

        Returns a fresh copy — mutating it does not corrupt the
        filter's running aggregates.
        """
        return {
            rnti: UserActivity(act.active_subframes, act.total_prbs)
            for rnti, act in self._activity.items()}

    def detected_users(self) -> set[int]:
        """Every RNTI seen in the window (Figure 7a, 'All users')."""
        return set(self._activity)

    def data_users(self, include: int | None = None) -> set[int]:
        """Users surviving the ``Ta > 1, Pa > 4`` filter.

        ``include`` forces one RNTI (the monitor's own) into the result:
        the mobile always counts itself as an active user when computing
        its fair share, even before its own flow ramps up.
        """
        users = {
            rnti for rnti, act in self._activity.items()
            if act.active_subframes >= MIN_ACTIVE_SUBFRAMES
            and act.average_prbs >= MIN_AVG_PRBS
        }
        if include is not None:
            users.add(include)
        return users

    def data_user_count(self, include: int | None = None) -> int:
        """The fair-share denominator ``N`` of Eqns. 1-3 (≥ 1)."""
        return max(1, len(self.data_users(include)))
