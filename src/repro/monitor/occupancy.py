"""Cell-occupancy analytics from decoded control channels.

The paper's §2 surveys LTE monitoring tools (LTEye, OWL,
MobileInsight) that decode control channels for *analytics* rather
than congestion control.  This module provides that tooling over the
same DCI stream the PBE monitor consumes: per-cell utilization
timelines, per-user occupancy profiles and busy-hour style summaries —
handy for debugging experiments and for the cell-status
micro-benchmarks of §6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..phy.dci import SubframeBatch, SubframeRecord


@dataclass
class UserOccupancy:
    """Aggregate footprint of one RNTI across an observation."""

    rnti: int
    subframes_active: int = 0
    total_prbs: int = 0
    total_bits: int = 0
    retransmissions: int = 0
    first_subframe: int = -1
    last_subframe: int = -1

    @property
    def mean_prbs(self) -> float:
        if self.subframes_active == 0:
            return 0.0
        return self.total_prbs / self.subframes_active

    @property
    def span_subframes(self) -> int:
        if self.first_subframe < 0:
            return 0
        return self.last_subframe - self.first_subframe + 1


class OccupancyAnalyzer:
    """Aggregate a cell's control-channel stream into analytics."""

    def __init__(self, cell_id: int, bucket_subframes: int = 1_000)\
            -> None:
        if bucket_subframes < 1:
            raise ValueError("bucket size must be positive")
        self.cell_id = cell_id
        self.bucket_subframes = bucket_subframes
        self.users: dict[int, UserOccupancy] = {}
        self.subframes = 0
        self.total_prbs_seen = 0
        self.allocated_prbs = 0
        #: Per-bucket (utilization fraction, distinct users) series.
        self._bucket_alloc = 0
        self._bucket_capacity = 0
        self._bucket_users: set[int] = set()
        self.utilization_series: list[float] = []
        self.users_series: list[int] = []

    def update(self, record: SubframeRecord) -> None:
        """Fold one decoded subframe in."""
        if record.cell_id != self.cell_id:
            raise ValueError(
                f"record for cell {record.cell_id} fed to analyzer "
                f"for cell {self.cell_id}")
        self.subframes += 1
        self.total_prbs_seen += record.total_prbs
        allocated = record.allocated_prbs
        self.allocated_prbs += allocated
        self._bucket_alloc += allocated
        self._bucket_capacity += record.total_prbs
        for message in record.messages:
            if message.n_prbs <= 0:
                continue
            user = self.users.setdefault(message.rnti,
                                         UserOccupancy(message.rnti))
            user.subframes_active += 1
            user.total_prbs += message.n_prbs
            user.total_bits += message.tbs_bits
            if not message.new_data:
                user.retransmissions += 1
            if user.first_subframe < 0:
                user.first_subframe = record.subframe
            user.last_subframe = record.subframe
            self._bucket_users.add(message.rnti)
        if self.subframes % self.bucket_subframes == 0:
            self._close_bucket()

    def ingest_batch(self, batch: SubframeBatch) -> None:
        """Fold a columnar block in — state after the call is identical
        to feeding ``batch.to_records()`` through :meth:`update`, with
        one pass over the flat message columns instead of per-record
        attribute access."""
        if batch.cell_id != self.cell_id:
            raise ValueError(
                f"batch for cell {batch.cell_id} fed to analyzer "
                f"for cell {self.cell_id}")
        total = batch.total_prbs
        counts = batch.msg_counts
        rnti_col, prbs_col = batch.rnti, batch.prbs
        tbs_col, ndi_col = batch.tbs_bits, batch.ndi
        users = self.users
        base = 0
        for k, sf in enumerate(batch.subframes):
            self.subframes += 1
            self.total_prbs_seen += total
            allocated = 0
            bucket_users = self._bucket_users
            for i in range(base, base + counts[k]):
                p = prbs_col[i]
                allocated += p
                if p <= 0:
                    continue
                r = rnti_col[i]
                user = users.get(r)
                if user is None:
                    user = users[r] = UserOccupancy(r)
                user.subframes_active += 1
                user.total_prbs += p
                user.total_bits += tbs_col[i]
                if not ndi_col[i]:
                    user.retransmissions += 1
                if user.first_subframe < 0:
                    user.first_subframe = sf
                user.last_subframe = sf
                bucket_users.add(r)
            base += counts[k]
            self.allocated_prbs += allocated
            self._bucket_alloc += allocated
            self._bucket_capacity += total
            if self.subframes % self.bucket_subframes == 0:
                self._close_bucket()

    def _close_bucket(self) -> None:
        utilization = (self._bucket_alloc / self._bucket_capacity
                       if self._bucket_capacity else 0.0)
        self.utilization_series.append(utilization)
        self.users_series.append(len(self._bucket_users))
        self._bucket_alloc = 0
        self._bucket_capacity = 0
        self._bucket_users = set()

    # ------------------------------------------------------------------
    @property
    def mean_utilization(self) -> float:
        """Fraction of PRB capacity allocated over the observation."""
        if self.total_prbs_seen == 0:
            return 0.0
        return self.allocated_prbs / self.total_prbs_seen

    def top_users(self, n: int = 5) -> list[UserOccupancy]:
        """Heaviest users by total PRBs consumed."""
        return sorted(self.users.values(),
                      key=lambda u: -u.total_prbs)[:n]

    def retransmission_fraction(self) -> float:
        """Fraction of all scheduled (user, subframe) grants that were
        HARQ retransmissions."""
        active = sum(u.subframes_active for u in self.users.values())
        retx = sum(u.retransmissions for u in self.users.values())
        return retx / active if active else 0.0

    def summary(self) -> dict:
        """JSON-ready roll-up of the observation."""
        return {
            "cell_id": self.cell_id,
            "subframes": self.subframes,
            "mean_utilization": self.mean_utilization,
            "distinct_users": len(self.users),
            "retransmission_fraction": self.retransmission_fraction(),
            "peak_bucket_utilization": (max(self.utilization_series)
                                        if self.utilization_series
                                        else 0.0),
            "mean_bucket_users": (float(np.mean(self.users_series))
                                  if self.users_series else 0.0),
        }
