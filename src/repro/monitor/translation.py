"""Cross-layer bit-rate translation (Eqn. 5, Figure 6).

The capacities the monitor estimates are *physical-layer* capacities;
the sender needs a *transport-layer* goodput.  The two differ by HARQ
retransmission overhead — governed by the transport-block error rate
``1-(1-p)^L`` — and a constant protocol-header overhead γ:

    Cp = Ct + Ct·(1 - (1-p)^L) + γ·Cp            (Eqn. 5)

with ``L = Ct · 1 ms`` the transport-block size when the user takes its
share.  Given measured ``Cp`` and SINR-estimated ``p`` we solve for
``Ct`` by bisection (the left side is strictly increasing in ``Ct``),
and cache results in a quantized lookup table exactly as the paper's
implementation does "to speed up the calculation".
"""

from __future__ import annotations

import math

from ..phy.error import block_error_rate

#: Protocol overhead measured by the paper (§4.2.1).
PROTOCOL_OVERHEAD = 0.068

#: Lookup-table quantization, bits per subframe (1 kbit ≈ 1 Mbit/s).
_CP_QUANTUM = 1_000
#: BER quantization exponent step for the cache key.
_BER_QUANTUM = 0.25


def transport_from_physical(cp_bits_per_subframe: float, ber: float,
                            overhead: float = PROTOCOL_OVERHEAD) -> float:
    """Solve Eqn. 5 for the transport goodput ``Ct`` (bits/subframe)."""
    if cp_bits_per_subframe < 0:
        raise ValueError("capacity must be non-negative")
    if not 0 <= overhead < 1:
        raise ValueError("overhead must be in [0, 1)")
    if cp_bits_per_subframe == 0:
        return 0.0
    target = (1.0 - overhead) * cp_bits_per_subframe

    def surplus(ct: float) -> float:
        tbler = block_error_rate(ber, int(ct))
        return ct * (1.0 + tbler) - target

    lo, hi = 0.0, target
    if surplus(hi) <= 0:  # retransmission overhead ≈ 0
        return hi
    for _ in range(40):
        mid = (lo + hi) / 2
        if surplus(mid) > 0:
            hi = mid
        else:
            lo = mid
    return lo


def physical_from_transport(ct_bits_per_subframe: float, ber: float,
                            overhead: float = PROTOCOL_OVERHEAD) -> float:
    """Forward direction of Eqn. 5 (used by tests and Figure 6a)."""
    if ct_bits_per_subframe < 0:
        raise ValueError("rate must be non-negative")
    tbler = block_error_rate(ber, int(ct_bits_per_subframe))
    return ct_bits_per_subframe * (1.0 + tbler) / (1.0 - overhead)


class TranslationTable:
    """Memoizing wrapper around :func:`transport_from_physical`.

    Physical capacity is quantized to 1 kbit/subframe and BER to quarter
    decades, so steady-state operation hits the cache almost always —
    mirroring the lookup table in the paper's implementation.
    """

    def __init__(self, overhead: float = PROTOCOL_OVERHEAD) -> None:
        self.overhead = overhead
        self._cache: dict[tuple[int, int], float] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    def transport_rate(self, cp_bits_per_subframe: float,
                       ber: float) -> float:
        """Quantized, cached Eqn. 5 solution."""
        cp_q = int(cp_bits_per_subframe // _CP_QUANTUM)
        ber_q = (0 if ber <= 0
                 else round(math.log10(ber) / _BER_QUANTUM))
        key = (cp_q, ber_q)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        ber_rep = 0.0 if ber <= 0 else 10.0 ** (ber_q * _BER_QUANTUM)
        value = transport_from_physical(
            cp_q * _CP_QUANTUM, ber_rep, self.overhead)
        self._cache[key] = value
        return value
