"""PBE-CC reproduction: congestion control via endpoint-centric,
physical-layer bandwidth measurements (Xie, Yi, Jamieson — SIGCOMM 2020).

Package layout
--------------
``repro.net``       discrete-event network core (event loop, links,
                    packets, per-flow logs)
``repro.phy``       LTE/5G physical-layer substrate (PRBs, MCS tables,
                    channels, HARQ, DCI control messages, carriers)
``repro.cell``      base-station MAC (per-user queues, equal-share
                    scheduler, carrier aggregation, control traffic)
``repro.monitor``   the PBE measurement module (control-channel
                    decoding, user filtering, Eqns. 1-5)
``repro.core``      the PBE-CC congestion-control algorithm (sender,
                    mobile client, ACK feedback)
``repro.baselines`` BBR, CUBIC, Reno, Verus, Sprout, Copa, PCC, Vivace
``repro.harness``   Pantheon-like runner, scenarios and metrics
``repro.traces``    workload, mobility and cell-activity generators

Quick start
-----------
>>> from repro.harness import Scenario, run_flow
>>> result = run_flow(Scenario(name="demo", duration_s=3.0), "pbe")
>>> result.summary.average_throughput_mbps  # doctest: +SKIP
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
