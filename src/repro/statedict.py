"""Generic state-dict codec for crash-consistent snapshots.

Checkpointing (see :mod:`repro.harness.checkpoint`) never pickles live
simulation objects directly — objects hold references to the simulator,
to each other and to scheduled events, and a naive pickle would either
fail or silently duplicate shared state.  Instead, every snapshotted
class is *registered* here and encoded as a versioned state tree:

* primitives (``None``/``bool``/``int``/``float``/``str``/``bytes``)
  pass through unchanged;
* containers (``list``/``tuple``/``dict``/``set``/``frozenset``/
  ``deque``/``numpy.ndarray``/``array.array``) recurse over their
  elements (the flat numeric ones copy wholesale);
* registered classes become an :class:`ObjState` marker carrying the
  registry name and an attribute dictionary (``__dict__`` or
  ``__slots__``), minus names listed in the class's ``SNAPSHOT_SKIP``;
* *identity types* (plain data records such as ``Packet`` or
  ``TransportBlock``) ride through the tree as live objects — the whole
  snapshot is pickled as **one** document, so pickle memoization
  preserves aliasing (the same packet queued on a link and referenced
  from a HARQ process decodes back to one shared object);
* RNG streams (``numpy.random.Generator``, ``random.Random``) become
  bit-exact state markers;
* scheduled :class:`repro.net.sim.Event` references are delegated to a
  caller-supplied event codec (the checkpoint layer encodes them as
  heap sequence numbers);
* anything else — callables, open files, unregistered classes —
  **raises** with the offending attribute path, so forgetting a
  ``SNAPSHOT_SKIP`` entry is a loud error instead of a corrupt
  snapshot.

Decoding is two-mode: :func:`materialize` builds a fresh object via
``cls.__new__`` + ``setattr`` (used for dynamically created users whose
rebuilt experiment has no counterpart), while :func:`restore_into`
restores **in place** when the rebuilt object already exists —
recursing into matching sub-objects and mutating matching containers
(``clear`` + refill) rather than replacing them, so identities captured
elsewhere (bound methods in the event heap, closure-captured buffers)
stay valid.
"""

from __future__ import annotations

import random
from array import array
from collections import deque
from typing import Any, Callable, Optional

import numpy as np

#: Class attribute naming instance attributes excluded from snapshots
#: (simulator/back-references, config objects restored from the rebuilt
#: experiment, callables).  Unioned across the MRO.
SKIP_ATTR = "SNAPSHOT_SKIP"

#: Registry of snapshot-able classes: name -> class.
STATE_TYPES: dict[str, type] = {}
#: Reverse map for encoding (exact type match only — no subclasses).
_TYPE_NAMES: dict[type, str] = {}
#: Data-record classes allowed to ride through the tree as-is.
_IDENTITY_TYPES: tuple = ()
_IDENTITY_SET: set = set()

_PRIMITIVES = (type(None), bool, int, float, str, bytes)


class SnapshotError(TypeError):
    """A value in the state tree cannot be encoded or decoded."""


def register_state_type(cls: type, name: Optional[str] = None) -> type:
    """Register ``cls`` for :class:`ObjState` encoding (idempotent)."""
    key = name or cls.__name__
    existing = STATE_TYPES.get(key)
    if existing is not None and existing is not cls:
        raise ValueError(f"state-type name collision: {key!r}")
    STATE_TYPES[key] = cls
    _TYPE_NAMES[cls] = key
    return cls


def register_identity_type(cls: type) -> type:
    """Register a data-record class that rides through snapshots as-is."""
    global _IDENTITY_TYPES
    if cls not in _IDENTITY_SET:
        _IDENTITY_SET.add(cls)
        _IDENTITY_TYPES = tuple(_IDENTITY_SET)
    return cls


def identity_types() -> tuple:
    """The registered identity classes (for unpickler allow-listing)."""
    return _IDENTITY_TYPES


# ---------------------------------------------------------------------
# Markers (plain slotted classes so they pickle compactly and cannot be
# confused with user data, which is never an instance of these).
# ---------------------------------------------------------------------
class ObjState:
    """Encoded registered object: registry name + attribute dict.

    ``oid`` numbers the first encoding of each distinct live object so
    later occurrences can be emitted as :class:`ObjRef` — an object
    aliased from two places (e.g. one channel shared by two users)
    decodes back to **one** object.
    """

    __slots__ = ("type_name", "attrs", "oid")

    def __init__(self, type_name: str, attrs: dict,
                 oid: Optional[int] = None) -> None:
        self.type_name = type_name
        self.attrs = attrs
        self.oid = oid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObjState({self.type_name}, {sorted(self.attrs)})"


class ObjRef:
    """Back-reference to an already-encoded registered object."""

    __slots__ = ("oid",)

    def __init__(self, oid: int) -> None:
        self.oid = oid


class NpRngState:
    """Bit-exact ``numpy.random.Generator`` state."""

    __slots__ = ("state",)

    def __init__(self, state: dict) -> None:
        self.state = state


class PyRngState:
    """Bit-exact ``random.Random`` state."""

    __slots__ = ("state",)

    def __init__(self, state: tuple) -> None:
        self.state = state


class EventRef:
    """Reference to a queued simulator event, by heap sequence number."""

    __slots__ = ("seq",)

    def __init__(self, seq: int) -> None:
        self.seq = seq


MARKER_TYPES = (ObjState, ObjRef, NpRngState, PyRngState, EventRef)


# ---------------------------------------------------------------------
# Attribute walking
# ---------------------------------------------------------------------
def _skip_set(cls: type) -> frozenset:
    skips = set()
    for klass in cls.__mro__:
        skips.update(klass.__dict__.get(SKIP_ATTR, ()))
    return frozenset(skips)


def _slot_names(cls: type) -> list[str]:
    names: list[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(s for s in slots if s not in ("__dict__", "__weakref__"))
    return names


def object_attrs(obj: Any) -> dict:
    """Snapshot-relevant attributes of a registered object."""
    skips = _skip_set(type(obj))
    attrs: dict = {}
    if hasattr(obj, "__dict__"):
        for name, value in vars(obj).items():
            if name not in skips:
                attrs[name] = value
    for name in _slot_names(type(obj)):
        if name in skips or name in attrs:
            continue
        try:
            attrs[name] = getattr(obj, name)
        except AttributeError:
            continue  # slot never assigned
    return attrs


# ---------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------
class EncodeContext:
    """Hooks the checkpoint layer supplies to the generic encoder."""

    def __init__(self, event_type: Optional[type] = None,
                 encode_event: Optional[Callable[[Any, str], Any]] = None,
                 ) -> None:
        self.event_type = event_type
        self.encode_event = encode_event
        #: ``id(obj) -> oid`` for already-encoded registered objects.
        self.memo: dict[int, int] = {}
        #: Strong refs so ids in ``memo`` cannot be recycled mid-encode.
        self.memo_refs: list = []
        self.next_oid = 0


#: Exact types whose values encode (and decode) as themselves. Large
#: homogeneous containers of these — packet timestamp lists, rate
#: deques — are the bulk of a busy snapshot, so the container branches
#: below skip per-element recursion when every element is scalar.
_SCALAR_TYPES = frozenset((bool, type(None), int, float, str, bytes))


def _all_scalar(seq: Any) -> bool:
    return all(type(v) in _SCALAR_TYPES for v in seq)


def _shallow_data(seq: Any) -> bool:
    """True when every element is a scalar or a tuple of scalars.

    Such containers copy in one pass; the scalar tuples are immutable,
    so sharing them between the live object and the snapshot is safe.
    """
    return all(type(v) in _SCALAR_TYPES
               or (type(v) is tuple and _all_scalar(v))
               for v in seq)


def encode_value(value: Any, ctx: Optional[EncodeContext] = None,
                 path: str = "$") -> Any:
    """Encode one value into the pickle-safe state tree."""
    if ctx is None:
        ctx = EncodeContext()
    if isinstance(value, bool) or value is None:
        return value
    tp = type(value)
    if tp in (int, float, str, bytes):
        return value
    if _IDENTITY_TYPES and isinstance(value, _IDENTITY_TYPES):
        return value
    if tp is list:
        if _shallow_data(value):
            return value.copy()
        return [encode_value(v, ctx, f"{path}[{i}]")
                for i, v in enumerate(value)]
    if tp is tuple:
        if _shallow_data(value):
            return value
        return tuple(encode_value(v, ctx, f"{path}[{i}]")
                     for i, v in enumerate(value))
    if tp is dict:
        out = {}
        for key, v in value.items():
            _check_key(key, path)
            out[key] = (v if type(v) in _SCALAR_TYPES
                        else encode_value(v, ctx, f"{path}[{key!r}]"))
        return out
    if tp is deque:
        if _shallow_data(value):
            return deque(value, maxlen=value.maxlen)
        return deque((encode_value(v, ctx, f"{path}[{i}]")
                      for i, v in enumerate(value)), maxlen=value.maxlen)
    if tp in (set, frozenset):
        for v in value:
            _check_key(v, path)
        return tp(value)
    if tp is np.ndarray:
        return value.copy()
    if tp is array:
        return array(value.typecode, value)
    if isinstance(value, np.generic):
        return value
    if tp is np.random.Generator:
        return NpRngState(value.bit_generator.state)
    if tp is random.Random:
        return PyRngState(value.getstate())
    if ctx.event_type is not None and tp is ctx.event_type:
        return ctx.encode_event(value, path)
    name = _TYPE_NAMES.get(tp)
    if name is not None:
        return snapshot_object(value, ctx, path)
    raise SnapshotError(
        f"cannot snapshot {tp.__name__} at {path} — register the type, "
        f"add it to SNAPSHOT_SKIP, or make it an identity type")


def _check_key(key: Any, path: str) -> None:
    """Dict keys / set members must be plain hashable data."""
    if isinstance(key, _PRIMITIVES):
        return
    if isinstance(key, tuple):
        for part in key:
            _check_key(part, path)
        return
    raise SnapshotError(
        f"unsupported dict key / set member {type(key).__name__} at {path}")


def snapshot_object(obj: Any, ctx: Optional[EncodeContext] = None,
                    path: str = "$") -> Any:
    """Encode a registered object (attribute walk minus skips).

    Returns an :class:`ObjRef` when this exact object was already
    encoded through the same context (aliasing preserved on decode).
    """
    if ctx is None:
        ctx = EncodeContext()
    name = _TYPE_NAMES.get(type(obj))
    if name is None:
        raise SnapshotError(
            f"{type(obj).__name__} at {path} is not a registered "
            f"state type")
    prior = ctx.memo.get(id(obj))
    if prior is not None:
        return ObjRef(prior)
    oid = ctx.next_oid
    ctx.next_oid = oid + 1
    ctx.memo[id(obj)] = oid
    ctx.memo_refs.append(obj)
    attrs = {
        attr: encode_value(value, ctx, f"{path}.{attr}")
        for attr, value in object_attrs(obj).items()
    }
    return ObjState(name, attrs, oid)


# ---------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------
class DecodeContext:
    """Hooks the checkpoint layer supplies to the generic decoder."""

    def __init__(self,
                 decode_event: Optional[Callable[[EventRef], Any]] = None,
                 ) -> None:
        self.decode_event = decode_event
        #: ``oid -> decoded object`` for alias resolution.
        self.objects: dict[int, Any] = {}


def decode_value(value: Any, ctx: Optional[DecodeContext] = None) -> Any:
    """Decode one state-tree value into a live object (fresh build)."""
    if ctx is None:
        ctx = DecodeContext()
    tp = type(value)
    if tp is ObjState:
        return materialize(value, ctx)
    if tp is ObjRef:
        try:
            return ctx.objects[value.oid]
        except KeyError:
            raise SnapshotError(
                f"dangling object back-reference (oid {value.oid})"
            ) from None
    if tp is NpRngState:
        rng = np.random.default_rng()
        rng.bit_generator.state = value.state
        return rng
    if tp is PyRngState:
        rng = random.Random()
        rng.setstate(value.state)
        return rng
    if tp is EventRef:
        if ctx.decode_event is None:
            raise SnapshotError("EventRef outside an event-aware decode")
        return ctx.decode_event(value)
    if tp is list:
        if _shallow_data(value):
            return value.copy()
        return [decode_value(v, ctx) for v in value]
    if tp is tuple:
        if _shallow_data(value):
            return value
        return tuple(decode_value(v, ctx) for v in value)
    if tp is dict:
        return {k: (v if type(v) in _SCALAR_TYPES else decode_value(v, ctx))
                for k, v in value.items()}
    if tp is deque:
        if _shallow_data(value):
            return deque(value, maxlen=value.maxlen)
        return deque((decode_value(v, ctx) for v in value),
                     maxlen=value.maxlen)
    if tp is array:
        return array(value.typecode, value)
    return value


def materialize(state: ObjState,
                ctx: Optional[DecodeContext] = None) -> Any:
    """Build a fresh instance of a registered type from its state."""
    if ctx is None:
        ctx = DecodeContext()
    cls = STATE_TYPES.get(state.type_name)
    if cls is None:
        raise SnapshotError(f"unknown state type {state.type_name!r}")
    obj = cls.__new__(cls)
    if state.oid is not None:
        ctx.objects[state.oid] = obj
    for attr, value in state.attrs.items():
        setattr(obj, attr, decode_value(value, ctx))
    finalize = getattr(obj, "_after_restore", None)
    if finalize is not None:
        finalize()
    return obj


def restore_into(obj: Any, state: ObjState,
                 ctx: Optional[DecodeContext] = None) -> Any:
    """Restore ``state`` onto an existing object, in place.

    The rebuilt object keeps its identity (and its skipped attributes —
    simulator references, callbacks, config).  Sub-objects of matching
    registered type are recursed into rather than replaced, and
    matching containers are mutated in place, so references held by the
    event heap or by closures stay valid.
    """
    if ctx is None:
        ctx = DecodeContext()
    cls = STATE_TYPES.get(state.type_name)
    if cls is None:
        raise SnapshotError(f"unknown state type {state.type_name!r}")
    if type(obj) is not cls:
        raise SnapshotError(
            f"restore type mismatch: snapshot has {state.type_name}, "
            f"live object is {type(obj).__name__}")
    if state.oid is not None:
        ctx.objects[state.oid] = obj
    for attr, value in state.attrs.items():
        existing = getattr(obj, attr, None)
        setattr(obj, attr, _restore_value(existing, value, ctx))
    finalize = getattr(obj, "_after_restore", None)
    if finalize is not None:
        finalize()
    return obj


def _restore_value(existing: Any, value: Any, ctx: DecodeContext) -> Any:
    """Decode ``value``, reusing ``existing`` in place when possible."""
    tp = type(value)
    if tp is ObjState:
        cls = STATE_TYPES.get(value.type_name)
        if cls is not None and type(existing) is cls:
            return restore_into(existing, value, ctx)
        return materialize(value, ctx)
    if tp is list and type(existing) is list:
        decoded = [decode_value(v, ctx) for v in value]
        existing[:] = decoded
        return existing
    if tp is deque and type(existing) is deque \
            and existing.maxlen == value.maxlen:
        existing.clear()
        existing.extend(decode_value(v, ctx) for v in value)
        return existing
    if tp is dict and type(existing) is dict:
        out = {}
        for key, v in value.items():
            prior = existing.get(key)
            out[key] = _restore_value(prior, v, ctx)
        existing.clear()
        existing.update(out)
        return existing
    if tp is set and type(existing) is set:
        existing.clear()
        existing.update(value)
        return existing
    if tp is array and type(existing) is array \
            and existing.typecode == value.typecode:
        existing[:] = value
        return existing
    return decode_value(value, ctx)
