"""TCP Vegas [Brakmo, O'Malley, Peterson — SIGCOMM 1994].

The classic delay-based controller the paper's §2 cites as the root of
the delay-based family: compare the *expected* rate (cwnd/BaseRTT)
with the *actual* rate (cwnd/RTT); if the difference says fewer than
``alpha`` packets are queued, grow the window, if more than ``beta``,
shrink it.  On cellular paths Vegas inherits the same ACK-jitter
sensitivity as its descendants (Copa, Verus): HARQ and uplink batching
inflate RTT samples, so Vegas backs off well below capacity.
"""

from __future__ import annotations

from typing import Optional

from ..net.units import MSS_BITS, US_PER_S
from .base import AckContext, CongestionControl
from .windowed import WindowedMin

#: Vegas thresholds, in packets of queueing the flow aims to keep.
ALPHA = 2.0
BETA = 4.0
#: BaseRTT min-filter window, µs.
BASE_RTT_WINDOW_US = 30 * US_PER_S


class Vegas(CongestionControl):
    """Vegas congestion avoidance with slow start."""

    name = "vegas"

    def __init__(self, mss_bits: int = MSS_BITS) -> None:
        self.mss_bits = mss_bits
        self.cwnd = 4.0  # packets
        self._base_rtt = WindowedMin(BASE_RTT_WINDOW_US)
        self._srtt_us = 100_000
        self._in_slow_start = True
        self._round_start_us = 0
        self._rtt_this_round: Optional[int] = None

    def on_ack(self, ctx: AckContext) -> None:
        if ctx.rtt_us <= 0:
            return
        now = ctx.now_us
        self._srtt_us = round(0.875 * self._srtt_us + 0.125 * ctx.rtt_us)
        self._base_rtt.update(now, ctx.rtt_us)
        self._rtt_this_round = ctx.rtt_us
        # One window adjustment per RTT.
        if now - self._round_start_us < self._srtt_us:
            return
        self._round_start_us = now
        base = self._base_rtt.get() or ctx.rtt_us
        expected_pps = self.cwnd * US_PER_S / base
        actual_pps = self.cwnd * US_PER_S / ctx.rtt_us
        diff_packets = (expected_pps - actual_pps) * base / US_PER_S
        if self._in_slow_start:
            if diff_packets > ALPHA:
                self._in_slow_start = False
                self.cwnd = max(2.0, self.cwnd - 1.0)
            else:
                self.cwnd *= 2.0
            return
        if diff_packets < ALPHA:
            self.cwnd += 1.0
        elif diff_packets > BETA:
            self.cwnd = max(2.0, self.cwnd - 1.0)

    def on_loss(self, now_us: int, lost_bits: int,
                inflight_bits: int) -> None:
        self.cwnd = max(2.0, self.cwnd * 0.75)
        self._in_slow_start = False

    def on_timeout(self, now_us: int) -> None:
        self.cwnd = 2.0
        self._in_slow_start = False

    def pacing_rate_bps(self, now_us: int) -> float:
        return 2.0 * self.cwnd * self.mss_bits * US_PER_S / self._srtt_us

    def cwnd_bits(self, now_us: int) -> Optional[float]:
        return self.cwnd * self.mss_bits
