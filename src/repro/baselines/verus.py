"""Verus congestion control [Zaki et al. — SIGCOMM 2015].

Designed for unpredictable cellular networks: instead of inferring
capacity, Verus continuously learns a *delay profile* — the empirical
relationship between sending window and observed end-to-end delay — and
each epoch picks the window that the profile maps to a target delay.
The target delay itself performs additive-increase when delay is near
the floor and backs off multiplicatively when the delay ratio grows.

This is a faithful-in-spirit reimplementation of the published control
loop (epoch timer, delay profile, δ₁/δ₂ increments, R ratio threshold,
loss halving); the curve-fitting details of the original are replaced
by a bucketed profile with EWMA updates.  It reproduces the behaviour
the PBE-CC paper measures: throughput comparable to BBR but with large,
oscillating delays (Figures 13-14, Table 1).
"""

from __future__ import annotations

from typing import Optional

from ..net.units import MSS_BITS, US_PER_S
from .base import AckContext, CongestionControl

#: Epoch length (the Verus paper uses 5 ms).
EPOCH_US = 5_000
#: Delay-ratio threshold R: above it, back the target delay off.
RATIO_THRESHOLD = 2.0
#: Additive target-delay increment δ₁ (µs) when the network looks idle.
DELTA_1_US = 1_000
#: Multiplicative target-delay decrease δ₂ when the ratio is exceeded.
DELTA_2 = 0.7
#: Delay-profile bucket width, µs.
BUCKET_US = 5_000
#: EWMA factor for profile updates.
PROFILE_ALPHA = 0.25


class Verus(CongestionControl):
    """Delay-profile-driven window control."""

    name = "verus"

    def __init__(self, mss_bits: int = MSS_BITS) -> None:
        self.mss_bits = mss_bits
        self.cwnd = 10.0  # packets
        self._profile: dict[int, float] = {}  # delay bucket -> window
        self._d_min_us: Optional[int] = None
        self._d_est_us = 0.0
        self._target_delay_us = 0.0
        self._epoch_start = 0
        self._in_slow_start = True
        self._loss_backoff_until = 0

    # ------------------------------------------------------------------
    def _update_profile(self, delay_us: float, window: float) -> None:
        bucket = int(delay_us // BUCKET_US)
        old = self._profile.get(bucket)
        self._profile[bucket] = (window if old is None else
                                 (1 - PROFILE_ALPHA) * old
                                 + PROFILE_ALPHA * window)

    def _window_for_delay(self, delay_us: float) -> float:
        """Invert the profile: largest learned window at ≤ delay."""
        bucket = int(delay_us // BUCKET_US)
        candidates = [w for b, w in self._profile.items() if b <= bucket]
        if not candidates:
            return self.cwnd
        return max(candidates)

    # ------------------------------------------------------------------
    def on_ack(self, ctx: AckContext) -> None:
        if ctx.rtt_us <= 0:
            return
        now = ctx.now_us
        if self._d_min_us is None or ctx.rtt_us < self._d_min_us:
            self._d_min_us = ctx.rtt_us
        self._d_est_us = (0.875 * self._d_est_us + 0.125 * ctx.rtt_us
                          if self._d_est_us else float(ctx.rtt_us))
        self._update_profile(self._d_est_us, self.cwnd)

        if self._in_slow_start:
            self.cwnd += 1.0
            if (self._d_min_us is not None
                    and self._d_est_us > RATIO_THRESHOLD * self._d_min_us):
                self._in_slow_start = False
            return

        if now - self._epoch_start < EPOCH_US:
            return
        self._epoch_start = now
        ratio = (self._d_est_us / self._d_min_us
                 if self._d_min_us else 1.0)
        if ratio > RATIO_THRESHOLD:
            self._target_delay_us = self._d_est_us * DELTA_2
        else:
            self._target_delay_us = self._d_est_us + DELTA_1_US
        next_window = self._window_for_delay(self._target_delay_us)
        # Verus smooths window changes across the epoch.
        self.cwnd = max(2.0, 0.6 * self.cwnd + 0.4 * next_window + 1.0)

    def on_loss(self, now_us: int, lost_bits: int,
                inflight_bits: int) -> None:
        if now_us < self._loss_backoff_until:
            return
        self.cwnd = max(2.0, self.cwnd / 2)
        self._in_slow_start = False
        self._loss_backoff_until = now_us + 2 * EPOCH_US

    def on_timeout(self, now_us: int) -> None:
        self.cwnd = 2.0
        self._in_slow_start = False

    # ------------------------------------------------------------------
    def pacing_rate_bps(self, now_us: int) -> float:
        rtt = self._d_est_us or 100_000
        return 2.0 * self.cwnd * self.mss_bits * US_PER_S / rtt

    def cwnd_bits(self, now_us: int) -> Optional[float]:
        return self.cwnd * self.mss_bits
