"""Baseline congestion-control algorithms (the paper's comparison set).

Every scheme plugs into the shared :class:`~repro.baselines.base.Sender`
endpoint machinery as a :class:`CongestionControl` strategy:
BBR and CUBIC (deployed kernels), Verus and Sprout (cellular-specific),
Copa, PCC Allegro and PCC Vivace (recent research), plus Reno.
"""

from .base import (
    DUPACK_THRESHOLD,
    AckContext,
    AckingReceiver,
    CongestionControl,
    Sender,
)
from .bbr import (
    PROBE_BW,
    PROBE_BW_GAINS,
    PROBE_RTT,
    STARTUP,
    STARTUP_GAIN,
    Bbr,
)
from .copa import Copa
from .cubic import Cubic, Reno
from .fixedrate import FixedRate
from .pcc import PccAllegro, PccVivace
from .sprout import Sprout
from .vegas import Vegas
from .verus import Verus
from .windowed import WindowedMax, WindowedMin

__all__ = [
    "AckContext", "AckingReceiver", "Bbr", "CongestionControl", "Copa",
    "Cubic", "DUPACK_THRESHOLD", "FixedRate", "PROBE_BW", "PROBE_BW_GAINS",
    "PROBE_RTT",
    "PccAllegro", "PccVivace", "Reno", "STARTUP", "STARTUP_GAIN", "Sender",
    "Sprout", "Vegas", "Verus", "WindowedMax", "WindowedMin",
]
