"""Sprout congestion control [Winstein, Sivaraman, Balakrishnan — NSDI 2013].

Sprout forecasts the cellular link's deliverable packet count over the
next 100 ms from observed packet arrivals, and keeps only as much in
flight as the *cautious* (5th-percentile) forecast allows, targeting a
hard per-packet delay bound.  This reimplementation keeps the published
control structure — tick-based rate estimation, a stochastic forecast
with an uncertainty band, a 100 ms delivery horizon — while replacing
the original's Cauchy-distributed brownian-motion model with a
Gaussian rate model (mean/variance EWMA over 20 ms ticks).

Behaviourally it lands where the paper's evaluation puts Sprout:
very low delay, substantially under-utilized capacity, and almost
never triggering carrier aggregation (Figure 15).
"""

from __future__ import annotations

import math
from typing import Optional

from ..net.units import MSS_BITS, US_PER_S
from .base import AckContext, CongestionControl

#: Forecast horizon (the Sprout paper's 100 ms target).
HORIZON_US = 100_000
#: Rate-estimation tick.
TICK_US = 20_000
#: Gaussian quantile for the cautious forecast (5th percentile).
CAUTION_QUANTILE = 1.645
#: EWMA factor per tick for the rate model.
ALPHA = 0.25


class Sprout(CongestionControl):
    """Cautious-forecast window control."""

    name = "sprout"

    def __init__(self, mss_bits: int = MSS_BITS) -> None:
        self.mss_bits = mss_bits
        self._tick_start = 0
        self._tick_bits = 0
        self._mean_bps = 0.0
        self._var_bps2 = 0.0
        self._srtt_us = 100_000
        self.cwnd = 4.0

    # ------------------------------------------------------------------
    def on_ack(self, ctx: AckContext) -> None:
        now = ctx.now_us
        if ctx.rtt_us > 0:
            self._srtt_us = round(0.875 * self._srtt_us + 0.125 * ctx.rtt_us)
        self._tick_bits += ctx.newly_acked_bits
        if now - self._tick_start < TICK_US:
            return
        elapsed = now - self._tick_start
        sample_bps = self._tick_bits * US_PER_S / elapsed
        self._tick_start = now
        self._tick_bits = 0
        if self._mean_bps == 0.0:
            self._mean_bps = sample_bps
        else:
            error = sample_bps - self._mean_bps
            self._mean_bps += ALPHA * error
            self._var_bps2 = ((1 - ALPHA) * self._var_bps2
                              + ALPHA * error * error)
        self._update_window()

    def _update_window(self) -> None:
        std = math.sqrt(self._var_bps2)
        cautious_bps = max(0.0, self._mean_bps - CAUTION_QUANTILE * std)
        deliverable_bits = cautious_bps * HORIZON_US / US_PER_S
        self.cwnd = max(2.0, deliverable_bits / self.mss_bits)

    def on_loss(self, now_us: int, lost_bits: int,
                inflight_bits: int) -> None:
        self.cwnd = max(2.0, self.cwnd / 2)

    def on_timeout(self, now_us: int) -> None:
        self.cwnd = 2.0
        self._mean_bps /= 2

    # ------------------------------------------------------------------
    def pacing_rate_bps(self, now_us: int) -> float:
        return max(
            1.2e6,
            2.0 * self.cwnd * self.mss_bits * US_PER_S / self._srtt_us)

    def cwnd_bits(self, now_us: int) -> Optional[float]:
        return self.cwnd * self.mss_bits
