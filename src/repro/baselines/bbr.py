"""TCP BBR (v1) congestion control [Cardwell et al., ACM Queue 2016].

The strongest baseline in the paper's evaluation, and the skeleton that
PBE-CC's Internet-bottleneck mode adapts (§4.2.3).  This implementation
follows the BBR v1 state machine: STARTUP (2/ln2 pacing gain, exit when
the bottleneck-bandwidth filter plateaus for three rounds), DRAIN,
PROBE_BW (the eight-phase gain cycle of the paper's Figure 9, each
phase one RTprop long) and PROBE_RTT (cwnd of four packets for 200 ms
every 10 s).

``probe_rate_cap`` is the one extension point PBE-CC uses: a callable
returning an upper bound on the probing rate, implementing the paper's
``Cprobe = min(1.25·BtlBw, Cf)`` (Eqn. 7).  For plain BBR it is None.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..net.units import MSS_BITS, US_PER_S
from .base import AckContext, CongestionControl
from .windowed import WindowedMax, WindowedMin

#: 2/ln2 — BBR's startup pacing/cwnd gain.
STARTUP_GAIN = 2.0 / math.log(2.0)
#: ProbeBW pacing-gain cycle (paper Figure 9).
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
#: BtlBw max-filter window, in round trips.
BTLBW_FILTER_ROUNDS = 10
#: RTprop min-filter window, µs.
RTPROP_WINDOW_US = 10 * US_PER_S
#: PROBE_RTT duration, µs.
PROBE_RTT_DURATION_US = 200_000
#: cwnd gain outside PROBE_RTT.
CWND_GAIN = 2.0

STARTUP, DRAIN, PROBE_BW, PROBE_RTT = "startup", "drain", "probe_bw", \
    "probe_rtt"


class Bbr(CongestionControl):
    """BBR v1 over the shared :class:`~repro.baselines.base.Sender`."""

    name = "bbr"

    #: Checkpointing: the probe cap is a bound method of the embedding
    #: PBE sender (or None); the rebuilt wiring supplies it.
    SNAPSHOT_SKIP = ("probe_rate_cap",)

    def __init__(self, initial_rate_bps: float = 2.4e6,
                 mss_bits: int = MSS_BITS,
                 probe_rate_cap: Optional[Callable[[], Optional[float]]]
                 = None) -> None:
        if initial_rate_bps <= 0:
            raise ValueError("initial rate must be positive")
        self.mss_bits = mss_bits
        self.initial_rate_bps = initial_rate_bps
        self.probe_rate_cap = probe_rate_cap

        self.state = STARTUP
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN

        self._btlbw = WindowedMax(US_PER_S)  # window retuned per RTT
        self._rtprop = WindowedMin(RTPROP_WINDOW_US)
        self._rtprop_stamp = 0
        # Cached filter outputs.  Both filters only change inside
        # on_ack(), so these attributes — refreshed there — are always
        # equal to the filter reads they replace; every other method
        # (and external readers like the PBE sender) hits the cache.
        self.btlbw_bps = 0.0
        self.rtprop_us = 0

        self._round_start_delivered = 0
        self._delivered_bits = 0
        self._round_count = 0

        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self.filled_pipe = False

        self._cycle_index = 0
        self._cycle_stamp = 0
        self._probe_rtt_done_at: Optional[int] = None
        self._probe_rtt_round_done = False

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------
    def bdp_bits(self, gain: float = 1.0) -> float:
        if not self.btlbw_bps or not self.rtprop_us:
            return gain * 10 * self.mss_bits
        return gain * self.btlbw_bps * self.rtprop_us / US_PER_S

    # ------------------------------------------------------------------
    # ACK processing / state machine
    # ------------------------------------------------------------------
    def on_ack(self, ctx: AckContext) -> None:
        now = ctx.now_us
        self._delivered_bits += ctx.newly_acked_bits

        if ctx.rtt_us > 0:
            previous_min = self._rtprop.get()
            self._rtprop.update(now, ctx.rtt_us)
            value = self._rtprop.get()
            self.rtprop_us = int(value) if value else 0
            # The staleness stamp refreshes only when the minimum itself
            # is refreshed — otherwise PROBE_RTT could never trigger.
            if previous_min is None or ctx.rtt_us <= previous_min:
                self._rtprop_stamp = now
        rtprop = max(self.rtprop_us, 1_000)
        self._btlbw.window_us = BTLBW_FILTER_ROUNDS * rtprop
        if ctx.delivery_rate_bps > 0 and not ctx.app_limited:
            self._btlbw.update(now, ctx.delivery_rate_bps)
            self.btlbw_bps = self._btlbw.get() or 0.0

        # Round accounting: one round per RTprop worth of delivered data.
        round_ended = (self._delivered_bits - self._round_start_delivered
                       >= self.bdp_bits())
        if round_ended:
            self._round_start_delivered = self._delivered_bits
            self._round_count += 1
            self._check_full_pipe()

        if self.state == STARTUP and self.filled_pipe:
            self._enter_drain()
        if self.state == DRAIN and ctx.inflight_bits <= self.bdp_bits():
            self._enter_probe_bw(now)
        if self.state == PROBE_BW:
            self._advance_cycle(now, ctx.inflight_bits)
        self._maybe_enter_probe_rtt(now, ctx.inflight_bits)
        if self.state == PROBE_RTT:
            self._run_probe_rtt(now, ctx.inflight_bits, round_ended)

    def _check_full_pipe(self) -> None:
        if self.filled_pipe or self.state != STARTUP:
            return
        if self.btlbw_bps >= self._full_bw * 1.25:
            self._full_bw = self.btlbw_bps
            self._full_bw_rounds = 0
            return
        self._full_bw_rounds += 1
        if self._full_bw_rounds >= 3:
            self.filled_pipe = True

    def _enter_drain(self) -> None:
        self.state = DRAIN
        self.pacing_gain = 1.0 / STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN

    def enter_probe_bw(self, now_us: int) -> None:
        """Jump straight into PROBE_BW (used by PBE-CC's §4.2.3 entry)."""
        self._enter_probe_bw(now_us)

    def _enter_probe_bw(self, now_us: int) -> None:
        self.state = PROBE_BW
        self.cwnd_gain = CWND_GAIN
        self._cycle_index = 2  # start in a cruise phase
        self._cycle_stamp = now_us
        self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    def _advance_cycle(self, now_us: int, inflight_bits: int) -> None:
        rtprop = max(self.rtprop_us, 1_000)
        if now_us - self._cycle_stamp < rtprop:
            return
        # Hold the drain phase until the probe's queue actually drains.
        if (self.pacing_gain < 1.0 and inflight_bits > self.bdp_bits()):
            return
        self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
        self._cycle_stamp = now_us
        self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    def _maybe_enter_probe_rtt(self, now_us: int,
                               inflight_bits: int) -> None:
        if self.state == PROBE_RTT or not self.rtprop_us:
            return
        if now_us - self._rtprop_stamp <= RTPROP_WINDOW_US:
            return
        self.state = PROBE_RTT
        self.pacing_gain = 1.0
        self._probe_rtt_done_at = None

    def _run_probe_rtt(self, now_us: int, inflight_bits: int,
                       round_ended: bool) -> None:
        if (self._probe_rtt_done_at is None
                and inflight_bits <= 4 * self.mss_bits):
            self._probe_rtt_done_at = now_us + PROBE_RTT_DURATION_US
        if (self._probe_rtt_done_at is not None
                and now_us >= self._probe_rtt_done_at):
            self._rtprop_stamp = now_us
            if self.filled_pipe:
                self._enter_probe_bw(now_us)
            else:
                self.state = STARTUP
                self.pacing_gain = STARTUP_GAIN
                self.cwnd_gain = STARTUP_GAIN

    def on_timeout(self, now_us: int) -> None:
        # Fall back to startup with a clean bandwidth estimate.
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self.filled_pipe = False
        self.state = STARTUP
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN

    # ------------------------------------------------------------------
    # Control outputs
    # ------------------------------------------------------------------
    def pacing_rate_bps(self, now_us: int) -> float:
        if not self.btlbw_bps:
            return self.initial_rate_bps
        rate = self.pacing_gain * self.btlbw_bps
        if (self.state == PROBE_BW and self.pacing_gain > 1.0
                and self.probe_rate_cap is not None):
            cap = self.probe_rate_cap()
            if cap is not None:
                rate = min(rate, max(cap, self.btlbw_bps))
        return rate

    def cwnd_bits(self, now_us: int) -> Optional[float]:
        if self.state == PROBE_RTT:
            return 4.0 * self.mss_bits
        return max(4.0 * self.mss_bits, self.bdp_bits(self.cwnd_gain))
