"""TCP BBR (v1) congestion control [Cardwell et al., ACM Queue 2016].

The strongest baseline in the paper's evaluation, and the skeleton that
PBE-CC's Internet-bottleneck mode adapts (§4.2.3).  This implementation
follows the BBR v1 state machine: STARTUP (2/ln2 pacing gain, exit when
the bottleneck-bandwidth filter plateaus for three rounds), DRAIN,
PROBE_BW (the eight-phase gain cycle of the paper's Figure 9, each
phase one RTprop long) and PROBE_RTT (cwnd of four packets for 200 ms
every 10 s).

``probe_rate_cap`` is the one extension point PBE-CC uses: a callable
returning an upper bound on the probing rate, implementing the paper's
``Cprobe = min(1.25·BtlBw, Cf)`` (Eqn. 7).  For plain BBR it is None.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..net.units import MSS_BITS, US_PER_S
from .base import AckContext, CongestionControl
from .windowed import WindowedMax, WindowedMin

#: 2/ln2 — BBR's startup pacing/cwnd gain.
STARTUP_GAIN = 2.0 / math.log(2.0)
#: ProbeBW pacing-gain cycle (paper Figure 9).
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
#: BtlBw max-filter window, in round trips.
BTLBW_FILTER_ROUNDS = 10
#: RTprop min-filter window, µs.
RTPROP_WINDOW_US = 10 * US_PER_S
#: PROBE_RTT duration, µs.
PROBE_RTT_DURATION_US = 200_000
#: cwnd gain outside PROBE_RTT.
CWND_GAIN = 2.0

STARTUP, DRAIN, PROBE_BW, PROBE_RTT = "startup", "drain", "probe_bw", \
    "probe_rtt"


class Bbr(CongestionControl):
    """BBR v1 over the shared :class:`~repro.baselines.base.Sender`."""

    name = "bbr"

    #: Checkpointing: the probe cap is a bound method of the embedding
    #: PBE sender (or None); the rebuilt wiring supplies it.
    SNAPSHOT_SKIP = ("probe_rate_cap",)

    def __init__(self, initial_rate_bps: float = 2.4e6,
                 mss_bits: int = MSS_BITS,
                 probe_rate_cap: Optional[Callable[[], Optional[float]]]
                 = None) -> None:
        if initial_rate_bps <= 0:
            raise ValueError("initial rate must be positive")
        self.mss_bits = mss_bits
        self.initial_rate_bps = initial_rate_bps
        self.probe_rate_cap = probe_rate_cap

        self.state = STARTUP
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN

        self._btlbw = WindowedMax(US_PER_S)  # window retuned per RTT
        self._rtprop = WindowedMin(RTPROP_WINDOW_US)
        self._rtprop_stamp = 0
        # Cached filter outputs.  Both filters only change inside
        # on_ack(), so these attributes — refreshed there — are always
        # equal to the filter reads they replace; every other method
        # (and external readers like the PBE sender) hits the cache.
        self.btlbw_bps = 0.0
        self.rtprop_us = 0

        self._round_start_delivered = 0
        self._delivered_bits = 0
        self._round_count = 0

        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self.filled_pipe = False

        self._cycle_index = 0
        self._cycle_stamp = 0
        self._probe_rtt_done_at: Optional[int] = None
        self._probe_rtt_round_done = False

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------
    def bdp_bits(self, gain: float = 1.0) -> float:
        if not self.btlbw_bps or not self.rtprop_us:
            return gain * 10 * self.mss_bits
        return gain * self.btlbw_bps * self.rtprop_us / US_PER_S

    # ------------------------------------------------------------------
    # ACK processing / state machine
    # ------------------------------------------------------------------
    def on_ack(self, ctx: AckContext) -> None:
        now = ctx.now_us
        self._delivered_bits += ctx.newly_acked_bits

        if ctx.rtt_us > 0:
            previous_min = self._rtprop.get()
            self._rtprop.update(now, ctx.rtt_us)
            value = self._rtprop.get()
            self.rtprop_us = int(value) if value else 0
            # The staleness stamp refreshes only when the minimum itself
            # is refreshed — otherwise PROBE_RTT could never trigger.
            if previous_min is None or ctx.rtt_us <= previous_min:
                self._rtprop_stamp = now
        rtprop = max(self.rtprop_us, 1_000)
        self._btlbw.window_us = BTLBW_FILTER_ROUNDS * rtprop
        if ctx.delivery_rate_bps > 0 and not ctx.app_limited:
            self._btlbw.update(now, ctx.delivery_rate_bps)
            self.btlbw_bps = self._btlbw.get() or 0.0

        # Round accounting: one round per RTprop worth of delivered data.
        round_ended = (self._delivered_bits - self._round_start_delivered
                       >= self.bdp_bits())
        if round_ended:
            self._round_start_delivered = self._delivered_bits
            self._round_count += 1
            self._check_full_pipe()

        if self.state == STARTUP and self.filled_pipe:
            self._enter_drain()
        if self.state == DRAIN and ctx.inflight_bits <= self.bdp_bits():
            self._enter_probe_bw(now)
        if self.state == PROBE_BW:
            self._advance_cycle(now, ctx.inflight_bits)
        self._maybe_enter_probe_rtt(now, ctx.inflight_bits)
        if self.state == PROBE_RTT:
            self._run_probe_rtt(now, ctx.inflight_bits, round_ended)

    def on_ack_block(self, contexts: list[AckContext]) -> None:
        """Columnar BBR over one grant cycle's ACKs, byte-identical.

        Fast-path precondition: one flush event (every context shares
        ``now_us``), a warm RTprop filter whose head sample neither
        expires at ``now`` nor is undercut by any RTT in the block, and
        a cache in sync with that head.  Under it the RTprop minimum —
        and therefore the BtlBw window and the BDP's rtprop factor —
        are *block constants*, so both filters collapse to per-block
        aggregates: a running min/max in locals for the intermediate
        cache reads, plus **one** deque insert of the block extreme at
        the end.  (Sequential inserts of the non-extreme samples only
        add tail entries that share the block's timestamp and are
        dominated by the extreme — they expire in the same instant the
        extreme does and can never surface as the filter output, so
        eliding them is unobservable; decisions and cached outputs are
        pinned equal by ``tests/test_cc_block.py``.)  The round
        accounting and the full state machine run inlined on hoisted
        locals with a single write-back.

        Startup transients (cold filter, a new minimum, an expiring
        head) take the scalar loop — exactly PR 9's hoisted reference.
        """
        if len(contexts) == 1:
            self.on_ack(contexts[0])
            return
        now = contexts[0].now_us
        rt_samples = self._rtprop._samples
        if (contexts[-1].now_us != now or not rt_samples
                or rt_samples[0][0] < now - RTPROP_WINDOW_US
                or self.rtprop_us != int(rt_samples[0][1])):
            on_ack = self.on_ack
            for ctx in contexts:
                on_ack(ctx)
            return
        rt_head = rt_samples[0][1]
        block_min = None  # min RTT once per AckBatch, not per ACK
        for ctx in contexts:
            rtt = ctx.rtt_us
            if rtt > 0 and (block_min is None or rtt < block_min):
                block_min = rtt
        if block_min is not None and block_min < rt_head:
            on_ack = self.on_ack  # new minimum: scalar reference
            for ctx in contexts:
                on_ack(ctx)
            return

        # ---- Block constants ------------------------------------------
        rtprop_cache = self.rtprop_us          # cannot move this block
        rtprop_floor = max(rtprop_cache, 1_000)
        bt_filter = self._btlbw
        bt_filter.window_us = BTLBW_FILTER_ROUNDS * rtprop_floor
        bt_samples = bt_filter._samples
        mss_bits = self.mss_bits
        probe_rtt_floor = 4 * mss_bits

        # ---- Hoisted state --------------------------------------------
        delivered = self._delivered_bits
        round_start_delivered = self._round_start_delivered
        round_count = self._round_count
        rtprop_stamp = self._rtprop_stamp
        btlbw_cache = self.btlbw_bps
        bw_run = None          # running max once the filter is touched
        block_rate_max = None  # max delivery-rate sample this batch
        full_bw = self._full_bw
        full_bw_rounds = self._full_bw_rounds
        filled_pipe = self.filled_pipe
        state = self.state
        pacing_gain = self.pacing_gain
        cwnd_gain = self.cwnd_gain
        cycle_index = self._cycle_index
        cycle_stamp = self._cycle_stamp
        probe_rtt_done_at = self._probe_rtt_done_at
        bdp = (btlbw_cache * rtprop_cache / US_PER_S
               if btlbw_cache and rtprop_cache else 10.0 * mss_bits)

        for ctx in contexts:
            delivered += ctx.newly_acked_bits
            rtt = ctx.rtt_us
            if rtt > 0 and rtt <= rt_head:
                # The minimum itself was re-observed: refresh staleness.
                rtprop_stamp = now
            rate = ctx.delivery_rate_bps
            if rate > 0 and not ctx.app_limited:
                if bw_run is None:
                    # First touch: expire under the (constant) window,
                    # then run the max in locals.
                    horizon = now - bt_filter.window_us
                    while bt_samples and bt_samples[0][0] < horizon:
                        bt_samples.popleft()
                    bw_run = bt_samples[0][1] if bt_samples else 0.0
                    block_rate_max = rate
                elif rate > block_rate_max:
                    block_rate_max = rate
                if rate > bw_run:
                    bw_run = rate
                if bw_run != btlbw_cache:
                    btlbw_cache = bw_run
                    bdp = (btlbw_cache * rtprop_cache / US_PER_S
                           if btlbw_cache and rtprop_cache
                           else 10.0 * mss_bits)

            if delivered - round_start_delivered >= bdp:
                round_start_delivered = delivered
                round_count += 1
                # _check_full_pipe, inlined on locals.
                if not filled_pipe and state == STARTUP:
                    if btlbw_cache >= full_bw * 1.25:
                        full_bw = btlbw_cache
                        full_bw_rounds = 0
                    else:
                        full_bw_rounds += 1
                        if full_bw_rounds >= 3:
                            filled_pipe = True
                round_ended = True
            else:
                round_ended = False

            inflight = ctx.inflight_bits
            if state == STARTUP and filled_pipe:  # _enter_drain
                state = DRAIN
                pacing_gain = 1.0 / STARTUP_GAIN
                cwnd_gain = STARTUP_GAIN
            if state == DRAIN and inflight <= bdp:  # _enter_probe_bw
                state = PROBE_BW
                cwnd_gain = CWND_GAIN
                cycle_index = 2
                cycle_stamp = now
                pacing_gain = PROBE_BW_GAINS[2]
            if state == PROBE_BW:  # _advance_cycle
                if now - cycle_stamp >= rtprop_floor and not (
                        pacing_gain < 1.0 and inflight > bdp):
                    cycle_index = (cycle_index + 1) % len(PROBE_BW_GAINS)
                    cycle_stamp = now
                    pacing_gain = PROBE_BW_GAINS[cycle_index]
            if (state != PROBE_RTT and rtprop_cache
                    and now - rtprop_stamp > RTPROP_WINDOW_US):
                state = PROBE_RTT  # _maybe_enter_probe_rtt
                pacing_gain = 1.0
                probe_rtt_done_at = None
            if state == PROBE_RTT:  # _run_probe_rtt
                if (probe_rtt_done_at is None
                        and inflight <= probe_rtt_floor):
                    probe_rtt_done_at = now + PROBE_RTT_DURATION_US
                if (probe_rtt_done_at is not None
                        and now >= probe_rtt_done_at):
                    rtprop_stamp = now
                    if filled_pipe:  # _enter_probe_bw
                        state = PROBE_BW
                        cwnd_gain = CWND_GAIN
                        cycle_index = 2
                        cycle_stamp = now
                        pacing_gain = PROBE_BW_GAINS[2]
                    else:
                        state = STARTUP
                        pacing_gain = STARTUP_GAIN
                        cwnd_gain = STARTUP_GAIN

        # ---- Write-back + the per-block filter inserts ----------------
        if block_min is not None:
            while rt_samples and rt_samples[-1][1] >= block_min:
                rt_samples.pop()
            rt_samples.append((now, block_min))
        if block_rate_max is not None:
            while bt_samples and bt_samples[-1][1] <= block_rate_max:
                bt_samples.pop()
            bt_samples.append((now, block_rate_max))
        self._delivered_bits = delivered
        self._round_start_delivered = round_start_delivered
        self._round_count = round_count
        self._rtprop_stamp = rtprop_stamp
        self.btlbw_bps = btlbw_cache
        self._full_bw = full_bw
        self._full_bw_rounds = full_bw_rounds
        self.filled_pipe = filled_pipe
        self.state = state
        self.pacing_gain = pacing_gain
        self.cwnd_gain = cwnd_gain
        self._cycle_index = cycle_index
        self._cycle_stamp = cycle_stamp
        self._probe_rtt_done_at = probe_rtt_done_at

    def _check_full_pipe(self) -> None:
        if self.filled_pipe or self.state != STARTUP:
            return
        if self.btlbw_bps >= self._full_bw * 1.25:
            self._full_bw = self.btlbw_bps
            self._full_bw_rounds = 0
            return
        self._full_bw_rounds += 1
        if self._full_bw_rounds >= 3:
            self.filled_pipe = True

    def _enter_drain(self) -> None:
        self.state = DRAIN
        self.pacing_gain = 1.0 / STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN

    def enter_probe_bw(self, now_us: int) -> None:
        """Jump straight into PROBE_BW (used by PBE-CC's §4.2.3 entry)."""
        self._enter_probe_bw(now_us)

    def _enter_probe_bw(self, now_us: int) -> None:
        self.state = PROBE_BW
        self.cwnd_gain = CWND_GAIN
        self._cycle_index = 2  # start in a cruise phase
        self._cycle_stamp = now_us
        self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    def _advance_cycle(self, now_us: int, inflight_bits: int) -> None:
        rtprop = max(self.rtprop_us, 1_000)
        if now_us - self._cycle_stamp < rtprop:
            return
        # Hold the drain phase until the probe's queue actually drains.
        if (self.pacing_gain < 1.0 and inflight_bits > self.bdp_bits()):
            return
        self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
        self._cycle_stamp = now_us
        self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    def _maybe_enter_probe_rtt(self, now_us: int,
                               inflight_bits: int) -> None:
        if self.state == PROBE_RTT or not self.rtprop_us:
            return
        if now_us - self._rtprop_stamp <= RTPROP_WINDOW_US:
            return
        self.state = PROBE_RTT
        self.pacing_gain = 1.0
        self._probe_rtt_done_at = None

    def _run_probe_rtt(self, now_us: int, inflight_bits: int,
                       round_ended: bool) -> None:
        if (self._probe_rtt_done_at is None
                and inflight_bits <= 4 * self.mss_bits):
            self._probe_rtt_done_at = now_us + PROBE_RTT_DURATION_US
        if (self._probe_rtt_done_at is not None
                and now_us >= self._probe_rtt_done_at):
            self._rtprop_stamp = now_us
            if self.filled_pipe:
                self._enter_probe_bw(now_us)
            else:
                self.state = STARTUP
                self.pacing_gain = STARTUP_GAIN
                self.cwnd_gain = STARTUP_GAIN

    def on_timeout(self, now_us: int) -> None:
        # Fall back to startup with a clean bandwidth estimate.
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self.filled_pipe = False
        self.state = STARTUP
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN

    # ------------------------------------------------------------------
    # Control outputs
    # ------------------------------------------------------------------
    def pacing_rate_bps(self, now_us: int) -> float:
        if not self.btlbw_bps:
            return self.initial_rate_bps
        rate = self.pacing_gain * self.btlbw_bps
        if (self.state == PROBE_BW and self.pacing_gain > 1.0
                and self.probe_rate_cap is not None):
            cap = self.probe_rate_cap()
            if cap is not None:
                rate = min(rate, max(cap, self.btlbw_bps))
        return rate

    def cwnd_bits(self, now_us: int) -> Optional[float]:
        if self.state == PROBE_RTT:
            return 4.0 * self.mss_bits
        return max(4.0 * self.mss_bits, self.bdp_bits(self.cwnd_gain))
