"""Fixed-offered-load sender (no congestion control).

Several of the paper's drill-down experiments drive the link with a
constant offered load rather than a congestion-controlled flow: the
40→6 Mbit/s carrier-aggregation timeline (Figure 2), the overhead
sweep (Figure 6a), the retransmission-delay study (Figure 8) and the
60 Mbit/s controlled competitor (Figures 18-19).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..net.units import MSS_BITS, US_PER_S
from .base import AckContext, CongestionControl


class FixedRate(CongestionControl):
    """Pace at a constant (or scheduled piecewise-constant) rate."""

    name = "cbr"

    def __init__(self, rate_bps: float = 10e6,
                 schedule: Optional[Sequence[tuple[float, float]]] = None,
                 mss_bits: int = MSS_BITS) -> None:
        """``schedule`` is an optional ``(start_s, rate_bps)`` list that
        overrides ``rate_bps`` from each start time onward (sorted).
        """
        if rate_bps < 0:
            raise ValueError("rate must be non-negative")
        if schedule is not None:
            starts = [s for s, _ in schedule]
            if any(b <= a for a, b in zip(starts, starts[1:])):
                raise ValueError("schedule times must increase")
        self.rate_bps = rate_bps
        self.schedule = list(schedule) if schedule else None
        self.mss_bits = mss_bits

    def on_ack(self, ctx: AckContext) -> None:
        pass  # open loop: ACKs are ignored

    def pacing_rate_bps(self, now_us: int) -> float:
        if self.schedule is None:
            return self.rate_bps
        rate = self.rate_bps
        for start_s, value in self.schedule:
            if now_us >= start_s * US_PER_S:
                rate = value
            else:
                break
        return rate

    def cwnd_bits(self, now_us: int) -> Optional[float]:
        return None  # open loop: no inflight cap
