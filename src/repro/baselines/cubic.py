"""CUBIC congestion control [Ha, Rhee, Xu — SIGOPS OSR 2008].

The Linux default and one of the paper's two in-kernel baselines.
Loss-based: the window grows as a cubic function of time since the last
loss, which over a deep per-user cellular buffer produces the paper's
observed behaviour — "highly unpredictable, alternating between high
throughput (but high delay) and low throughput (but low delay)".
"""

from __future__ import annotations

from typing import Optional

from ..net.units import MSS_BITS, US_PER_S
from .base import AckContext, CongestionControl

#: CUBIC scaling constant (packets/s³).
CUBIC_C = 0.4
#: Multiplicative decrease factor.
CUBIC_BETA = 0.7
#: Initial congestion window, packets.
INITIAL_CWND = 10.0


class Cubic(CongestionControl):
    """CUBIC with fast convergence and the TCP-friendly region."""

    name = "cubic"

    def __init__(self, mss_bits: int = MSS_BITS) -> None:
        self.mss_bits = mss_bits
        self.cwnd = INITIAL_CWND          # packets
        self.ssthresh = float("inf")      # packets
        self._w_max = 0.0
        self._k = 0.0
        self._epoch_start: Optional[int] = None
        self._w_est = 0.0                 # TCP-friendly estimate
        self._acks_in_epoch = 0
        self._srtt_us = 100_000
        self._last_loss_us = -10**9

    # ------------------------------------------------------------------
    def on_ack(self, ctx: AckContext) -> None:
        if ctx.rtt_us > 0:
            self._srtt_us = round(0.875 * self._srtt_us + 0.125 * ctx.rtt_us)
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0  # slow start
            return
        self._cubic_update(ctx.now_us)

    def on_ack_block(self, contexts: list[AckContext]) -> None:
        """Columnar window growth over one grant cycle's ACKs.

        Byte-identical to the scalar loop.  All contexts in a block
        share ``now_us`` (one flush event) and ``on_loss`` never
        interleaves inside a block call, so the cubic terms that
        :meth:`_cubic_update` recomputes per ACK — ``t``, the cubic
        ``target`` and the TCP-friendly coefficients — are *block
        constants* once the epoch is (re)anchored at the block's first
        congestion-avoidance ACK.  Only the srtt EWMA, the slow-start
        increment and the ``cwnd`` recurrence stay sequential (each
        step reads the previous step's ``cwnd``).
        """
        if len(contexts) == 1:
            self.on_ack(contexts[0])
            return
        now = contexts[0].now_us
        if contexts[-1].now_us != now:  # not one flush: keep scalar order
            on_ack = self.on_ack
            for ctx in contexts:
                on_ack(ctx)
            return
        srtt = self._srtt_us
        cwnd = self.cwnd
        ssthresh = self.ssthresh
        epoch_start = self._epoch_start
        w_max = self._w_max
        k = self._k
        w_est = self._w_est
        acks_in_epoch = self._acks_in_epoch
        # Lazily resolved block constants (first CA ACK of the block).
        target = None
        t = 0.0
        w_base = 0.0
        w_coeff = 3 * (1 - CUBIC_BETA) / (1 + CUBIC_BETA)
        for ctx in contexts:
            rtt = ctx.rtt_us
            if rtt > 0:
                srtt = round(0.875 * srtt + 0.125 * rtt)
            if cwnd < ssthresh:
                cwnd += 1.0  # slow start
                continue
            if target is None:
                if epoch_start is None:
                    epoch_start = now
                    if cwnd < w_max:
                        k = ((w_max - cwnd) / CUBIC_C) ** (1 / 3)
                    else:
                        k = 0.0
                        w_max = cwnd
                    w_est = cwnd
                    acks_in_epoch = 0
                t = (now - epoch_start) / US_PER_S
                target = CUBIC_C * (t - k) ** 3 + w_max
                w_base = w_max * CUBIC_BETA
            if target > cwnd:
                cwnd += (target - cwnd) / cwnd
            else:
                cwnd += 0.01 / cwnd  # minimal growth near plateau
            acks_in_epoch += 1
            rtt_s = srtt / US_PER_S
            w_est = w_base + w_coeff * (t / rtt_s if rtt_s > 0 else 0.0)
            if w_est > cwnd:
                cwnd = w_est
        self._srtt_us = srtt
        self.cwnd = cwnd
        self._epoch_start = epoch_start
        self._w_max = w_max
        self._k = k
        self._w_est = w_est
        self._acks_in_epoch = acks_in_epoch

    def _cubic_update(self, now_us: int) -> None:
        if self._epoch_start is None:
            self._epoch_start = now_us
            if self.cwnd < self._w_max:
                self._k = ((self._w_max - self.cwnd) / CUBIC_C) ** (1 / 3)
            else:
                self._k = 0.0
                self._w_max = self.cwnd
            self._w_est = self.cwnd
            self._acks_in_epoch = 0
        t = (now_us - self._epoch_start) / US_PER_S
        target = CUBIC_C * (t - self._k) ** 3 + self._w_max
        if target > self.cwnd:
            self.cwnd += (target - self.cwnd) / self.cwnd
        else:
            self.cwnd += 0.01 / self.cwnd  # minimal growth near plateau
        # TCP-friendly region (standard AIMD estimate).
        self._acks_in_epoch += 1
        rtt_s = self._srtt_us / US_PER_S
        self._w_est = (self._w_max * CUBIC_BETA
                       + 3 * (1 - CUBIC_BETA) / (1 + CUBIC_BETA)
                       * (t / rtt_s if rtt_s > 0 else 0.0))
        if self._w_est > self.cwnd:
            self.cwnd = self._w_est

    def on_loss(self, now_us: int, lost_bits: int,
                inflight_bits: int) -> None:
        # One window reduction per RTT, as in fast recovery.
        if now_us - self._last_loss_us < self._srtt_us:
            return
        self._last_loss_us = now_us
        self._epoch_start = None
        if self.cwnd < self._w_max:  # fast convergence
            self._w_max = self.cwnd * (2 - CUBIC_BETA) / 2
        else:
            self._w_max = self.cwnd
        self.cwnd = max(2.0, self.cwnd * CUBIC_BETA)
        self.ssthresh = self.cwnd

    def on_timeout(self, now_us: int) -> None:
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = INITIAL_CWND
        self._epoch_start = None

    # ------------------------------------------------------------------
    def pacing_rate_bps(self, now_us: int) -> float:
        # Window-based: pace at 2·cwnd per RTT so ACK clocking dominates.
        return 2.0 * self.cwnd * self.mss_bits * US_PER_S / self._srtt_us

    def cwnd_bits(self, now_us: int) -> Optional[float]:
        return self.cwnd * self.mss_bits


class Reno(CongestionControl):
    """TCP NewReno-style AIMD (used in friendliness/ablation tests)."""

    name = "reno"

    def __init__(self, mss_bits: int = MSS_BITS) -> None:
        self.mss_bits = mss_bits
        self.cwnd = INITIAL_CWND
        self.ssthresh = float("inf")
        self._srtt_us = 100_000
        self._last_loss_us = -10**9

    def on_ack(self, ctx: AckContext) -> None:
        if ctx.rtt_us > 0:
            self._srtt_us = round(0.875 * self._srtt_us + 0.125 * ctx.rtt_us)
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / self.cwnd

    def on_loss(self, now_us: int, lost_bits: int,
                inflight_bits: int) -> None:
        if now_us - self._last_loss_us < self._srtt_us:
            return
        self._last_loss_us = now_us
        self.cwnd = max(2.0, self.cwnd / 2)
        self.ssthresh = self.cwnd

    def on_timeout(self, now_us: int) -> None:
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = 2.0

    def pacing_rate_bps(self, now_us: int) -> float:
        return 2.0 * self.cwnd * self.mss_bits * US_PER_S / self._srtt_us

    def cwnd_bits(self, now_us: int) -> Optional[float]:
        return self.cwnd * self.mss_bits
