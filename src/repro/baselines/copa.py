"""Copa congestion control [Arun & Balakrishnan — NSDI 2018].

Delay-based: Copa steers its rate toward ``λ = 1/(δ·dq)`` where ``dq``
is the standing queueing delay (RTTstanding − RTTmin).  On cellular
links the 8 ms HARQ retransmission spikes (paper Figure 8) look like
standing queueing delay to Copa, so it backs off hard — the mechanism
behind the ~11× throughput gap the paper reports against PBE-CC, while
achieving slightly *lower* delay (Table 1's 0.8× rows).
"""

from __future__ import annotations

from typing import Optional

from ..net.units import MSS_BITS, US_PER_S
from .base import AckContext, CongestionControl
from .windowed import WindowedMin

#: Copa's default delta (1/packets): target rate 1/(δ·dq).
DEFAULT_DELTA = 0.5
#: RTTmin filter window, µs.
RTT_MIN_WINDOW_US = 10 * US_PER_S


class Copa(CongestionControl):
    """Default-mode Copa (no TCP-competitive mode switching)."""

    name = "copa"

    def __init__(self, delta: float = DEFAULT_DELTA,
                 mss_bits: int = MSS_BITS) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta
        self.mss_bits = mss_bits
        self.cwnd = 4.0  # packets
        self.velocity = 1.0
        self._direction = 0  # +1 up, -1 down
        self._same_direction_rounds = 0
        self._rtt_min = WindowedMin(RTT_MIN_WINDOW_US)
        self._rtt_standing = WindowedMin(50_000)  # retuned to srtt/2
        self._srtt_us = 100_000
        self._round_start_us = 0

    # ------------------------------------------------------------------
    def on_ack(self, ctx: AckContext) -> None:
        if ctx.rtt_us <= 0:
            return
        now = ctx.now_us
        self._srtt_us = round(0.875 * self._srtt_us + 0.125 * ctx.rtt_us)
        self._rtt_min.update(now, ctx.rtt_us)
        self._rtt_standing.window_us = max(1_000, self._srtt_us // 2)
        self._rtt_standing.update(now, ctx.rtt_us)

        rtt_min = self._rtt_min.get() or ctx.rtt_us
        rtt_standing = self._rtt_standing.get() or ctx.rtt_us
        dq_us = max(0.0, rtt_standing - rtt_min)
        if dq_us <= 0:
            # No measurable standing queue: increase.
            self._step(now, +1)
            return
        # Target rate in packets/s, current rate from cwnd/RTTstanding.
        target_pps = US_PER_S / (self.delta * dq_us)
        current_pps = self.cwnd * US_PER_S / rtt_standing
        self._step(now, +1 if current_pps < target_pps else -1)

    def on_ack_block(self, contexts: list[AckContext]) -> None:
        """Columnar delay steering over one grant cycle's ACKs.

        Byte-identical to the scalar loop, with the filter state hoisted
        into locals: the monotonic deques are manipulated directly
        (update → tail-domination pops, append, head expiry — the exact
        :meth:`~repro.baselines.windowed._WindowedExtreme.update`
        sequence), and the velocity state machine runs on locals.  The
        RTTmin expiry is lifted out of the loop: all samples in a block
        share ``now_us`` and that filter's window is fixed, so the first
        expiry pass leaves nothing more to expire.  The standing-RTT
        window is retuned from the running srtt per ACK, exactly as the
        scalar path does, so that filter keeps its per-ACK expiry.
        """
        if len(contexts) == 1:
            self.on_ack(contexts[0])
            return
        now = contexts[0].now_us
        if contexts[-1].now_us != now:  # not one flush: keep scalar order
            on_ack = self.on_ack
            for ctx in contexts:
                on_ack(ctx)
            return
        srtt = self._srtt_us
        cwnd = self.cwnd
        velocity = self.velocity
        direction = self._direction
        round_start = self._round_start_us
        delta = self.delta
        min_samples = self._rtt_min._samples
        st_samples = self._rtt_standing._samples
        st_window = self._rtt_standing.window_us
        # One up-front expiry covers the whole block for the fixed
        # 10 s RTTmin window (timestamps grow toward the tail, and the
        # block's own samples all carry `now`, inside the window).
        horizon = now - self._rtt_min.window_us
        while min_samples and min_samples[0][0] < horizon:
            min_samples.popleft()
        for ctx in contexts:
            rtt = ctx.rtt_us
            if rtt <= 0:
                continue
            srtt = round(0.875 * srtt + 0.125 * rtt)
            while min_samples and min_samples[-1][1] >= rtt:
                min_samples.pop()
            min_samples.append((now, rtt))
            st_window = max(1_000, srtt // 2)
            while st_samples and st_samples[-1][1] >= rtt:
                st_samples.pop()
            st_samples.append((now, rtt))
            st_horizon = now - st_window
            while st_samples and st_samples[0][0] < st_horizon:
                st_samples.popleft()

            rtt_min = min_samples[0][1] or rtt
            rtt_standing = st_samples[0][1] or rtt
            dq_us = max(0.0, rtt_standing - rtt_min)
            if dq_us <= 0:
                d = +1  # no measurable standing queue: increase
            else:
                target_pps = US_PER_S / (delta * dq_us)
                current_pps = cwnd * US_PER_S / rtt_standing
                d = +1 if current_pps < target_pps else -1
            if d == direction:
                if now - round_start >= 3 * srtt:
                    velocity = min(velocity * 2, 1 << 16)
                    round_start = now
            else:
                velocity = 1.0
                direction = d
                round_start = now
            cwnd += d * velocity / (delta * cwnd)
            cwnd = max(2.0, cwnd)
        self._srtt_us = srtt
        self.cwnd = cwnd
        self.velocity = velocity
        self._direction = direction
        self._round_start_us = round_start
        self._rtt_standing.window_us = st_window

    def _step(self, now_us: int, direction: int) -> None:
        # Velocity doubles after three round trips in the same direction.
        if direction == self._direction:
            if now_us - self._round_start_us >= 3 * self._srtt_us:
                self.velocity = min(self.velocity * 2, 1 << 16)
                self._round_start_us = now_us
        else:
            self.velocity = 1.0
            self._direction = direction
            self._round_start_us = now_us
        self.cwnd += direction * self.velocity / (self.delta * self.cwnd)
        self.cwnd = max(2.0, self.cwnd)

    def on_loss(self, now_us: int, lost_bits: int,
                inflight_bits: int) -> None:
        self.cwnd = max(2.0, self.cwnd / 2)
        self.velocity = 1.0
        self._direction = -1

    def on_timeout(self, now_us: int) -> None:
        self.cwnd = 2.0
        self.velocity = 1.0

    # ------------------------------------------------------------------
    def pacing_rate_bps(self, now_us: int) -> float:
        # Copa paces at 2·cwnd/RTTstanding to avoid bursts.
        rtt = self._rtt_standing.get() or self._srtt_us
        return 2.0 * self.cwnd * self.mss_bits * US_PER_S / max(rtt, 1_000)

    def cwnd_bits(self, now_us: int) -> Optional[float]:
        return self.cwnd * self.mss_bits
