"""PCC Allegro and PCC Vivace [Dong et al. — NSDI 2015 / NSDI 2018].

Both treat congestion control as online learning over *monitor
intervals* (MIs): send at a fixed rate for one MI, observe achieved
throughput / loss / RTT, compute a numeric utility, and move the rate
in the direction that empirically improves utility.

* Allegro's utility rewards throughput and sharply punishes loss above
  5% (sigmoid cliff).  It explores with ±ε paired trials.
* Vivace's utility additionally punishes *RTT gradients* — on a
  cellular link whose delay jumps in 8 ms HARQ steps (paper Figure 8),
  positive delay gradients appear at random, so Vivace keeps getting
  pushed off high rates.  That is the mechanism behind the significant
  under-utilization the PBE-CC paper observes for online-learning
  schemes (§2, §6.3).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..net.units import MSS_BITS, US_PER_S
from .base import AckContext, CongestionControl

#: Exploration size ε for paired trials.
EPSILON = 0.05
#: Allegro's loss-cliff position and sigmoid steepness.
LOSS_THRESHOLD = 0.05
SIGMOID_ALPHA = 100.0
#: Vivace utility coefficients (from the NSDI'18 paper).
VIVACE_EXPONENT = 0.9
VIVACE_DELAY_COEFF = 900.0
VIVACE_LOSS_COEFF = 11.35


class _MonitorInterval:
    __slots__ = ("rate_bps", "start_us", "end_us", "acked_bits",
                 "lost_bits", "first_rtt_us", "last_rtt_us", "acks")

    def __init__(self, rate_bps: float, start_us: int, end_us: int) -> None:
        self.rate_bps = rate_bps
        self.start_us = start_us
        self.end_us = end_us
        self.acked_bits = 0
        self.lost_bits = 0
        self.first_rtt_us = 0
        self.last_rtt_us = 0
        self.acks = 0

    @property
    def throughput_bps(self) -> float:
        span = self.end_us - self.start_us
        return self.acked_bits * US_PER_S / span if span > 0 else 0.0

    @property
    def loss_rate(self) -> float:
        total = self.acked_bits + self.lost_bits
        return self.lost_bits / total if total > 0 else 0.0

    @property
    def rtt_gradient_s_per_s(self) -> float:
        """d(RTT)/dt across the interval, seconds per second."""
        span = self.end_us - self.start_us
        if span <= 0 or self.acks < 2:
            return 0.0
        return (self.last_rtt_us - self.first_rtt_us) / span


class _PccBase(CongestionControl):
    """Shared monitor-interval machinery."""

    #: Minimum MI duration, µs.
    MIN_MI_US = 10_000

    def __init__(self, initial_rate_bps: float = 2.4e6,
                 mss_bits: int = MSS_BITS, seed: int = 0) -> None:
        if initial_rate_bps <= 0:
            raise ValueError("initial rate must be positive")
        self.mss_bits = mss_bits
        self.rate_bps = initial_rate_bps
        self._srtt_us = 100_000
        self._rng = np.random.default_rng(seed)
        self._mi: Optional[_MonitorInterval] = None
        self._history: list[tuple[float, float]] = []  # (rate, utility)

    # -- utility ------------------------------------------------------
    def utility(self, mi: _MonitorInterval) -> float:
        raise NotImplementedError

    def decide(self, rate: float, util: float) -> float:
        """Pick the next MI's rate given the finished MI's outcome."""
        raise NotImplementedError

    # -- MI plumbing ----------------------------------------------------
    def _mi_duration_us(self) -> int:
        return max(self.MIN_MI_US, int(1.5 * self._srtt_us))

    def _roll_interval(self, now_us: int) -> None:
        if self._mi is not None and now_us >= self._mi.end_us:
            util = self.utility(self._mi)
            self._history.append((self._mi.rate_bps, util))
            if len(self._history) > 32:
                self._history.pop(0)
            self.rate_bps = max(120_000.0,
                                self.decide(self._mi.rate_bps, util))
            self._mi = None
        if self._mi is None:
            start = now_us
            self._mi = _MonitorInterval(
                self.rate_bps, start, start + self._mi_duration_us())

    def on_ack(self, ctx: AckContext) -> None:
        if ctx.rtt_us > 0:
            self._srtt_us = round(0.875 * self._srtt_us + 0.125 * ctx.rtt_us)
        self._roll_interval(ctx.now_us)
        mi = self._mi
        mi.acked_bits += ctx.newly_acked_bits
        mi.acks += 1
        if ctx.rtt_us > 0:
            if mi.first_rtt_us == 0:
                mi.first_rtt_us = ctx.rtt_us
            mi.last_rtt_us = ctx.rtt_us

    def on_loss(self, now_us: int, lost_bits: int,
                inflight_bits: int) -> None:
        self._roll_interval(now_us)
        self._mi.lost_bits += lost_bits

    def on_timeout(self, now_us: int) -> None:
        self.rate_bps = max(120_000.0, self.rate_bps / 2)
        self._mi = None

    def pacing_rate_bps(self, now_us: int) -> float:
        self._roll_interval(now_us)
        return self._mi.rate_bps

    def cwnd_bits(self, now_us: int) -> Optional[float]:
        return None  # purely rate-based


class PccAllegro(_PccBase):
    """PCC with the NSDI'15 loss-sigmoid utility and ±ε exploration."""

    name = "pcc"

    def __init__(self, initial_rate_bps: float = 2.4e6,
                 mss_bits: int = MSS_BITS, seed: int = 0) -> None:
        super().__init__(initial_rate_bps, mss_bits, seed)
        self._starting = True
        self._last_utility: Optional[float] = None
        self._last_loss = 0.0
        self._direction = 0
        self._trial_phase = 0
        self._streak = 0

    def utility(self, mi: _MonitorInterval) -> float:
        x = mi.throughput_bps / 1e6  # Mbit/s keeps magnitudes tame
        loss = mi.loss_rate
        self._last_loss = loss
        sigmoid = 1.0 / (1.0 + math.exp(
            min(50.0, max(-50.0, SIGMOID_ALPHA * (loss - LOSS_THRESHOLD)))))
        return x * (1 - loss) * sigmoid - x * loss

    def decide(self, rate: float, util: float) -> float:
        # Emergency brake: past the sigmoid's loss cliff the utility is
        # dominated by -x·L, so Allegro moves decisively downward.
        if self._last_loss > 2 * LOSS_THRESHOLD:
            self._starting = False
            self._last_utility = util
            self._streak = 0
            return rate * 0.5
        if self._starting:
            if self._last_utility is None or util > self._last_utility:
                self._last_utility = util
                return rate * 2.0
            self._starting = False
            self._last_utility = util
            return rate / 2.0
        # Paired ±ε trials: alternate directions, keep what helped;
        # confidence amplification grows the step on repeated wins.
        if self._trial_phase == 0:
            self._trial_phase = 1
            self._direction = 1 if self._rng.random() < 0.5 else -1
            self._last_utility = util
            return rate * (1 + self._direction * EPSILON)
        self._trial_phase = 0
        if self._last_utility is not None and util > self._last_utility:
            self._streak = min(self._streak + 1, 6)
            step = 1 + self._direction * (1 + self._streak) * EPSILON
        else:
            self._streak = 0
            step = 1 - self._direction * EPSILON
        self._last_utility = util
        return rate * step


class PccVivace(_PccBase):
    """PCC Vivace: gradient ascent on a delay-gradient-aware utility."""

    name = "vivace"

    def __init__(self, initial_rate_bps: float = 2.4e6,
                 mss_bits: int = MSS_BITS, seed: int = 0) -> None:
        super().__init__(initial_rate_bps, mss_bits, seed)
        self._probe_sign = 1
        self._base_rate = initial_rate_bps
        self._pending: Optional[tuple[float, float]] = None  # (rate, util)
        self._step_mbps = 0.4

    def utility(self, mi: _MonitorInterval) -> float:
        x = mi.throughput_bps / 1e6
        gradient = max(0.0, mi.rtt_gradient_s_per_s)
        return (x ** VIVACE_EXPONENT
                - VIVACE_DELAY_COEFF * x * gradient
                - VIVACE_LOSS_COEFF * x * mi.loss_rate)

    def decide(self, rate: float, util: float) -> float:
        if self._pending is None:
            # First probe of the pair at base·(1+ε); next at base·(1−ε).
            self._pending = (rate, util)
            return self._base_rate * (1 - EPSILON)
        rate_up, util_up = self._pending
        self._pending = None
        # Gradient over the two probes, utility per Mbit/s.
        dr = (rate_up - rate) / 1e6
        gradient = (util_up - util) / dr if dr else 0.0
        delta = self._step_mbps * gradient
        delta = max(-5.0, min(5.0, delta))
        self._base_rate = max(120_000.0, self._base_rate + delta * 1e6)
        return self._base_rate * (1 + EPSILON)
