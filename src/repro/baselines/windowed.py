"""Time-windowed min/max filters (used by BBR, PBE-CC and Copa).

Implemented as monotonic deques: O(1) amortized update, exact results
over a sliding time window.
"""

from __future__ import annotations

from collections import deque
from typing import Optional


class _WindowedExtreme:
    def __init__(self, window_us: int, keep_max: bool) -> None:
        if window_us <= 0:
            raise ValueError("window must be positive")
        self.window_us = window_us
        self._keep_max = keep_max
        self._samples: deque[tuple[int, float]] = deque()

    def update(self, now_us: int, value: float) -> None:
        """Insert a sample and expire anything older than the window."""
        if self._keep_max:
            while self._samples and self._samples[-1][1] <= value:
                self._samples.pop()
        else:
            while self._samples and self._samples[-1][1] >= value:
                self._samples.pop()
        self._samples.append((now_us, value))
        self.expire(now_us)

    def expire(self, now_us: int) -> None:
        """Drop samples that fell out of the window."""
        horizon = now_us - self.window_us
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def get(self) -> Optional[float]:
        """Current extreme, or ``None`` when no samples are in window."""
        if not self._samples:
            return None
        return self._samples[0][1]

    def reset(self) -> None:
        self._samples.clear()


class WindowedMax(_WindowedExtreme):
    """Sliding-window maximum (e.g. BBR's BtlBw filter)."""

    def __init__(self, window_us: int) -> None:
        super().__init__(window_us, keep_max=True)


class WindowedMin(_WindowedExtreme):
    """Sliding-window minimum (e.g. RTprop / Dprop filters)."""

    def __init__(self, window_us: int) -> None:
        super().__init__(window_us, keep_max=False)
