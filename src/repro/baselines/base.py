"""Transport endpoint framework shared by every congestion controller.

:class:`Sender` is the machinery common to all schemes — packet
pacing, window enforcement, per-ACK delivery-rate samples (BBR-style),
RTT estimation, duplicate-ACK loss detection and retransmission
timeouts.  A scheme plugs in as a :class:`CongestionControl` strategy
object deciding the pacing rate and congestion window.

The receiver side (:class:`AckingReceiver`) acknowledges every data
packet; PBE-CC's mobile client subclasses it to attach capacity
feedback to each ACK.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..net.flow import FlowStats
from ..net.link import Receiver
from ..net.packet import AckBatch, Packet
from ..net.sim import Event, Simulator
from ..net.units import MSS_BITS, US_PER_S

#: Duplicate-ACK threshold for loss detection.
DUPACK_THRESHOLD = 3
#: Lower bound on the retransmission timeout, µs.
MIN_RTO_US = 200_000


@dataclass
class AckContext:
    """Everything a congestion controller learns from one ACK."""

    ack: Packet
    now_us: int
    rtt_us: int
    #: BBR-style delivery-rate sample, bits/s (0 when not computable).
    delivery_rate_bps: float
    #: Bits newly acknowledged by this ACK.
    newly_acked_bits: int
    #: Bits still in flight after processing this ACK.
    inflight_bits: int
    #: Whether the rate sample was taken while application-limited.
    app_limited: bool
    #: The sender's smoothed RTT *after* folding in this ACK's sample.
    #: Schemes that want an srtt must read this instead of re-filtering
    #: ``rtt_us`` themselves, so the two estimates cannot drift.
    srtt_us: int = 0


class CongestionControl:
    """Strategy interface implemented by every scheme."""

    #: Human-readable scheme name (used by the harness).
    name = "base"

    def on_ack(self, ctx: AckContext) -> None:
        """Process one acknowledgement."""

    def on_ack_block(self, contexts: list[AckContext]) -> None:
        """Process one grant cycle's worth of acknowledgements.

        The columnar transport engine hands each uplink burst to the
        controller as a block.  The default is the sequential
        :meth:`on_ack` loop — byte-identical to scalar delivery, with
        the method dispatch hoisted out of the loop — so every scheme
        works unmodified; schemes with genuinely vectorizable state may
        override.
        """
        on_ack = self.on_ack
        for ctx in contexts:
            on_ack(ctx)

    def on_send(self, packet: Packet) -> None:
        """Hook invoked for every transmitted packet (may tag metadata)."""

    def on_loss(self, now_us: int, lost_bits: int,
                inflight_bits: int) -> None:
        """React to packets declared lost (duplicate-ACK detection)."""

    def on_timeout(self, now_us: int) -> None:
        """React to a retransmission timeout (all inflight lost)."""

    def pacing_rate_bps(self, now_us: int) -> float:
        """Current send rate.  Return 0 to stop sending temporarily."""
        raise NotImplementedError

    def cwnd_bits(self, now_us: int) -> Optional[float]:
        """Inflight cap in bits, or ``None`` for rate-only control."""
        return None


class Sender(Receiver):
    """A server-side endpoint pushing one flow through the network."""

    #: Pacing poll interval while the controller reports a zero rate.
    _IDLE_POLL_US = 1_000

    #: Checkpointing: wiring restored from the rebuilt experiment.  The
    #: congestion controller is *not* skipped — its state is restored
    #: in place through the generic codec.  ``_pace_event``/
    #: ``_rto_event`` are live heap references, encoded as sequence
    #: numbers by the checkpoint layer.
    SNAPSHOT_SKIP = ("sim", "egress", "on_ack_hook")

    def __init__(self, sim: Simulator, flow_id: int, cc: CongestionControl,
                 egress: Receiver, mss_bits: int = MSS_BITS,
                 app_rate_bps: Optional[float] = None) -> None:
        """``app_rate_bps`` caps the send rate below what congestion
        control allows, modelling an application-limited source (e.g. a
        fixed-bitrate video).  Packets sent while the application cap
        binds are marked ``app_limited`` so rate estimators (BBR's
        BtlBw filter) ignore their delivery samples."""
        if app_rate_bps is not None and app_rate_bps <= 0:
            raise ValueError("app rate must be positive")
        self.sim = sim
        self.flow_id = flow_id
        self.cc = cc
        self.egress = egress
        self.mss_bits = mss_bits
        self.app_rate_bps = app_rate_bps

        self.next_seq = 0
        self.inflight_bits = 0
        self._outstanding: dict[int, tuple[int, int]] = {}  # seq: (bits, t)
        self._send_order: deque[int] = deque()
        self.highest_acked = -1

        self.delivered_bits = 0
        self.delivered_time_us = 0
        self.srtt_us = 0
        self.min_rtt_us: Optional[int] = None

        self.sent_packets = 0
        self.acked_packets = 0
        self.lost_packets = 0
        self.timeouts = 0

        self._running = False
        self._pace_event: Optional[Event] = None
        #: True while the pacing gap after a transmit is pending; False
        #: while blocked (window-limited / zero rate), so ACK clocking
        #: can resume sending immediately without breaking pacing.
        self._pacing_active = False
        self._rto_event: Optional[Event] = None
        #: Absolute time the retransmission timeout should fire.  The
        #: queued event is reused lazily: every ACK pushes the deadline
        #: forward, and a stale firing just re-arms for the remainder,
        #: instead of a cancel + reschedule per ACK (which used to be
        #: the simulator heap's single biggest churn source).
        self._rto_deadline_us = 0
        #: Hook: called with each ACK after CC processing (telemetry).
        self.on_ack_hook: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin sending (full-buffer source)."""
        if self._running:
            raise RuntimeError("sender already running")
        self._running = True
        self._schedule_pacing(0)

    def stop(self) -> None:
        """Stop sending; in-flight packets drain naturally."""
        self._running = False
        if self._pace_event is not None:
            self._pace_event.cancel()
            self._pace_event = None
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _schedule_pacing(self, delay_us: int) -> None:
        if not self._running:
            return
        if self._pace_event is not None:
            self._pace_event.cancel()
        self._pace_event = self.sim.schedule(delay_us, self._pace)

    def _pace(self) -> None:
        self._pace_event = None
        if not self._running:
            return
        now = self.sim.now
        rate = self.cc.pacing_rate_bps(now)
        app_limited = (self.app_rate_bps is not None
                       and self.app_rate_bps < rate)
        if app_limited:
            rate = self.app_rate_bps
        if rate <= 0:
            self._pacing_active = False
            self._schedule_pacing(self._IDLE_POLL_US)
            return
        cwnd = self.cc.cwnd_bits(now)
        if cwnd is not None and self.inflight_bits + self.mss_bits > cwnd:
            # Window-limited: ACKs re-arm sending instantly.
            self._pacing_active = False
            self._schedule_pacing(self._IDLE_POLL_US)
            return
        self._transmit(app_limited=app_limited)
        gap_us = max(1, round(self.mss_bits * US_PER_S / rate))
        self._pacing_active = True
        self._schedule_pacing(gap_us)

    def _transmit(self, app_limited: bool = False) -> None:
        now = self.sim.now
        packet = Packet(self.flow_id, self.next_seq, self.mss_bits,
                        sent_time_us=now)
        packet.app_limited = app_limited
        packet.delivered_at_send = self.delivered_bits
        packet.delivered_time_at_send = self.delivered_time_us or now
        self.next_seq += 1
        self._outstanding[packet.seq] = (packet.size_bits, now)
        self._send_order.append(packet.seq)
        self.inflight_bits += packet.size_bits
        self.sent_packets += 1
        self.cc.on_send(packet)
        self._arm_rto()
        self.egress.receive(packet)

    # ------------------------------------------------------------------
    # Receiving ACKs
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        if not packet.is_ack or packet.flow_id != self.flow_id:
            return
        now = self.sim.now
        entry = self._outstanding.pop(packet.acked_seq, None)
        if entry is None:
            return  # spurious/duplicate ACK
        bits, _sent = entry
        self.inflight_bits -= bits
        self.acked_packets += 1
        self.highest_acked = max(self.highest_acked, packet.acked_seq)

        rtt = now - packet.sent_time_us
        if rtt > 0:
            self.srtt_us = (rtt if self.srtt_us == 0
                            else round(0.875 * self.srtt_us + 0.125 * rtt))
            if self.min_rtt_us is None or rtt < self.min_rtt_us:
                self.min_rtt_us = rtt

        self.delivered_bits += bits
        self.delivered_time_us = now
        interval = now - packet.delivered_time_at_send
        if interval > 0:
            rate = ((self.delivered_bits - packet.delivered_at_send)
                    * US_PER_S / interval)
        else:
            rate = 0.0

        self._detect_losses()
        ctx = AckContext(ack=packet, now_us=now, rtt_us=rtt,
                         delivery_rate_bps=rate, newly_acked_bits=bits,
                         inflight_bits=self.inflight_bits,
                         app_limited=packet.app_limited,
                         srtt_us=self.srtt_us)
        self.cc.on_ack(ctx)
        if self.on_ack_hook is not None:
            self.on_ack_hook(packet)
        self._arm_rto()
        # ACK clocking: if sending was blocked (window-limited or idle),
        # resume immediately.  Never disturb an in-progress pacing gap.
        if self._running and not self._pacing_active:
            self._schedule_pacing(0)

    def receive_batch(self, batch: AckBatch) -> None:
        """Process one grant cycle's ACK burst as a block.

        Semantically equivalent to calling :meth:`receive` once per
        packet in flush order — the per-ACK bookkeeping below mirrors
        that method step for step — but with the loop-invariant work
        hoisted: sender state lives in locals across the burst, the
        congestion controller sees the burst through one
        :meth:`CongestionControl.on_ack_block` call instead of N
        dispatches, and the RTO/pacing timers are touched once per
        block instead of once per ACK.

        Three guards route back to the scalar path: a mixed batch
        (non-ACK or foreign-flow packets — only same-flow ACKs have the
        uniform shape the columns assume), a foreign ``flow_id``, and
        an installed ``on_ack_hook`` (hooks observe per-ACK
        interleaving the block deliberately elides).

        Timer equivalence: the RTO event is *created* in-loop at the
        first processed ACK, exactly where the scalar path creates it,
        so its heap sequence number is in the same relative position;
        subsequent per-ACK deadline writes are deferred to one
        :meth:`_arm_rto` at block end (a stale firing re-arms for the
        remainder, so only the final deadline is observable).  The
        pacing-resume check moves to block end because
        ``_pacing_active`` is only ever mutated by ``_pace``, which
        cannot fire mid-block — the last ACK's reschedule is the only
        one that survives in scalar mode anyway.
        """
        if (batch.mixed or batch.flow_id != self.flow_id
                or self.on_ack_hook is not None):
            receive = self.receive
            for packet in batch.packets:
                receive(packet)
            return

        now = self.sim.now
        outstanding = self._outstanding
        packets = batch.packets
        acked_seqs = batch.acked_seq
        sent_times = batch.sent_time_us
        das = batch.delivered_at_send
        dtas = batch.delivered_time_at_send
        app_limiteds = batch.app_limited

        # Hoisted sender state (written back before any CC callback).
        srtt = self.srtt_us
        min_rtt = self.min_rtt_us
        delivered = self.delivered_bits
        highest = self.highest_acked
        acked_count = 0
        pending: list[AckContext] = []

        def flush_pending() -> None:
            # Publish hoisted state, then hand the contexts accumulated
            # so far to the controller — it must observe the same
            # sender state it would have mid-scalar-loop.
            self.srtt_us = srtt
            self.min_rtt_us = min_rtt
            self.delivered_bits = delivered
            self.delivered_time_us = now
            self.highest_acked = highest
            if pending:
                self.cc.on_ack_block(pending)
                pending.clear()

        for i in range(len(packets)):
            entry = outstanding.pop(acked_seqs[i], None)
            if entry is None:
                continue  # spurious/duplicate ACK
            bits, _sent = entry
            self.inflight_bits -= bits
            acked_count += 1
            acked = acked_seqs[i]
            if acked > highest:
                highest = acked

            rtt = now - sent_times[i]
            if rtt > 0:
                srtt = (rtt if srtt == 0
                        else round(0.875 * srtt + 0.125 * rtt))
                if min_rtt is None or rtt < min_rtt:
                    min_rtt = rtt

            delivered += bits
            interval = now - dtas[i]
            if interval > 0:
                rate = (delivered - das[i]) * US_PER_S / interval
            else:
                rate = 0.0

            lost_bits = self._scan_losses(highest)
            if lost_bits:
                # cc.on_loss must see every prior ACK first, exactly as
                # the scalar interleaving would deliver them.
                flush_pending()
                self.cc.on_loss(now, lost_bits, self.inflight_bits)
            pending.append(AckContext(
                ack=packets[i], now_us=now, rtt_us=rtt,
                delivery_rate_bps=rate, newly_acked_bits=bits,
                inflight_bits=self.inflight_bits,
                app_limited=app_limiteds[i], srtt_us=srtt))
            if (self._rto_event is None and self._running
                    and outstanding):
                # Scalar creates the timer during this ACK's receive;
                # match its heap position (deadline refreshed at end).
                delay = (MIN_RTO_US if srtt == 0
                         else max(MIN_RTO_US, 4 * srtt))
                self._rto_deadline_us = now + delay
                self._rto_event = self.sim.schedule(delay, self._on_rto)

        if not acked_count and not pending:
            return
        flush_pending()
        self.acked_packets += acked_count
        self._arm_rto()
        if self._running and not self._pacing_active:
            self._schedule_pacing(0)

    def _detect_losses(self) -> None:
        """Declare head-of-line packets lost once enough later ACKs."""
        lost_bits = self._scan_losses(self.highest_acked)
        if lost_bits:
            self.cc.on_loss(self.sim.now, lost_bits, self.inflight_bits)

    def _scan_losses(self, highest_acked: int) -> int:
        """Pop head-of-line packets now considered lost; return bits."""
        lost_bits = 0
        outstanding = self._outstanding
        send_order = self._send_order
        while send_order:
            seq = send_order[0]
            if seq not in outstanding:
                send_order.popleft()
                continue
            if highest_acked - seq >= DUPACK_THRESHOLD:
                bits, _ = outstanding.pop(seq)
                send_order.popleft()
                self.inflight_bits -= bits
                self.lost_packets += 1
                lost_bits += bits
            else:
                break
        return lost_bits

    # ------------------------------------------------------------------
    # Timeout handling
    # ------------------------------------------------------------------
    def _rto_us(self) -> int:
        if self.srtt_us == 0:
            return MIN_RTO_US
        return max(MIN_RTO_US, 4 * self.srtt_us)

    def _arm_rto(self) -> None:
        if not self._outstanding or not self._running:
            if self._rto_event is not None:
                self._rto_event.cancel()
                self._rto_event = None
            return
        self._rto_deadline_us = self.sim.now + self._rto_us()
        if self._rto_event is None:
            self._rto_event = self.sim.schedule(self._rto_us(),
                                                self._on_rto)

    def _on_rto(self) -> None:
        self._rto_event = None
        if not self._outstanding:
            return
        remaining = self._rto_deadline_us - self.sim.now
        if remaining > 0:
            # The deadline moved forward since this event was queued
            # (ACKs arrived); sleep out the remainder.
            self._rto_event = self.sim.schedule(remaining, self._on_rto)
            return
        self.timeouts += 1
        self.lost_packets += len(self._outstanding)
        self._outstanding.clear()
        self._send_order.clear()
        self.inflight_bits = 0
        self.cc.on_timeout(self.sim.now)
        if self._running:
            self._schedule_pacing(0)


class AckingReceiver(Receiver):
    """Client-side endpoint: log deliveries and ACK every packet."""

    SNAPSHOT_SKIP = ("sim", "uplink")

    def __init__(self, sim: Simulator, flow_id: int, uplink: Receiver)\
            -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.uplink = uplink
        self.stats = FlowStats(flow_id)

    def feedback_for(self, packet: Packet) -> Optional[Any]:
        """Override point: feedback object to ride on this packet's ACK."""
        return None

    def receive(self, packet: Packet) -> None:
        if packet.is_ack or packet.flow_id != self.flow_id:
            return
        now = self.sim.now
        delay = now - packet.sent_time_us
        self.stats.record(now, packet.size_bits, delay)
        ack = packet.make_ack(now, feedback=self.feedback_for(packet))
        self.uplink.receive(ack)

    def receive_block(self, packets: list[Packet]) -> None:
        """Deliver one released burst (a transport block's packets).

        Equivalent to calling :meth:`receive` once per packet in order,
        with the per-packet dispatch hoisted and the generated ACKs
        handed to the uplink as one block when it supports it
        (:meth:`repro.net.link.BatchingPipe.receive_block`).  Deferring
        the uplink hand-off past the later packets' bookkeeping is
        unobservable: ACK generation reads no uplink state and the
        uplink's flush alignment depends only on ``sim.now``, which is
        constant across the burst.
        """
        now = self.sim.now
        flow_id = self.flow_id
        record = self.stats.record
        feedback_for = self.feedback_for
        acks: list[Packet] = []
        ack_append = acks.append
        for packet in packets:
            if packet.is_ack or packet.flow_id != flow_id:
                continue
            record(now, packet.size_bits, now - packet.sent_time_us)
            ack_append(packet.make_ack(now,
                                       feedback=feedback_for(packet)))
        if not acks:
            return
        self._forward_acks(acks)

    def _forward_acks(self, acks: list[Packet]) -> None:
        """Hand a burst of ACKs to the uplink, as a block if it can.

        A per-packet fallback keeps impaired uplinks
        (:class:`repro.faults.pipe.ImpairedPipe`) on their defined
        semantics: their RNG draws happen per packet in arrival order
        either way.
        """
        receive_block = getattr(self.uplink, "receive_block", None)
        if receive_block is not None:
            receive_block(acks)
            return
        receive = self.uplink.receive
        for ack in acks:
            receive(ack)
