"""One metro shard: a cell-group simulated end to end.

A shard is the unit of metro execution: a site-aligned group of cells
simulated as one :class:`repro.harness.Experiment` — diurnal
background populations attached and detached at hour boundaries,
walkers handing over between cells, and a PBE/cubic/BBR fairness fleet
on every busy cell.  :class:`MetroShardJob` wraps the shard's
parameter dictionary with a content fingerprint so shards run through
the supervised :mod:`repro.exec` machinery (process pool, result
cache, journal, resume) exactly like single-flow jobs.

Everything the shard simulates is derived from ``params`` alone, so
the fingerprint fully keys the result — and the batched and scalar
engines must agree byte-for-byte (:func:`shard_fingerprint` digests a
run for the equivalence tests and the metro bench).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..exec.job import canonical_json
from ..harness.metrics import jain_index
from ..harness.runner import Experiment, FlowSpec
from ..harness.scenarios import (BUSY_CONTROL_ARRIVALS,
                                 IDLE_CONTROL_ARRIVALS, Scenario)
from ..net.units import us_from_seconds
from ..phy.carrier import CarrierConfig
from ..phy.channel import StaticChannel
from ..traces.mobility import random_walk_trajectory
from ..traces.seeds import derived_seed
from ..traces.workload import OnOffRandomDemand
from .mobility import handovers_into, walker_plan
from .population import population_plan

#: Bump when shard semantics change (invalidates cached shard results).
SHARD_VERSION = 1
#: Shard result payload schema.
SHARD_SCHEMA = "repro.metro/shard/v1"

#: RNTI layout inside one shard simulation.  Fleet flows sit in the
#: device-under-test range; background slots and walkers are far above
#: so the ranges can never collide (shards are site-aligned, at most a
#: few dozen cells).
FLEET_RNTI_BASE = 100
FLEET_RNTI_STRIDE = 8
BACKGROUND_RNTI_BASE = 10_000
BACKGROUND_RNTI_STRIDE = 64
WALKER_RNTI_BASE = 50_000


@dataclass
class MetroShardJob:
    """One fingerprinted cell-group job for the exec runner."""

    params: dict

    @property
    def label(self) -> str:
        return f"{self.params['set']}/shard{self.params['index']:02d}"

    def to_dict(self) -> dict:
        return {"kind": "metro-shard", "version": SHARD_VERSION,
                "params": self.params}

    def fingerprint(self) -> str:
        encoded = canonical_json(self.to_dict()).encode("utf-8")
        return hashlib.sha256(encoded).hexdigest()

    def execute(self) -> dict:
        return run_shard(self.params)


class _ShardRun:
    """A wired-up shard experiment, ready to run."""

    def __init__(self, params: dict, batched: bool = True) -> None:
        self.params = params
        cells = params["cells"]
        hours = list(params["hours"])
        hour_s = float(params["hour_s"])
        seed = int(params["seed"])
        index = int(params["index"])
        duration_s = len(hours) * hour_s

        self.plan = population_plan(
            cells, hours, seed, float(params["users_scale"]),
            int(params["max_users_per_cell"]))
        self.walkers = walker_plan(
            cells, duration_s, int(params["walkers"]),
            derived_seed(seed, "metro-walkers", index))
        self.handovers_in = handovers_into(self.walkers)

        scenario = Scenario(
            name=f"{params['set']}-shard{index:02d}",
            carriers=[CarrierConfig(cell_id=c["cell_id"],
                                    bandwidth_mhz=c["bandwidth_mhz"],
                                    frequency_ghz=c["frequency_ghz"])
                      for c in cells],
            aggregated_cells=1,
            busy=False, background_users=0,
            scheduler_policy=params["scheduler_policy"],
            duration_s=duration_s,
            seed=derived_seed(seed, "metro-scenario", index) % (2 ** 31),
            control_arrivals_by_cell={
                c["cell_id"]: (BUSY_CONTROL_ARRIVALS if c["busy"]
                               else IDLE_CONTROL_ARRIVALS)
                for c in cells})
        self.experiment = Experiment(scenario, batched=batched)
        self._attach_population(cells, hours, hour_s, seed)
        self._attach_walkers(duration_s)
        self.handles = self._attach_fleets(cells, seed,
                                           list(params["fleet"]),
                                           duration_s)

    # ------------------------------------------------------------------
    def _attach_population(self, cells: list[dict], hours: list[int],
                           hour_s: float, seed: int) -> None:
        """Hour-boundary attach/detach of diurnal background users."""
        network = self.experiment.network
        sim = self.experiment.sim

        def set_count(ci: int, cell_id: int, epoch: int,
                      current: int, target: int) -> None:
            base = BACKGROUND_RNTI_BASE + ci * BACKGROUND_RNTI_STRIDE
            for slot in range(target, current):
                network.remove_user(base + slot)
            for slot in range(current, target):
                sinr = 6.0 + 18.0 * _unit(seed, "bg-sinr", cell_id,
                                          slot, epoch)
                network.add_exogenous_user(
                    base + slot, [cell_id],
                    StaticChannel(sinr, fading_std_db=1.0,
                                  seed=derived_seed(seed, "bg-fade",
                                                    cell_id, slot, epoch)),
                    OnOffRandomDemand(
                        mean_on_s=0.4, mean_off_s=0.8,
                        rate_range_bps=(2e6, 12e6),
                        seed=derived_seed(seed, "bg-demand", cell_id,
                                          slot, epoch)))

        for ci, cell in enumerate(cells):
            targets = self.plan[cell["cell_id"]]["sim"]
            current = 0
            for epoch, target in enumerate(targets):
                if epoch == 0:
                    set_count(ci, cell["cell_id"], 0, 0, target)
                elif target != current:
                    sim.schedule(us_from_seconds(epoch * hour_s),
                                 set_count, ci, cell["cell_id"], epoch,
                                 current, target)
                current = target

    def _attach_walkers(self, duration_s: float) -> None:
        network = self.experiment.network
        sim = self.experiment.sim
        for w, plan in enumerate(self.walkers):
            rnti = WALKER_RNTI_BASE + w
            network.add_exogenous_user(
                rnti, [plan["start_cell"]],
                random_walk_trajectory(duration_s,
                                       seed=plan["channel_seed"]),
                OnOffRandomDemand(mean_on_s=0.5, mean_off_s=1.0,
                                  rate_range_bps=(1e6, 8e6),
                                  seed=plan["demand_seed"]))
            for t_s, cell_id in plan["moves"]:
                sim.schedule(us_from_seconds(t_s),
                             network.handover, rnti, [cell_id])

    def _attach_fleets(self, cells: list[dict], seed: int,
                       fleet: list[str], duration_s: float) -> list:
        """A concurrent coexistence fleet on every busy cell."""
        handles = []
        busy_index = 0
        for cell in cells:
            if not cell["busy"]:
                continue
            for j, scheme in enumerate(fleet):
                rnti = (FLEET_RNTI_BASE
                        + busy_index * FLEET_RNTI_STRIDE + j)
                sinr = 13.0 + 10.0 * _unit(seed, "fleet-sinr",
                                           cell["cell_id"], scheme)
                channel = StaticChannel(
                    sinr, fading_std_db=1.0,
                    seed=derived_seed(seed, "fleet-fade",
                                      cell["cell_id"], scheme))
                handles.append(self.experiment.add_flow(FlowSpec(
                    scheme=scheme, rnti=rnti,
                    cells=[cell["cell_id"]], channel=channel)))
            busy_index += 1
        return handles

    # ------------------------------------------------------------------
    def run(self) -> list:
        return self.experiment.run()


def _unit(seed: int, *scope: object) -> float:
    """One deterministic uniform draw in [0, 1) for ``scope``."""
    return float(np.random.default_rng(
        derived_seed(seed, *scope)).random())


def build_shard(params: dict, batched: bool = True) -> _ShardRun:
    """Wire up (but do not run) one shard experiment."""
    return _ShardRun(params, batched=batched)


def run_shard(params: dict, batched: bool = True) -> dict:
    """Simulate one shard and return its JSON-ready payload.

    The payload carries one row per cell — fleet flow summaries, Jain
    index, PBE capacity-tracking error, fallback time, handover and
    diurnal population counts — which the reporting layer merges into
    the metro matrix.  No wall-clock values: payloads must be
    byte-identical across runs and across cache hits.
    """
    shard = build_shard(params, batched=batched)
    results = shard.run()
    network = shard.experiment.network

    per_cell_flows: dict = {}
    for handle, result in zip(shard.handles, results):
        cell_id = handle.spec.cells[0]
        summary = result.summary
        row = {
            "scheme": handle.spec.scheme,
            "throughput_mbps": summary.average_throughput_bps / 1e6,
            "mean_delay_ms": summary.average_delay_ms,
            "p95_delay_ms": summary.p95_delay_ms,
        }
        if handle.monitor is not None:
            report = handle.monitor.report(
                40, now_subframe=network.subframe)
            fair_bps = report.transport_fair_share_bps
            row["fair_share_mbps"] = fair_bps / 1e6
            row["capacity_error"] = (
                abs(summary.average_throughput_bps - fair_bps)
                / fair_bps if fair_bps > 0 else None)
            states = result.sender_states or {}
            row["fallback_s"] = states.get("fallback", 0.0)
        per_cell_flows.setdefault(cell_id, []).append(row)

    return _assemble_payload(params, shard, per_cell_flows)


def _assemble_payload(params: dict, shard: _ShardRun,
                      per_cell_flows: dict) -> dict:
    cells_out = {}
    for cell in params["cells"]:
        cell_id = cell["cell_id"]
        flows = per_cell_flows.get(cell_id, [])
        plan = shard.plan[cell_id]
        cells_out[str(cell_id)] = {
            "bandwidth_mhz": cell["bandwidth_mhz"],
            "frequency_ghz": cell["frequency_ghz"],
            "site": cell["site"],
            "busy": cell["busy"],
            "peak_users": cell["peak_users"],
            "off_hours": list(cell.get("off_hours", ())),
            "offered_users": list(plan["offered"]),
            "sim_users": list(plan["sim"]),
            "handovers_in": shard.handovers_in.get(cell_id, 0),
            "flows": flows,
            "jain_index": jain_index(
                [f["throughput_mbps"] for f in flows]),
        }
    return {
        "schema": SHARD_SCHEMA,
        "set": params["set"],
        "index": params["index"],
        "hours": list(params["hours"]),
        "hour_s": params["hour_s"],
        "walkers": len(shard.walkers),
        "handovers": sum(shard.handovers_in.values()),
        "cells": cells_out,
    }


def shard_fingerprint(params: dict, batched: bool = True) -> str:
    """SHA-256 digest of everything observable in one shard run.

    Runs the shard on the requested engine and digests it with
    :func:`repro.harness.fingerprint.digest_run` — the batched and
    scalar engines must return the same string (the ≥100-cell
    equivalence test and the metro bench both assert this).
    """
    from ..harness.fingerprint import digest_run
    shard = build_shard(params, batched=batched)
    results = shard.run()
    return digest_run(shard.experiment, shard.handles, results)
