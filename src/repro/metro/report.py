"""Metro matrix assembly and human-readable summaries.

The matrix is the machine-readable product of a metro run: one row per
scenario cell (in cell-id order) carrying the fairness and capacity
measurements of §6.4 — Jain index over the cell's coexistence fleet,
PBE capacity-tracking error, handover churn, fallback time — plus the
diurnal population counts.  It contains no wall-clock values, so two
runs with the same seed produce byte-identical files (including runs
resumed after SIGINT: rows are rebuilt from journaled payloads).
"""

from __future__ import annotations

from .sets import MetroSet

#: Matrix document schema.
MATRIX_SCHEMA = "repro.metro/matrix/v1"


def build_matrix(mset: MetroSet, grid_dict: dict,
                 payloads: list[dict]) -> dict:
    """Merge shard payloads into the per-cell matrix document.

    ``payloads`` are successful shard payloads (any order); shards
    missing from it (failed jobs) are reported in ``missing_shards``.
    """
    rows = {}
    present = []
    for payload in payloads:
        present.append(payload["index"])
        for cell_id, row in payload["cells"].items():
            rows[int(cell_id)] = dict(row, cell_id=int(cell_id))
    cells = [rows[cell_id] for cell_id in sorted(rows)]

    fleet_cells = [row for row in cells if row["flows"]]
    pbe = [f for row in fleet_cells for f in row["flows"]
           if f["scheme"] == "pbe"]
    tracked = [f["capacity_error"] for f in pbe
               if f.get("capacity_error") is not None]
    summary = {
        "n_cells": len(cells),
        "busy_cells": sum(1 for row in cells if row["busy"]),
        "offered_users_total": sum(sum(row["offered_users"])
                                   for row in cells),
        "sim_users_peak": sum(max(row["sim_users"], default=0)
                              for row in cells),
        "handovers": sum(row["handovers_in"] for row in cells),
        "mean_jain_index": (
            sum(row["jain_index"] for row in fleet_cells)
            / len(fleet_cells) if fleet_cells else None),
        "mean_capacity_error": (sum(tracked) / len(tracked)
                                if tracked else None),
        "fallback_s_total": sum(f.get("fallback_s") or 0.0
                                for f in pbe),
    }
    return {
        "schema": MATRIX_SCHEMA,
        "set": mset.name,
        "seed": mset.seed,
        "hours": list(mset.hours),
        "hour_s": mset.hour_s,
        "scheduler_policy": mset.scheduler_policy,
        "grid": grid_dict,
        "shards_present": sorted(present),
        "missing_shards": [],   # filled by the driver on failures
        "summary": summary,
        "cells": cells,
    }


def format_summary(matrix: dict) -> str:
    """Human-readable digest of one matrix (busy cells + totals)."""
    lines = []
    summary = matrix["summary"]
    lines.append(
        f"metro set {matrix['set']!r}: {summary['n_cells']} cells "
        f"({summary['busy_cells']} busy), hours {matrix['hours']} at "
        f"{matrix['hour_s']} s/hour, policy {matrix['scheduler_policy']}")
    lines.append(
        f"  offered users (trace total): "
        f"{summary['offered_users_total']}, peak simulated background "
        f"users: {summary['sim_users_peak']}, handovers: "
        f"{summary['handovers']}")
    if matrix["missing_shards"]:
        lines.append(f"  MISSING shards: {matrix['missing_shards']} "
                     "(matrix is partial)")

    fleet_rows = [row for row in matrix["cells"] if row["flows"]]
    if fleet_rows:
        header = (f"  {'cell':>5} {'MHz':>5} {'peak':>5} {'jain':>6} "
                  f"{'cap.err':>8} {'fallbk_s':>8}  per-scheme Mbit/s")
        lines.append(header)
        for row in fleet_rows:
            pbe = [f for f in row["flows"] if f["scheme"] == "pbe"]
            err = (pbe[0].get("capacity_error")
                   if pbe and pbe[0].get("capacity_error") is not None
                   else None)
            fallback = pbe[0].get("fallback_s", 0.0) if pbe else 0.0
            tputs = " ".join(
                f"{f['scheme']}={f['throughput_mbps']:.1f}"
                for f in row["flows"])
            lines.append(
                f"  {row['cell_id']:>5} {row['bandwidth_mhz']:>5.0f} "
                f"{row['peak_users']:>5} {row['jain_index']:>6.3f} "
                f"{(f'{err:8.3f}' if err is not None else '       -')} "
                f"{fallback:>8.3f}  {tputs}")
        mean_jain = summary["mean_jain_index"]
        mean_err = summary["mean_capacity_error"]
        lines.append(
            f"  mean jain {mean_jain:.4f}" +
            (f", mean capacity error {mean_err:.3f}"
             if mean_err is not None else "") +
            f", total fallback {summary['fallback_s_total']:.3f} s")
    return "\n".join(lines)
