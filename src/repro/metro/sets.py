"""Named metro scenario sets (``python -m repro metro --set NAME``).

A :class:`MetroSet` bundles a grid spec with the simulation knobs one
metro run needs: which hours of the diurnal day to simulate, how much
wall-clock each hour is compressed to, shard sizing, the population
subsampling scale, walker churn, the coexistence fleet and the PRB
scheduler policy.  ``python -m repro list`` enumerates the registry.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .grid import GridSpec


@dataclass(frozen=True)
class MetroSet:
    """One named metro configuration."""

    name: str
    description: str
    grid: GridSpec
    #: Hours of the diurnal day to simulate (night/morning/peak/eve).
    hours: tuple = (3, 9, 14, 21)
    #: Simulated seconds per diurnal hour (time compression).
    hour_s: float = 0.5
    #: Target cells per shard (site-aligned; see MetroGrid.shards).
    shard_cells: int = 30
    #: Offered-to-simulated background-user subsampling factor.
    users_scale: float = 0.02
    max_users_per_cell: int = 6
    walkers_per_shard: int = 3
    #: Coexistence fleet planted on every busy cell.
    fleet: tuple = ("pbe", "cubic", "bbr")
    scheduler_policy: str = "equal"
    seed: int = 0

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["grid"] = self.grid.to_dict()
        out["hours"] = list(self.hours)
        out["fleet"] = list(self.fleet)
        return out

    def with_overrides(self, **kwargs) -> "MetroSet":
        if "grid" in kwargs and isinstance(kwargs["grid"], dict):
            kwargs["grid"] = dataclasses.replace(self.grid,
                                                 **kwargs["grid"])
        return dataclasses.replace(self, **kwargs)


def metro_scenario_sets() -> dict:
    """The registry of named metro sets."""
    sets = [
        MetroSet(
            name="smoke",
            description=("CI smoke: 108 mostly-idle cells, night + "
                         "peak hour, PBE/cubic fleets on ~5 hotspots"),
            grid=GridSpec(name="smoke", n_cells=108, seed=0),
            hours=(3, 14), hour_s=0.35, shard_cells=27,
            walkers_per_shard=2, fleet=("pbe", "cubic")),
        MetroSet(
            name="metro-240",
            description=("240 cells over four diurnal hours with "
                         "PBE/cubic/BBR fleets (the default matrix)"),
            grid=GridSpec(name="metro-240", n_cells=240, seed=0),
            hours=(3, 9, 14, 21), hour_s=0.5, shard_cells=30),
        MetroSet(
            name="downtown-999",
            description=("999 cells, dense hotspot core, single peak "
                         "hour — the issue's 1000-carrier ceiling"),
            grid=GridSpec(name="downtown-999", n_cells=999,
                          hotspot_fraction=0.08, seed=0),
            hours=(14,), hour_s=0.5, shard_cells=48,
            walkers_per_shard=4),
        MetroSet(
            name="pf-churn",
            description=("proportional-fair scheduler under walker "
                         "handover churn (stresses PF-state eviction)"),
            grid=GridSpec(name="pf-churn", n_cells=120, seed=0),
            hours=(9, 14), hour_s=0.5, shard_cells=30,
            walkers_per_shard=6, fleet=("pbe", "cubic"),
            scheduler_policy="proportional_fair"),
    ]
    return {s.name: s for s in sets}
