"""Metro run orchestration: grid → shard jobs → matrix.

The driver splits the grid into site-aligned shards, wraps each as a
fingerprinted :class:`MetroShardJob`, submits the lot through the
supervised :func:`repro.exec.make_runner` machinery (process pool,
content-addressed cache, journal, SIGINT drain, resume) and merges the
payloads into the matrix document.  Shard payloads are pure functions
of their fingerprints, so a resumed or fully-cached run reassembles a
byte-identical matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exec import is_failure, make_runner
from .grid import MetroGrid, build_grid
from .report import build_matrix
from .sets import MetroSet, metro_scenario_sets
from .shard import MetroShardJob


@dataclass
class MetroRunResult:
    """Everything one metro run produced."""

    matrix: dict
    #: :class:`repro.exec.JobFailure` records for shards that failed.
    failures: list = field(default_factory=list)
    jobs: list = field(default_factory=list)


def resolve_set(name_or_set: "str | MetroSet") -> MetroSet:
    """Look up a named set (or pass a :class:`MetroSet` through)."""
    if isinstance(name_or_set, MetroSet):
        return name_or_set
    sets = metro_scenario_sets()
    try:
        return sets[name_or_set]
    except KeyError:
        raise ValueError(f"unknown metro set {name_or_set!r}; "
                         f"known: {sorted(sets)}") from None


def shard_jobs(mset: MetroSet,
               grid: "MetroGrid | None" = None) -> list[MetroShardJob]:
    """The set's shard job list (submission order = shard order)."""
    grid = grid or build_grid(mset.grid)
    jobs = []
    for index, shard in enumerate(grid.shards(mset.shard_cells)):
        jobs.append(MetroShardJob(params={
            "set": mset.name,
            "index": index,
            "seed": mset.seed,
            "cells": [cell.to_dict() for cell in shard],
            "hours": list(mset.hours),
            "hour_s": mset.hour_s,
            "users_scale": mset.users_scale,
            "max_users_per_cell": mset.max_users_per_cell,
            "walkers": mset.walkers_per_shard,
            "fleet": list(mset.fleet),
            "scheduler_policy": mset.scheduler_policy,
        }))
    return jobs


def run_metro(name_or_set: "str | MetroSet", jobs: int = 1,
              cache_dir=None, runner=None, progress=None,
              timeout_s=None, retries: int = 1, strict: bool = False,
              failure_budget=None) -> MetroRunResult:
    """Run one metro set end to end and build its matrix.

    Supervision knobs mirror :func:`repro.harness.experiments.
    run_stationary_sweep`; with a ``cache_dir`` every shard outcome is
    journaled beside the cache, so an interrupted run resumes with
    zero recomputation and an identical matrix.
    """
    mset = resolve_set(name_or_set)
    grid = build_grid(mset.grid)
    job_list = shard_jobs(mset, grid=grid)
    runner = make_runner(jobs=jobs, cache_dir=cache_dir, runner=runner,
                         progress=progress, timeout_s=timeout_s,
                         retries=retries, strict=strict,
                         failure_budget=failure_budget)
    payloads = runner.run(job_list)

    good, failures, missing = [], [], []
    for job, payload in zip(job_list, payloads):
        if is_failure(payload):
            failures.append(payload)
            missing.append(job.params["index"])
        else:
            good.append(payload)
    matrix = build_matrix(mset, grid.to_dict(), good)
    matrix["missing_shards"] = sorted(missing)
    return MetroRunResult(matrix=matrix, failures=failures,
                          jobs=job_list)
