"""Diurnal population plans: trace processes → simulated user counts.

Each metro cell owns a :class:`repro.traces.DiurnalCellActivity`
process seeded from the scenario seed and the cell id.  The *offered*
hourly user counts come straight from that trace (they are what the
matrix reports, matching the paper's Figure 11 measurement); the
*simulated* counts subsample them by ``users_scale`` (capped at
``max_users_per_cell``) so a thousand-cell grid with tens of thousands
of offered users stays simulable, while preserving the diurnal shape
and the busy/quiet contrast that drives idle-cell fast-forward.
"""

from __future__ import annotations

from ..traces.cellactivity import DiurnalCellActivity
from ..traces.seeds import derived_seed


def cell_activity(cell: dict, seed: int) -> DiurnalCellActivity:
    """The cell's diurnal trace process (independent per cell)."""
    return DiurnalCellActivity(
        peak_users_per_hour=max(1, int(cell["peak_users"])),
        off_hours=tuple(cell.get("off_hours", ())),
        seed=derived_seed(seed, "metro-activity", cell["cell_id"]))


def offered_counts(cell: dict, seed: int) -> list[int]:
    """Offered distinct users for all 24 hours of the cell's day."""
    return cell_activity(cell, seed).hourly_user_counts()


def population_plan(cells: list[dict], hours: list[int], seed: int,
                    users_scale: float,
                    max_users_per_cell: int) -> dict:
    """Per-cell offered and simulated user counts for ``hours``.

    Returns ``{cell_id: {"offered": [...], "sim": [...]}}`` with one
    entry per selected hour, in hour order.
    """
    if not hours:
        raise ValueError("need at least one simulated hour")
    if any(not 0 <= h < 24 for h in hours):
        raise ValueError("hours must be in [0, 24)")
    if users_scale < 0:
        raise ValueError("users_scale must be non-negative")
    plan = {}
    for cell in cells:
        day = offered_counts(cell, seed)
        offered = [day[h] for h in hours]
        sim = [min(max_users_per_cell, round(n * users_scale))
               for n in offered]
        plan[cell["cell_id"]] = {"offered": offered, "sim": sim}
    return plan
