"""Metro-scale scenario engine (ROADMAP item 1).

Generates seeded city-scale deployments — hundreds of component
carriers with per-cell frequency/bandwidth tiers, diurnal user
populations driven by the ``repro.traces`` activity processes,
trajectory-driven walkers handing over between cells, and coexistence
fleets of concurrent PBE/cubic/BBR flows on busy cells — then shards
the grid into fingerprinted jobs for the supervised ``repro.exec``
runner and reports a per-cell fairness/capacity matrix.

Entry points: ``python -m repro metro`` (CLI), :func:`run_metro`
(library), :func:`metro_scenario_sets` (the named-set registry).
"""

from .driver import (MetroRunResult, resolve_set, run_metro,
                     shard_jobs)
from .grid import (CARRIER_TIERS, GridSpec, MetroCell, MetroGrid,
                   build_grid)
from .mobility import handovers_into, walker_plan
from .population import cell_activity, offered_counts, population_plan
from .report import MATRIX_SCHEMA, build_matrix, format_summary
from .sets import MetroSet, metro_scenario_sets
from .shard import (SHARD_SCHEMA, SHARD_VERSION, MetroShardJob,
                    build_shard, run_shard, shard_fingerprint)

__all__ = [
    "CARRIER_TIERS", "GridSpec", "MATRIX_SCHEMA", "MetroCell",
    "MetroGrid", "MetroRunResult", "MetroSet", "MetroShardJob",
    "SHARD_SCHEMA", "SHARD_VERSION", "build_grid", "build_matrix",
    "build_shard", "cell_activity", "format_summary",
    "handovers_into", "metro_scenario_sets", "offered_counts",
    "population_plan", "resolve_set", "run_metro", "run_shard",
    "shard_fingerprint", "shard_jobs", "walker_plan",
]
