"""Trajectory-driven mobility: walkers that hand over between cells.

A *walker* is an exogenous user that roams the shard: it dwells on a
cell for a seeded exponential holding time, then hands over to a
neighbouring cell (same or adjacent site — metro handovers are short
hops, not teleports).  Each handover exercises the base station's
X2-style handover path — HARQ abandonment, scheduling interruption,
carrier re-aggregation and, under the ``proportional_fair`` policy,
the PF-state eviction fixed in PR 4 — at metro churn rates.

The plan is pure data (a pure function of its seed), so shard
fingerprints cover mobility exactly.
"""

from __future__ import annotations

import numpy as np

from ..traces.seeds import derived_seed

#: Shortest dwell on a cell before the next handover, seconds.
MIN_DWELL_S = 0.12


def walker_plan(cells: list[dict], duration_s: float, n_walkers: int,
                seed: int, mean_dwell_s: float = 0.0) -> list[dict]:
    """Deterministic mobility plans for ``n_walkers`` roaming users.

    Each plan is ``{"start_cell", "moves": [[t_s, cell_id], ...],
    "channel_seed", "demand_seed"}`` with strictly increasing move
    times inside ``(0, duration_s)``.  With fewer than two cells the
    walkers stay put (no moves).
    """
    if n_walkers < 0:
        raise ValueError("walker count must be non-negative")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if mean_dwell_s <= 0:
        mean_dwell_s = max(MIN_DWELL_S, duration_s / 5.0)

    cell_ids = [cell["cell_id"] for cell in cells]
    site_of = {cell["cell_id"]: cell["site"] for cell in cells}
    plans = []
    for w in range(n_walkers):
        rng = np.random.default_rng(
            derived_seed(seed, "metro-walker", w))
        here = int(cell_ids[int(rng.integers(len(cell_ids)))])
        plan = {
            "start_cell": here,
            "moves": [],
            "channel_seed": derived_seed(seed, "metro-walker", w, "rssi"),
            "demand_seed": derived_seed(seed, "metro-walker", w, "load"),
        }
        t = float(rng.exponential(mean_dwell_s))
        while len(cell_ids) > 1:
            t = max(t, MIN_DWELL_S)
            if t >= duration_s:
                break
            # Short hop: stay on this or an adjacent site when possible.
            near = [c for c in cell_ids
                    if c != here and abs(site_of[c] - site_of[here]) <= 1]
            pool = near or [c for c in cell_ids if c != here]
            here = int(pool[int(rng.integers(len(pool)))])
            plan["moves"].append([round(t, 6), here])
            t += float(rng.exponential(mean_dwell_s))
        plans.append(plan)
    return plans


def handovers_into(plans: list[dict]) -> dict:
    """Count of handovers *into* each cell across all plans."""
    counts: dict = {}
    for plan in plans:
        for _t, cell_id in plan["moves"]:
            counts[cell_id] = counts.get(cell_id, 0) + 1
    return counts
