"""Metro cell-grid generation (ROADMAP item 1, §6.2/§6.4 at scale).

A metro deployment is a square lattice of *sites* (base-station
locations), each hosting a few component carriers drawn from the
operator's frequency/bandwidth tiers — a 20 MHz mid-band primary plus
lower-bandwidth secondaries, like the campus cell set of
``harness.scenarios.default_carriers`` repeated a few hundred times.
Sites near the grid centre ("downtown") are the busiest; a seeded
fraction of their primaries become *hotspots* that carry the fairness
fleets, while outlying quiet cells may switch off overnight like the
paper's 10 MHz cell.

Everything is a pure function of :class:`GridSpec` — the same spec
always lays out the identical grid, which is what makes metro shard
jobs content-fingerprintable.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from ..phy.carrier import CarrierConfig
from ..traces.seeds import derived_seed

#: (bandwidth_mhz, frequency_ghz) tiers; index 0 is the site primary.
CARRIER_TIERS = (
    (20.0, 1.94),
    (15.0, 2.11),
    (10.0, 2.11),
    (10.0, 0.87),
    (5.0, 0.87),
)


@dataclass(frozen=True)
class GridSpec:
    """Seeded description of one metro grid."""

    name: str = "metro"
    #: Total component carriers (the issue's 100-1000 range).
    n_cells: int = 120
    #: Carriers per site (every site gets one tier-0 primary).
    carriers_per_site: int = 3
    #: Fraction of cells promoted to busy hotspots (downtown first).
    hotspot_fraction: float = 0.05
    #: Peak hourly distinct-user range for quiet cells.
    quiet_peak_users: tuple = (4, 40)
    #: Peak hourly distinct-user range for hotspot cells (the paper's
    #: 20 MHz cell peaks at ~181-233 users/hour).
    hotspot_peak_users: tuple = (140, 240)
    #: Probability a quiet cell powers off between midnight and 3 am.
    off_hours_fraction: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_cells < 1:
            raise ValueError("need at least one cell")
        if self.carriers_per_site < 1:
            raise ValueError("need at least one carrier per site")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot fraction must be in [0, 1]")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class MetroCell:
    """One component carrier of the grid."""

    cell_id: int
    site: int
    #: Site position on the lattice (row, col).
    row: int
    col: int
    bandwidth_mhz: float
    frequency_ghz: float
    #: Hotspot cells are busy: fairness fleets and high control load.
    busy: bool
    #: Peak hourly distinct users of the cell's diurnal trace.
    peak_users: int
    #: Hours of day (0-23) the cell is powered off.
    off_hours: tuple = ()

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["off_hours"] = list(self.off_hours)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MetroCell":
        data = dict(data)
        data["off_hours"] = tuple(data.get("off_hours", ()))
        return cls(**data)

    def carrier(self) -> CarrierConfig:
        return CarrierConfig(cell_id=self.cell_id,
                             bandwidth_mhz=self.bandwidth_mhz,
                             frequency_ghz=self.frequency_ghz)


@dataclass(frozen=True)
class MetroGrid:
    """A laid-out grid: the spec plus its concrete cells."""

    spec: GridSpec
    cells: tuple

    def carrier_configs(self) -> list[CarrierConfig]:
        return [cell.carrier() for cell in self.cells]

    def busy_cells(self) -> list[MetroCell]:
        return [cell for cell in self.cells if cell.busy]

    def shards(self, shard_cells: int) -> list[list[MetroCell]]:
        """Partition into site-aligned shards of ~``shard_cells`` cells.

        Cells of one site never straddle a shard boundary (walker
        mobility roams within a shard), and shards preserve cell-id
        order, so the concatenation of all shards is the whole grid.
        """
        if shard_cells < 1:
            raise ValueError("shard size must be positive")
        per_site = self.spec.carriers_per_site
        chunk = max(per_site, (shard_cells // per_site) * per_site)
        shards = [list(self.cells[i:i + chunk])
                  for i in range(0, len(self.cells), chunk)]
        return [shard for shard in shards if shard]

    def to_dict(self) -> dict:
        return {"spec": self.spec.to_dict(),
                "cells": [cell.to_dict() for cell in self.cells]}


def build_grid(spec: GridSpec) -> MetroGrid:
    """Lay out the grid described by ``spec`` (deterministic)."""
    rng = np.random.default_rng(
        derived_seed(spec.seed, "metro-grid", spec.name))
    n_sites = math.ceil(spec.n_cells / spec.carriers_per_site)
    side = max(1, math.ceil(math.sqrt(n_sites)))
    centre = (side - 1) / 2.0

    # Downtown score per site: distance from the centre plus seeded
    # jitter — ranks which sites host the busy hotspots.
    scores = []
    for site in range(n_sites):
        row, col = divmod(site, side)
        dist = math.hypot(row - centre, col - centre)
        dist_max = math.hypot(centre, centre) or 1.0
        scores.append(1.0 - dist / dist_max
                      + float(rng.normal(0.0, 0.15)))

    n_hot = max(1, round(spec.n_cells * spec.hotspot_fraction))
    # Hotspots are site primaries, busiest sites first.
    hot_sites = set(sorted(range(n_sites), key=lambda s: -scores[s])
                    [:min(n_hot, n_sites)])

    cells = []
    cell_id = 0
    for site in range(n_sites):
        row, col = divmod(site, side)
        for k in range(spec.carriers_per_site):
            if cell_id >= spec.n_cells:
                break
            if k == 0:
                bw, freq = CARRIER_TIERS[0]
            else:
                tier = int(rng.integers(1, len(CARRIER_TIERS)))
                bw, freq = CARRIER_TIERS[tier]
            busy = k == 0 and site in hot_sites
            lo, hi = (spec.hotspot_peak_users if busy
                      else spec.quiet_peak_users)
            peak = int(rng.integers(lo, hi + 1))
            off_hours = ()
            if not busy and float(rng.random()) < spec.off_hours_fraction:
                off_hours = (0, 1, 2)
            cells.append(MetroCell(
                cell_id=cell_id, site=site, row=row, col=col,
                bandwidth_mhz=bw, frequency_ghz=freq, busy=busy,
                peak_users=peak, off_hours=off_hours))
            cell_id += 1
    return MetroGrid(spec=spec, cells=tuple(cells))
