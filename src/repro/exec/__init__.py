"""Parallel experiment execution with content-addressed memoization.

Every simulation in this repository is an independent, deterministic,
seed-keyed run — embarrassingly parallel and perfectly cacheable.  This
package is the backbone that exploits both properties:

* :class:`Job` — one (scenario, scheme, overrides) simulation with a
  deterministic content fingerprint;
* :class:`ResultStore` — a disk cache of completed payloads keyed by
  fingerprint, written atomically inside a checksummed envelope;
  invalid entries are quarantined (never silently deleted) and
  ``python -m repro cache verify|gc`` audits and repairs the store;
* :class:`ParallelRunner` — fans jobs out over a process pool (with
  inline fallback, concurrent per-job deadlines and crash retries with
  jittered backoff), memoizes through the store, journals every
  outcome, isolates per-job failures as :class:`JobFailure` records,
  and drains cleanly on SIGINT/SIGTERM (:class:`SweepInterrupted`);
* :class:`SweepJournal` — the append-only JSONL manifest that makes
  interrupted sweeps resumable with zero recomputation.

The stationary sweep, the figure drivers, the benchmark suite and the
``python -m repro sweep`` command all submit their runs through here.
"""

from .backend import (
    ExecBackend,
    ProbeJob,
    ProcessPoolBackend,
    job_from_wire,
    job_to_wire,
    register_job_kind,
    wire_kind_of,
)
from .chaos import ChaosSpec, chaos_events
from .fleet import (
    FleetBackend,
    FleetWorker,
    RemoteJobError,
    WorkerLostError,
    fleet_status,
    run_worker,
    spawn_local_workers,
)
from .job import FINGERPRINT_VERSION, Job, canonical_json, scenario_to_dict
from .journal import (
    JOURNAL_NAME,
    JournalState,
    SweepJournal,
    sweep_fingerprint,
)
from .runner import (
    JobEvent,
    JobExecutionError,
    ParallelRunner,
    RunnerStats,
    StderrReporter,
    make_runner,
)
from .store import ResultStore, StoreStats, payload_checksum
from .supervisor import (
    BackoffPolicy,
    FailureBudgetExceeded,
    JobFailure,
    SignalDrain,
    SweepInterrupted,
    is_failure,
)
from .worker import execute_job, initialize_worker

__all__ = [
    "BackoffPolicy", "ChaosSpec", "ExecBackend", "FINGERPRINT_VERSION",
    "FailureBudgetExceeded", "FleetBackend", "FleetWorker",
    "JOURNAL_NAME", "Job", "JobEvent", "JobExecutionError",
    "JobFailure", "JournalState", "ParallelRunner", "ProbeJob",
    "ProcessPoolBackend", "RemoteJobError", "ResultStore",
    "RunnerStats", "SignalDrain", "StderrReporter", "StoreStats",
    "SweepInterrupted", "SweepJournal", "WorkerLostError",
    "canonical_json", "chaos_events", "execute_job", "fleet_status",
    "initialize_worker", "is_failure", "job_from_wire", "job_to_wire",
    "make_runner", "payload_checksum", "register_job_kind",
    "run_worker", "scenario_to_dict", "spawn_local_workers",
    "sweep_fingerprint", "wire_kind_of",
]
