"""Parallel experiment execution with content-addressed memoization.

Every simulation in this repository is an independent, deterministic,
seed-keyed run — embarrassingly parallel and perfectly cacheable.  This
package is the backbone that exploits both properties:

* :class:`Job` — one (scenario, scheme, overrides) simulation with a
  deterministic content fingerprint;
* :class:`ResultStore` — a disk cache of completed payloads keyed by
  fingerprint, written atomically so sweeps survive interruption;
* :class:`ParallelRunner` — fans jobs out over a process pool (with
  inline fallback, per-job timeout guard and crash retries), memoizes
  through the store, and reports progress/telemetry via a callback.

The stationary sweep, the figure drivers, the benchmark suite and the
``python -m repro sweep`` command all submit their runs through here.
"""

from .job import FINGERPRINT_VERSION, Job, canonical_json, scenario_to_dict
from .runner import (
    JobEvent,
    JobExecutionError,
    ParallelRunner,
    RunnerStats,
    StderrReporter,
    make_runner,
)
from .store import ResultStore
from .worker import execute_job, initialize_worker

__all__ = [
    "FINGERPRINT_VERSION", "Job", "JobEvent", "JobExecutionError",
    "ParallelRunner", "ResultStore", "RunnerStats", "StderrReporter",
    "canonical_json", "execute_job", "initialize_worker", "make_runner",
    "scenario_to_dict",
]
