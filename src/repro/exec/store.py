"""Disk-backed, content-addressed store of completed job results.

Each entry is one job's JSON payload, filed under the job's input
fingerprint (sharded by the first two hex digits to keep directories
small at paper scale and beyond).  Writes go through
:func:`repro.harness.serialize.write_json_atomic`, so an interrupted
run can never leave a truncated entry — and whatever *did* complete is
picked up as cache hits when the sweep is re-run, making long sweeps
resumable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from ..harness.serialize import write_json_atomic


class ResultStore:
    """Memoizes job payloads by content fingerprint."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, fingerprint: str) -> Path:
        """Where ``fingerprint``'s payload lives (or would live)."""
        if not fingerprint or any(c in fingerprint for c in "/\\."):
            raise ValueError(f"malformed fingerprint {fingerprint!r}")
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[dict]:
        """The cached payload, or ``None`` if absent or unreadable.

        Corrupted entries (truncated JSON from a kill -9, disk-full
        debris, hand-edited files) are deleted and treated as misses —
        the job simply re-executes.
        """
        path = self.path_for(fingerprint)
        try:
            text = path.read_text()
        except (FileNotFoundError, OSError):
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self.discard(fingerprint)
            return None
        if not isinstance(payload, dict):
            self.discard(fingerprint)
            return None
        return payload

    def put(self, fingerprint: str, payload: dict) -> None:
        """Persist one completed job's payload (atomic)."""
        write_json_atomic(payload, self.path_for(fingerprint),
                          indent=None)

    def discard(self, fingerprint: str) -> None:
        """Drop one entry (missing entries are fine)."""
        try:
            self.path_for(fingerprint).unlink()
        except (FileNotFoundError, OSError):
            pass

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))
