"""Disk-backed, content-addressed store of completed job results.

Each entry is one job's JSON payload, filed under the job's input
fingerprint (sharded by the first two hex digits to keep directories
small at paper scale and beyond).  Since the cache-integrity PR,
payloads travel inside a checksummed envelope::

    {"__repro_envelope__": 1, "sha256": "<payload checksum>",
     "payload": {...}}

Writes go through :func:`repro.harness.serialize.write_json_atomic`,
so an interrupted run can never leave a truncated entry — and whatever
*did* complete is picked up as cache hits when the sweep is re-run,
making long sweeps resumable.  Entries that fail to parse or whose
checksum does not match are **quarantined** under ``quarantine/``
(with a one-line reason log) instead of silently deleted, so disk
corruption is observable and diagnosable; the affected job simply
re-executes.  ``python -m repro cache verify|gc`` scans, reports and
repairs a store from the command line.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..harness.serialize import write_json_atomic
from .job import canonical_json

#: Bump when the envelope layout changes incompatibly.
SCHEMA_VERSION = 1

#: Envelope marker key (never a legitimate payload field).
ENVELOPE_KEY = "__repro_envelope__"

#: Quarantine subdirectory (never a shard: shards are two hex chars).
QUARANTINE_DIR = "quarantine"

#: Fingerprints are lowercase hex digests (SHA-256 in practice).
_FINGERPRINT_RE = re.compile(r"[0-9a-f]{8,128}")

#: :meth:`ResultStore.gc` leaves ``*.tmp`` files younger than this
#: alone — a fresh one may be a concurrent sweep's in-flight
#: ``write_json_atomic`` temp file, and unlinking it between write and
#: ``os.replace`` would make that sweep's ``put()`` raise.
TMP_GRACE_S = 3600.0


def payload_checksum(payload: dict) -> str:
    """SHA-256 over the canonical JSON encoding of ``payload``."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """One scan of a store: what it holds and what it quarantined."""

    entries: int = 0
    bytes: int = 0
    quarantined: int = 0

    def format(self) -> str:
        return (f"{self.entries} entries, {self.bytes} bytes, "
                f"{self.quarantined} quarantined")


class ResultStore:
    """Memoizes job payloads by content fingerprint."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        #: Entries quarantined by this process (fed into
        #: :class:`repro.exec.RunnerStats`).
        self.quarantine_events = 0

    def path_for(self, fingerprint: str) -> Path:
        """Where ``fingerprint``'s payload lives (or would live)."""
        if not isinstance(fingerprint, str) \
                or not _FINGERPRINT_RE.fullmatch(fingerprint):
            raise ValueError(
                f"malformed fingerprint {fingerprint!r}: store keys "
                f"must be lowercase hex digests (8-128 chars) — other "
                f"characters (e.g. '/', '\\', '.') could escape the "
                f"sharded cache layout or collide with its metadata "
                f"files")
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[dict]:
        """The cached payload, or ``None`` if absent or invalid.

        Invalid entries (truncated JSON from a kill -9, disk-full
        debris, checksum mismatches, hand-edited files) are moved to
        ``quarantine/`` — preserved for diagnosis, never silently
        deleted — and treated as misses, so the job re-executes.
        """
        path = self.path_for(fingerprint)
        try:
            text = path.read_text()
        except (FileNotFoundError, OSError):
            return None
        try:
            entry = json.loads(text)
        except ValueError:
            self.quarantine(fingerprint, "unparseable JSON")
            return None
        if not isinstance(entry, dict):
            self.quarantine(fingerprint, "not a JSON object")
            return None
        if ENVELOPE_KEY not in entry:
            # Pre-envelope entry: accept as-is (determinism already
            # guarantees its content; verify() upgrades it in place).
            return entry
        schema = entry.get(ENVELOPE_KEY)
        payload = entry.get("payload")
        if schema != SCHEMA_VERSION:
            self.quarantine(fingerprint,
                            f"unknown envelope schema {schema!r}")
            return None
        if not isinstance(payload, dict):
            self.quarantine(fingerprint, "envelope without payload")
            return None
        if entry.get("sha256") != payload_checksum(payload):
            self.quarantine(fingerprint, "checksum mismatch")
            return None
        return payload

    def put(self, fingerprint: str, payload: dict) -> None:
        """Persist one completed job's payload (atomic, checksummed).

        Safe under concurrent writers on the same fingerprint (two
        sweeps sharing a cache, or a fleet's duplicate completion):
        each writer stages a private temp file and commits with an
        atomic rename, so the race resolves to last-write-wins and a
        reader can never observe a half-written entry — and since jobs
        are deterministic, the racing writers carry identical payloads
        anyway.  ``fsync`` before the rename keeps a machine crash
        from leaving an empty (→ quarantined) entry behind.
        """
        entry = {ENVELOPE_KEY: SCHEMA_VERSION,
                 "sha256": payload_checksum(payload),
                 "payload": payload}
        write_json_atomic(entry, self.path_for(fingerprint),
                          indent=None, fsync=True)

    def discard(self, fingerprint: str) -> None:
        """Drop one entry (missing entries are fine)."""
        try:
            self.path_for(fingerprint).unlink()
        except (FileNotFoundError, OSError):
            pass

    def quarantine(self, fingerprint: str, reason: str) -> None:
        """Move one invalid entry aside (never silently delete it)."""
        path = self.path_for(fingerprint)
        dest = self.quarantine_root / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            return
        self.quarantine_events += 1
        try:
            with open(self.quarantine_root / "log.jsonl", "a") as log:
                log.write(json.dumps(
                    {"fingerprint": fingerprint, "reason": reason},
                    separators=(",", ":")) + "\n")
        except OSError:  # pragma: no cover - diagnostics only
            pass

    # ------------------------------------------------------------------
    def _entry_paths(self):
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name == QUARANTINE_DIR:
                continue
            # rglob, not glob: count entries even if a future layout
            # (or a hand-moved file) nests them deeper than one shard.
            yield from sorted(shard.rglob("*.json"))

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def stats(self) -> StoreStats:
        """Scan the store: entry count, payload bytes, quarantined."""
        out = StoreStats()
        for path in self._entry_paths():
            out.entries += 1
            try:
                out.bytes += path.stat().st_size
            except OSError:  # pragma: no cover - raced removal
                pass
        if self.quarantine_root.is_dir():
            out.quarantined = sum(
                1 for _ in self.quarantine_root.glob("*.json"))
        return out

    # ------------------------------------------------------------------
    def verify(self, upgrade: bool = True) -> dict:
        """Validate every entry; quarantine bad ones, report counts.

        ``upgrade=True`` rewrites valid pre-envelope entries into the
        checksummed envelope format so the whole store ends uniform.
        Returns ``{"checked", "ok", "upgraded", "quarantined",
        "foreign"}``.
        """
        report = {"checked": 0, "ok": 0, "upgraded": 0,
                  "quarantined": 0, "foreign": 0}
        before = self.quarantine_events
        for path in list(self._entry_paths()):
            fingerprint = path.stem
            if not _FINGERPRINT_RE.fullmatch(fingerprint):
                report["foreign"] += 1
                continue
            report["checked"] += 1
            try:
                legacy = ENVELOPE_KEY not in json.loads(
                    path.read_text())
            except (ValueError, OSError):
                legacy = False
            payload = self.get(fingerprint)
            if payload is None:
                continue
            report["ok"] += 1
            if legacy and upgrade:
                self.put(fingerprint, payload)
                report["upgraded"] += 1
        report["quarantined"] = self.quarantine_events - before
        return report

    def gc(self, tmp_grace_s: Optional[float] = None) -> dict:
        """Reclaim space: purge quarantine, temp debris, empty shards.

        Returns ``{"removed", "bytes"}``.  Valid entries are never
        touched — quarantined files have been reported by ``verify``
        (or at ``get`` time) before they can be collected here.  Temp
        files younger than ``tmp_grace_s`` (default
        :data:`TMP_GRACE_S`) are also left alone: they may belong to a
        sweep that is writing the store concurrently.
        """
        grace = TMP_GRACE_S if tmp_grace_s is None else tmp_grace_s
        now = time.time()
        removed = 0
        freed = 0
        if self.quarantine_root.is_dir():
            for path in sorted(self.quarantine_root.iterdir()):
                try:
                    size = path.stat().st_size
                    path.unlink()
                except OSError:  # pragma: no cover - raced removal
                    continue
                removed += 1
                freed += size
            try:
                self.quarantine_root.rmdir()
            except OSError:  # pragma: no cover - non-empty
                pass
        if self.root.is_dir():
            for stray in sorted(self.root.rglob("*.tmp")):
                try:
                    info = stray.stat()
                    if now - info.st_mtime < grace:
                        continue  # possibly a live writer's temp file
                    stray.unlink()
                except OSError:  # pragma: no cover - raced removal
                    continue
                removed += 1
                freed += info.st_size
            for shard in sorted(self.root.iterdir()):
                if shard.is_dir() and not any(shard.iterdir()):
                    try:
                        shard.rmdir()
                    except OSError:  # pragma: no cover
                        pass
        return {"removed": removed, "bytes": freed}
