"""Seeded, deterministic fault injection for the sweep fabric itself.

:mod:`repro.faults` perturbs the *simulated* network; this module
perturbs the *evaluation infrastructure* — the fleet of workers, the
shared queue, the result files in transit — so every robustness claim
the fleet makes (lease reclamation, retry-on-crash, checksum-guarded
results, duplicate-claim tolerance) is provable by test instead of
asserted in prose.

A :class:`ChaosSpec` travels with the fleet directory (``chaos.json``,
written by the driver, read by every worker).  Faults:

* ``kill``  — the worker SIGKILLs itself after claiming a job and
  before writing its result: a mid-job crash whose lease must expire
  and be reclaimed;
* ``kill_mid_job`` — the worker SIGKILLs itself *mid-simulation*, at a
  deterministic subframe boundary right after writing a snapshot
  (checkpoint-enabled jobs only): the retry must restore that snapshot
  and converge byte-identically to an uninterrupted run;
* ``stall`` — the worker stops renewing its heartbeat for ``stall_s``
  mid-job: the driver must reclaim the lease, and the eventual
  duplicate completion must be harmless;
* ``claim_delay`` — the worker holds its lease idle for
  ``claim_delay_s`` before executing, *with* heartbeats: lease renewal
  must keep the driver from reclaiming a slow-but-alive worker;
* ``duplicate_claim`` — the worker claims a job whose lease is live,
  racing the legitimate owner to completion: both write the (identical,
  deterministic) result and last-write-wins must hold;
* ``corrupt`` — the worker truncates/garbles the result envelope it
  writes: the driver's checksum validation must quarantine it and
  re-run the job.

Every decision is a pure function of ``(seed, fault kind, job
fingerprint)``, so a chaos run is as replayable as the simulations it
carries.  Each fault additionally fires **at most once per job
fingerprint fleet-wide** (an O_EXCL marker under ``chaos-events/``
arbitrates between workers), which guarantees convergence: the retry
that follows an injected fault runs fault-free, and the sweep's final
matrix is byte-identical to a chaos-free run of the same seed.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Union

#: Subdirectory of the fleet root holding once-per-fingerprint markers.
EVENTS_DIR = "chaos-events"
#: The spec's filename inside a fleet directory.
CHAOS_FILE = "chaos.json"

#: Fault kinds and the spec field holding each one's probability.
FAULT_PROBS = {
    "kill": "kill_prob",
    "kill_mid_job": "kill_mid_job_prob",
    "stall": "stall_prob",
    "claim_delay": "claim_delay_prob",
    "duplicate_claim": "duplicate_claim_prob",
    "corrupt": "corrupt_prob",
}


@dataclass
class ChaosSpec:
    """Deterministic fault plan for one fleet run."""

    seed: int = 0
    #: P(SIGKILL self after claim, before result), per fingerprint.
    kill_prob: float = 0.0
    #: P(SIGKILL self *mid-simulation*, at a deterministic subframe
    #: boundary), per fingerprint.  Requires checkpointing: the retry
    #: must restore the snapshot the dying worker left behind and the
    #: resumed result must be byte-identical to an uninterrupted run.
    #: Applied only to checkpoint-enabled jobs.
    kill_mid_job_prob: float = 0.0
    #: P(heartbeat stall of ``stall_s`` mid-job), per fingerprint.
    stall_prob: float = 0.0
    stall_s: float = 0.0
    #: P(hold the lease idle for ``claim_delay_s`` before executing).
    claim_delay_prob: float = 0.0
    claim_delay_s: float = 0.0
    #: P(claim over a live lease → duplicate execution).
    duplicate_claim_prob: float = 0.0
    #: P(corrupt the result envelope in transit), per fingerprint.
    corrupt_prob: float = 0.0

    def __post_init__(self) -> None:
        for kind, attr in FAULT_PROBS.items():
            p = getattr(self, attr)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{attr} must be a probability, "
                                 f"got {p!r}")
        if self.stall_s < 0 or self.claim_delay_s < 0:
            raise ValueError("fault durations must be >= 0")

    @property
    def active(self) -> bool:
        return any(getattr(self, attr) > 0
                   for attr in FAULT_PROBS.values())

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSpec":
        return cls(**data)

    def save(self, path: Union[str, Path]) -> None:
        from ..harness.serialize import write_json_atomic
        write_json_atomic(self.to_dict(), path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> Optional["ChaosSpec"]:
        """The spec at ``path``, or None when absent/unreadable."""
        try:
            return cls.from_dict(json.loads(Path(path).read_text()))
        except (FileNotFoundError, OSError, ValueError, TypeError):
            return None

    # ------------------------------------------------------------------
    def roll(self, kind: str, fingerprint: str) -> bool:
        """Pure decision: does ``kind`` hit this fingerprint?

        Derived from SHA-256 of ``seed:kind:fingerprint`` — the same
        spec makes the same calls on every worker, every host, every
        rerun.
        """
        prob = getattr(self, FAULT_PROBS[kind])
        if prob <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.seed}:{kind}:{fingerprint}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2 ** 64 < prob

    def kill_subframe(self, fingerprint: str,
                      duration_subframes: int) -> int:
        """The deterministic ``kill_mid_job`` point for one job.

        A subframe boundary in ``[1, duration_subframes - 1]`` derived
        from the seed and fingerprint, so every replay of the same
        chaos run kills the same job at the same simulated instant.
        """
        digest = hashlib.sha256(
            f"{self.seed}:kill-subframe:{fingerprint}".encode()).digest()
        span = max(1, duration_subframes - 1)
        return 1 + int.from_bytes(digest[:8], "big") % span

    def fire(self, root: Union[str, Path], kind: str,
             fingerprint: str) -> bool:
        """Roll, then claim the once-per-fingerprint fleet-wide slot.

        True means *this caller* must inject the fault now.  The
        O_EXCL marker under ``chaos-events/`` guarantees each
        (kind, fingerprint) fault fires exactly once across all
        workers and retries — which is what makes chaos runs converge
        to the chaos-free result.
        """
        if not self.roll(kind, fingerprint):
            return False
        marker = (Path(root) / EVENTS_DIR
                  / f"{kind}.{fingerprint[:16]}")
        try:
            marker.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:  # pragma: no cover - unwritable fleet dir
            return False
        os.close(fd)
        return True


def chaos_events(root: Union[str, Path]) -> dict:
    """Count fired faults by kind (for tests and telemetry)."""
    counts: dict = {kind: 0 for kind in FAULT_PROBS}
    events = Path(root) / EVENTS_DIR
    if not events.is_dir():
        return counts
    for marker in events.iterdir():
        kind = marker.name.split(".", 1)[0]
        if kind in counts:
            counts[kind] += 1
    return counts


def corrupt_bytes(encoded: bytes, seed: int, fingerprint: str) -> bytes:
    """Deterministically damage a result envelope "in transit".

    Alternates (by fingerprint digest) between truncation — the
    classic torn write — and flipping bytes in place, so both the
    JSON-parse and the checksum arms of the driver's validation get
    exercised.
    """
    digest = hashlib.sha256(
        f"{seed}:corrupt-mode:{fingerprint}".encode()).digest()
    if digest[0] % 2 == 0:
        return encoded[:max(1, len(encoded) // 2)]
    cut = max(1, digest[1] % max(1, len(encoded)))
    return encoded[:cut] + bytes([digest[2]]) + encoded[cut + 1:]
