"""Append-only sweep journal: what ran, what failed, what remains.

The :class:`repro.exec.ResultStore` holds the *payloads* of finished
jobs; the journal holds the *history* of the sweep that produced them:
one JSONL line per completed or failed job, flushed (and fsynced) as
it happens, plus a header identifying the sweep by the fingerprint of
its job set and an end marker recording how the run terminated
(``complete`` / ``interrupted`` / ``aborted``).

Because every line is self-contained JSON and writes are
append + flush (fsynced for begin/end markers, and at most once per
:data:`_SYNC_INTERVAL_S` for job lines so short jobs don't pay one
fsync each), a SIGKILL can at worst truncate the final line or drop
the last sync window's worth of job lines — both benign, since the
payloads live in the store and resume re-checks it.
:meth:`SweepJournal.replay` tolerates a trailing partial line and
rebuilds the per-fingerprint status map (last status wins), which is
what ``python -m repro sweep --resume`` uses to report finished work,
skip it (via the store) and re-attempt only failures.

The journal is a convenience layer over the store, never a
single point of failure: if an append hits an ``OSError`` (disk full,
filesystem hiccup) the journal marks itself :attr:`~SweepJournal.broken`,
warns once on stderr, and the sweep carries on journal-less rather
than aborting.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from .supervisor import JobFailure

#: Bump when the journal line format changes incompatibly.
JOURNAL_VERSION = 1

#: Default journal filename, created beside the result cache.
JOURNAL_NAME = "journal.jsonl"

#: Minimum spacing between fsyncs of job lines (begin/end markers
#: always sync) — short jobs would otherwise pay one fsync each.
_SYNC_INTERVAL_S = 0.5


def sweep_fingerprint(fingerprints: Sequence[str]) -> str:
    """Content hash identifying a sweep by its (unordered) job set."""
    encoded = json.dumps(sorted(set(fingerprints)),
                         separators=(",", ":")).encode()
    return hashlib.sha256(encoded).hexdigest()


@dataclass
class JournalState:
    """Replay of a journal: per-fingerprint terminal status."""

    #: Fingerprint of the most recent sweep header (None = no header).
    sweep: Optional[str] = None
    #: Job count announced by that header.
    total: int = 0
    #: Fingerprints whose last status is "done".
    done: set = field(default_factory=set)
    #: fingerprint -> :class:`JobFailure` for last-status-failed jobs.
    failed: dict = field(default_factory=dict)
    #: How the most recent run ended, if an end marker was written.
    ended: Optional[str] = None
    #: Lines that did not parse (truncated tail, foreign debris).
    malformed: int = 0

    def summary(self) -> str:
        return (f"{len(self.done)} done, {len(self.failed)} failed "
                f"of {self.total or '?'} jobs"
                + (f"; last run {self.ended}" if self.ended else ""))


class SweepJournal:
    """Append-only JSONL manifest of one (or more) sweep runs."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: Set after the first failed write; later appends no-op so a
        #: journal-side disk problem never aborts the sweep itself.
        self.broken = False
        self._last_sync = 0.0

    # ------------------------------------------------------------------
    def begin(self, sweep: str, total: int) -> None:
        self._append({"kind": "sweep", "version": JOURNAL_VERSION,
                      "fingerprint": sweep, "total": total},
                     sync=True)

    def record_done(self, fingerprint: str, label: str,
                    wall_s: float) -> None:
        self._append({"kind": "job", "status": "done",
                      "fingerprint": fingerprint, "label": label,
                      "wall_s": round(wall_s, 6)})

    def record_failure(self, failure: JobFailure) -> None:
        self._append({"kind": "job", "status": "failed",
                      "fingerprint": failure.fingerprint,
                      "label": failure.label,
                      "failure": failure.to_dict()})

    def end(self, status: str) -> None:
        self._append({"kind": "end", "status": status}, sync=True)

    def _append(self, record: dict, sync: bool = False) -> None:
        """Append one line; degrade to journal-less on OSError.

        The journal is an optimization over re-checking the store, so
        a write failure (disk full, fs hiccup) must not abort the sweep
        that is trying to record its progress — warn once, mark the
        journal broken, and keep running.
        """
        if self.broken:
            return
        line = json.dumps(record, separators=(",", ":")) + "\n"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as handle:
                handle.write(line)
                handle.flush()
                now = time.monotonic()
                if sync or now - self._last_sync >= _SYNC_INTERVAL_S:
                    os.fsync(handle.fileno())
                    self._last_sync = now
        except OSError as exc:
            self.broken = True
            print(f"[repro.exec] journal write to {self.path} failed "
                  f"({exc}); continuing without a journal — resume "
                  f"falls back to re-checking the result store",
                  file=sys.stderr)

    # ------------------------------------------------------------------
    def replay(self) -> JournalState:
        """Rebuild per-fingerprint status from the journal, tolerantly.

        Unparseable lines (a truncated tail after SIGKILL) are counted,
        not fatal.  Statuses aggregate across runs appended to the same
        file — fingerprints are content-addressed, so a job finished by
        any earlier run stays finished.
        """
        state = JournalState()
        try:
            text = self.path.read_text()
        except (FileNotFoundError, OSError):
            return state
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                kind = record["kind"]
            except (ValueError, TypeError, KeyError):
                state.malformed += 1
                continue
            if kind == "sweep":
                state.sweep = record.get("fingerprint")
                state.total = record.get("total", 0)
                state.ended = None
            elif kind == "job":
                fp = record.get("fingerprint")
                if not fp:
                    state.malformed += 1
                elif record.get("status") == "done":
                    state.done.add(fp)
                    state.failed.pop(fp, None)
                else:
                    try:
                        failure = JobFailure.from_dict(
                            record.get("failure") or {})
                    except (KeyError, TypeError):
                        state.malformed += 1
                        continue
                    state.failed[fp] = failure
                    state.done.discard(fp)
            elif kind == "end":
                state.ended = record.get("status")
            else:
                state.malformed += 1
        return state
