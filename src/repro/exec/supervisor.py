"""Supervision primitives for sweep execution.

A multi-hour sweep must behave like a production job scheduler, not a
script: one poisoned configuration cannot abort the other thousand
jobs, a slow job cannot stall timeout detection of the jobs behind it,
and a Ctrl-C must drain cleanly instead of losing unpersisted work.
This module holds the pieces the :class:`repro.exec.ParallelRunner`
composes to get there:

* :class:`JobFailure` — the structured, JSON-ready record a failed job
  leaves in the result list instead of tearing the sweep down;
* :class:`BackoffPolicy` — exponential backoff with *deterministic*
  jitter (derived from the job fingerprint, so retry schedules are
  reproducible like everything else in this repository);
* failure-budget accounting (:class:`FailureBudgetExceeded`) — a
  circuit breaker that aborts a sweep early when more than a
  configured fraction of its jobs fail;
* :class:`SignalDrain` — two-stage SIGINT/SIGTERM handling: the first
  signal stops submission and drains in-flight work, the second
  hard-aborts (:class:`SweepInterrupted` reports what finished).
"""

from __future__ import annotations

import hashlib
import signal
import threading
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Optional

#: Failure classification: the job's own code raised, the job exceeded
#: its deadline, or the worker process executing it died.
FAILURE_KINDS = ("job-error", "timeout", "worker-crash")


@dataclass
class JobFailure:
    """One job's terminal failure, captured in-place of its payload.

    Returned by :meth:`ParallelRunner.run` (non-strict mode) in the
    failed job's slot so callers see exactly which configurations
    failed and why, while every other job's payload survives.
    """

    label: str
    fingerprint: str
    #: One of :data:`FAILURE_KINDS`.
    kind: str
    exc_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "label": self.label, "fingerprint": self.fingerprint,
            "kind": self.kind, "exc_type": self.exc_type,
            "message": self.message, "traceback": self.traceback,
            "attempts": self.attempts, "wall_s": self.wall_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobFailure":
        return cls(**{k: data[k] for k in (
            "label", "fingerprint", "kind", "exc_type", "message")},
            traceback=data.get("traceback", ""),
            attempts=data.get("attempts", 1),
            wall_s=data.get("wall_s", 0.0))

    @classmethod
    def from_exception(cls, label: str, fingerprint: str, kind: str,
                       exc: BaseException, attempts: int = 1,
                       wall_s: float = 0.0) -> "JobFailure":
        if kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {kind!r}")
        tb = "".join(traceback_module.format_exception(
            type(exc), exc, exc.__traceback__))
        return cls(label=label, fingerprint=fingerprint, kind=kind,
                   exc_type=type(exc).__name__, message=str(exc),
                   traceback=tb, attempts=attempts, wall_s=wall_s)

    def summary(self) -> str:
        return (f"{self.label}: {self.kind} after {self.attempts} "
                f"attempt(s): {self.exc_type}: {self.message}")


def is_failure(payload) -> bool:
    """True when a runner result slot holds a failure, not a payload."""
    return isinstance(payload, JobFailure)


@dataclass
class BackoffPolicy:
    """Exponential backoff with deterministic, fingerprint-keyed jitter.

    ``delay_s(fingerprint, attempt)`` grows as ``base * factor**(n-1)``
    capped at ``max_s``, then scaled by a jitter factor in
    ``[0.5, 1.0)`` derived from SHA-256 of ``fingerprint:attempt`` —
    the same job retries on the same schedule on every machine, but
    distinct jobs de-synchronize instead of thundering back together.
    """

    base_s: float = 0.1
    factor: float = 2.0
    max_s: float = 30.0

    def delay_s(self, fingerprint: str, attempt: int) -> float:
        if attempt < 1:
            raise ValueError("attempt counts from 1")
        raw = min(self.max_s, self.base_s * self.factor ** (attempt - 1))
        digest = hashlib.sha256(
            f"{fingerprint}:{attempt}".encode()).digest()
        jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2 ** 65
        return raw * jitter


class FailureBudgetExceeded(RuntimeError):
    """The sweep's failure-fraction circuit breaker tripped."""

    def __init__(self, failed: int, total: int, budget: float) -> None:
        super().__init__(
            f"failure budget exceeded: {failed}/{total} jobs failed "
            f"(> {100 * budget:.0f}% budget); aborting sweep early")
        self.failed = failed
        self.total = total
        self.budget = budget


class SweepInterrupted(RuntimeError):
    """A signal stopped the sweep after a clean drain.

    Everything that finished before the drain is persisted (store +
    journal); re-running the same sweep resumes from there.
    """

    def __init__(self, done: int, total: int,
                 journal_path=None) -> None:
        where = f" (journal at {journal_path})" if journal_path else ""
        super().__init__(
            f"sweep interrupted: {done}/{total} jobs finished and "
            f"persisted{where}; re-run to resume")
        self.done = done
        self.total = total
        self.journal_path = journal_path


class SignalDrain:
    """Two-stage SIGINT/SIGTERM handling around a sweep.

    While active (as a context manager, main thread only), the first
    signal sets :attr:`stop_requested` — the runner stops submitting,
    drains in-flight jobs and persists what finished.  A second signal
    restores the original handlers and raises ``KeyboardInterrupt``
    immediately (hard abort).  Handlers are always restored on exit;
    off the main thread the drain degrades to an inert flag.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.stop_requested = False
        self._previous: dict = {}

    def __enter__(self) -> "SignalDrain":
        if (self.enabled and threading.current_thread()
                is threading.main_thread()):
            for sig in self.SIGNALS:
                try:
                    self._previous[sig] = signal.signal(sig, self._handle)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def _handle(self, signum, frame) -> None:
        if self.stop_requested:
            self._restore()
            raise KeyboardInterrupt
        self.stop_requested = True

    def _restore(self) -> None:
        while self._previous:
            sig, handler = self._previous.popitem()
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
