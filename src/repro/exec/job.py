"""Job specifications with deterministic content fingerprints.

A :class:`Job` is the unit of work of the execution subsystem: one
single-flow simulation, fully determined by its scenario, scheme and
flow-spec overrides.  Because every simulation is seed-keyed and
deterministic (see ``tests/test_determinism.py``), a job's inputs fully
determine its outputs — which makes jobs content-addressable: the
fingerprint of the canonical JSON encoding of the inputs keys a disk
cache of results (:class:`repro.exec.ResultStore`).

Jobs must be JSON-encodable: scenario fields are plain dataclass
values, and ``spec_overrides`` is restricted to the JSON-serializable
subset of :class:`repro.harness.FlowSpec` fields (no live channel or
link objects — those belong to hand-wired :class:`Experiment` scripts,
not to batch sweeps).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from ..harness.scenarios import Scenario

#: Bump when the payload schema or simulation semantics change in a way
#: that invalidates previously cached results.
#:
#: v2: fault-injection/degradation PR — payloads gained
#: ``sender_states``/``fault_stats``, PBE senders gained the feedback
#: watchdog, and monitors flush decode-latency buffers at teardown.
#:
#: v3: metro PR — :class:`repro.harness.Scenario` gained the
#: ``control_arrivals_by_cell`` field (part of the canonical encoding),
#: so v2 fingerprints no longer describe the same inputs.
FINGERPRINT_VERSION = 3


def canonical_json(payload) -> str:
    """Key-sorted, whitespace-free JSON — byte-stable across runs."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def scenario_to_dict(scenario: Scenario) -> dict:
    """Flatten a :class:`Scenario` (and its carriers) to primitives."""
    return dataclasses.asdict(scenario)


@dataclass
class Job:
    """One (scenario, scheme, spec-overrides) simulation to run."""

    scenario: Scenario
    scheme: str
    #: JSON-serializable :class:`FlowSpec` keyword overrides
    #: (e.g. ``{"cc_kwargs": {"rate_bps": 6e7}}``).
    spec_overrides: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Short human-readable identifier for progress reporting."""
        return f"{self.scenario.name}/{self.scheme}"

    def to_dict(self) -> dict:
        """The job's full input description, JSON-ready."""
        return {
            "version": FINGERPRINT_VERSION,
            "scenario": scenario_to_dict(self.scenario),
            "scheme": self.scheme,
            "spec_overrides": self.spec_overrides,
        }

    def fingerprint(self) -> str:
        """Content hash of the job's inputs.

        Two jobs share a fingerprint iff they would run the identical
        simulation, so the fingerprint is safe to use as a cache key
        and for deduplicating submissions.
        """
        encoded = canonical_json(self.to_dict()).encode("utf-8")
        return hashlib.sha256(encoded).hexdigest()

    def execute(self) -> dict:
        """Run the job and return a JSON-serializable payload.

        The execution subsystem dispatches through this method, so job
        types other than the single-flow simulation (e.g.
        :class:`repro.metro.MetroShardJob`) plug into the same
        supervised runner, cache and journal.  Imports are deferred:
        the job module stays importable without the full harness.

        A ``checkpoint`` attribute (a :meth:`CheckpointConfig.to_dict`
        dictionary, attached by the runner or decoded off the fleet
        wire format) enables mid-run snapshots: the newest valid
        snapshot is restored before the run and the simulation saves on
        the configured subframe cadence.  The attribute is deliberately
        *not* part of :meth:`to_dict` — where a job checkpoints never
        changes what it computes, so fingerprints and cached results
        are shared between checkpointed and plain executions.
        """
        from ..harness.runner import run_flow
        from ..harness.serialize import result_to_dict
        manager = None
        config = getattr(self, "checkpoint", None)
        if config is not None:
            from ..harness.checkpoint import (CheckpointConfig,
                                              CheckpointManager)
            manager = CheckpointManager(CheckpointConfig.from_dict(config))
        result = run_flow(self.scenario, self.scheme,
                          dict(self.spec_overrides), checkpoint=manager)
        return result_to_dict(result)
