"""Pluggable execution backends for the sweep runner.

:class:`repro.exec.ParallelRunner` owns the sweep-level semantics —
dedup, memoization, deadlines, retries, failure isolation, journaling,
signal drains — and delegates the *mechanics* of running one job
somewhere else to an :class:`ExecBackend`:

* :class:`ProcessPoolBackend` — the original
  :class:`~concurrent.futures.ProcessPoolExecutor` fan-out on the
  local machine (one backend instance per retry round, recreated so a
  hung worker can be abandoned with its pool);
* :class:`repro.exec.fleet.FleetBackend` — a shared on-disk work queue
  that independent ``python -m repro fleet worker`` processes (on this
  or other hosts, against a shared/SSH-mounted directory) pull from
  under heartbeat-renewed leases.

The contract is deliberately future-shaped: ``submit`` returns an
opaque handle, ``wait`` blocks until at least one handle settles (or a
timeout passes), ``result`` returns the payload or raises — the job's
own exception for a job-level error, an :class:`OSError` subclass
(e.g. :class:`repro.exec.fleet.WorkerLostError`) when the *worker*
died, which the runner treats as retryable exactly like a crashed pool
process.

Because fleet workers receive jobs through a directory instead of a
pickle stream, jobs cross the wire as JSON (:func:`job_to_wire` /
:func:`job_from_wire`).  Any job type used with a fleet must have a
registered reconstructor; the built-in kinds are the single-flow
:class:`repro.exec.Job`, the :class:`repro.metro.MetroShardJob` and
the fabric-testing :class:`ProbeJob`.
"""

from __future__ import annotations

import hashlib
import time
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from .job import Job, canonical_json
from .worker import execute_job, initialize_worker


class ExecBackend(ABC):
    """Where one round of sweep jobs actually executes.

    Handles are opaque to the runner; a backend may use futures, file
    paths or anything hashable.  ``persistent`` backends survive retry
    rounds (the runner shuts them down once, at the end of the sweep);
    non-persistent ones are created per round via the runner's backend
    factory and shut down when the round ends.
    """

    #: Human-readable backend name (telemetry / progress lines).
    name = "?"
    #: True: one instance serves every retry round of a sweep.  False:
    #: the runner builds a fresh instance per round (which is how a
    #: hung pool worker gets abandoned with its pool).
    persistent = False
    #: Concurrent-submission throttle for the runner, or ``None`` for
    #: "submit everything" (queue-based backends pace themselves).
    capacity: Optional[int] = None

    @abstractmethod
    def submit(self, job) -> object:
        """Start (or enqueue) one job; returns an opaque handle."""

    @abstractmethod
    def wait(self, handles: Set[object], timeout: float) -> Set[object]:
        """Block until ≥1 handle settles or ``timeout`` elapses.

        Returns the settled subset (possibly empty on timeout).
        """

    @abstractmethod
    def result(self, handle) -> dict:
        """The payload of a settled handle.

        Raises the job's own exception for job-level errors, or an
        :class:`OSError` subclass when the executing worker was lost
        (crash, expired lease, corrupt result in transit) — the runner
        retries those.
        """

    @abstractmethod
    def cancel(self, handle) -> bool:
        """Try to cancel; True iff the job never started executing."""

    def done(self, handle) -> bool:
        """True when the handle has settled (result or error ready)."""
        return False

    def exec_elapsed(self, handle, submitted_elapsed: float) -> float:
        """Seconds of *execution* behind a handle, for deadline checks.

        ``submitted_elapsed`` is time since the runner submitted the
        handle; backends that start jobs immediately (the pool, which
        the runner feeds at most ``workers`` jobs at a time) return it
        unchanged, while queue-based backends subtract time the job
        spent waiting unclaimed.
        """
        return submitted_elapsed

    @abstractmethod
    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        """Release the backend's resources."""


class ProcessPoolBackend(ExecBackend):
    """The local :class:`ProcessPoolExecutor` fan-out (the default).

    A thin veneer: handles are the executor's futures, so the runner's
    deadline/zombie semantics are byte-identical to the pre-backend
    runner (``wait``/``cancel``/``result`` map 1:1 onto the future
    API).
    """

    name = "pool"
    persistent = False

    def __init__(self, workers: int,
                 executor: Optional[ProcessPoolExecutor] = None) -> None:
        self.capacity = workers
        self._executor = executor if executor is not None else \
            ProcessPoolExecutor(max_workers=workers,
                                initializer=initialize_worker)

    def submit(self, job):
        return self._executor.submit(execute_job, job)

    def wait(self, handles, timeout):
        done, _ = wait(handles, timeout=timeout,
                       return_when=FIRST_COMPLETED)
        return done

    def result(self, handle):
        return handle.result()

    def cancel(self, handle):
        return handle.cancel()

    def done(self, handle):
        return handle.done()

    def shutdown(self, wait=True, cancel_futures=False):
        self._executor.shutdown(wait=wait,
                                cancel_futures=cancel_futures)


# ---------------------------------------------------------------------
# Wire format: jobs as JSON, for backends whose workers live in other
# processes (or on other machines) and cannot receive a pickle.

@dataclass
class ProbeJob:
    """A tiny deterministic job for exercising the execution fabric.

    The fleet/chaos tests and ``repro fleet``'s smoke path need jobs
    whose wall time and payload are fully controllable without paying
    for a simulation.  ``params`` keys: ``id`` (any JSON value),
    ``sleep_s`` (busy-wait wall time), ``value`` (echoed into the
    payload), ``fail`` (truthy → raise ``RuntimeError``).
    """

    params: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"probe/{self.params.get('id', '?')}"

    def to_dict(self) -> dict:
        return {"kind": "probe", "params": self.params}

    def fingerprint(self) -> str:
        encoded = canonical_json(self.to_dict()).encode("utf-8")
        return hashlib.sha256(encoded).hexdigest()

    def execute(self) -> dict:
        if self.params.get("fail"):
            raise RuntimeError(
                f"probe {self.params.get('id')} asked to fail")
        sleep_s = float(self.params.get("sleep_s", 0.0))
        if sleep_s > 0:
            time.sleep(sleep_s)
        return {"probe": self.params.get("id"),
                "value": self.params.get("value", 0)}


def _flow_job_from_spec(spec: dict) -> Job:
    """Rebuild a single-flow :class:`Job` from its ``to_dict`` form."""
    from ..harness.scenarios import Scenario
    from ..phy.carrier import CarrierConfig
    scenario = dict(spec["scenario"])
    scenario["carriers"] = [CarrierConfig(**c)
                            for c in scenario.get("carriers", [])]
    # JSON round-trips tuples to lists (canonically identical) and
    # integer dict keys to strings (the simulator looks cells up by
    # int) — normalize what execution is sensitive to.
    if scenario.get("background_rate_range") is not None:
        scenario["background_rate_range"] = tuple(
            scenario["background_rate_range"])
    if scenario.get("control_arrivals_by_cell") is not None:
        scenario["control_arrivals_by_cell"] = {
            int(k): v
            for k, v in scenario["control_arrivals_by_cell"].items()}
    return Job(scenario=Scenario(**scenario), scheme=spec["scheme"],
               spec_overrides=dict(spec.get("spec_overrides", {})))


def _metro_shard_from_spec(spec: dict):
    from ..metro.shard import MetroShardJob
    return MetroShardJob(params=spec["params"])


#: kind -> reconstructor(spec_dict) -> job.  Extendable via
#: :func:`register_job_kind` for repository-external job types.
_JOB_KINDS: Dict[str, Callable[[dict], object]] = {
    "flow": _flow_job_from_spec,
    "metro-shard": _metro_shard_from_spec,
    "probe": lambda spec: ProbeJob(params=spec["params"]),
}


def register_job_kind(kind: str,
                      loader: Callable[[dict], object]) -> None:
    """Register a reconstructor for a custom fleet-capable job type."""
    _JOB_KINDS[kind] = loader


def wire_kind_of(job) -> Optional[str]:
    """The wire ``kind`` of a job instance, or None if unregistered."""
    if isinstance(job, Job):
        return "flow"
    if isinstance(job, ProbeJob):
        return "probe"
    kind = job.to_dict().get("kind") if hasattr(job, "to_dict") else None
    return kind if kind in _JOB_KINDS else None


def job_to_wire(job) -> dict:
    """Encode one job for the shared fleet queue.

    The driver's already-computed fingerprint rides along so workers
    never re-derive it (fingerprints key leases, results and the
    store, and must match the driver's bit-for-bit).
    """
    kind = wire_kind_of(job)
    if kind is None:
        raise TypeError(
            f"{type(job).__name__} has no registered wire kind; fleet "
            f"execution needs register_job_kind() so workers can "
            f"rebuild it from JSON")
    wire = {"kind": kind, "fingerprint": job.fingerprint(),
            "label": job.label, "spec": job.to_dict()}
    # The checkpoint config travels OUTSIDE "spec": it steers where a
    # worker snapshots, never what the job computes, so it must not
    # perturb the fingerprint or the cached payload.
    checkpoint = getattr(job, "checkpoint", None)
    if checkpoint is not None:
        wire["checkpoint"] = checkpoint
    return wire


def job_from_wire(data: dict):
    """Rebuild the job a :func:`job_to_wire` entry describes."""
    kind = data.get("kind")
    loader = _JOB_KINDS.get(kind)
    if loader is None:
        raise ValueError(f"unknown wire job kind {kind!r}; known: "
                         f"{sorted(_JOB_KINDS)}")
    job = loader(data["spec"])
    checkpoint = data.get("checkpoint")
    if checkpoint is not None:
        job.checkpoint = checkpoint
    return job
