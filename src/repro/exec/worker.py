"""Worker-side execution of one :class:`Job`.

Kept in its own module so :func:`execute_job` is a plain top-level
function that pickles cleanly into :class:`ProcessPoolExecutor`
workers.  The inline (``jobs=1``) path calls the very same function,
which is what guarantees parallel and serial sweeps return identical
payloads.
"""

from __future__ import annotations

import json
import os
import signal

from ..harness.runner import run_flow
from ..harness.serialize import result_to_dict

from .job import Job


def initialize_worker() -> None:
    """Pool-worker initializer.

    Pins the math libraries to one thread per worker (the parallelism
    budget belongs to the process pool, not to BLAS), and ignores
    SIGINT/SIGTERM so a Ctrl-C (or a terminal-wide TERM) interrupts
    only the parent, whose :class:`repro.exec.SignalDrain` then drains
    in-flight jobs cleanly — completed jobs already sit in the result
    store and journal, making interrupted sweeps resumable.
    """
    for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                "MKL_NUM_THREADS"):
        os.environ.setdefault(var, "1")
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, signal.SIG_IGN)
        except (ValueError, OSError):  # pragma: no cover - non-main
            pass


def execute_job(job: Job) -> dict:
    """Run one job to completion and return its result payload.

    The payload is :func:`result_to_dict` output, round-tripped through
    JSON so that fresh results are byte-identical to cache-loaded ones
    (string dictionary keys, JSON float formatting) regardless of where
    they were produced.
    """
    result = run_flow(job.scenario, job.scheme, dict(job.spec_overrides))
    return json.loads(json.dumps(result_to_dict(result)))
