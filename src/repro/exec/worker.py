"""Worker-side execution of one :class:`Job`.

Kept in its own module so :func:`execute_job` is a plain top-level
function that pickles cleanly into :class:`ProcessPoolExecutor`
workers.  The inline (``jobs=1``) path calls the very same function,
which is what guarantees parallel and serial sweeps return identical
payloads.
"""

from __future__ import annotations

import json
import os
import signal

from .job import Job


def initialize_worker(role: str = "pool") -> None:
    """Worker initializer (pool children and standalone fleet workers).

    Pins the math libraries to one thread per worker (the parallelism
    budget belongs to the process pool / fleet, not to BLAS), then
    configures signals by *role*:

    ``"pool"`` (the :class:`ProcessPoolExecutor` initializer default)
    ignores SIGINT **and** SIGTERM so a Ctrl-C (or a terminal-wide
    TERM) interrupts only the parent, whose
    :class:`repro.exec.SignalDrain` then drains in-flight jobs cleanly
    — completed jobs already sit in the result store and journal,
    making interrupted sweeps resumable.

    ``"fleet"`` ignores only SIGINT: a standalone fleet worker has no
    supervising parent on its host, so SIGTERM must reach the worker
    loop's own two-stage handler (finish or abandon the leased job,
    release the lease, then exit) instead of being swallowed — an
    unconditional SIG_IGN here once made fleet workers unkillable
    except by SIGKILL, which leaks leases until their TTL expires.
    """
    for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                "MKL_NUM_THREADS"):
        os.environ.setdefault(var, "1")
    signals = ((signal.SIGINT, signal.SIGTERM) if role == "pool"
               else (signal.SIGINT,))
    for sig in signals:
        try:
            signal.signal(sig, signal.SIG_IGN)
        except (ValueError, OSError):  # pragma: no cover - non-main
            pass


def execute_job(job: Job) -> dict:
    """Run one job to completion and return its result payload.

    Dispatches through ``job.execute()`` (any fingerprinted job type —
    single-flow :class:`Job`, metro shards — runs through the same
    pool), then round-trips the payload through JSON so that fresh
    results are byte-identical to cache-loaded ones (string dictionary
    keys, JSON float formatting) regardless of where they were
    produced.

    For checkpoint-enabled jobs the pool's blanket SIGTERM SIG_IGN is
    temporarily replaced with a drain request: the simulation finishes
    the current snapshot interval, writes one last snapshot at the
    boundary and raises :class:`~repro.harness.checkpoint.
    CheckpointDrain` (an ``OSError``, so the supervising runner files
    it under crash-retry and a later ``--resume`` picks the job up from
    the snapshot instead of from scratch).
    """
    if getattr(job, "checkpoint", None) is None:
        return json.loads(json.dumps(job.execute()))

    from ..harness import checkpoint as ckpt
    ckpt.clear_drain()  # a pooled worker may be reused after a drain

    previous = None

    def _drain(signum, frame):  # pragma: no cover - signal path
        ckpt.request_drain()
        if callable(previous):  # keep e.g. the fleet worker's own
            previous(signum, frame)  # two-stage stop semantics alive

    try:
        previous = signal.signal(signal.SIGTERM, _drain)
    except (ValueError, OSError):  # non-main thread: keep pool default
        previous = None
    try:
        return json.loads(json.dumps(job.execute()))
    finally:
        ckpt.clear_drain()
        if previous is not None:
            try:
                signal.signal(signal.SIGTERM, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
