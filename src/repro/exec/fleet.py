"""Fleet execution: a shared on-disk queue, leases, and reclamation.

One sweep, many machines.  The driver (a
:class:`repro.exec.ParallelRunner` with a :class:`FleetBackend`)
publishes fingerprinted jobs as JSON files in a shared directory; any
number of independent ``python -m repro fleet worker`` processes — on
this host or on others, against the same (possibly SSH/NFS-mounted)
directory — pull jobs from the queue and push results back.  No
sockets, no broker: the filesystem's atomic primitives (``O_EXCL``
create, ``os.replace``) are the whole coordination protocol, which is
what lets a fleet survive any member dying at any instant.

Layout of a fleet directory::

    fleet/
      queue/<fp>.json     job wire form (driver writes, workers read)
      leases/<fp>.json    claim + heartbeat (worker renews every ttl/4)
      results/<fp>.json   checksummed result envelope (worker writes)
      workers/<id>.json   worker liveness beacons (telemetry)
      quarantine/         corrupt results, kept for diagnosis
      chaos.json          optional :class:`repro.exec.chaos.ChaosSpec`
      STOP                shutdown sentinel (driver writes at the end)

The robustness contract:

* a claim is an ``O_EXCL`` lease create; an existing lease may only be
  taken over once it **expires** (no heartbeat for ``ttl_s``);
* a worker that dies mid-job stops heartbeating; the driver reclaims
  the expired lease, surfaces :class:`WorkerLostError` and the runner
  retries the job under its existing
  :class:`~repro.exec.BackoffPolicy` — fleet reclamation and pool
  crash-retry share one policy and one stats surface;
* results travel in the same checksummed envelope as the
  :class:`~repro.exec.ResultStore`; a corrupt file (torn write, chaos
  injection) is quarantined and the job re-runs;
* duplicate completions (lease takeover racing a stalled-but-alive
  worker) are harmless: jobs are deterministic, so both writers
  produce identical bytes and atomic rename makes last-write-wins
  safe;
* everything flows into the driver's ``ResultStore`` + fsynced
  ``SweepJournal``, so ``--resume`` works at fleet scope: a SIGKILLed
  fleet restarted on the same cache re-runs only unfinished jobs.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Iterable, Optional, Set, Union

from .backend import ExecBackend, job_from_wire, job_to_wire
from .chaos import CHAOS_FILE, ChaosSpec, corrupt_bytes
from .store import ENVELOPE_KEY, SCHEMA_VERSION, payload_checksum
from .worker import execute_job, initialize_worker

QUEUE_DIR = "queue"
LEASE_DIR = "leases"
RESULT_DIR = "results"
WORKERS_DIR = "workers"
QUARANTINE_DIR = "quarantine"
STOP_FILE = "STOP"

#: Default lease time-to-live: a worker that misses heartbeats for
#: this long is presumed dead and its job is reclaimed.
DEFAULT_TTL_S = 10.0
#: Heartbeats renew the lease at ttl/4, so one missed beat never costs
#: a lease.
HEARTBEAT_FRACTION = 0.25


class WorkerLostError(OSError):
    """The fleet worker executing a job was lost (or its result was).

    An :class:`OSError` subclass on purpose: the runner already treats
    ``OSError`` from a backend as "the worker died, not the job" and
    retries with backoff — lease expiry, vanished results and corrupt
    envelopes all reduce to that same contract.
    """


class RemoteJobError(RuntimeError):
    """A job's own code raised on a fleet worker.

    Carries the remote exception's type/message/traceback as captured
    by the worker; the runner records it as a terminal ``job-error``
    (non-retryable), exactly like an exception from a pool worker.
    """

    def __init__(self, exc_type: str, message: str,
                 traceback: str = "") -> None:
        super().__init__(f"{exc_type}: {message}")
        self.remote_type = exc_type
        self.remote_message = message
        self.remote_traceback = traceback


# ---------------------------------------------------------------------
# Small filesystem helpers (shared by driver and worker sides).

def _read_json(path: Path) -> Optional[dict]:
    """Parse a JSON file, tolerating races and torn writes (→ None)."""
    try:
        data = json.loads(path.read_text())
    except (FileNotFoundError, OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def _write_bytes_atomic(path: Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent,
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _unlink_quiet(path: Path) -> None:
    try:
        path.unlink()
    except (FileNotFoundError, OSError):
        pass


def lease_expired(lease: Optional[dict], now: Optional[float] = None,
                  default_ttl_s: float = DEFAULT_TTL_S) -> bool:
    """True when a lease record has gone ``ttl_s`` without renewal."""
    if lease is None:
        return True
    now = time.time() if now is None else now
    renewed = lease.get("renewed", 0.0)
    ttl = lease.get("ttl_s", default_ttl_s)
    if not isinstance(renewed, (int, float)) \
            or not isinstance(ttl, (int, float)):
        return True
    return now - renewed > ttl


#: ``try_claim`` outcomes.  ``CLAIM_TAKEOVER`` means an *expired*
#: lease was replaced — the previous worker stopped heartbeating and
#: this claim is a reclamation, which workers count and surface
#: through their liveness beacon so the driver's ``lease_reclaims``
#: telemetry stays accurate even when a sibling worker wins the
#: takeover race before the driver's poll notices the expiry.
CLAIM_FAILED = 0
CLAIM_FRESH = 1
CLAIM_TAKEOVER = 2


def try_claim(root: Union[str, Path], fingerprint: str, worker_id: str,
              ttl_s: float = DEFAULT_TTL_S,
              force: bool = False) -> int:
    """Atomically claim one job's lease; returns a ``CLAIM_*`` code.

    The fast path is an ``O_EXCL`` create — exactly one of N racing
    workers wins.  An existing lease may be taken over only when it is
    expired (its worker stopped heartbeating) or ``force`` is set (the
    chaos injector's duplicate-claim fault).  Takeover itself is an
    atomic replace; if two workers take over the same expired lease in
    the same instant both will run the job, which the fabric tolerates
    by design (deterministic jobs, last-write-wins results).

    The return value is truthy on success: ``CLAIM_FRESH`` for an
    uncontested claim (or a forced duplicate of a live lease) and
    ``CLAIM_TAKEOVER`` when an expired lease was replaced;
    ``CLAIM_FAILED`` otherwise.
    """
    path = Path(root) / LEASE_DIR / f"{fingerprint}.json"
    now = time.time()
    record = {"worker": worker_id, "fingerprint": fingerprint,
              "acquired": now, "renewed": now, "ttl_s": ttl_s}
    encoded = json.dumps(record, separators=(",", ":")).encode()
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        stale = _read_json(path)
        expired = lease_expired(stale, now)
        if not force and not expired:
            return CLAIM_FAILED
        try:
            _write_bytes_atomic(path, encoded)
        except OSError:
            return CLAIM_FAILED
        return CLAIM_TAKEOVER if expired else CLAIM_FRESH
    except OSError:
        return CLAIM_FAILED
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(encoded)
            handle.flush()
            os.fsync(handle.fileno())
    except OSError:
        _unlink_quiet(path)
        return CLAIM_FAILED
    return CLAIM_FRESH


def release_lease(root: Union[str, Path], fingerprint: str) -> None:
    _unlink_quiet(Path(root) / LEASE_DIR / f"{fingerprint}.json")


class _LeaseHeartbeat(threading.Thread):
    """Renews one lease every ``ttl/4`` while its job executes.

    Reads the lease before each renewal: if another worker took it
    over (duplicate-claim chaos, or an over-eager reclaim), the thread
    flags :attr:`lost` and stops renewing — the job keeps running and
    its (identical) result is still written, but the lease now belongs
    to someone else.  ``stall_s`` suppresses renewal for that long at
    the start — the chaos injector's heartbeat-stall fault.
    """

    def __init__(self, root: Path, fingerprint: str, worker_id: str,
                 ttl_s: float, stall_s: float = 0.0) -> None:
        super().__init__(daemon=True,
                         name=f"lease-{fingerprint[:8]}")
        self.root = root
        self.fingerprint = fingerprint
        self.worker_id = worker_id
        self.ttl_s = ttl_s
        self.stall_s = stall_s
        self.lost = False
        self._halt = threading.Event()

    def run(self) -> None:
        path = self.root / LEASE_DIR / f"{self.fingerprint}.json"
        if self.stall_s > 0 and self._halt.wait(self.stall_s):
            return
        period = max(0.02, self.ttl_s * HEARTBEAT_FRACTION)
        while not self._halt.wait(period):
            lease = _read_json(path)
            if lease is None or lease.get("worker") != self.worker_id:
                self.lost = True
                return
            lease["renewed"] = time.time()
            try:
                _write_bytes_atomic(path, json.dumps(
                    lease, separators=(",", ":")).encode())
            except OSError:  # pragma: no cover - transient fs hiccup
                pass

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=2.0)


# ---------------------------------------------------------------------
# Worker side.

class _TermSignal(Exception):
    """Second SIGTERM: abandon the leased job immediately."""


class FleetWorker:
    """One queue-pulling worker process (``repro fleet worker``).

    SIGTERM is two-stage, mirroring the driver's
    :class:`~repro.exec.SignalDrain`: the first requests a stop (the
    current job finishes, its result persists, the lease is released,
    the loop exits); a second abandons the job mid-flight — the lease
    is released so any other worker can pick the job up immediately
    instead of waiting out the TTL.
    """

    def __init__(self, root: Union[str, Path],
                 worker_id: Optional[str] = None,
                 ttl_s: float = DEFAULT_TTL_S,
                 poll_s: float = 0.2,
                 max_jobs: Optional[int] = None,
                 chaos: Optional[ChaosSpec] = None,
                 log=None) -> None:
        self.root = Path(root)
        self.worker_id = worker_id or (
            f"{socket.gethostname()}-{os.getpid()}")
        self.ttl_s = ttl_s
        self.poll_s = poll_s
        self.max_jobs = max_jobs
        self.chaos = (chaos if chaos is not None
                      else ChaosSpec.load(self.root / CHAOS_FILE))
        self.log = log if log is not None else sys.stderr
        self.executed = 0
        self.reclaimed = 0
        self.started = time.time()
        self.stop_requested = False
        self._beacon_at = 0.0

    # -- signals -------------------------------------------------------
    def _handle_sigterm(self, signum, frame) -> None:
        if self.stop_requested:
            raise _TermSignal
        self.stop_requested = True
        # Checkpoint-enabled jobs drain at the next snapshot boundary
        # instead of running minutes more: one final snapshot, then
        # CheckpointDrain abandons the job (lease released, no result)
        # so whoever picks it up resumes from that snapshot.
        try:
            from ..harness.checkpoint import request_drain
            request_drain()
        except ImportError:  # pragma: no cover - partial install
            pass

    def install_signals(self) -> None:
        initialize_worker(role="fleet")
        try:
            signal.signal(signal.SIGTERM, self._handle_sigterm)
        except (ValueError, OSError):  # pragma: no cover - non-main
            pass

    # -- liveness beacon ----------------------------------------------
    def _beacon(self) -> None:
        now = time.time()
        if now - self._beacon_at < self.ttl_s:
            return
        self._beacon_at = now
        record = {"worker": self.worker_id, "pid": os.getpid(),
                  "renewed": now, "started": self.started,
                  "executed": self.executed,
                  "reclaimed": self.reclaimed}
        try:
            _write_bytes_atomic(
                self.root / WORKERS_DIR / f"{self.worker_id}.json",
                json.dumps(record, separators=(",", ":")).encode())
        except OSError:  # pragma: no cover - diagnostics only
            pass

    def _say(self, message: str) -> None:
        print(f"[repro.fleet:{self.worker_id}] {message}",
              file=self.log, flush=True)

    # -- claiming ------------------------------------------------------
    def _claimable(self) -> Iterable[tuple]:
        """(fingerprint, entry, force) candidates, deterministic order."""
        queue = self.root / QUEUE_DIR
        if not queue.is_dir():
            return
        for path in sorted(queue.glob("*.json")):
            fp = path.stem
            if (self.root / RESULT_DIR / f"{fp}.json").exists():
                continue
            lease = _read_json(self.root / LEASE_DIR / f"{fp}.json")
            if lease is not None and not lease_expired(lease):
                if self.chaos is not None and self.chaos.fire(
                        self.root, "duplicate_claim", fp):
                    yield fp, path, True  # race the live owner
                continue
            yield fp, path, False

    # -- execution -----------------------------------------------------
    def _sleep_interruptible(self, seconds: float) -> None:
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline and not self.stop_requested:
            time.sleep(min(0.05, deadline - time.monotonic()))

    def _write_result(self, fingerprint: str, payload: dict) -> None:
        entry = {ENVELOPE_KEY: SCHEMA_VERSION,
                 "sha256": payload_checksum(payload),
                 "payload": payload}
        encoded = json.dumps(entry, separators=(",", ":")).encode()
        if self.chaos is not None and self.chaos.fire(
                self.root, "corrupt", fingerprint):
            encoded = corrupt_bytes(encoded, self.chaos.seed,
                                    fingerprint)
            self._say(f"chaos: corrupting result {fingerprint[:12]}")
        _write_bytes_atomic(
            self.root / RESULT_DIR / f"{fingerprint}.json", encoded)

    def _write_failure(self, fingerprint: str,
                       exc: BaseException) -> None:
        import traceback as traceback_module
        tb = "".join(traceback_module.format_exception(
            type(exc), exc, exc.__traceback__))
        entry = {"kind": "failure",
                 "failure": {"exc_type": type(exc).__name__,
                             "message": str(exc), "traceback": tb}}
        _write_bytes_atomic(
            self.root / RESULT_DIR / f"{fingerprint}.json",
            json.dumps(entry, separators=(",", ":")).encode())

    def _maybe_kill_mid_job(self, job, fingerprint: str) -> None:
        """Arm the chaos mid-simulation SIGKILL on a checkpointed job.

        The kill subframe is deterministic (seed + fingerprint) and
        lands strictly inside the run, so the job dies right after
        writing a snapshot at that boundary; ``fire``'s once-per-job
        marker guarantees the reclaim-retry runs unarmed and resumes
        from the snapshot.
        """
        chaos = self.chaos
        config = getattr(job, "checkpoint", None)
        scenario = getattr(job, "scenario", None)
        if chaos is None or config is None or scenario is None:
            return
        duration_subframes = int(scenario.duration_s * 1000)
        if duration_subframes < 2:
            return
        if not chaos.fire(self.root, "kill_mid_job", fingerprint):
            return
        kill_at = chaos.kill_subframe(fingerprint, duration_subframes)
        job.checkpoint = dict(config, kill_at_subframe=kill_at)
        self._say(f"chaos: SIGKILL at subframe {kill_at} of "
                  f"{fingerprint[:12]}")

    def _execute_claimed(self, fingerprint: str,
                         entry_path: Path) -> None:
        entry = _read_json(entry_path)
        if entry is None:  # cancelled/collected under us
            release_lease(self.root, fingerprint)
            return
        chaos = self.chaos
        heartbeat = _LeaseHeartbeat(
            self.root, fingerprint, self.worker_id, self.ttl_s,
            stall_s=(chaos.stall_s if chaos is not None
                     and chaos.fire(self.root, "stall", fingerprint)
                     else 0.0))
        heartbeat.start()
        try:
            if chaos is not None and chaos.fire(self.root, "kill",
                                                fingerprint):
                self._say(f"chaos: SIGKILL mid-job "
                          f"{fingerprint[:12]}")
                self.log.flush() if hasattr(self.log, "flush") else None
                os.kill(os.getpid(), signal.SIGKILL)
            if chaos is not None and chaos.fire(
                    self.root, "claim_delay", fingerprint):
                self._say(f"chaos: delaying claimed job "
                          f"{fingerprint[:12]} by "
                          f"{chaos.claim_delay_s}s")
                self._sleep_interruptible(chaos.claim_delay_s)
            from ..harness.checkpoint import CheckpointDrain
            try:
                job = job_from_wire(entry)
                self._maybe_kill_mid_job(job, fingerprint)
                payload = execute_job(job)
            except _TermSignal:
                raise
            except CheckpointDrain:
                # Not a failure: the simulation parked itself in a
                # snapshot.  Write no result so the job stays queued;
                # the lease release below hands it to the next worker.
                self._say(f"drained {entry.get('label', '?')} at a "
                          f"snapshot boundary")
            except Exception as exc:
                self._write_failure(fingerprint, exc)
                self.executed += 1  # failed jobs count toward max_jobs
                self._say(f"{entry.get('label', fingerprint[:12])} "
                          f"raised {type(exc).__name__}: {exc}")
            else:
                self._write_result(fingerprint, payload)
                self.executed += 1
                self._say(f"done {entry.get('label', '?')} "
                          f"({self.executed} executed)")
        finally:
            heartbeat.stop()
            release_lease(self.root, fingerprint)

    # -- main loop -----------------------------------------------------
    def run(self) -> int:
        """Pull and execute jobs until stopped; returns an exit code."""
        self._say(f"joining fleet at {self.root} "
                  f"(ttl {self.ttl_s:g}s)")
        try:
            while not self.stop_requested:
                self._beacon()
                if (self.root / STOP_FILE).exists():
                    self._say("stop sentinel seen; exiting")
                    break
                if (self.max_jobs is not None
                        and self.executed >= self.max_jobs):
                    break
                claimed = False
                for fp, entry_path, force in self._claimable():
                    if self.stop_requested:
                        break
                    outcome = try_claim(self.root, fp, self.worker_id,
                                        ttl_s=self.ttl_s, force=force)
                    if not outcome:
                        continue
                    if outcome == CLAIM_TAKEOVER:
                        # A dead peer's expired lease: count it and
                        # beacon immediately so the driver's
                        # lease_reclaims telemetry sees takeovers it
                        # lost the reclaim race on.
                        self.reclaimed += 1
                        self._beacon_at = 0.0
                        self._beacon()
                        self._say(f"took over expired lease on "
                                  f"{fp[:12]}")
                    claimed = True
                    self._execute_claimed(fp, entry_path)
                    break  # rescan: fresh view of queue and leases
                if not claimed and not self.stop_requested:
                    time.sleep(self.poll_s)
        except _TermSignal:
            self._say("second SIGTERM: abandoning leased job")
            return 1
        self._say(f"exiting after {self.executed} jobs")
        return 0


def run_worker(root: Union[str, Path],
               worker_id: Optional[str] = None,
               ttl_s: float = DEFAULT_TTL_S, poll_s: float = 0.2,
               max_jobs: Optional[int] = None) -> int:
    """Entry point behind ``python -m repro fleet worker``."""
    worker = FleetWorker(root, worker_id=worker_id, ttl_s=ttl_s,
                         poll_s=poll_s, max_jobs=max_jobs)
    worker.install_signals()
    return worker.run()


def spawn_local_workers(root: Union[str, Path], count: int,
                        ttl_s: float = DEFAULT_TTL_S,
                        poll_s: float = 0.2,
                        prefix: str = "local") -> list:
    """Start ``count`` worker subprocesses against ``root``.

    Workers inherit the environment plus a ``PYTHONPATH`` that
    resolves this very package, so spawning works from tests and
    checkouts alike.  Each worker's stderr lands in
    ``workers/<id>.log`` for post-mortems.
    """
    root = Path(root)
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    (root / WORKERS_DIR).mkdir(parents=True, exist_ok=True)
    procs = []
    for i in range(count):
        worker_id = f"{prefix}-{i}-{os.getpid()}"
        log = open(root / WORKERS_DIR / f"{worker_id}.log", "ab")
        procs.append(subprocess.Popen(
            [sys.executable, "-m", "repro", "fleet", "worker",
             "--dir", str(root), "--id", worker_id,
             "--ttl", str(ttl_s), "--poll", str(poll_s)],
            env=env, stdout=log, stderr=subprocess.STDOUT))
        log.close()  # the child holds its own descriptor
    return procs


def fleet_status(root: Union[str, Path],
                 now: Optional[float] = None) -> dict:
    """One snapshot of a fleet directory's operational state.

    Pure observation (no lease mutations, no reclaims): queue depth,
    live leases with the age of each job's newest mid-run snapshot,
    and per-worker throughput from the liveness beacons.  Backs
    ``python -m repro fleet status`` and is safe to call while a sweep
    is running — every read tolerates torn writes the same way the
    workers do.
    """
    root = Path(root)
    now = time.time() if now is None else now
    results = {path.stem
               for path in (root / RESULT_DIR).glob("*.json")
               } if (root / RESULT_DIR).is_dir() else set()
    queue_dir = root / QUEUE_DIR
    queued = sorted(path.stem for path in queue_dir.glob("*.json")
                    ) if queue_dir.is_dir() else []

    leases = []
    lease_dir = root / LEASE_DIR
    for path in sorted(lease_dir.glob("*.json")
                       ) if lease_dir.is_dir() else []:
        lease = _read_json(path)
        if lease is None or lease_expired(lease, now):
            continue
        fingerprint = path.stem
        entry = _read_json(queue_dir / f"{fingerprint}.json") or {}
        row = {"fingerprint": fingerprint,
               "label": entry.get("label", fingerprint[:12]),
               "worker": lease.get("worker", "?"),
               "held_s": max(0.0, now - lease.get("acquired", now)),
               "checkpoint_subframe": None,
               "checkpoint_age_s": None}
        config = entry.get("checkpoint")
        if isinstance(config, dict) and config.get("dir"):
            snapshots = sorted(Path(config["dir"]).glob("ckpt-*.snap"))
            if snapshots:
                newest = snapshots[-1]
                try:
                    row["checkpoint_age_s"] = max(
                        0.0, now - newest.stat().st_mtime)
                    row["checkpoint_subframe"] = int(
                        newest.stem.split("-", 1)[1])
                except (OSError, ValueError):
                    pass
        leases.append(row)

    workers = []
    workers_dir = root / WORKERS_DIR
    for path in sorted(workers_dir.glob("*.json")
                       ) if workers_dir.is_dir() else []:
        record = _read_json(path)
        if record is None:
            continue
        renewed = record.get("renewed", 0.0)
        started = record.get("started", renewed)
        executed = int(record.get("executed", 0))
        uptime = max(0.0, now - started) if started else 0.0
        workers.append({
            "worker": record.get("worker", path.stem),
            "pid": record.get("pid"),
            "executed": executed,
            "reclaimed": int(record.get("reclaimed", 0)),
            "stale_s": max(0.0, now - renewed),
            "uptime_s": uptime,
            "jobs_per_min": (60.0 * executed / uptime
                             if uptime > 0 else 0.0)})

    outstanding = [fp for fp in queued if fp not in results]
    return {"root": str(root), "queued": len(outstanding),
            "results": len(results), "leases": leases,
            "workers": workers}


# ---------------------------------------------------------------------
# Driver side.

class FleetHandle:
    """Driver-side tracking for one in-fleet job."""

    __slots__ = ("fingerprint", "label", "error")

    def __init__(self, fingerprint: str, label: str) -> None:
        self.fingerprint = fingerprint
        self.label = label
        self.error: Optional[BaseException] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FleetHandle({self.label}, {self.fingerprint[:12]})"


class FleetBackend(ExecBackend):
    """Drive a sweep through a shared-directory worker fleet.

    ``local_workers`` > 0 spawns that many worker subprocesses against
    the fleet directory (and respawns any that die — chaos kills,
    OOMs); external workers on other hosts join by running ``python -m
    repro fleet worker --dir <shared-path>`` at any time, including
    mid-sweep.  The backend is ``persistent``: one instance spans
    every retry round, accumulating ``lease_reclaims`` /
    ``worker_restarts`` telemetry that the runner folds into its
    :class:`~repro.exec.RunnerStats`.
    """

    name = "fleet"
    persistent = True
    capacity = None  # enqueue everything; workers pace themselves

    def __init__(self, root: Union[str, Path],
                 ttl_s: float = DEFAULT_TTL_S,
                 poll_s: float = 0.1,
                 local_workers: int = 0,
                 chaos: Optional[ChaosSpec] = None,
                 telemetry=None,
                 respawn: bool = True,
                 max_restarts: int = 1000) -> None:
        self.root = Path(root)
        self.ttl_s = ttl_s
        self.poll_s = poll_s
        self.telemetry = telemetry
        self.respawn = respawn
        self.max_restarts = max_restarts
        self._driver_reclaims = 0
        self.worker_restarts = 0
        self.corrupt_results = 0
        self.collected = 0
        self._handles: dict = {}
        self._telemetry_at = 0.0
        self._shutdown = False
        for sub in (QUEUE_DIR, LEASE_DIR, RESULT_DIR, WORKERS_DIR):
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        # Beacons persist across sweeps of the same directory:
        # baseline the takeover counts now so a previous run's
        # reclaims don't inflate this one's telemetry.
        self._beacon_reclaim_base = self._beacon_reclaims()
        # A fresh driver owns the directory: clear a previous run's
        # stop sentinel so workers (re)joining don't exit on sight.
        _unlink_quiet(self.root / STOP_FILE)
        if chaos is not None:
            chaos.save(self.root / CHAOS_FILE)
        self.chaos = (chaos if chaos is not None
                      else ChaosSpec.load(self.root / CHAOS_FILE))
        self._local_n = local_workers
        self._procs = (spawn_local_workers(
            self.root, local_workers, ttl_s=ttl_s)
            if local_workers else [])

    # -- paths ---------------------------------------------------------
    def _queue_path(self, fp: str) -> Path:
        return self.root / QUEUE_DIR / f"{fp}.json"

    def _lease_path(self, fp: str) -> Path:
        return self.root / LEASE_DIR / f"{fp}.json"

    def _result_path(self, fp: str) -> Path:
        return self.root / RESULT_DIR / f"{fp}.json"

    # -- ExecBackend ---------------------------------------------------
    def submit(self, job) -> FleetHandle:
        wire = job_to_wire(job)
        fp = wire["fingerprint"]
        handle = FleetHandle(fp, wire["label"])
        # Stale state from a dead fleet (or an earlier attempt): an
        # expired lease is cleared now rather than waited out; a
        # pre-existing result is kept only if it validates — a
        # completed-but-uncollected job from a SIGKILLed driver is
        # picked up for free, which is fleet-scope resume.
        lease = _read_json(self._lease_path(fp))
        if lease is not None and lease_expired(lease):
            _unlink_quiet(self._lease_path(fp))
        result = self._result_path(fp)
        if result.exists() and self._validate(fp, quarantine=False) is None:
            _unlink_quiet(result)
        from ..harness.serialize import write_json_atomic
        write_json_atomic(wire, self._queue_path(fp), indent=None)
        self._handles[fp] = handle
        return handle

    def wait(self, handles: Set[FleetHandle],
             timeout: float) -> Set[FleetHandle]:
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            done: Set[FleetHandle] = set()
            now = time.time()
            for handle in handles:
                if handle.error is not None \
                        or self._result_path(handle.fingerprint).exists():
                    done.add(handle)
                    continue
                lease = _read_json(self._lease_path(handle.fingerprint))
                if lease is not None and lease_expired(lease, now):
                    # The worker stopped heartbeating: reclaim.  The
                    # runner retries under its BackoffPolicy — one
                    # retry machinery for pool crashes and fleet
                    # losses alike.
                    _unlink_quiet(self._lease_path(handle.fingerprint))
                    self._driver_reclaims += 1
                    handle.error = WorkerLostError(
                        f"lease on {handle.label} expired (worker "
                        f"{lease.get('worker', '?')} stopped "
                        f"heartbeating); job reclaimed")
                    done.add(handle)
            self._respawn_dead()
            self._telemetry_tick(handles, done)
            remaining = deadline - time.monotonic()
            if done or remaining <= 0:
                return done
            time.sleep(min(self.poll_s, max(0.01, remaining)))

    def result(self, handle: FleetHandle) -> dict:
        if handle.error is not None:
            error = handle.error
            handle.error = None  # a resubmitted handle starts clean
            raise error
        payload = self._validate(handle.fingerprint, quarantine=True)
        if payload is None:
            # Corrupt in transit: quarantined by _validate; the queue
            # entry stays so workers re-execute after the runner
            # resubmits.
            raise WorkerLostError(
                f"result for {handle.label} corrupt in transit; "
                f"quarantined and re-queued")
        if isinstance(payload, RemoteJobError):
            self._cleanup(handle.fingerprint)
            raise payload
        self.collected += 1
        self._cleanup(handle.fingerprint)
        return payload

    def cancel(self, handle: FleetHandle) -> bool:
        if handle.error is not None \
                or self._result_path(handle.fingerprint).exists():
            return False
        lease = _read_json(self._lease_path(handle.fingerprint))
        if lease is not None and not lease_expired(lease):
            return False  # genuinely executing somewhere
        _unlink_quiet(self._queue_path(handle.fingerprint))
        return True

    def done(self, handle: FleetHandle) -> bool:
        return (handle.error is not None
                or self._result_path(handle.fingerprint).exists())

    def exec_elapsed(self, handle: FleetHandle,
                     submitted_elapsed: float) -> float:
        """Deadlines measure claim-to-now: queue wait is not execution."""
        lease = _read_json(self._lease_path(handle.fingerprint))
        if lease is None:
            return 0.0
        acquired = lease.get("acquired")
        if not isinstance(acquired, (int, float)):
            return 0.0
        return max(0.0, time.time() - acquired)

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        if self._shutdown:
            return
        self._shutdown = True
        try:
            (self.root / STOP_FILE).touch()
        except OSError:  # pragma: no cover - unwritable fleet dir
            pass
        for proc in self._procs:
            if proc.poll() is None:
                try:
                    proc.terminate()
                except OSError:  # pragma: no cover
                    pass
        if wait:
            deadline = time.monotonic() + max(5.0, 2 * self.ttl_s)
            for proc in self._procs:
                budget = deadline - time.monotonic()
                try:
                    proc.wait(timeout=max(0.1, budget))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
        else:
            for proc in self._procs:
                if proc.poll() is None:
                    proc.kill()

    # -- internals -----------------------------------------------------
    def _validate(self, fp: str, quarantine: bool):
        """Payload dict, :class:`RemoteJobError`, or None (invalid).

        Invalid results are optionally quarantined (driver collection
        path) — preserved for diagnosis under ``quarantine/`` and
        removed from ``results/`` so the job re-executes.
        """
        path = self._result_path(fp)
        try:
            raw = path.read_bytes()
        except (FileNotFoundError, OSError):
            return None
        entry = None
        try:
            entry = json.loads(raw.decode("utf-8", errors="strict"))
        except (ValueError, UnicodeDecodeError):
            pass
        if isinstance(entry, dict) and entry.get("kind") == "failure":
            failure = entry.get("failure") or {}
            return RemoteJobError(
                failure.get("exc_type", "Exception"),
                failure.get("message", "remote job failed"),
                failure.get("traceback", ""))
        if (isinstance(entry, dict)
                and entry.get(ENVELOPE_KEY) == SCHEMA_VERSION
                and isinstance(entry.get("payload"), dict)
                and entry.get("sha256")
                == payload_checksum(entry["payload"])):
            return entry["payload"]
        if quarantine:
            dest = self.root / QUARANTINE_DIR / f"{fp}.json"
            try:
                dest.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, dest)
            except OSError:
                _unlink_quiet(path)
            self.corrupt_results += 1
        return None

    def _cleanup(self, fp: str) -> None:
        _unlink_quiet(self._queue_path(fp))
        _unlink_quiet(self._lease_path(fp))
        _unlink_quiet(self._result_path(fp))

    def _respawn_dead(self) -> None:
        if self._shutdown or not self.respawn:
            return
        for i, proc in enumerate(self._procs):
            if proc.poll() is None:
                continue
            if self.worker_restarts >= self.max_restarts:
                return  # runaway backstop; external workers may remain
            self.worker_restarts += 1
            replacement = spawn_local_workers(
                self.root, 1, ttl_s=self.ttl_s,
                prefix=f"respawn{self.worker_restarts}")
            self._procs[i] = replacement[0]

    @property
    def lease_reclaims(self) -> int:
        """Expired leases reclaimed, by whoever got there first.

        The driver reclaims a lease only when *its* poll notices the
        expired heartbeat; a sibling worker often takes the lease over
        first, which the driver would otherwise never see.  Workers
        count those takeovers (:data:`CLAIM_TAKEOVER`) and publish
        them through their liveness beacons; both sources are summed
        here.  The paths are mutually exclusive in the common case —
        whichever side replaces/unlinks the lease first wins — so the
        sum counts each leaked lease once.
        """
        return self._driver_reclaims + max(
            0, self._beacon_reclaims() - self._beacon_reclaim_base)

    def _beacon_reclaims(self) -> int:
        beacons = self.root / WORKERS_DIR
        if not beacons.is_dir():
            return 0
        total = 0
        for path in beacons.glob("*.json"):
            record = _read_json(path)
            if record is not None:
                try:
                    total += int(record.get("reclaimed", 0))
                except (TypeError, ValueError):
                    pass
            # Dead workers' beacons keep their final counts, so the
            # sum survives chaos kills and respawns (respawned
            # workers get fresh ids, hence fresh beacon files).
        return total

    def live_workers(self) -> int:
        """Workers with a fresh liveness beacon (local or remote)."""
        beacons = self.root / WORKERS_DIR
        if not beacons.is_dir():
            return 0
        now = time.time()
        alive = 0
        for path in beacons.glob("*.json"):
            record = _read_json(path)
            if record is not None and now - record.get(
                    "renewed", 0.0) < 3 * self.ttl_s:
                alive += 1
        return alive

    def _telemetry_tick(self, handles, done) -> None:
        if self.telemetry is None:
            return
        now = time.monotonic()
        if now - self._telemetry_at < 1.0:
            return
        self._telemetry_at = now
        queued = sum(1 for _ in (self.root / QUEUE_DIR).glob("*.json"))
        leased = sum(1 for _ in (self.root / LEASE_DIR).glob("*.json"))
        self.telemetry(
            f"fleet: {self.live_workers()} workers "
            f"({sum(1 for p in self._procs if p.poll() is None)} "
            f"local), {queued} queued, {leased} leased, "
            f"{self.collected} collected, "
            f"{self.lease_reclaims} reclaimed, "
            f"{self.worker_restarts} respawned")
