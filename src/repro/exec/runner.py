"""Parallel, memoized execution of independent simulation jobs.

Every job is an independent, deterministic, seed-keyed simulation —
embarrassingly parallel — so the runner fans pending jobs out over a
:class:`ProcessPoolExecutor` and fills the rest from the result store.
The execution plan for one :meth:`ParallelRunner.run` call:

1. fingerprint every job; duplicates collapse onto one execution;
2. satisfy what the :class:`ResultStore` already holds (cache hits);
3. execute the remainder — inline when ``jobs=1`` (or the platform has
   no working process pool), otherwise across worker processes with a
   per-job timeout guard and retry-on-worker-crash;
4. persist each payload as it completes, so an interrupted sweep
   resumes from where it stopped.

Results come back in submission order, and ``runner.stats`` describes
the last run (executed / cached / deduplicated counts, per-job wall
times, cache hit rate).
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .job import Job
from .store import ResultStore
from .worker import execute_job, initialize_worker

#: Exceptions that mean "this worker process died", not "the job's own
#: code raised" — only these (and timeouts) are retried.
_CRASH_ERRORS = (BrokenProcessPool, OSError)


class JobExecutionError(RuntimeError):
    """A job exhausted its retries (worker crashes or timeouts)."""

    def __init__(self, job: Job, cause: BaseException) -> None:
        super().__init__(f"job {job.label} failed after retries: "
                         f"{cause!r}")
        self.job = job
        self.cause = cause


@dataclass
class JobEvent:
    """One progress notification passed to the runner's callback."""

    #: "cached", "executed", "retry" or "fallback".
    kind: str
    done: int
    total: int
    cache_hits: int
    job: Optional[Job] = None
    wall_s: Optional[float] = None
    detail: str = ""


@dataclass
class RunnerStats:
    """Telemetry for one :meth:`ParallelRunner.run` call."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    retries: int = 0
    job_wall_s: list = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def format(self) -> str:
        return (f"{self.total} jobs: {self.executed} executed, "
                f"{self.cache_hits} cached "
                f"({100 * self.cache_hit_rate:.0f}% hit rate), "
                f"{self.deduplicated} deduplicated, "
                f"{self.retries} retries, {self.wall_s:.1f}s wall")


class StderrReporter:
    """Minimal progress callback: one stderr line per finished job."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, event: JobEvent) -> None:
        if event.kind == "fallback":
            print(f"[repro.exec] {event.detail}", file=self.stream,
                  flush=True)
            return
        label = event.job.label if event.job is not None else "?"
        wall = (f" {event.wall_s:.1f}s" if event.wall_s is not None
                else "")
        print(f"[repro.exec] {event.done}/{event.total} {event.kind} "
              f"{label}{wall} ({event.cache_hits} cached)",
              file=self.stream, flush=True)


class ParallelRunner:
    """Fans jobs out over worker processes, memoizing via a store.

    ``jobs=1`` executes inline (no pool, no pickling) — the worker path
    calls the identical :func:`execute_job`, so both modes return
    byte-identical payloads.  ``timeout_s`` bounds how long the runner
    waits on any single in-flight job; ``retries`` is how many times a
    job is re-submitted after a worker crash or timeout before a
    worker-crashed job falls back to one final inline attempt (a timed-
    out job raises :class:`JobExecutionError` instead — re-running a
    hang inline would just hang the parent).
    """

    def __init__(self, jobs: int = 1,
                 store: Optional[ResultStore] = None,
                 retries: int = 1,
                 timeout_s: Optional[float] = None,
                 progress: Optional[Callable[[JobEvent], None]] = None
                 ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout must be positive")
        self.jobs = jobs
        self.store = store
        self.retries = retries
        self.timeout_s = timeout_s
        self.progress = progress
        self.stats = RunnerStats()
        self._done = 0

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> list:
        """Execute (or recall) every job; payloads in submission order."""
        jobs = list(jobs)
        self.stats = RunnerStats(total=len(jobs))
        self._done = 0
        t0 = time.monotonic()

        fingerprints = [job.fingerprint() for job in jobs]
        results: list = [None] * len(jobs)
        first_index: dict[str, int] = {}
        duplicates: list[tuple[int, int]] = []
        pending: list[tuple[int, Job]] = []
        for i, (job, fp) in enumerate(zip(jobs, fingerprints)):
            if fp in first_index:
                duplicates.append((i, first_index[fp]))
                self.stats.deduplicated += 1
                continue
            first_index[fp] = i
            cached = self.store.get(fp) if self.store else None
            if cached is not None:
                results[i] = cached
                self.stats.cache_hits += 1
                self._done += 1
                self._emit("cached", job=job)
            else:
                pending.append((i, job))

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                self._run_inline(pending, fingerprints, results)
            else:
                self._run_pool(pending, fingerprints, results)

        for i, source in duplicates:
            results[i] = results[source]
            self._done += 1

        self.stats.wall_s = time.monotonic() - t0
        return results

    # ------------------------------------------------------------------
    def _emit(self, kind: str, job: Optional[Job] = None,
              wall_s: Optional[float] = None, detail: str = "") -> None:
        if self.progress is None:
            return
        self.progress(JobEvent(
            kind=kind, done=self._done, total=self.stats.total,
            cache_hits=self.stats.cache_hits, job=job, wall_s=wall_s,
            detail=detail))

    def _complete(self, index: int, job: Job, fingerprint: str,
                  payload: dict, wall_s: float, results: list) -> None:
        results[index] = payload
        if self.store is not None:
            self.store.put(fingerprint, payload)
        self.stats.executed += 1
        self.stats.job_wall_s.append(wall_s)
        self._done += 1
        self._emit("executed", job=job, wall_s=wall_s)

    def _run_inline(self, pending: list, fingerprints: list,
                    results: list) -> None:
        for index, job in pending:
            started = time.monotonic()
            payload = execute_job(job)
            self._complete(index, job, fingerprints[index], payload,
                           time.monotonic() - started, results)

    # ------------------------------------------------------------------
    def _run_pool(self, pending: list, fingerprints: list,
                  results: list) -> None:
        attempts: dict[int, int] = {}
        queue = list(pending)
        while queue:
            executor = self._make_executor(len(queue))
            if executor is None:
                self._emit("fallback",
                           detail="process pool unavailable; "
                                  "running jobs inline")
                self._run_inline(queue, fingerprints, results)
                return
            retry_queue: list[tuple[int, Job]] = []
            hung_worker = False
            try:
                try:
                    submitted = []
                    for index, job in queue:
                        submitted.append(
                            (index, job,
                             executor.submit(execute_job, job),
                             time.monotonic()))
                except _CRASH_ERRORS:
                    # Could not even hand work to the pool — run this
                    # whole round inline (idempotent: deterministic
                    # jobs, and none of these futures is collected).
                    self._emit("fallback",
                               detail="submission to pool failed; "
                                      "running jobs inline")
                    self._run_inline(queue, fingerprints, results)
                    return
                for index, job, future, started in submitted:
                    try:
                        payload = future.result(timeout=self.timeout_s)
                    except FutureTimeoutError:
                        future.cancel()
                        hung_worker = True
                        self._handle_failure(
                            index, job, attempts, retry_queue,
                            TimeoutError(
                                f"no result within {self.timeout_s}s"),
                            crashed=False,
                            fingerprints=fingerprints, results=results)
                    except _CRASH_ERRORS as exc:
                        self._handle_failure(
                            index, job, attempts, retry_queue, exc,
                            crashed=True,
                            fingerprints=fingerprints, results=results)
                    else:
                        self._complete(index, job, fingerprints[index],
                                       payload,
                                       time.monotonic() - started,
                                       results)
            finally:
                # Waiting reclaims worker processes cleanly; skip it
                # only when a timed-out (possibly hung) worker would
                # block the join forever.
                executor.shutdown(wait=not hung_worker,
                                  cancel_futures=True)
            queue = retry_queue

    def _handle_failure(self, index: int, job: Job, attempts: dict,
                        retry_queue: list, cause: BaseException,
                        crashed: bool, fingerprints: list,
                        results: list) -> None:
        attempts[index] = attempts.get(index, 0) + 1
        if attempts[index] <= self.retries:
            self.stats.retries += 1
            self._emit("retry", job=job,
                       detail=f"attempt {attempts[index]}: {cause!r}")
            retry_queue.append((index, job))
            return
        if crashed:
            # Last resort for crashed workers: one inline attempt —
            # if the job's own code is at fault it raises here with a
            # real traceback instead of a BrokenProcessPool.
            self._emit("fallback",
                       detail=f"{job.label}: worker crashed repeatedly;"
                              " final inline attempt")
            started = time.monotonic()
            payload = execute_job(job)
            self._complete(index, job, fingerprints[index], payload,
                           time.monotonic() - started, results)
            return
        raise JobExecutionError(job, cause)

    def _make_executor(self, n_pending: int
                       ) -> Optional[ProcessPoolExecutor]:
        workers = min(self.jobs, n_pending)
        try:
            return ProcessPoolExecutor(max_workers=workers,
                                       initializer=initialize_worker)
        except (ImportError, NotImplementedError, OSError,
                PermissionError, ValueError):
            # No usable multiprocessing primitives on this platform
            # (e.g. sandboxed /dev/shm) — callers still get results.
            return None


def make_runner(jobs: int = 1, cache_dir=None,
                runner: Optional[ParallelRunner] = None,
                progress: Optional[Callable[[JobEvent], None]] = None
                ) -> ParallelRunner:
    """The experiment drivers' shared runner-construction shorthand.

    Passing an explicit ``runner`` wins (and exposes its ``stats`` to
    the caller); otherwise one is built from ``jobs`` and an optional
    ``cache_dir`` (which enables the on-disk result store).
    """
    if runner is not None:
        return runner
    store = ResultStore(cache_dir) if cache_dir else None
    return ParallelRunner(jobs=jobs, store=store, progress=progress)
