"""Parallel, memoized, supervised execution of independent jobs.

Every job is an independent, deterministic, seed-keyed simulation —
embarrassingly parallel — so the runner fans pending jobs out over a
:class:`ProcessPoolExecutor` and fills the rest from the result store.
The execution plan for one :meth:`ParallelRunner.run` call:

1. fingerprint every job; duplicates collapse onto one execution;
2. satisfy what the :class:`ResultStore` already holds (cache hits);
3. execute the remainder — inline when ``jobs=1`` (or the platform has
   no working process pool), otherwise across worker processes with
   concurrent per-job deadlines and retry-on-worker-crash;
4. persist each payload (and journal each outcome) the moment it
   completes, so an interrupted sweep resumes from where it stopped.

Supervision (see :mod:`repro.exec.supervisor`): a job whose own code
raises becomes a structured :class:`JobFailure` in its result slot
instead of aborting the sweep (``strict=True`` restores
abort-on-first-failure), a failure-budget circuit breaker aborts early
when too large a fraction of jobs fail, retries back off exponentially
with deterministic jitter, and SIGINT/SIGTERM drain in-flight work and
flush the journal before raising :class:`SweepInterrupted` (a second
signal hard-aborts).

Results come back in submission order, and ``runner.stats`` describes
the last run (executed / cached / failed / quarantined counts, per-job
wall times, cache hit rate).
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from .backend import ExecBackend, ProcessPoolBackend
from .job import Job
from .journal import JOURNAL_NAME, SweepJournal, sweep_fingerprint
from .store import ResultStore
from .supervisor import (
    BackoffPolicy,
    FailureBudgetExceeded,
    JobFailure,
    SignalDrain,
    SweepInterrupted,
)
from .worker import execute_job, initialize_worker

#: Exceptions that mean "this worker process died", not "the job's own
#: code raised" — only these (and timeouts) are retried.
_CRASH_ERRORS = (BrokenProcessPool, OSError)

#: Upper bound on one ``wait()`` nap, so signal drains stay responsive
#: even when no deadline is near.
_WAIT_SLICE_S = 0.5


class JobExecutionError(RuntimeError):
    """A job exhausted its retries (worker crashes or timeouts)."""

    def __init__(self, job: Job, cause: BaseException) -> None:
        super().__init__(f"job {job.label} failed after retries: "
                         f"{cause!r}")
        self.job = job
        self.cause = cause


@dataclass
class JobEvent:
    """One progress notification passed to the runner's callback."""

    #: "cached", "executed", "failed", "retry" or "fallback".
    kind: str
    done: int
    total: int
    cache_hits: int
    job: Optional[Job] = None
    wall_s: Optional[float] = None
    detail: str = ""


@dataclass
class RunnerStats:
    """Telemetry for one :meth:`ParallelRunner.run` call."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    retries: int = 0
    #: Jobs that ended as a :class:`JobFailure` (non-strict mode).
    failed: int = 0
    #: Cache entries quarantined as invalid during this run.
    quarantined: int = 0
    #: Corrupt/unreadable mid-run snapshots quarantined under the
    #: checkpoint root (each one is a restore that fell back to an
    #: older snapshot or to from-scratch execution).
    checkpoints_quarantined: int = 0
    #: Total seconds slept in retry backoff.
    backoff_s: float = 0.0
    #: Fleet backend only: expired leases reclaimed (each one is a job
    #: re-queued after its worker stopped heartbeating), whether the
    #: driver's poll reclaimed the lease or a sibling worker took it
    #: over first (workers report takeovers via their beacons).
    lease_reclaims: int = 0
    #: Fleet backend only: dead local workers respawned by the driver.
    worker_restarts: int = 0
    job_wall_s: list = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def format(self) -> str:
        fleet = ""
        if self.lease_reclaims or self.worker_restarts:
            fleet = (f", {self.lease_reclaims} leases reclaimed, "
                     f"{self.worker_restarts} workers respawned")
        snaps = ""
        if self.checkpoints_quarantined:
            snaps = (f", {self.checkpoints_quarantined} "
                     f"snapshots quarantined")
        return (f"{self.total} jobs: {self.executed} executed, "
                f"{self.cache_hits} cached "
                f"({100 * self.cache_hit_rate:.0f}% hit rate), "
                f"{self.deduplicated} deduplicated, "
                f"{self.retries} retries, {self.failed} failed, "
                f"{self.quarantined} quarantined, "
                f"{self.backoff_s:.1f}s backoff{fleet}{snaps}, "
                f"{self.wall_s:.1f}s wall")


class StderrReporter:
    """Minimal progress callback: one stderr line per finished job."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, event: JobEvent) -> None:
        if event.kind == "fallback":
            print(f"[repro.exec] {event.detail}", file=self.stream,
                  flush=True)
            return
        label = event.job.label if event.job is not None else "?"
        wall = (f" {event.wall_s:.1f}s" if event.wall_s is not None
                else "")
        detail = f" [{event.detail}]" if event.detail else ""
        print(f"[repro.exec] {event.done}/{event.total} {event.kind} "
              f"{label}{wall}{detail} ({event.cache_hits} cached)",
              file=self.stream, flush=True)


class ParallelRunner:
    """Fans jobs out over worker processes, memoizing via a store.

    ``jobs=1`` executes inline (no pool, no pickling) — the worker path
    calls the identical :func:`execute_job`, so both modes return
    byte-identical payloads.  ``timeout_s`` is a per-job *execution*
    deadline enforced *concurrently* across all in-flight jobs (stall
    detection for k slow jobs is O(timeout), not O(k × timeout)); jobs
    are handed to the pool only as workers free up, so the clock never
    runs down on a job that is merely queued behind a full pool —
    queue wait is not execution time and consumes no attempts;
    ``retries`` is how many times a job is
    re-submitted after a worker crash or timeout (with exponential
    backoff and deterministic jitter) before the failure becomes
    terminal.

    Terminal failures: with ``strict=False`` (default) a failed job —
    its own code raised, its deadline expired, or its worker crashed
    repeatedly — leaves a structured :class:`JobFailure` in its result
    slot and the sweep continues; ``strict=True`` restores the
    abort-on-first-failure behaviour (the job's own exception, or a
    :class:`JobExecutionError` for crashes/timeouts).
    ``failure_budget`` (a fraction) aborts the whole sweep with
    :class:`FailureBudgetExceeded` once more than that share of jobs
    has failed.  A :class:`SweepJournal` records every outcome as it
    happens; SIGINT/SIGTERM drain in-flight work, flush journal and
    store, and raise :class:`SweepInterrupted`.
    """

    def __init__(self, jobs: int = 1,
                 store: Optional[ResultStore] = None,
                 retries: int = 1,
                 timeout_s: Optional[float] = None,
                 progress: Optional[Callable[[JobEvent], None]] = None,
                 strict: bool = False,
                 failure_budget: Optional[float] = None,
                 backoff: Optional[BackoffPolicy] = None,
                 journal: Optional[SweepJournal] = None,
                 handle_signals: bool = True,
                 backend: Optional[ExecBackend] = None,
                 checkpoint_dir=None,
                 checkpoint_every: Optional[int] = None,
                 ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if failure_budget is not None and not 0 <= failure_budget <= 1:
            raise ValueError("failure_budget is a fraction in [0, 1]")
        self.jobs = jobs
        self.store = store
        self.retries = retries
        self.timeout_s = timeout_s
        self.progress = progress
        self.strict = strict
        self.failure_budget = failure_budget
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.journal = journal
        self.handle_signals = handle_signals
        #: Explicit execution backend (e.g. a
        #: :class:`repro.exec.fleet.FleetBackend`).  ``None`` keeps the
        #: default behaviour: a fresh :class:`ProcessPoolBackend` per
        #: retry round, with inline fallback when the platform has no
        #: usable process pool.
        self.backend = backend
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every is a subframe count >= 1")
        #: Root directory for mid-run snapshots; each job checkpoints
        #: under ``<checkpoint_dir>/<fingerprint>`` so resumed sweeps
        #: find their snapshots by content, not by submission order.
        #: ``None`` disables checkpointing.
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.stats = RunnerStats()
        self._done = 0
        #: True while the current pool round holds a timed-out worker
        #: that refused cancellation (possibly hung).  Lives on the
        #: instance, not in a local, so it survives exceptions raised
        #: out of the collection loop (strict mode, failure budget) —
        #: the shutdown path must never join a hung worker.
        self._hung_worker = False

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> list:
        """Execute (or recall) every job; payloads in submission order.

        Non-strict mode: a slot may hold a :class:`JobFailure` instead
        of a payload dictionary (filter with
        :func:`repro.exec.is_failure`).
        """
        jobs = list(jobs)
        self.stats = RunnerStats(total=len(jobs))
        self._done = 0
        t0 = time.monotonic()
        quarantined_before = (self.store.quarantine_events
                              if self.store is not None else 0)

        fingerprints = [job.fingerprint() for job in jobs]
        results: list = [None] * len(jobs)
        first_index: dict[str, int] = {}
        duplicates: list[tuple[int, int]] = []
        pending: list[tuple[int, Job]] = []
        for i, (job, fp) in enumerate(zip(jobs, fingerprints)):
            if fp in first_index:
                duplicates.append((i, first_index[fp]))
                self.stats.deduplicated += 1
                continue
            first_index[fp] = i
            cached = self.store.get(fp) if self.store else None
            if cached is not None:
                results[i] = cached
                self.stats.cache_hits += 1
                self._done += 1
                self._emit("cached", job=job)
            else:
                pending.append((i, job))

        if self.checkpoint_dir is not None and pending:
            self._attach_checkpoints(pending, fingerprints)

        if self.journal is not None and pending:
            self.journal.begin(sweep_fingerprint(fingerprints),
                               total=len(jobs))

        drain = SignalDrain(enabled=self.handle_signals)
        try:
            with drain:
                if pending:
                    if (self.backend is None
                            and (self.jobs == 1 or len(pending) == 1)):
                        self._run_inline(pending, fingerprints, results,
                                         drain)
                    else:
                        self._run_pool(pending, fingerprints, results,
                                       drain)
        except BaseException:
            # Any propagating abort — FailureBudgetExceeded, a
            # strict-mode job exception, JobExecutionError, a hard
            # second-signal KeyboardInterrupt — still finalizes stats
            # and leaves an end marker, so ``stats`` describes the
            # partial run and ``replay()`` sees how it terminated.
            self._finish(t0, quarantined_before)
            if pending:
                self._journal_end("aborted")
            raise
        if drain.stop_requested:
            self._finish(t0, quarantined_before)
            if pending:
                self._journal_end("interrupted")
            raise SweepInterrupted(
                done=self._done, total=self.stats.total,
                journal_path=(self.journal.path
                              if self.journal is not None else None))

        for i, source in duplicates:
            results[i] = results[source]
            self._done += 1

        self._finish(t0, quarantined_before)
        if pending:
            self._journal_end("complete")
        return results

    def _attach_checkpoints(self, pending: list,
                            fingerprints: list) -> None:
        """Give every pending flow job a per-fingerprint snapshot dir.

        Only single-flow jobs are checkpointable: metro shards schedule
        local closures (population epochs) on the simulator, which the
        snapshot codec rejects by design — those jobs simply run
        straight through, as before.
        """
        from ..harness.checkpoint import DEFAULT_INTERVAL_SUBFRAMES
        from .backend import wire_kind_of
        interval = self.checkpoint_every or DEFAULT_INTERVAL_SUBFRAMES
        root = Path(self.checkpoint_dir)
        for i, job in pending:
            if wire_kind_of(job) != "flow":
                continue
            job.checkpoint = {"dir": str(root / fingerprints[i]),
                              "interval_subframes": interval}

    def _finish(self, t0: float, quarantined_before: int) -> None:
        self.stats.wall_s = time.monotonic() - t0
        if self.store is not None:
            self.stats.quarantined = (self.store.quarantine_events
                                      - quarantined_before)
        if self.checkpoint_dir is not None:
            from ..harness.checkpoint import count_quarantined
            self.stats.checkpoints_quarantined = count_quarantined(
                Path(self.checkpoint_dir))

    def _journal_end(self, status: str) -> None:
        if self.journal is not None:
            self.journal.end(status)

    # ------------------------------------------------------------------
    def _emit(self, kind: str, job: Optional[Job] = None,
              wall_s: Optional[float] = None, detail: str = "") -> None:
        if self.progress is None:
            return
        self.progress(JobEvent(
            kind=kind, done=self._done, total=self.stats.total,
            cache_hits=self.stats.cache_hits, job=job, wall_s=wall_s,
            detail=detail))

    def _complete(self, index: int, job: Job, fingerprint: str,
                  payload: dict, wall_s: float, results: list) -> None:
        results[index] = payload
        if self.store is not None:
            self.store.put(fingerprint, payload)
        if self.journal is not None:
            self.journal.record_done(fingerprint, job.label, wall_s)
        self.stats.executed += 1
        self.stats.job_wall_s.append(wall_s)
        self._done += 1
        self._emit("executed", job=job, wall_s=wall_s)

    def _fail(self, index: int, job: Job, fingerprint: str, kind: str,
              exc: BaseException, attempts: int, wall_s: float,
              results: list) -> None:
        """Record one terminal failure (non-strict path).

        Failed jobs are journaled but never stored, so a re-run (or
        ``--resume``) re-attempts exactly the failures while finished
        fingerprints stay cache hits.
        """
        failure = JobFailure.from_exception(
            job.label, fingerprint, kind, exc, attempts=attempts,
            wall_s=wall_s)
        results[index] = failure
        if self.journal is not None:
            self.journal.record_failure(failure)
        self.stats.failed += 1
        self._done += 1
        self._emit("failed", job=job, wall_s=wall_s,
                   detail=f"{failure.kind}: {failure.exc_type}: "
                          f"{failure.message}")
        if (self.failure_budget is not None and self.stats.total
                and self.stats.failed / self.stats.total
                > self.failure_budget):
            raise FailureBudgetExceeded(
                self.stats.failed, self.stats.total,
                self.failure_budget)

    def _run_inline(self, pending: list, fingerprints: list,
                    results: list,
                    drain: Optional[SignalDrain] = None) -> None:
        for index, job in pending:
            if drain is not None and drain.stop_requested:
                return
            started = time.monotonic()
            try:
                payload = execute_job(job)
            except Exception as exc:
                if self.strict:
                    raise
                self._fail(index, job, fingerprints[index], "job-error",
                           exc, attempts=1,
                           wall_s=time.monotonic() - started,
                           results=results)
            else:
                self._complete(index, job, fingerprints[index], payload,
                               time.monotonic() - started, results)

    # ------------------------------------------------------------------
    def _run_pool(self, pending: list, fingerprints: list,
                  results: list, drain: SignalDrain) -> None:
        attempts: dict[int, int] = {}
        queue = list(pending)
        persistent = None
        try:
            while queue and not drain.stop_requested:
                backend = persistent or self._make_backend(len(queue))
                if backend is None:
                    self._emit("fallback",
                               detail="process pool unavailable; "
                                      "running jobs inline")
                    self._run_inline(queue, fingerprints, results, drain)
                    return
                if backend.persistent or backend is self.backend:
                    # Fleet backends span rounds by contract; a
                    # caller-supplied backend is the caller's to reuse,
                    # so it must survive rounds too (shut down once,
                    # below).
                    persistent = backend
                capacity = backend.capacity or len(queue)
                retry_queue: list[tuple[int, Job]] = []
                self._hung_worker = False
                try:
                    self._collect(backend, min(capacity, len(queue)),
                                  queue, attempts, retry_queue,
                                  fingerprints, results, drain)
                finally:
                    self._merge_backend_stats(backend)
                    if backend is not persistent:
                        # Waiting reclaims worker processes cleanly;
                        # skip it only when a timed-out (possibly hung)
                        # worker would block the join forever —
                        # including when _collect exited via an
                        # exception (strict mode, failure budget),
                        # which is why the flag lives on self.
                        backend.shutdown(wait=not self._hung_worker,
                                         cancel_futures=True)
                if retry_queue and not drain.stop_requested:
                    self._sleep_backoff(retry_queue, attempts,
                                        fingerprints, drain)
                queue = retry_queue
        finally:
            if persistent is not None:
                # A fleet backend spans every retry round; release it
                # (stop sentinel, local-worker teardown) exactly once,
                # even when an abort propagates.
                self._merge_backend_stats(persistent)
                persistent.shutdown(wait=not self._hung_worker,
                                    cancel_futures=True)

    def _merge_backend_stats(self, backend: ExecBackend) -> None:
        """Fold backend-side telemetry counters into the stats."""
        self.stats.lease_reclaims = getattr(
            backend, "lease_reclaims", self.stats.lease_reclaims)
        self.stats.worker_restarts = getattr(
            backend, "worker_restarts", self.stats.worker_restarts)

    def _collect(self, backend: ExecBackend, workers: int,
                 queue: list, attempts: dict, retry_queue: list,
                 fingerprints: list, results: list,
                 drain: SignalDrain) -> None:
        """Submit and gather one round's jobs with concurrent deadlines.

        Jobs are handed to the pool at most ``workers`` at a time, so a
        submitted job starts executing (almost) immediately and its
        deadline clock measures *execution* — submitting everything up
        front would let queue wait behind a full pool run the clock
        down and pop never-started jobs as spurious timeouts (the pool
        even marks prefetched queue items RUNNING, so cancellation
        cannot tell them apart afterwards).  All in-flight deadlines
        are checked on every wake-up, so k concurrently slow jobs are
        all detected within one timeout, and completed payloads persist
        the moment they finish.

        A timed-out future that refuses cancellation is genuinely
        executing (possibly hung): its failure is recorded, it marks
        ``self._hung_worker`` so the pool shutdown never joins it, and
        it is kept aside as a *zombie* that counts against submission
        capacity until its worker actually returns.  If zombies ever
        hold every worker, the round ends early and the unstarted jobs
        move to a fresh pool with no attempt consumed.
        """
        to_submit = list(queue)
        running: dict = {}
        zombies: set = set()
        while to_submit or running:
            if drain.stop_requested:
                # Stop request: drop what never reached the pool; what
                # is executing drains to completion.
                to_submit.clear()
                for handle in list(running):
                    if backend.cancel(handle):
                        running.pop(handle)
            while (to_submit and not drain.stop_requested
                   and len(running) + len(zombies) < workers):
                index, job = to_submit.pop(0)
                try:
                    handle = backend.submit(job)
                except _CRASH_ERRORS as exc:
                    self._handle_failure(
                        index, job, attempts, retry_queue, exc,
                        crashed=True, fingerprints=fingerprints,
                        results=results)
                    continue
                running[handle] = (index, job, time.monotonic())
            if not running:
                if to_submit and zombies:
                    # Every worker is stuck past its deadline; hand the
                    # unstarted jobs to a fresh pool, attempts intact.
                    retry_queue.extend(to_submit)
                return  # zombies are abandoned to the pool shutdown
            timeout = _WAIT_SLICE_S
            if self.timeout_s is not None:
                now = time.monotonic()
                next_deadline = min(
                    started + self.timeout_s
                    for _, _, started in running.values())
                timeout = min(timeout, max(0.0, next_deadline - now))
            done = backend.wait(set(running) | zombies, timeout=timeout)
            for handle in done:
                if handle in zombies:
                    # Its outcome (timeout) is already recorded; the
                    # worker merely came back — capacity returns.
                    zombies.discard(handle)
                    continue
                index, job, started = running.pop(handle)
                wall_s = time.monotonic() - started
                try:
                    payload = backend.result(handle)
                except _CRASH_ERRORS as exc:
                    self._handle_failure(
                        index, job, attempts, retry_queue, exc,
                        crashed=True, fingerprints=fingerprints,
                        results=results)
                except Exception as exc:
                    # The job's own code raised inside the worker.
                    if self.strict:
                        raise
                    self._fail(index, job, fingerprints[index],
                               "job-error", exc,
                               attempts=attempts.get(index, 0) + 1,
                               wall_s=wall_s, results=results)
                else:
                    self._complete(index, job, fingerprints[index],
                                   payload, wall_s, results)
            if self.timeout_s is None:
                continue
            now = time.monotonic()
            for handle, (index, job, started) in list(running.items()):
                # Queue-based backends subtract unclaimed wait, so the
                # deadline always measures *execution* time, exactly
                # like the pool's submit-throttled clock.
                elapsed = backend.exec_elapsed(handle, now - started)
                if elapsed < self.timeout_s or backend.done(handle):
                    continue  # done handles collect on the next pass
                running.pop(handle)
                if backend.cancel(handle):
                    # Rare race: the pool never picked it up.  Queue
                    # wait is not execution — hand it back with a
                    # fresh clock, no attempt consumed.
                    to_submit.append((index, job))
                    continue
                # Uncancellable: genuinely executing past its deadline.
                # Flag before _handle_failure, which may raise (strict
                # mode, failure budget) — shutdown must see the flag.
                self._hung_worker = True
                zombies.add(handle)
                self._handle_failure(
                    index, job, attempts, retry_queue,
                    TimeoutError(f"no result within {self.timeout_s}s"),
                    crashed=False, fingerprints=fingerprints,
                    results=results)

    def _handle_failure(self, index: int, job: Job, attempts: dict,
                        retry_queue: list, cause: BaseException,
                        crashed: bool, fingerprints: list,
                        results: list) -> None:
        attempts[index] = attempts.get(index, 0) + 1
        kind = "worker-crash" if crashed else "timeout"
        if attempts[index] <= self.retries:
            self.stats.retries += 1
            self._emit("retry", job=job,
                       detail=f"attempt {attempts[index]}: {cause!r}")
            retry_queue.append((index, job))
            return
        if crashed:
            # Last resort for crashed workers: one inline attempt —
            # if the job's own code is at fault it raises here with a
            # real traceback instead of a BrokenProcessPool.
            self._emit("fallback",
                       detail=f"{job.label}: worker crashed repeatedly;"
                              " final inline attempt")
            started = time.monotonic()
            try:
                payload = execute_job(job)
            except Exception as exc:
                if self.strict:
                    raise
                self._fail(index, job, fingerprints[index], "job-error",
                           exc, attempts=attempts[index] + 1,
                           wall_s=time.monotonic() - started,
                           results=results)
                return
            self._complete(index, job, fingerprints[index], payload,
                           time.monotonic() - started, results)
            return
        if self.strict:
            raise JobExecutionError(job, cause)
        self._fail(index, job, fingerprints[index], kind, cause,
                   attempts=attempts[index],
                   wall_s=(self.timeout_s or 0.0), results=results)

    def _sleep_backoff(self, retry_queue: list, attempts: dict,
                       fingerprints: list, drain: SignalDrain) -> None:
        """Back off before the retry round (exponential, jittered).

        One sleep per round, sized to the largest per-job delay —
        retries re-submit together, but the jitter keys off each job's
        fingerprint so schedules stay deterministic and de-correlated
        across sweeps.
        """
        delay = max(self.backoff.delay_s(fingerprints[index],
                                         attempts.get(index, 1))
                    for index, _ in retry_queue)
        deadline = time.monotonic() + delay
        while not drain.stop_requested:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(remaining, 0.1))
        self.stats.backoff_s += delay

    def _make_backend(self, n_pending: int) -> Optional[ExecBackend]:
        """The backend for one retry round (None → run inline)."""
        if self.backend is not None:
            return self.backend
        executor = self._make_executor(n_pending)
        if executor is None:
            return None
        return ProcessPoolBackend(workers=min(self.jobs, n_pending),
                                  executor=executor)

    def _make_executor(self, n_pending: int
                       ) -> Optional[ProcessPoolExecutor]:
        workers = min(self.jobs, n_pending)
        try:
            return ProcessPoolExecutor(max_workers=workers,
                                       initializer=initialize_worker)
        except (ImportError, NotImplementedError, OSError,
                PermissionError, ValueError):
            # No usable multiprocessing primitives on this platform
            # (e.g. sandboxed /dev/shm) — callers still get results.
            return None


def make_runner(jobs: int = 1, cache_dir=None,
                runner: Optional[ParallelRunner] = None,
                progress: Optional[Callable[[JobEvent], None]] = None,
                *,
                retries: int = 1,
                timeout_s: Optional[float] = None,
                strict: bool = False,
                failure_budget: Optional[float] = None,
                journal=None,
                handle_signals: bool = True,
                backend: Optional[ExecBackend] = None,
                checkpoint_dir=None,
                checkpoint_every: Optional[int] = None) -> ParallelRunner:
    """The experiment drivers' shared runner-construction shorthand.

    Passing an explicit ``runner`` wins (and exposes its ``stats`` to
    the caller); otherwise one is built from ``jobs`` and an optional
    ``cache_dir`` (which enables the on-disk result store *and* an
    append-only sweep journal beside it — pass ``journal=False`` to
    disable, or a path/:class:`SweepJournal` to relocate it).
    """
    if runner is not None:
        return runner
    store = ResultStore(cache_dir) if cache_dir else None
    if journal is None and cache_dir:
        journal = SweepJournal(Path(cache_dir) / JOURNAL_NAME)
    elif isinstance(journal, (str, Path)):
        journal = SweepJournal(journal)
    elif journal is False:
        journal = None
    return ParallelRunner(jobs=jobs, store=store, progress=progress,
                          retries=retries, timeout_s=timeout_s,
                          strict=strict, failure_budget=failure_budget,
                          journal=journal,
                          handle_signals=handle_signals,
                          backend=backend,
                          checkpoint_dir=checkpoint_dir,
                          checkpoint_every=checkpoint_every)
