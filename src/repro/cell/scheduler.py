"""PRB scheduler: equal-share allocation with water-filling.

The paper observes (and relies on, §4.3/§6.4) that commercial cell
towers enforce a per-user fairness policy: backlogged users converge to
equal PRB shares, and a user that does not need its share leaves the
remainder to others (or idle).  This scheduler reproduces exactly that
observable behaviour:

1. HARQ retransmissions are served first (they reuse their original
   allocation size — the 8 ms retransmission rule of §3).
2. Control-plane (parameter-update) users get their few PRBs next.
3. Remaining PRBs are split between backlogged data users by
   water-filling: users whose demand is below the equal share get what
   they need, and the freed PRBs are re-split among the rest.  A
   rotating remainder keeps long-run shares exactly equal, and the
   remainder rounds repeat until every backlogged user is satisfied or
   the PRBs run out — a grant capped by a user's demand (or lost to
   integer truncation of the weighted shares) is redistributed, never
   dropped, which is what the §6.4 equal-share invariant (and the
   monitor's Eqn. 3 idle-PRB accounting) requires.

This function runs once per carrier per subframe — it is one of the
measured hot paths — so demands and weights are materialized once per
call instead of being recomputed every water-filling round.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DemandEntry:
    """One user's scheduling input for a subframe on one carrier."""

    rnti: int
    demand_bits: int      #: Queue backlog the user wants served.
    bits_per_prb: int     #: Physical rate at the user's current MCS.

    @property
    def demand_prbs(self) -> int:
        """PRBs needed to drain the whole backlog this subframe."""
        if self.demand_bits <= 0 or self.bits_per_prb <= 0:
            return 0
        return -(-self.demand_bits // self.bits_per_prb)  # ceil division


#: Fairness policies (§7 "Fairness policy" discusses swapping these):
#: ``equal`` splits PRBs evenly between backlogged users (the paper's
#: observed commercial behaviour); ``equal_rate`` weights shares
#: inversely to each user's physical rate so everyone gets similar
#: *throughput* (the §7 example: "active users with lower physical
#: data rate grab larger bandwidth"); ``proportional_fair`` weights by
#: instantaneous rate over served-throughput EWMA (the textbook PF
#: scheduler), which needs the per-cell state in
#: :class:`ProportionalFairState`.
POLICIES = ("equal", "equal_rate", "proportional_fair")


class ProportionalFairState:
    """Per-cell served-throughput averages for the PF policy.

    The classic PF metric prioritizes ``r_i(t) / T_i(t)`` — each user's
    current achievable rate over an exponentially averaged history of
    served throughput — so users on channel upswings get scheduled and
    long-starved users age upward in priority.

    State is bounded: an RNTI that stays absent from ``known_rntis``
    for a full time constant is evicted, so day-long runs with user
    churn (Fig. 11's diurnal traces) do not grow without bound.  An
    evicted user that later returns starts over at the never-served
    priority, which is also what a real scheduler would do after the
    RNTI is released.
    """

    def __init__(self, time_constant_subframes: int = 100) -> None:
        if time_constant_subframes < 1:
            raise ValueError("time constant must be positive")
        self.time_constant = time_constant_subframes
        #: rnti -> served-throughput EWMA, bits per subframe.
        self._throughput: dict[int, float] = {}
        #: rnti -> index of the last record() that saw it attached.
        self._seen_at: dict[int, int] = {}
        self._records = 0

    def weight(self, demand: "DemandEntry") -> float:
        served = self._throughput.get(demand.rnti, 0.0)
        if served <= 0.0:
            return 1.0  # never served: highest relative priority
        return demand.bits_per_prb / served

    def record(self, served_bits: dict[int, int],
               known_rntis: set[int]) -> None:
        """Fold one subframe's served bits into the averages."""
        alpha = 1.0 / self.time_constant
        self._records += 1
        now = self._records
        throughput = self._throughput
        seen_at = self._seen_at
        for rnti in known_rntis | set(served_bits):
            old = throughput.get(rnti, 0.0)
            throughput[rnti] = ((1 - alpha) * old
                                + alpha * served_bits.get(rnti, 0))
            seen_at[rnti] = now
        # Amortized eviction sweep: once per time constant, drop every
        # RNTI that has been detached for at least a full time constant.
        if now % self.time_constant == 0 and len(seen_at) > len(known_rntis):
            cutoff = now - self.time_constant
            for rnti in [r for r, last in seen_at.items()
                         if last <= cutoff]:
                del seen_at[rnti]
                del throughput[rnti]

    def tracked_users(self) -> int:
        """How many RNTIs currently hold EWMA state (bound tests)."""
        return len(self._throughput)

    def throughput_of(self, rnti: int) -> float:
        return self._throughput.get(rnti, 0.0)


def allocate_prbs(available_prbs: int, demands: list[DemandEntry],
                  rotation: int = 0,
                  policy: str = "equal",
                  pf_state: "ProportionalFairState | None" = None)\
        -> dict[int, int]:
    """Water-filling weighted-share PRB allocation.

    Returns ``{rnti: n_prbs}`` for users receiving a non-zero grant.
    ``rotation`` rotates which users receive the integer-division
    remainder so per-subframe rounding does not bias long-run shares
    (callers pass the subframe index).  ``proportional_fair`` requires
    ``pf_state``.
    """
    if available_prbs < 0:
        raise ValueError("available PRBs must be non-negative")
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
    if policy == "proportional_fair" and pf_state is None:
        raise ValueError("proportional_fair needs a pf_state")
    grants: dict[int, int] = {}
    pending = [d for d in demands if d.demand_prbs > 0]
    remaining = available_prbs
    if not pending or remaining == 0:
        return grants
    if len(pending) == 1:
        # Lone backlogged user: every policy hands it the whole carrier
        # (its weight share is 1), capped by its own demand — the
        # water-filling/remainder rounds below reduce to exactly this.
        d = pending[0]
        grants[d.rnti] = min(d.demand_prbs, remaining)
        return grants

    # Materialize per-user demand and weight once: both are pure
    # functions of the entry (and the frozen pf_state), and the old
    # per-round recomputation was the dominant cost here.  ``equal``
    # keeps weights as None so its total weight is the exact float the
    # per-entry summation used to produce (sum of 1.0s == float(n)).
    demand_prbs = [d.demand_prbs for d in pending]
    if policy == "equal":
        weights = None
    elif policy == "proportional_fair":
        weights = [max(1e-9, pf_state.weight(d)) for d in pending]
    else:  # equal_rate: share inversely proportional to per-PRB rate.
        weights = [1.0 / max(1, d.bits_per_prb) for d in pending]

    #: Indices (into ``pending``) of users still below their demand.
    active = list(range(len(pending)))

    # Water-filling: repeatedly satisfy users below their weighted
    # share, redistributing what they do not need.
    while active and remaining > 0:
        if weights is None:
            total_weight = float(len(active))
            satisfied = [i for i in active
                         if demand_prbs[i]
                         <= remaining * 1.0 / total_weight]
        else:
            total_weight = sum(weights[i] for i in active)
            satisfied = [i for i in active
                         if demand_prbs[i]
                         <= remaining * weights[i] / total_weight]
        if not satisfied:
            break
        for i in satisfied:
            grants[pending[i].rnti] = demand_prbs[i]
            remaining -= demand_prbs[i]
        done = set(satisfied)
        active = [i for i in active if i not in done]

    # Remainder rounds: split what is left proportionally among the
    # still-backlogged users, rotating the integer-division extras.
    # One round used to be enough in theory, but a grant capped by the
    # user's remaining demand — or extras lost when float truncation
    # of the shares leaves more leftover PRBs than users — must be
    # redistributed, so the round repeats until nothing moves.
    granted = [0] * len(pending)
    while active and remaining > 0:
        n = len(active)
        if weights is None:
            total_weight = float(n)
            shares = [int(remaining * 1.0 / total_weight)
                      for _ in active]
        else:
            total_weight = sum(weights[i] for i in active)
            shares = [int(remaining * weights[i] / total_weight)
                      for i in active]
        leftover = remaining - sum(shares)
        order = sorted(range(n), key=lambda k: (k + rotation) % n)
        progress = 0
        for rank, k in enumerate(order):
            i = active[k]
            extra = 1 if rank < leftover else 0
            room = demand_prbs[i] - granted[i]
            grant = min(shares[k] + extra, room)
            if grant > 0:
                granted[i] += grant
                grants[pending[i].rnti] = granted[i]
                remaining -= grant
                progress += grant
        if progress == 0:
            break  # nothing movable (all shares truncated to zero)
        active = [i for i in active if granted[i] < demand_prbs[i]]

    return grants
