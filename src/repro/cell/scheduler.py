"""PRB scheduler: equal-share allocation with water-filling.

The paper observes (and relies on, §4.3/§6.4) that commercial cell
towers enforce a per-user fairness policy: backlogged users converge to
equal PRB shares, and a user that does not need its share leaves the
remainder to others (or idle).  This scheduler reproduces exactly that
observable behaviour:

1. HARQ retransmissions are served first (they reuse their original
   allocation size — the 8 ms retransmission rule of §3).
2. Control-plane (parameter-update) users get their few PRBs next.
3. Remaining PRBs are split between backlogged data users by
   water-filling: users whose demand is below the equal share get what
   they need, and the freed PRBs are re-split among the rest.  A
   rotating remainder keeps long-run shares exactly equal.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DemandEntry:
    """One user's scheduling input for a subframe on one carrier."""

    rnti: int
    demand_bits: int      #: Queue backlog the user wants served.
    bits_per_prb: int     #: Physical rate at the user's current MCS.

    @property
    def demand_prbs(self) -> int:
        """PRBs needed to drain the whole backlog this subframe."""
        if self.demand_bits <= 0 or self.bits_per_prb <= 0:
            return 0
        return -(-self.demand_bits // self.bits_per_prb)  # ceil division


#: Fairness policies (§7 "Fairness policy" discusses swapping these):
#: ``equal`` splits PRBs evenly between backlogged users (the paper's
#: observed commercial behaviour); ``equal_rate`` weights shares
#: inversely to each user's physical rate so everyone gets similar
#: *throughput* (the §7 example: "active users with lower physical
#: data rate grab larger bandwidth"); ``proportional_fair`` weights by
#: instantaneous rate over served-throughput EWMA (the textbook PF
#: scheduler), which needs the per-cell state in
#: :class:`ProportionalFairState`.
POLICIES = ("equal", "equal_rate", "proportional_fair")


class ProportionalFairState:
    """Per-cell served-throughput averages for the PF policy.

    The classic PF metric prioritizes ``r_i(t) / T_i(t)`` — each user's
    current achievable rate over an exponentially averaged history of
    served throughput — so users on channel upswings get scheduled and
    long-starved users age upward in priority.
    """

    def __init__(self, time_constant_subframes: int = 100) -> None:
        if time_constant_subframes < 1:
            raise ValueError("time constant must be positive")
        self.time_constant = time_constant_subframes
        #: rnti -> served-throughput EWMA, bits per subframe.
        self._throughput: dict[int, float] = {}

    def weight(self, demand: "DemandEntry") -> float:
        served = self._throughput.get(demand.rnti, 0.0)
        if served <= 0.0:
            return 1.0  # never served: highest relative priority
        return demand.bits_per_prb / served

    def record(self, served_bits: dict[int, int],
               known_rntis: set[int]) -> None:
        """Fold one subframe's served bits into the averages."""
        alpha = 1.0 / self.time_constant
        for rnti in known_rntis | set(served_bits):
            old = self._throughput.get(rnti, 0.0)
            self._throughput[rnti] = ((1 - alpha) * old
                                      + alpha * served_bits.get(rnti, 0))

    def throughput_of(self, rnti: int) -> float:
        return self._throughput.get(rnti, 0.0)


def allocate_prbs(available_prbs: int, demands: list[DemandEntry],
                  rotation: int = 0,
                  policy: str = "equal",
                  pf_state: "ProportionalFairState | None" = None)\
        -> dict[int, int]:
    """Water-filling weighted-share PRB allocation.

    Returns ``{rnti: n_prbs}`` for users receiving a non-zero grant.
    ``rotation`` rotates which users receive the integer-division
    remainder so per-subframe rounding does not bias long-run shares
    (callers pass the subframe index).  ``proportional_fair`` requires
    ``pf_state``.
    """
    if available_prbs < 0:
        raise ValueError("available PRBs must be non-negative")
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
    if policy == "proportional_fair" and pf_state is None:
        raise ValueError("proportional_fair needs a pf_state")
    grants: dict[int, int] = {}
    pending = [d for d in demands if d.demand_prbs > 0]
    remaining = available_prbs

    def weight(d: DemandEntry) -> float:
        if policy == "equal":
            return 1.0
        if policy == "proportional_fair":
            return max(1e-9, pf_state.weight(d))
        # equal_rate: PRB share inversely proportional to per-PRB rate.
        return 1.0 / max(1, d.bits_per_prb)

    # Water-filling: repeatedly satisfy users below their weighted
    # share, redistributing what they do not need.
    while pending and remaining > 0:
        total_weight = sum(weight(d) for d in pending)
        satisfied = [
            d for d in pending
            if d.demand_prbs <= remaining * weight(d) / total_weight]
        if not satisfied:
            break
        for d in satisfied:
            grants[d.rnti] = d.demand_prbs
            remaining -= d.demand_prbs
        pending = [d for d in pending if d not in satisfied]

    if pending and remaining > 0:
        total_weight = sum(weight(d) for d in pending)
        shares = [int(remaining * weight(d) / total_weight)
                  for d in pending]
        leftover = remaining - sum(shares)
        order = sorted(range(len(pending)),
                       key=lambda i: (i + rotation) % len(pending))
        for rank, i in enumerate(order):
            extra = 1 if rank < leftover else 0
            grant = min(shares[i] + extra, pending[i].demand_prbs)
            if grant > 0:
                grants[pending[i].rnti] = grant
                remaining -= grant

    return grants
