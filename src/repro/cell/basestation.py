"""The cellular network: cells, users, scheduling, HARQ and CA.

:class:`CellularNetwork` is the MAC-layer heart of the reproduction.
Once per subframe (1 ms) it runs, for every component carrier:

1. HARQ retransmissions due this subframe (8 ms after failure, §3);
2. control-plane parameter-update bursts (Figure 7 population);
3. equal-share water-filling PRB allocation over backlogged data users;
4. transport-block assembly, error drawing and delivery to the UE;
5. emission of the subframe's decoded control channel (DCI records) to
   any attached monitors — the stream PBE-CC's measurement module
   consumes;
6. the carrier-aggregation manager's per-user activation decisions.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from ..net.link import Receiver
from ..net.packet import Packet
from ..net.sim import Simulator
from ..net.units import SUBFRAME_US
from ..phy.carrier import AggregationState, CarrierConfig
from ..phy.channel import (
    ChannelModel,
    GaussMarkovChannel,
    StaticChannel,
    TraceChannel,
)
from ..phy.dci import DciMessage, SubframeRecord
from ..phy.error import (
    block_error_rate,
    retransmission_ber,
    sinr_to_ber,
    sinr_to_ber_block,
)
from ..phy.harq import MAX_RETRANSMISSIONS, RETX_DELAY_SUBFRAMES
from ..phy.mcs import (
    MAX_MCS_INDEX,
    bits_per_prb,
    bits_per_prb_block,
    sinr_to_mcs,
    sinr_to_mcs_block,
)
from .ca_manager import CaPolicy, CarrierAggregationManager
from .control_traffic import ControlTrafficGenerator
from .queues import PROTOCOL_OVERHEAD, DownlinkQueue, TransportBlock
from .scheduler import (
    DemandEntry,
    ProportionalFairState,
    allocate_prbs,
)
from .ue import UserEquipment

#: SINR above which a UE uses its full spatial-stream count.
MIMO_SINR_THRESHOLD_DB = 10.0
#: Control-plane bursts use the most robust MCS.
CONTROL_MCS = 4
#: Their fixed per-PRB rate, precomputed for the per-burst hot path.
_CONTROL_BITS_PER_PRB = bits_per_prb(CONTROL_MCS, 1)
#: Subframes of channel trajectory precomputed per user per block in
#: the batched engine (one ``sinr_block`` draw + one vectorized
#: SINR→MCS→rate/BER chain instead of 64 scalar rounds).
CHANNEL_BLOCK_SUBFRAMES = 64
#: Channel models whose ``sinr_block`` is exact (RNG-stream identical
#: to scalar calls) *and* whose output depends only on time — the
#: precondition for precomputing a user's trajectory ahead of the
#: clock.  Custom models fall back to per-subframe sampling.
_BLOCK_SAFE_CHANNELS = (StaticChannel, GaussMarkovChannel, TraceChannel)


@dataclass
class UeCategory:
    """Hardware capabilities of a phone model."""

    max_mcs: int = MAX_MCS_INDEX
    max_streams: int = 2

    def __post_init__(self) -> None:
        if not 1 <= self.max_mcs <= MAX_MCS_INDEX:
            raise ValueError("max_mcs out of range")
        if not 1 <= self.max_streams <= 4:
            raise ValueError("max_streams out of range")


@dataclass
class _HarqState:
    tb: TransportBlock
    base_ber: float
    attempt: int = 0


class DemandSource:
    """Optional per-subframe synthetic demand (exogenous/background users).

    ``bits(subframe)`` returns how many bits arrive into the user's
    downlink queue at the start of that subframe.
    """

    def bits(self, subframe: int) -> int:  # pragma: no cover - protocol
        raise NotImplementedError


class _User:
    """Internal per-user state inside the network."""

    __slots__ = (
        "rnti", "agg", "channel", "category", "queue", "ue", "tb_seq",
        "demand_source", "sinr_db", "current_mcs", "current_streams",
        "rate_now", "ber_now", "active_cell_set", "active_prb_total",
        "allocated_history", "exo_packet_seq", "suspended_until",
        "_sinr_history", "block_safe", "_blk_idx", "_blk_len",
        "_blk_sinr", "_blk_mcs", "_blk_streams", "_blk_rate", "_blk_ber",
        "_blk_ckpt", "_blk_start_us",
    )

    def __init__(self, rnti: int, agg: AggregationState,
                 channel: ChannelModel, category: UeCategory,
                 queue: DownlinkQueue, ue: Optional[UserEquipment],
                 cqi_delay_subframes: int = 0) -> None:
        self.rnti = rnti
        self.agg = agg
        self.channel = channel
        self.category = category
        self.queue = queue
        self.ue = ue
        self.tb_seq = 0
        self.demand_source: Optional[DemandSource] = None
        self.sinr_db = 0.0
        self.current_mcs = 0
        self.current_streams = 1
        self.rate_now = bits_per_prb(0, 1)
        self.ber_now = sinr_to_ber(0.0)
        #: Batched-engine channel cache: True when the channel model may
        #: be sampled in blocks (known-exact model, not shared with
        #: another user).  Set by the network.
        self.block_safe = False
        self._blk_idx = 0
        self._blk_len = 0
        self._blk_sinr: list[float] = []
        self._blk_mcs: list[int] = []
        self._blk_streams: list[int] = []
        self._blk_rate: list[int] = []
        self._blk_ber: list[float] = []
        self._blk_ckpt: object = None
        self._blk_start_us = 0
        #: Cached views of ``agg.active_cells`` (membership set, PRB
        #: total) — refreshed by the network whenever aggregation
        #: changes, so the per-subframe loops avoid rebuilding them.
        self.active_cell_set: set[int] = set()
        self.active_prb_total = 0
        #: Optional per-subframe ``(subframe, cell_id, prbs)`` log.
        self.allocated_history: Optional[list] = None
        self.exo_packet_seq = 0
        #: Scheduling suspended until this subframe (handover gap).
        self.suspended_until = -1
        #: Recent SINR samples for CQI-reporting delay (newest last).
        #: The maxlen bounds it to delay+1 entries, so append evicts the
        #: stale head in O(1) — the old list.pop(0) was O(window) per
        #: subframe per user.
        self._sinr_history: deque[float] = deque(
            maxlen=cqi_delay_subframes + 1)

    def refresh_channel(self, now_us: int,
                        cqi_delay_subframes: int = 0) -> None:
        """Sample the channel; pick MCS from the (possibly stale) CQI.

        With ``cqi_delay_subframes > 0`` the link adaptation uses the
        SINR the UE reported that many subframes ago — the real
        CQI-reporting loop — while transport-block errors are always
        drawn at the *current* channel, so fast fades genuinely hurt.
        """
        self.sinr_db = self.channel.sinr_db(now_us)
        if cqi_delay_subframes > 0:
            self._sinr_history.append(self.sinr_db)
            reported = self._sinr_history[0]
        else:
            reported = self.sinr_db
        self.current_mcs = sinr_to_mcs(reported, self.category.max_mcs)
        if reported >= MIMO_SINR_THRESHOLD_DB:
            self.current_streams = self.category.max_streams
        else:
            self.current_streams = 1
        self.rate_now = bits_per_prb(self.current_mcs,
                                     self.current_streams)
        self.ber_now = sinr_to_ber(self.sinr_db)

    def fill_channel_block(self, now_us: int,
                           cqi_delay_subframes: int,
                           n_subframes: int = CHANNEL_BLOCK_SUBFRAMES,
                           ) -> None:
        """Precompute the next block of per-subframe channel state.

        One ``sinr_block`` draw plus one vectorized SINR→CQI→MCS→rate/
        BER chain replaces ``n`` rounds of :meth:`refresh_channel`,
        consuming the channel's RNG stream identically and producing
        bitwise-equal values (``tests/test_batch_engine.py``).
        """
        # Checkpoint first, so release_channel_block can rewind the
        # channel if the cache is dropped before the block is used up.
        self._blk_ckpt = self.channel.state_checkpoint()
        self._blk_start_us = now_us
        sinr = self.channel.sinr_block(now_us, n_subframes)
        if cqi_delay_subframes > 0:
            # reported[k] is what the history deque's head would be
            # after appending sinr[k]: element max(0, h+k-delay) of the
            # (history + block) concatenation.
            history = self._sinr_history
            h = len(history)
            if h:
                joined = np.concatenate(
                    [np.asarray(history, dtype=np.float64), sinr])
            else:
                joined = sinr
            reported = joined[np.maximum(
                h + np.arange(n_subframes) - cqi_delay_subframes, 0)]
            history.extend(sinr.tolist())
        else:
            reported = sinr
        mcs = sinr_to_mcs_block(reported, self.category.max_mcs)
        streams = np.where(reported >= MIMO_SINR_THRESHOLD_DB,
                           self.category.max_streams, 1)
        # Plain-Python lists: per-tick indexing below is several times
        # cheaper than numpy scalar extraction, and the float64→float
        # round-trip is exact.
        self._blk_sinr = sinr.tolist()
        self._blk_mcs = mcs.tolist()
        self._blk_streams = streams.tolist()
        self._blk_rate = bits_per_prb_block(mcs, streams).tolist()
        self._blk_ber = sinr_to_ber_block(sinr).tolist()
        self._blk_idx = 0
        self._blk_len = n_subframes

    def refresh_from_block(self, slot: int) -> None:
        """Adopt one precomputed subframe of channel state."""
        self.sinr_db = self._blk_sinr[slot]
        self.current_mcs = self._blk_mcs[slot]
        self.current_streams = self._blk_streams[slot]
        self.rate_now = self._blk_rate[slot]
        self.ber_now = self._blk_ber[slot]
        self._blk_idx = slot + 1

    def invalidate_channel_block(self) -> None:
        """Drop precomputed channel state (handover / channel swap)."""
        self._blk_idx = 0
        self._blk_len = 0

    def release_channel_block(self) -> None:
        """Drop the cache AND rewind the channel to the consumed slot.

        Block sampling draws the channel's stream ahead of consumption;
        if this user stops sampling the channel (departure, channel
        swap) while the cache is only partially consumed, the model must
        be left where per-subframe sampling would have left it, in case
        the object is handed to another user.  Restore the pre-block
        checkpoint, then re-consume exactly the used prefix.
        """
        if self._blk_len and self._blk_idx < self._blk_len:
            self.channel.state_restore(self._blk_ckpt)
            if self._blk_idx:
                self.channel.sinr_block(self._blk_start_us, self._blk_idx)
        self.invalidate_channel_block()

    @property
    def bits_per_prb_now(self) -> int:
        return self.rate_now


class _Ingress(Receiver):
    """Adapter: wired-network packets land in one user's downlink queue."""

    def __init__(self, network: "CellularNetwork", rnti: int) -> None:
        self.network = network
        self.rnti = rnti

    def receive(self, packet: Packet) -> None:
        self.network.enqueue(self.rnti, packet)


class CellularNetwork:
    """All cells of one operator around the measurement location."""

    #: Checkpointing (see repro.statedict): wiring and config restored
    #: from the rebuilt experiment, plus derived caches recomputed by
    #: ``_after_restore`` (``_channel_users`` is keyed by ``id()``,
    #: which cannot survive a process boundary).
    SNAPSHOT_SKIP = ("sim", "perf", "carriers", "_prbs_by_cell",
                     "_monitors", "_user_list", "_channel_users")

    def __init__(self, sim: Simulator, carriers: list[CarrierConfig],
                 ca_policy: Optional[CaPolicy] = None,
                 control_arrivals_per_subframe: "float | dict[int, float]"
                 = 0.0,
                 scheduler_policy: str = "equal",
                 cqi_delay_subframes: int = 0,
                 seed: int = 0,
                 perf_counters: Optional[Any] = None,
                 batched: bool = True) -> None:
        if cqi_delay_subframes < 0:
            raise ValueError("CQI delay must be non-negative")
        if not carriers:
            raise ValueError("need at least one carrier")
        ids = [c.cell_id for c in carriers]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate cell ids")
        self.sim = sim
        self.scheduler_policy = scheduler_policy
        self.cqi_delay_subframes = cqi_delay_subframes
        self.carriers = {c.cell_id: c for c in carriers}
        #: ``cell_id -> PRBs`` (``CarrierConfig.total_prbs`` is a
        #: computed property; the subframe loop reads this dict instead).
        self._prbs_by_cell = {c.cell_id: c.total_prbs for c in carriers}
        self.ca = CarrierAggregationManager(ca_policy)
        self._rng = np.random.default_rng(seed)
        self._users: dict[int, _User] = {}
        #: Cached ``list(self._users.values())`` for the tick loop;
        #: invalidated (set to None) on attach/detach.
        self._user_list: Optional[list[_User]] = None
        self.perf = perf_counters
        self.subframe = 0
        self._retx: dict[tuple[int, int], list[_HarqState]] = {}
        self._monitors: dict[int, list[Callable[[SubframeRecord], None]]] = {
            c: [] for c in self.carriers}
        # One control-plane rate for every cell (a float), or a
        # per-cell mapping (metro grids mix busy and idle cells in one
        # network); missing cells fall back to 0.0 like the default.
        if isinstance(control_arrivals_per_subframe, dict):
            rate_for = lambda c: control_arrivals_per_subframe.get(c, 0.0)
        else:
            rate_for = lambda c: control_arrivals_per_subframe
        self._control = {
            cell_id: ControlTrafficGenerator(
                rate_for(cell_id), seed=seed + 17 * cell_id)
            for cell_id in self.carriers}
        self._pf: dict[int, ProportionalFairState] = {}
        if scheduler_policy == "proportional_fair":
            self._pf = {cell_id: ProportionalFairState()
                        for cell_id in self.carriers}
        self._started = False
        #: ``batched=False`` selects the per-subframe scalar reference
        #: engine; the batched engine is byte-identical to it (block
        #: channel sampling, skipped unobservable cells, single-cell CA
        #: shortcut) and is the default.
        self.batched = batched
        #: ``id(channel)`` of every channel attached so far — a channel
        #: shared by two users must be sampled in user-interleaved
        #: order, so its users are excluded from block caching.
        self._channel_users: dict[int, list[_User]] = {}
        #: Users configured (not merely active) per cell; a cell with
        #: no configured users and no monitors is unobservable.
        self._cell_user_count = {c: 0 for c in self.carriers}
        #: Pending HARQ retransmissions per cell (skip-safety guard).
        self._cell_retx_count = {c: 0 for c in self.carriers}
        #: Subframes an unobservable cell's tick was skipped — its
        #: control-traffic RNG is caught up by replaying exactly this
        #: many generator ticks if the cell ever becomes observable.
        self._control_lag = {c: 0 for c in self.carriers}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_user(self, rnti: int, cells: list[int], channel: ChannelModel,
                 category: Optional[UeCategory] = None,
                 on_packet: Optional[Callable[[Packet], None]] = None,
                 queue_packets: int = 3000,
                 log_allocations: bool = False) -> UserEquipment:
        """Attach a full transport endpoint user; returns its UE object."""
        ue = UserEquipment(self.sim, rnti, on_packet)
        user = self._make_user(rnti, cells, channel, category,
                               queue_packets, ue)
        if log_allocations:
            user.allocated_history = []
        return ue

    def add_exogenous_user(self, rnti: int, cells: list[int],
                           channel: ChannelModel,
                           demand: DemandSource,
                           category: Optional[UeCategory] = None,
                           queue_packets: int = 3000) -> None:
        """Attach a background user whose demand is generated at the MAC.

        Its delivered transport blocks are discarded — only its PRB
        footprint matters (competing traffic, Figure 18/19).
        """
        user = self._make_user(rnti, cells, channel, category,
                               queue_packets, ue=None)
        user.demand_source = demand

    def _make_user(self, rnti: int, cells: list[int],
                   channel: ChannelModel, category: Optional[UeCategory],
                   queue_packets: int, ue: Optional[UserEquipment]) -> _User:
        if rnti in self._users:
            raise ValueError(f"duplicate RNTI {rnti}")
        for cell in cells:
            if cell not in self.carriers:
                raise ValueError(f"unknown cell {cell}")
        user = _User(rnti, AggregationState(configured=list(cells)),
                     channel, category or UeCategory(),
                     DownlinkQueue(queue_packets), ue,
                     cqi_delay_subframes=self.cqi_delay_subframes)
        self._users[rnti] = user
        self._user_list = None
        self._refresh_active_cells(user)
        self._register_channel(user, channel)
        for cell in cells:
            self._cell_user_count[cell] += 1
            self._catch_up_control(cell)
        return user

    def _register_channel(self, user: _User, channel: ChannelModel) -> None:
        """Decide block-cache eligibility; demote sharers to scalar."""
        peers = self._channel_users.setdefault(id(channel), [])
        peers.append(user)
        if len(peers) > 1:
            # A shared channel must be sampled in the engine's user-
            # interleaved order — demote every sharer to per-subframe
            # sampling, rewinding any live cache so the stream sits
            # exactly where interleaved sampling expects it.
            for peer in peers:
                peer.block_safe = False
                peer.release_channel_block()
        else:
            user.block_safe = isinstance(channel, _BLOCK_SAFE_CHANNELS)

    def _catch_up_control(self, cell_id: int) -> None:
        """Replay control-generator ticks skipped while unobservable.

        The replayed ticks draw the identical arrival/burst sequence the
        scalar engine would have drawn subframe by subframe, so the
        generator's RNG stream and in-flight burst list re-converge
        exactly before the cell's next observed subframe.  Idle
        stretches are crossed with :meth:`ControlTrafficGenerator.
        advance_idle` — one block Poisson draw per stretch instead of a
        Python-level tick per subframe — so catching a cell up after a
        long unobserved gap costs O(bursty subframes), not O(gap).
        """
        lag = self._control_lag[cell_id]
        if lag:
            self._control_lag[cell_id] = 0
            generator = self._control[cell_id]
            advance = generator.advance_idle
            generator_tick = generator.tick
            while lag:
                skipped = advance(lag)
                lag -= skipped
                if lag:
                    generator_tick()
                    lag -= 1

    def remove_user(self, rnti: int) -> None:
        """Detach a user (its queued traffic is discarded)."""
        user = self._users.pop(rnti, None)
        if user is not None:
            self._user_list = None
            for cell in user.agg.configured:
                self._cell_user_count[cell] -= 1
            user.release_channel_block()
            peers = self._channel_users.get(id(user.channel))
            if peers is not None and user in peers:
                peers.remove(user)
                if not peers:
                    del self._channel_users[id(user.channel)]

    def _refresh_active_cells(self, user: _User) -> None:
        """Rebuild the user's cached active-cell set and PRB total."""
        cells = user.agg.active_cells
        user.active_cell_set = set(cells)
        prbs = self._prbs_by_cell
        user.active_prb_total = sum(prbs[c] for c in cells)

    #: Default handover interruption (scheduling gap), subframes.  LTE
    #: X2 handovers typically interrupt the user plane for 30-50 ms.
    HANDOVER_GAP_SUBFRAMES = 40

    def handover(self, rnti: int, new_cells: list[int],
                 interruption_subframes: int = HANDOVER_GAP_SUBFRAMES,
                 channel: Optional[ChannelModel] = None) -> None:
        """Move a user to a new (primary-first) cell list (§1).

        Models an X2-style handover with data forwarding: the user's
        downlink queue survives, but scheduling pauses for the
        interruption gap, carrier aggregation restarts from the new
        primary alone, and HARQ processes pending on cells the user is
        leaving are abandoned (their transport blocks are lost — the
        transport layer recovers them end to end).
        """
        if interruption_subframes < 0:
            raise ValueError("interruption must be non-negative")
        user = self._users.get(rnti)
        if user is None:
            raise ValueError(f"unknown RNTI {rnti}")
        for cell in new_cells:
            if cell not in self.carriers:
                raise ValueError(f"unknown cell {cell}")

        # Abandon HARQ processes stranded on cells being left.
        keeping = set(new_cells)
        for key in list(self._retx):
            cell_id, _subframe = key
            if cell_id in keeping:
                continue
            kept = []
            for harq in self._retx[key]:
                if harq.tb.rnti == rnti:
                    if user.ue is not None:
                        self.sim.schedule(0, user.ue.abandon_tb, harq.tb)
                else:
                    kept.append(harq)
            self._cell_retx_count[cell_id] -= (
                len(self._retx[key]) - len(kept))
            if kept:
                self._retx[key] = kept
            else:
                del self._retx[key]

        for cell in user.agg.configured:
            self._cell_user_count[cell] -= 1
        user.agg = AggregationState(configured=list(new_cells))
        for cell in new_cells:
            self._cell_user_count[cell] += 1
            self._catch_up_control(cell)
        user.suspended_until = self.subframe + interruption_subframes
        if channel is not None:
            user.release_channel_block()
            peers = self._channel_users.get(id(user.channel))
            if peers is not None and user in peers:
                peers.remove(user)
                if not peers:
                    del self._channel_users[id(user.channel)]
            user.channel = channel
            self._register_channel(user, channel)
        self._refresh_active_cells(user)
        # The new cell group starts its CA bookkeeping from scratch.
        self.ca._users.pop(rnti, None)

    def _after_restore(self) -> None:
        """Rebuild derived views after a checkpoint restore.

        ``_channel_users`` is keyed by ``id(channel)`` and must be
        regrouped around the restored channel objects; ``block_safe``
        and the block caches themselves come straight from the
        snapshot, so no demotion logic reruns here.  ``_user_list`` is
        a lazy cache the tick loop rebuilds on demand.
        """
        self._user_list = None
        self._channel_users = {}
        for user in self._users.values():
            self._channel_users.setdefault(
                id(user.channel), []).append(user)

    def ingress(self, rnti: int) -> Receiver:
        """Wired-side entry point delivering into one user's queue.

        The RNTI is resolved at packet-arrival time, so the ingress can
        be wired up before :meth:`add_user` attaches the user (traffic
        for unknown/departed users is silently dropped, like a network
        routing to a detached device).
        """
        return _Ingress(self, rnti)

    def attach_monitor(self, cell_id: int,
                       callback: Callable[[SubframeRecord], None]) -> None:
        """Subscribe a control-channel decoder to one cell."""
        self._catch_up_control(cell_id)
        self._monitors[cell_id].append(callback)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def user(self, rnti: int) -> _User:
        return self._users[rnti]

    def aggregation_state(self, rnti: int) -> AggregationState:
        return self._users[rnti].agg

    def queue_backlog_bits(self, rnti: int) -> int:
        return self._users[rnti].queue.backlog_bits

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def enqueue(self, rnti: int, packet: Packet) -> None:
        user = self._users.get(rnti)
        if user is None:
            return  # user departed; traffic in flight is dropped
        user.queue.push(packet)

    # ------------------------------------------------------------------
    # Subframe engine
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin ticking once per subframe."""
        if self._started:
            raise RuntimeError("network already started")
        self._started = True
        self.sim.schedule(0, self._tick)

    def _tick(self) -> None:
        perf = self.perf
        t0 = time.perf_counter() \
            if perf is not None and perf.time_subsystems else 0.0
        now = self.sim.now
        subframe = self.subframe
        users = self._user_list
        if users is None:
            users = self._user_list = list(self._users.values())
        cqi_delay = self.cqi_delay_subframes
        batched = self.batched
        if batched:
            for user in users:
                if user.block_safe:
                    # Refresh from the per-user channel block cache,
                    # refilling it (one vectorized SINR→CQI→MCS→rate→BER
                    # pass) whenever the cursor runs off the end.  Block
                    # sampling consumes the channel RNG stream exactly
                    # like per-subframe calls, so this is byte-identical
                    # to refresh_channel.
                    slot = user._blk_idx
                    if slot >= user._blk_len:
                        user.fill_channel_block(now, cqi_delay)
                        slot = 0
                    user.refresh_from_block(slot)
                else:
                    user.refresh_channel(now, cqi_delay)
                if user.demand_source is not None:
                    self._inject_exogenous(user, subframe)
        else:
            for user in users:
                user.refresh_channel(now, cqi_delay)
                if user.demand_source is not None:
                    self._inject_exogenous(user, subframe)

        used_by_user: dict[int, int] = {}
        for cell_id, carrier in self.carriers.items():
            if (batched and not self._monitors[cell_id]
                    and self._cell_user_count[cell_id] == 0
                    and self._cell_retx_count[cell_id] == 0
                    and cell_id not in self._pf):
                # Nothing on this cell can be observed (no monitor, no
                # configured users, no HARQ in flight, no PF bookkeeping
                # with amortized eviction): defer its control-traffic
                # RNG draws.  _catch_up_control replays exactly this
                # many ticks before the cell next becomes observable.
                self._control_lag[cell_id] += 1
                continue
            self._tick_cell(cell_id, carrier, subframe, used_by_user)

        observe = self.ca.observe
        used_get = used_by_user.get
        for user in users:
            if batched and len(user.agg.configured) == 1:
                # A single-cell user can neither activate nor deactivate
                # a carrier (AggregationState gates both on the
                # configured count), so observe() could only append to
                # unobservable per-user history.
                continue
            switched = observe(
                subframe, user.rnti, user.agg,
                used_prbs=used_get(user.rnti, 0),
                active_total_prbs=user.active_prb_total,
                backlogged=not user.queue.empty)
            if switched is not None:
                self._refresh_active_cells(user)

        self.subframe += 1
        self.sim.schedule(SUBFRAME_US, self._tick)
        if perf is not None:
            perf.ticks += 1
            if perf.time_subsystems:
                perf.add_time("net.tick", time.perf_counter() - t0)

    def _inject_exogenous(self, user: _User, subframe: int) -> None:
        bits = user.demand_source.bits(subframe)
        if bits <= 0:
            return
        now = self.sim.now
        flow_id = -user.rnti
        push = user.queue.push
        while bits > 0:
            size = min(bits, 12_000)
            packet = Packet(flow_id=flow_id, seq=user.exo_packet_seq,
                            size_bits=size, sent_time_us=now)
            user.exo_packet_seq += 1
            push(packet)
            bits -= size

    def _tick_cell(self, cell_id: int, carrier: CarrierConfig,
                   subframe: int, used_by_user: dict[int, int]) -> None:
        total_prbs = carrier.total_prbs
        available = total_prbs
        callbacks = self._monitors[cell_id]
        # DciMessage/SubframeRecord objects exist only for the decoders
        # subscribed to this cell; with no monitor attached the
        # allocation bookkeeping below is the whole observable effect,
        # so the message construction is skipped outright.
        messages: Optional[list[DciMessage]] = [] if callbacks else None

        # 1. HARQ retransmissions due this subframe.
        if self._cell_retx_count[cell_id]:
            due = self._retx.pop((cell_id, subframe), [])
            self._cell_retx_count[cell_id] -= len(due)
            deferred: list[_HarqState] = []
            for harq in due:
                if harq.tb.n_prbs > available:
                    deferred.append(harq)
                    continue
                available -= harq.tb.n_prbs
                self._transmit(harq, subframe, messages, used_by_user)
            if deferred:
                self._retx.setdefault((cell_id, subframe + 1), []).extend(
                    deferred)
                self._cell_retx_count[cell_id] += len(deferred)

        # 2. Control-plane parameter-update bursts.
        for burst in self._control[cell_id].tick():
            grant = min(burst.prbs, available)
            if grant <= 0:
                break
            available -= grant
            if messages is not None:
                messages.append(DciMessage(
                    subframe, cell_id, burst.rnti, grant, CONTROL_MCS, 1,
                    tbs_bits=grant * _CONTROL_BITS_PER_PRB,
                    is_control=True))

        # 3. Equal-share allocation over backlogged data users.
        demands = []
        users = self._user_list
        if users is None:
            users = self._user_list = list(self._users.values())
        for user in users:
            if cell_id not in user.active_cell_set:
                continue
            if user.queue.empty or subframe < user.suspended_until:
                continue
            demands.append(DemandEntry(user.rnti, user.queue.backlog_bits,
                                       user.rate_now))
        grants = allocate_prbs(available, demands, rotation=subframe,
                               policy=self.scheduler_policy,
                               pf_state=self._pf.get(cell_id))

        # 4. Transport-block assembly and transmission.
        served_bits: dict[int, int] = {}
        for rnti, n_prbs in grants.items():
            user = self._users[rnti]
            tb = TransportBlock(
                seq=user.tb_seq, rnti=rnti, cell_id=cell_id,
                subframe=subframe,
                bits=n_prbs * user.rate_now, n_prbs=n_prbs,
                mcs=user.current_mcs,
                spatial_streams=user.current_streams)
            user.tb_seq += 1
            # γ of the TB is protocol headers (Eqn. 5): only the rest
            # carries transport-layer payload.
            payload_budget = int(tb.bits * (1.0 - PROTOCOL_OVERHEAD))
            pulled = user.queue.pull(payload_budget, tb)
            if pulled:
                tb.bits = int(pulled / (1.0 - PROTOCOL_OVERHEAD))
            harq = _HarqState(tb, base_ber=user.ber_now)
            served_bits[rnti] = tb.bits
            self._transmit(harq, subframe, messages, used_by_user)
            if user.allocated_history is not None:
                user.allocated_history.append((subframe, cell_id, n_prbs))

        if cell_id in self._pf:
            attached = {u.rnti for u in users
                        if cell_id in u.active_cell_set}
            self._pf[cell_id].record(served_bits, attached)

        # 5. Publish the decoded control channel.
        if callbacks:
            record = SubframeRecord(subframe, cell_id, total_prbs,
                                    messages)
            perf = self.perf
            if perf is not None and perf.time_subsystems:
                t0 = time.perf_counter()
                for callback in callbacks:
                    callback(record)
                perf.add_time("monitor.feed", time.perf_counter() - t0)
            else:
                for callback in callbacks:
                    callback(record)

    def _transmit(self, harq: _HarqState, subframe: int,
                  messages: Optional[list[DciMessage]],
                  used_by_user: dict[int, int]) -> None:
        tb = harq.tb
        user = self._users.get(tb.rnti)
        if messages is not None:
            messages.append(DciMessage(
                subframe, tb.cell_id, tb.rnti, tb.n_prbs, tb.mcs,
                tb.spatial_streams, tbs_bits=tb.bits,
                new_data=(harq.attempt == 0)))
        used_by_user[tb.rnti] = used_by_user.get(tb.rnti, 0) + tb.n_prbs
        if user is None:
            return  # user departed mid-HARQ

        ber = retransmission_ber(harq.base_ber, harq.attempt)
        failed = self._rng.random() < block_error_rate(ber, tb.bits)
        if not failed:
            if user.ue is not None:
                self.sim.schedule(SUBFRAME_US, user.ue.receive_tb, tb)
            return
        if harq.attempt < MAX_RETRANSMISSIONS:
            harq.attempt += 1
            key = (tb.cell_id, subframe + RETX_DELAY_SUBFRAMES)
            self._retx.setdefault(key, []).append(harq)
            self._cell_retx_count[tb.cell_id] += 1
        elif user.ue is not None:
            self.sim.schedule(SUBFRAME_US, user.ue.abandon_tb, tb)
