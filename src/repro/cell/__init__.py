"""Base-station MAC layer: scheduling, HARQ, queues and carrier aggregation.

This package is the "cellular network" half of the substitution table in
DESIGN.md — it reproduces the observable behaviour of a commercial LTE
deployment: per-user downlink buffers, an equal-share PRB scheduler,
8 ms HARQ retransmissions, control-plane background users and
utilization-driven secondary-cell activation.
"""

from .basestation import (
    CONTROL_MCS,
    MIMO_SINR_THRESHOLD_DB,
    CellularNetwork,
    DemandSource,
    UeCategory,
)
from .ca_manager import CaPolicy, CarrierAggregationManager
from .control_traffic import (
    CONTROL_RNTI_BASE,
    ControlBurst,
    ControlTrafficGenerator,
)
from .queues import DownlinkQueue, TransportBlock
from .scheduler import DemandEntry, allocate_prbs
from .ue import CORRUPT_KEY, UserEquipment

__all__ = [
    "CONTROL_MCS", "CONTROL_RNTI_BASE", "CORRUPT_KEY", "CaPolicy",
    "CarrierAggregationManager", "CellularNetwork", "ControlBurst",
    "ControlTrafficGenerator", "DemandEntry", "DemandSource",
    "DownlinkQueue", "MIMO_SINR_THRESHOLD_DB", "TransportBlock",
    "UeCategory", "UserEquipment", "allocate_prbs",
]
