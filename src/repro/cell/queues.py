"""Per-user downlink queues and transport blocks.

The base station keeps a *separate* downlink buffer for every user — a
structural property the paper leans on for RTT fairness (§4.3: "the
base station provides separate buffers for every user").  Packets are
segmented into transport blocks (TBs) at whatever size the scheduler
grants each subframe; a packet may span several TBs and is considered
delivered when the TB holding its final bit is released in order by the
receiver's reordering buffer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..net.packet import Packet

#: Fraction of transport-block bits consumed by RLC/PDCP/MAC headers —
#: the paper's measured protocol overhead γ = 6.8% (§4.2.1, Eqn. 5).
PROTOCOL_OVERHEAD = 0.068


@dataclass
class TransportBlock:
    """One MAC transport block: a slice of a user's downlink queue."""

    seq: int                 #: Per-user in-order delivery sequence number.
    rnti: int                #: Destination user.
    cell_id: int             #: Carrier that transmitted it.
    subframe: int            #: Subframe of the *original* transmission.
    bits: int                #: Transport block size.
    n_prbs: int              #: PRBs the allocation consumed.
    mcs: int
    spatial_streams: int
    #: Packets whose final bit rides in this TB (deliverable on release).
    completes: list[Packet] = field(default_factory=list)
    #: Packets with any bit in this TB (corrupted if the TB is abandoned).
    touches: list[Packet] = field(default_factory=list)


class DownlinkQueue:
    """Droptail per-user buffer at the base station, with segmentation.

    Tracks ``(packet, remaining_bits)`` pairs so :meth:`pull` can cut a
    transport block at any bit boundary the scheduler grants.
    """

    def __init__(self, capacity_packets: int = 3000) -> None:
        if capacity_packets < 1:
            raise ValueError("queue capacity must be positive")
        self.capacity_packets = capacity_packets
        self._entries: deque[list] = deque()  # [packet, remaining_bits]
        self.backlog_bits = 0
        self.dropped = 0
        self.enqueued = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, packet: Packet) -> bool:
        """Enqueue a packet; returns ``False`` (and counts) on droptail."""
        if len(self._entries) >= self.capacity_packets:
            self.dropped += 1
            return False
        self._entries.append([packet, packet.size_bits])
        self.backlog_bits += packet.size_bits
        self.enqueued += 1
        return True

    def pull(self, max_bits: int,
             tb: TransportBlock) -> int:
        """Move up to ``max_bits`` from the queue into ``tb``.

        Fills the transport block's ``completes``/``touches`` lists and
        returns the number of bits actually taken (0 if the queue is
        empty).
        """
        if max_bits < 0:
            raise ValueError("max_bits must be non-negative")
        taken = 0
        entries = self._entries
        touch = tb.touches.append
        complete = tb.completes.append
        while taken < max_bits and entries:
            entry = entries[0]
            remaining = entry[1]
            room = max_bits - taken
            chunk = remaining if remaining < room else room
            taken += chunk
            entry[1] = remaining - chunk
            touch(entry[0])
            if remaining == chunk:
                complete(entry[0])
                entries.popleft()
        self.backlog_bits -= taken
        return taken
