"""Carrier-aggregation activation policy (§3, Figure 2).

The cellular network activates a secondary cell for a user "as long as
such a user is consuming a large fraction of the bandwidth of the
serving cell(s)" (paper footnote 1 — queue build-up is *not* a
prerequisite), and deactivates aggregated cells "if and when the user
does not utilize the extra capacity".

This manager watches, per user, a sliding window of (a) the fraction of
the active cells' PRBs the user consumed and (b) whether the user still
had backlog after scheduling, and flips cells with a cooldown so the
activation/deactivation timeline looks like Figure 2: activation about
a hundred milliseconds into an overload, deactivation a few hundred
milliseconds after the load drops.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..phy.carrier import AggregationState


@dataclass
class CaPolicy:
    """Tunable thresholds for carrier activation/deactivation."""

    #: Sliding window length, subframes.  Calibrated so activation lands
    #: ~130 ms into an overload, like the paper's Figure 2 timeline.
    window: int = 128
    #: Activate the next cell when the user's mean consumed fraction of
    #: its active cells exceeds this and it still has backlog.
    activation_fraction: float = 0.70
    #: Deactivate the last cell when the user's traffic would fit into
    #: the remaining cells at below this utilization.
    deactivation_fraction: float = 0.55
    #: Deactivation needs this many consecutive under-utilized subframes.
    deactivation_hold: int = 256
    #: Minimum subframes between any two switches for one user.
    cooldown: int = 100

    def __post_init__(self) -> None:
        if self.window < 1 or self.deactivation_hold < 1:
            raise ValueError("windows must be positive")
        if not 0 < self.activation_fraction <= 1:
            raise ValueError("activation fraction must be in (0, 1]")
        if not 0 < self.deactivation_fraction <= 1:
            raise ValueError("deactivation fraction must be in (0, 1]")


@dataclass
class _UserCaState:
    history: deque = field(default_factory=deque)  # (used, total, backlogged)
    #: Rolling sums over ``history`` — maintained incrementally so the
    #: per-subframe observe() stays O(1) instead of re-summing the
    #: whole window.  Integer arithmetic keeps them exactly equal to
    #: ``sum(h[i] for h in history)``.
    used_sum: int = 0
    total_sum: int = 0
    backlog_frames: int = 0
    under_utilized_run: int = 0
    last_switch_subframe: int = -10**9
    activations: int = 0
    deactivations: int = 0


class CarrierAggregationManager:
    """Per-user secondary-cell activation state machine."""

    #: Checkpointing: the policy is config, kept from the rebuild.
    SNAPSHOT_SKIP = ("policy",)

    def __init__(self, policy: CaPolicy | None = None) -> None:
        self.policy = policy or CaPolicy()
        self._users: dict[int, _UserCaState] = {}
        #: ``(subframe, rnti, "activate"|"deactivate", cell_id)`` log.
        self.events: list[tuple[int, int, str, int]] = []

    def state_for(self, rnti: int) -> _UserCaState:
        return self._users.setdefault(rnti, _UserCaState())

    def activations_for(self, rnti: int) -> int:
        """How many times a secondary cell was activated for this user."""
        return self.state_for(rnti).activations

    def observe(self, subframe: int, rnti: int, agg: AggregationState,
                used_prbs: int, active_total_prbs: int,
                backlogged: bool) -> str | None:
        """Feed one subframe of observations for one user.

        Returns ``"activate"`` / ``"deactivate"`` when the aggregation
        state was changed this subframe (the caller's ``agg`` is mutated
        in place), else ``None``.
        """
        policy = self.policy
        state = self.state_for(rnti)
        state.history.append((used_prbs, active_total_prbs, backlogged))
        state.used_sum += used_prbs
        state.total_sum += active_total_prbs
        if backlogged:
            state.backlog_frames += 1
        if len(state.history) > policy.window:
            old_used, old_total, old_backlogged = state.history.popleft()
            state.used_sum -= old_used
            state.total_sum -= old_total
            if old_backlogged:
                state.backlog_frames -= 1

        if subframe - state.last_switch_subframe < policy.cooldown:
            return None
        if len(state.history) < policy.window:
            return None

        used = state.used_sum
        total = state.total_sum
        backlog_frames = state.backlog_frames
        fraction = used / total if total else 0.0

        if (agg.can_activate and fraction >= policy.activation_fraction
                and backlog_frames > policy.window // 4):
            cell = agg.activate_next()
            state.last_switch_subframe = subframe
            state.under_utilized_run = 0
            state.activations += 1
            self.events.append((subframe, rnti, "activate", cell))
            return "activate"

        if agg.can_deactivate:
            # Would the user's current usage fit comfortably in one
            # fewer cell?  Compare mean used PRBs against the capacity
            # of the remaining cells.
            per_frame_used = used / len(state.history)
            remaining_prbs = (active_total_prbs
                              * (agg.active_count - 1) / agg.active_count)
            fits = (per_frame_used
                    <= policy.deactivation_fraction * remaining_prbs)
            state.under_utilized_run = (
                state.under_utilized_run + 1 if fits else 0)
            if state.under_utilized_run >= policy.deactivation_hold:
                cell = agg.deactivate_last()
                state.last_switch_subframe = subframe
                state.under_utilized_run = 0
                state.deactivations += 1
                self.events.append((subframe, rnti, "deactivate", cell))
                return "deactivate"
        return None
