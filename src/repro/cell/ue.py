"""User-equipment (mobile device) receive pipeline.

The UE end of the wireless link: transport blocks arrive from the base
station, pass through the HARQ reordering buffer (Figure 3 of the
paper) and, once released in order, their completed transport-layer
packets are handed to whatever receiver logic is attached (the PBE-CC
mobile client, a plain ACKing receiver, ...).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net.packet import Packet
from ..net.sim import Simulator
from ..phy.harq import ReorderingBuffer
from .queues import TransportBlock

#: Metadata key marking packets that lost a fragment in an abandoned TB.
CORRUPT_KEY = "harq_corrupt"


class UserEquipment:
    """Receiver-side state for one mobile user."""

    #: Checkpointing: wiring restored from the rebuilt experiment.
    SNAPSHOT_SKIP = ("sim", "on_packet", "on_packet_block")

    def __init__(self, sim: Simulator, rnti: int,
                 on_packet: Optional[Callable[[Packet], None]] = None)\
            -> None:
        self.sim = sim
        self.rnti = rnti
        #: Callback invoked for every in-order, uncorrupted packet.
        self.on_packet = on_packet
        #: Optional burst callback: one call per released transport
        #: block with all its delivered packets (the batched engine's
        #: columnar ACK-generation entry point).  Takes precedence over
        #: ``on_packet`` when set.
        self.on_packet_block: Optional[Callable[[list[Packet]], None]] \
            = None
        self._reorder: ReorderingBuffer[TransportBlock] = ReorderingBuffer()
        self.delivered_packets = 0
        self.lost_packets = 0
        self.delivered_tbs = 0
        self.abandoned_tbs = 0

    # ------------------------------------------------------------------
    @property
    def reorder_depth(self) -> int:
        """Transport blocks currently parked in the reordering buffer."""
        return self._reorder.held

    # ------------------------------------------------------------------
    def receive_tb(self, tb: TransportBlock) -> None:
        """Accept a correctly decoded transport block."""
        self.delivered_tbs += 1
        for released in self._reorder.insert(tb.seq, tb):
            self._release(released)

    def abandon_tb(self, tb: TransportBlock) -> None:
        """HARQ gave up on ``tb``; unblock the reordering buffer."""
        self.abandoned_tbs += 1
        for packet in tb.touches:
            packet.meta[CORRUPT_KEY] = True
        self.lost_packets += len(tb.completes)
        for released in self._reorder.abandon(tb.seq):
            self._release(released)

    # ------------------------------------------------------------------
    def _release(self, tb: TransportBlock) -> None:
        now = self.sim.now
        block = self.on_packet_block
        if block is not None:
            delivered: list[Packet] = []
            for packet in tb.completes:
                if packet.meta.get(CORRUPT_KEY):
                    self.lost_packets += 1
                    continue
                packet.recv_time_us = now
                delivered.append(packet)
            self.delivered_packets += len(delivered)
            if delivered:
                block(delivered)
            return
        for packet in tb.completes:
            if packet.meta.get(CORRUPT_KEY):
                self.lost_packets += 1
                continue
            packet.recv_time_us = now
            self.delivered_packets += 1
            if self.on_packet is not None:
                self.on_packet(packet)
