"""Control-plane (parameter-update) user traffic (§4.2.1, Figure 7).

A large share of the users a control-channel monitor detects are not
exchanging data at all — they receive parameter updates (timer values,
aggregation lists, pricing/security parameters).  The paper measures
that 68.2% of detected users occupy exactly four PRBs and are active
for exactly one subframe, and that filtering on ``Ta > 1, Pa > 4``
drops the average detected-user count in a 40 ms window from 15.8 to
1.3.  This module generates that background population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: First RNTI used for synthetic control-plane users (kept far away from
#: data users so experiments can tell the populations apart).
CONTROL_RNTI_BASE = 50_000

#: (probability, prbs, subframes) rows calibrated to Figure 7(b)'s
#: marginals: ~68% of detected users are active for exactly one
#: subframe and ~48% occupy exactly four PRBs, with a tail of longer /
#: wider parameter-update exchanges.
_PROFILE = (
    (0.44, 4, 1),     # the dominant parameter-update burst
    (0.10, 2, 1),
    (0.09, 3, 1),
    (0.06, 6, 1),
    (0.03, 8, 1),
    (0.08, 3, 2),
    (0.07, 2, 2),
    (0.06, 4, 3),
    (0.04, 2, 4),
    (0.03, 3, 5),
)
_PROBS = np.array([row[0] for row in _PROFILE])
_PROBS = _PROBS / _PROBS.sum()
#: Normalized CDF over the profile rows, replicating the arithmetic
#: inside ``Generator.choice(..., p=_PROBS)`` (cumsum then divide by the
#: total) so the searchsorted fast path below picks the same row from
#: the same uniform draw.
_CDF = _PROBS.cumsum()
_CDF /= _CDF[-1]


@dataclass
class ControlBurst:
    """One parameter-update user's short control-channel appearance."""

    rnti: int
    prbs: int
    remaining_subframes: int


class ControlTrafficGenerator:
    """Poisson arrivals of short parameter-update bursts.

    ``arrivals_per_subframe`` calibrates the cell's busyness: ~0.4 gives
    the paper's busy-tower average of ≈15.8 detected users per 40 ms
    window, while idle night-time cells sit near 0.02.
    """

    def __init__(self, arrivals_per_subframe: float = 0.4,
                 seed: int = 0) -> None:
        if arrivals_per_subframe < 0:
            raise ValueError("arrival rate must be non-negative")
        self.arrivals_per_subframe = arrivals_per_subframe
        self._rng = np.random.default_rng(seed)
        self._next_rnti = CONTROL_RNTI_BASE
        self._active: list[ControlBurst] = []

    def tick(self) -> list[ControlBurst]:
        """Advance one subframe; return the bursts active this subframe."""
        n_new = self._rng.poisson(self.arrivals_per_subframe)
        if n_new:
            for _ in range(n_new):
                # Same row and same stream consumption (one uniform
                # double) as ``rng.choice(len(_PROFILE), p=_PROBS)``,
                # without its ~16 µs of per-call setup: Generator.choice
                # draws one uniform and searchsorts it into the CDF.
                row = _PROFILE[_CDF.searchsorted(self._rng.random(),
                                                 side="right")]
                self._active.append(
                    ControlBurst(self._next_rnti, prbs=row[1],
                                 remaining_subframes=row[2]))
                self._next_rnti += 1
        elif not self._active:
            # Idle-cell fast path: no arrivals, nothing in flight.  The
            # Poisson draw above still happens unconditionally, keeping
            # the RNG stream (and so the burst timeline) unchanged.
            return self._active
        current = list(self._active)
        for burst in current:
            burst.remaining_subframes -= 1
        self._active = [b for b in self._active if b.remaining_subframes > 0]
        return current

    def advance_idle(self, n_subframes: int) -> int:
        """Advance through up to ``n_subframes`` burst-free subframes.

        Returns how many consecutive subframes, starting now, have no
        arrivals and no bursts in flight — after advancing the RNG
        stream past exactly that many ticks.  The caller may fast-
        forward the cell by the returned count and must run the next
        subframe through :meth:`tick` as usual.

        Speculation trick: draw a whole block of Poisson variates (the
        block consumes the generator stream identically to scalar
        draws); if one is non-zero, roll the generator state back and
        re-consume only the zero-run prefix, leaving the stream exactly
        where scalar ticks would have left it.
        """
        if n_subframes <= 0 or self._active:
            return 0
        rng = self._rng
        checkpoint = rng.bit_generator.state
        draws = rng.poisson(self.arrivals_per_subframe, n_subframes)
        nonzero = np.nonzero(draws)[0]
        if len(nonzero) == 0:
            return n_subframes
        run = int(nonzero[0])
        rng.bit_generator.state = checkpoint
        if run:
            rng.poisson(self.arrivals_per_subframe, run)
        return run
