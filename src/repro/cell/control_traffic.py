"""Control-plane (parameter-update) user traffic (§4.2.1, Figure 7).

A large share of the users a control-channel monitor detects are not
exchanging data at all — they receive parameter updates (timer values,
aggregation lists, pricing/security parameters).  The paper measures
that 68.2% of detected users occupy exactly four PRBs and are active
for exactly one subframe, and that filtering on ``Ta > 1, Pa > 4``
drops the average detected-user count in a 40 ms window from 15.8 to
1.3.  This module generates that background population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: First RNTI used for synthetic control-plane users (kept far away from
#: data users so experiments can tell the populations apart).
CONTROL_RNTI_BASE = 50_000

#: (probability, prbs, subframes) rows calibrated to Figure 7(b)'s
#: marginals: ~68% of detected users are active for exactly one
#: subframe and ~48% occupy exactly four PRBs, with a tail of longer /
#: wider parameter-update exchanges.
_PROFILE = (
    (0.44, 4, 1),     # the dominant parameter-update burst
    (0.10, 2, 1),
    (0.09, 3, 1),
    (0.06, 6, 1),
    (0.03, 8, 1),
    (0.08, 3, 2),
    (0.07, 2, 2),
    (0.06, 4, 3),
    (0.04, 2, 4),
    (0.03, 3, 5),
)
_PROBS = np.array([row[0] for row in _PROFILE])
_PROBS = _PROBS / _PROBS.sum()


@dataclass
class ControlBurst:
    """One parameter-update user's short control-channel appearance."""

    rnti: int
    prbs: int
    remaining_subframes: int


class ControlTrafficGenerator:
    """Poisson arrivals of short parameter-update bursts.

    ``arrivals_per_subframe`` calibrates the cell's busyness: ~0.4 gives
    the paper's busy-tower average of ≈15.8 detected users per 40 ms
    window, while idle night-time cells sit near 0.02.
    """

    def __init__(self, arrivals_per_subframe: float = 0.4,
                 seed: int = 0) -> None:
        if arrivals_per_subframe < 0:
            raise ValueError("arrival rate must be non-negative")
        self.arrivals_per_subframe = arrivals_per_subframe
        self._rng = np.random.default_rng(seed)
        self._next_rnti = CONTROL_RNTI_BASE
        self._active: list[ControlBurst] = []

    def tick(self) -> list[ControlBurst]:
        """Advance one subframe; return the bursts active this subframe."""
        n_new = self._rng.poisson(self.arrivals_per_subframe)
        if n_new:
            for _ in range(n_new):
                row = _PROFILE[self._rng.choice(len(_PROFILE), p=_PROBS)]
                self._active.append(
                    ControlBurst(self._next_rnti, prbs=row[1],
                                 remaining_subframes=row[2]))
                self._next_rnti += 1
        elif not self._active:
            # Idle-cell fast path: no arrivals, nothing in flight.  The
            # Poisson draw above still happens unconditionally, keeping
            # the RNG stream (and so the burst timeline) unchanged.
            return self._active
        current = list(self._active)
        for burst in current:
            burst.remaining_subframes -= 1
        self._active = [b for b in self._active if b.remaining_subframes > 0]
        return current
