"""Wired network links with droptail queues.

Two flavours:

* :class:`Link` — a store-and-forward link with finite rate, propagation
  delay and a droptail queue.  Used for the Internet segment of the
  end-to-end path (and as the Internet *bottleneck* when its rate is set
  below the cellular capacity).
* :class:`DelayPipe` — an infinite-rate, pure-propagation-delay pipe.
  Used for ACK return paths and non-bottleneck segments.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .packet import AckBatch, Packet
from .sim import Simulator
from .units import transmission_time_us


class Receiver:
    """Anything that can accept a packet (duck-typed protocol)."""

    def receive(self, packet: Packet) -> None:  # pragma: no cover
        raise NotImplementedError


class DelayPipe(Receiver):
    """Infinite-bandwidth link: every packet arrives ``delay_us`` later."""

    #: Checkpointing: the simulator and downstream sink are wiring,
    #: restored from the rebuilt experiment (see repro.statedict).
    SNAPSHOT_SKIP = ("sim", "sink")

    def __init__(self, sim: Simulator, sink: Receiver, delay_us: int,
                 name: str = "pipe") -> None:
        if delay_us < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.sink = sink
        self.delay_us = delay_us
        self.name = name
        self.forwarded = 0

    def receive(self, packet: Packet) -> None:
        packet.hops += 1
        self.forwarded += 1
        self.sim.schedule(self.delay_us, self.sink.receive, packet)


class BatchingPipe(Receiver):
    """Pure-delay pipe that releases packets in periodic batches.

    Models the LTE *uplink* path for ACKs: a mobile cannot transmit
    whenever it likes — uplink transmissions ride on the scheduling-
    request/grant cycle, so ACKs leave the phone in bursts every few
    milliseconds.  Client-side one-way-delay measurements never see
    this, but sender-side RTT/delay estimators do (it is a major source
    of the "ACK delay, ACK compression" problems §2 attributes to
    delay-based schemes on cellular paths).

    With ``batched=True`` each flush delivers the whole burst — single
    ACKs included — as **one** scheduled event carrying an
    :class:`AckBatch`, handed to the sink's ``receive_batch`` method
    when it has one (per-packet ``receive`` loop otherwise).  Scalar
    same-instant deliveries form a contiguous run of event sequence
    numbers with nothing interleaved between them, so collapsing the
    run into a single event only relabels subsequent sequence numbers
    uniformly — relative event order, and therefore behaviour, is
    unchanged (pinned by the ``repro.harness.fingerprint`` byte-identity
    suite).

    The batch is *staged columnar*: arriving ACKs append straight into
    the flush cycle's :class:`AckBatch` columns (``_stage``), so the
    flush itself is O(1) instead of a second pass over the burst.
    ``_held`` stays the canonical packet list (it doubles as the staged
    batch's ``packets`` column); after a checkpoint restore the stage is
    gone (it is derived state) and the flush falls back to
    :meth:`AckBatch.from_packets`.
    """

    SNAPSHOT_SKIP = ("sim", "sink", "_stage")

    def __init__(self, sim: Simulator, sink: Receiver, delay_us: int,
                 batch_interval_us: int = 5_000,
                 name: str = "uplink", batched: bool = False) -> None:
        if delay_us < 0:
            raise ValueError("delay must be non-negative")
        if batch_interval_us < 1:
            raise ValueError("batch interval must be positive")
        self.sim = sim
        self.sink = sink
        self.delay_us = delay_us
        self.batch_interval_us = batch_interval_us
        self.name = name
        self.batched = batched
        self._held: list[Packet] = []
        #: Columnar view of ``_held`` for the current flush cycle
        #: (``None`` while idle, in scalar mode, or after a restore).
        self._stage: Optional[AckBatch] = None
        self.forwarded = 0
        self.batches = 0

    def _open_cycle(self, flow_id: int) -> None:
        # Align the flush to the next grant boundary.  A packet
        # landing exactly on a boundary rides that grant (wait 0),
        # not the next one a full cycle later.
        wait = -self.sim.now % self.batch_interval_us
        self.sim.schedule(wait, self._flush)
        if self.batched:
            stage = AckBatch.stage(flow_id)
            stage.packets = self._held  # one list, two views
            self._stage = stage

    def receive(self, packet: Packet) -> None:
        packet.hops += 1
        if not self._held:
            self._open_cycle(packet.flow_id)
        stage = self._stage
        if stage is not None:
            stage.append(packet)  # appends to _held via the alias
        else:
            self._held.append(packet)

    def receive_block(self, packets: list[Packet]) -> None:
        """Accept one burst of ACKs (same effects as per-packet calls).

        The columnar ACK-generation path hands a whole released
        transport block's ACKs over in one call; the column appends are
        hoisted into locals here instead of dispatching
        :meth:`AckBatch.append` per packet.
        """
        if not packets:
            return
        held = self._held
        if not held:
            self._open_cycle(packets[0].flow_id)
        stage = self._stage
        if stage is None:
            for packet in packets:
                packet.hops += 1
                held.append(packet)
            return
        flow_id = stage.flow_id
        ap_pkt = held.append
        ap_seq = stage.acked_seq.append
        ap_sent = stage.sent_time_us.append
        ap_size = stage.size_bits.append
        ap_das = stage.delivered_at_send.append
        ap_dtas = stage.delivered_time_at_send.append
        ap_app = stage.app_limited.append
        for packet in packets:
            packet.hops += 1
            if not packet.is_ack or packet.flow_id != flow_id:
                stage.mixed = True
            ap_pkt(packet)
            ap_seq(packet.acked_seq)
            ap_sent(packet.sent_time_us)
            ap_size(packet.size_bits)
            ap_das(packet.delivered_at_send)
            ap_dtas(packet.delivered_time_at_send)
            ap_app(packet.app_limited)

    def _flush(self) -> None:
        batch, self._held = self._held, []
        stage, self._stage = self._stage, None
        self.batches += 1
        n = len(batch)
        self.forwarded += n
        if self.batched and n >= 1:
            if (stage is None or stage.packets is not batch
                    or len(stage.acked_seq) != n):
                # Stage lost (checkpoint restore mid-cycle): rebuild.
                stage = AckBatch.from_packets(batch)
            perf = self.sim.perf
            if perf is not None:
                perf.ack_batches += 1
                perf.acks_batched += n
            self.sim.schedule(self.delay_us, self._deliver, stage)
        else:
            for packet in batch:
                self.sim.schedule(self.delay_us, self.sink.receive, packet)

    def _deliver(self, batch: AckBatch) -> None:
        receive_batch = getattr(self.sink, "receive_batch", None)
        if receive_batch is not None:
            receive_batch(batch)
        else:
            receive = self.sink.receive
            for packet in batch.packets:
                receive(packet)


class Link(Receiver):
    """Finite-rate link with a droptail FIFO queue.

    Packets are serialized one at a time at ``rate_bps``; each then
    propagates for ``delay_us`` before reaching ``sink``.  When the queue
    holds ``queue_packets`` packets, further arrivals are dropped (and
    counted), which is what loss-based congestion control reacts to.
    """

    SNAPSHOT_SKIP = ("sim", "sink")

    def __init__(self, sim: Simulator, sink: Receiver, rate_bps: float,
                 delay_us: int, queue_packets: int = 1000,
                 name: str = "link") -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if queue_packets < 1:
            raise ValueError("queue must hold at least one packet")
        self.sim = sim
        self.sink = sink
        self.rate_bps = rate_bps
        self.delay_us = delay_us
        self.queue_packets = queue_packets
        self.name = name

        self._queue: deque[Packet] = deque()
        self._transmitting = False
        #: Absolute time the in-progress serialization completes (only
        #: meaningful while ``_transmitting``).
        self._tx_end_us = 0

        self.forwarded = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Packets currently queued (excluding the one being serialized)."""
        return len(self._queue)

    def queue_delay_estimate_us(self, size_bits: int) -> int:
        """Rough serialization delay a new arrival of ``size_bits`` sees.

        Counts the queued backlog, the arrival itself, *and* the
        remainder of the packet currently on the wire — the queue
        alone under-reports by up to one full serialization time at
        exactly the moment the link is busiest.
        """
        backlog = sum(p.size_bits for p in self._queue) + size_bits
        estimate = transmission_time_us(backlog, self.rate_bps)
        if self._transmitting:
            estimate += max(0, self._tx_end_us - self.sim.now)
        return estimate

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        if len(self._queue) >= self.queue_packets:
            self.dropped += 1
            return
        packet.hops += 1
        self._queue.append(packet)
        if not self._transmitting:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._transmitting = False
            return
        self._transmitting = True
        packet = self._queue.popleft()
        tx_us = transmission_time_us(packet.size_bits, self.rate_bps)
        self._tx_end_us = self.sim.now + tx_us
        self.sim.schedule(tx_us, self._finish, packet)

    def _finish(self, packet: Packet) -> None:
        self.forwarded += 1
        self.sim.schedule(self.delay_us, self.sink.receive, packet)
        self._start_next()


class FlowDemux(Receiver):
    """Route packets to per-flow sinks by ``flow_id``.

    Used behind a shared bottleneck :class:`Link`: several senders pour
    into one queue, and the demux fans the survivors out to each flow's
    cellular ingress (the §4.2.3 shared-Internet-bottleneck topology).
    """

    #: Routes map to per-flow ingress adapters (rebuilt wiring).
    SNAPSHOT_SKIP = ("_routes",)

    def __init__(self, routes: Optional[dict] = None) -> None:
        self._routes: dict[int, Receiver] = dict(routes or {})
        self.unrouted = 0

    def add_route(self, flow_id: int, sink: Receiver) -> None:
        self._routes[flow_id] = sink

    def receive(self, packet: Packet) -> None:
        sink = self._routes.get(packet.flow_id)
        if sink is None:
            self.unrouted += 1
            return
        sink.receive(packet)


class PacketSink(Receiver):
    """Terminal node that records everything it receives (tests/debug)."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim
        self.packets: list[Packet] = []

    def receive(self, packet: Packet) -> None:
        if self.sim is not None:
            packet.recv_time_us = self.sim.now
        self.packets.append(packet)
