"""Packet objects exchanged across the simulated network.

A single :class:`Packet` class covers both data packets and ACKs; ACKs
are small packets with ``is_ack`` set and an optional ``feedback``
payload (used by PBE-CC's mobile client to report capacity estimates
back to the sender, see §5 of the paper).
"""

from __future__ import annotations

from typing import Any, Optional

from .units import MSS_BITS

#: Size of an acknowledgement packet, in bits (40-byte TCP/IP-like header
#: plus PBE-CC's 32-bit capacity field and state bit).
ACK_BITS = 45 * 8


class Packet:
    """A transport-layer segment travelling through the simulation."""

    __slots__ = (
        "flow_id", "seq", "size_bits", "is_ack", "sent_time_us",
        "recv_time_us", "acked_seq", "feedback", "delivered_at_send",
        "delivered_time_at_send", "app_limited", "hops", "meta",
    )

    def __init__(self, flow_id: int, seq: int, size_bits: int = MSS_BITS,
                 is_ack: bool = False, sent_time_us: int = 0,
                 acked_seq: int = -1,
                 feedback: Optional[Any] = None) -> None:
        self.flow_id = flow_id
        self.seq = seq
        self.size_bits = size_bits
        self.is_ack = is_ack
        #: Server-side send timestamp of the data packet (echoed on ACKs
        #: so the sender can compute RTT without keeping per-packet state).
        self.sent_time_us = sent_time_us
        #: Receiver-side arrival timestamp (stamped on delivery).
        self.recv_time_us = -1
        self.acked_seq = acked_seq
        self.feedback = feedback
        #: Cumulative bits delivered at the time this packet was sent
        #: (BBR-style delivery-rate sampling; echoed back on the ACK).
        self.delivered_at_send = 0
        self.delivered_time_at_send = 0
        self.app_limited = False
        #: Number of forwarding hops traversed (debugging aid).
        self.hops = 0
        #: Free-form per-packet metadata (e.g. HARQ bookkeeping).
        self.meta: dict = {}

    def make_ack(self, now_us: int, feedback: Optional[Any] = None,
                 size_bits: int = ACK_BITS) -> "Packet":
        """Build the acknowledgement for this data packet.

        BBR-style delivery bookkeeping fields are copied across so the
        sender can form delivery-rate samples from the ACK alone.
        """
        ack = Packet(self.flow_id, self.seq, size_bits=size_bits,
                     is_ack=True, sent_time_us=self.sent_time_us,
                     acked_seq=self.seq, feedback=feedback)
        ack.recv_time_us = now_us
        ack.delivered_at_send = self.delivered_at_send
        ack.delivered_time_at_send = self.delivered_time_at_send
        ack.app_limited = self.app_limited
        return ack

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else "DATA"
        return (f"<{kind} flow={self.flow_id} seq={self.seq} "
                f"bits={self.size_bits}>")
