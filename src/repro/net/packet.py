"""Packet objects exchanged across the simulated network.

A single :class:`Packet` class covers both data packets and ACKs; ACKs
are small packets with ``is_ack`` set and an optional ``feedback``
payload (used by PBE-CC's mobile client to report capacity estimates
back to the sender, see §5 of the paper).
"""

from __future__ import annotations

from typing import Any, Optional

from .units import MSS_BITS

#: Size of an acknowledgement packet, in bits (40-byte TCP/IP-like header
#: plus PBE-CC's 32-bit capacity field and state bit).
ACK_BITS = 45 * 8


class Packet:
    """A transport-layer segment travelling through the simulation."""

    __slots__ = (
        "flow_id", "seq", "size_bits", "is_ack", "sent_time_us",
        "recv_time_us", "acked_seq", "feedback", "delivered_at_send",
        "delivered_time_at_send", "app_limited", "hops", "meta",
    )

    def __init__(self, flow_id: int, seq: int, size_bits: int = MSS_BITS,
                 is_ack: bool = False, sent_time_us: int = 0,
                 acked_seq: int = -1,
                 feedback: Optional[Any] = None) -> None:
        self.flow_id = flow_id
        self.seq = seq
        self.size_bits = size_bits
        self.is_ack = is_ack
        #: Server-side send timestamp of the data packet (echoed on ACKs
        #: so the sender can compute RTT without keeping per-packet state).
        self.sent_time_us = sent_time_us
        #: Receiver-side arrival timestamp (stamped on delivery).
        self.recv_time_us = -1
        self.acked_seq = acked_seq
        self.feedback = feedback
        #: Cumulative bits delivered at the time this packet was sent
        #: (BBR-style delivery-rate sampling; echoed back on the ACK).
        self.delivered_at_send = 0
        self.delivered_time_at_send = 0
        self.app_limited = False
        #: Number of forwarding hops traversed (debugging aid).
        self.hops = 0
        #: Free-form per-packet metadata (e.g. HARQ bookkeeping).
        self.meta: dict = {}

    def make_ack(self, now_us: int, feedback: Optional[Any] = None,
                 size_bits: int = ACK_BITS) -> "Packet":
        """Build the acknowledgement for this data packet.

        BBR-style delivery bookkeeping fields are copied across so the
        sender can form delivery-rate samples from the ACK alone.
        """
        ack = Packet(self.flow_id, self.seq, size_bits=size_bits,
                     is_ack=True, sent_time_us=self.sent_time_us,
                     acked_seq=self.seq, feedback=feedback)
        ack.recv_time_us = now_us
        ack.delivered_at_send = self.delivered_at_send
        ack.delivered_time_at_send = self.delivered_time_at_send
        ack.app_limited = self.app_limited
        return ack

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else "DATA"
        return (f"<{kind} flow={self.flow_id} seq={self.seq} "
                f"bits={self.size_bits}>")


class AckBatch:
    """Struct-of-arrays view of one uplink grant cycle's ACKs.

    The LTE uplink releases ACKs in bursts (see
    :class:`repro.net.link.BatchingPipe`); the batched transport engine
    delivers each burst as **one** scheduled event carrying this
    container instead of N per-packet ``sink.receive`` events.  The
    sender-side fields every ACK-clocking step needs are unpacked into
    parallel columns once, at flush time, so
    :meth:`repro.baselines.base.Sender.receive_batch` can run its
    per-ACK loop over plain list indexing instead of repeated attribute
    loads.

    ``packets`` keeps the original objects (congestion controllers see
    the real ACK in their :class:`AckContext`, and checkpoint restore
    re-aliases them); the columns are a read-only projection.  ``mixed``
    flags a batch holding anything other than same-flow ACKs — the
    transport core routes such batches through the scalar per-packet
    path rather than guessing.
    """

    __slots__ = ("flow_id", "packets", "acked_seq", "sent_time_us",
                 "size_bits", "delivered_at_send",
                 "delivered_time_at_send", "app_limited", "mixed")

    def __init__(self, flow_id: int, packets: list["Packet"],
                 acked_seq: list, sent_time_us: list, size_bits: list,
                 delivered_at_send: list, delivered_time_at_send: list,
                 app_limited: list, mixed: bool) -> None:
        self.flow_id = flow_id
        self.packets = packets
        self.acked_seq = acked_seq
        self.sent_time_us = sent_time_us
        self.size_bits = size_bits
        self.delivered_at_send = delivered_at_send
        self.delivered_time_at_send = delivered_time_at_send
        self.app_limited = app_limited
        self.mixed = mixed

    @classmethod
    def stage(cls, flow_id: int) -> "AckBatch":
        """Empty batch for incremental staging.

        The batched uplink (:class:`repro.net.link.BatchingPipe`) builds
        its flush batch one :meth:`append` at a time as ACKs arrive,
        instead of buffering packets and re-scanning them at flush time
        — each packet's fields are read exactly once.
        """
        return cls(flow_id, [], [], [], [], [], [], [], False)

    def append(self, packet: "Packet") -> None:
        """Stage one packet (columns + object, mixed tracked inline)."""
        if not packet.is_ack or packet.flow_id != self.flow_id:
            self.mixed = True
        self.packets.append(packet)
        self.acked_seq.append(packet.acked_seq)
        self.sent_time_us.append(packet.sent_time_us)
        self.size_bits.append(packet.size_bits)
        self.delivered_at_send.append(packet.delivered_at_send)
        self.delivered_time_at_send.append(packet.delivered_time_at_send)
        self.app_limited.append(packet.app_limited)

    @classmethod
    def from_packets(cls, packets: list["Packet"]) -> "AckBatch":
        """Columnarize one flush's packets (single pass)."""
        flow_id = packets[0].flow_id
        acked_seq, sent_time_us, size_bits = [], [], []
        delivered_at_send, delivered_time_at_send = [], []
        app_limited = []
        mixed = False
        for p in packets:
            if not p.is_ack or p.flow_id != flow_id:
                mixed = True
            acked_seq.append(p.acked_seq)
            sent_time_us.append(p.sent_time_us)
            size_bits.append(p.size_bits)
            delivered_at_send.append(p.delivered_at_send)
            delivered_time_at_send.append(p.delivered_time_at_send)
            app_limited.append(p.app_limited)
        return cls(flow_id, packets, acked_seq, sent_time_us, size_bits,
                   delivered_at_send, delivered_time_at_send,
                   app_limited, mixed)

    def __len__(self) -> int:
        return len(self.packets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AckBatch flow={self.flow_id} n={len(self.packets)}>"
