"""Unit conventions and conversion helpers used across the simulator.

All simulation time is kept as **integer microseconds** so event ordering
is exact and reproducible (no floating-point accumulation drift).  All
data rates are **bits per second** and all data sizes are **bits**, unless
a name explicitly says otherwise.
"""

from __future__ import annotations

#: Microseconds per millisecond.
US_PER_MS = 1_000
#: Microseconds per second.
US_PER_S = 1_000_000
#: Duration of one LTE subframe (1 ms) in microseconds.
SUBFRAME_US = 1_000

#: Default maximum segment size used throughout, in bytes (Ethernet MTU
#: minus typical headers; the paper describes capacity feedback in terms
#: of 1500-byte packets).
MSS_BYTES = 1_500
#: Default maximum segment size in bits.
MSS_BITS = MSS_BYTES * 8


def seconds(us: int) -> float:
    """Convert integer microseconds to float seconds (for reporting)."""
    return us / US_PER_S


def us_from_seconds(s: float) -> int:
    """Convert float seconds to integer microseconds (for scheduling)."""
    return round(s * US_PER_S)


def ms(us: int) -> float:
    """Convert integer microseconds to float milliseconds (for reporting)."""
    return us / US_PER_MS


def us_from_ms(milliseconds: float) -> int:
    """Convert float milliseconds to integer microseconds."""
    return round(milliseconds * US_PER_MS)


def mbps(bits_per_second: float) -> float:
    """Convert bits/second to Mbit/second (for reporting)."""
    return bits_per_second / 1e6


def bps_from_mbps(megabits_per_second: float) -> float:
    """Convert Mbit/second to bits/second."""
    return megabits_per_second * 1e6


def transmission_time_us(size_bits: int, rate_bps: float) -> int:
    """Time to serialize ``size_bits`` onto a link of ``rate_bps``.

    Returns at least 1 microsecond so zero-duration transmissions cannot
    starve the event loop.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return max(1, round(size_bits * US_PER_S / rate_bps))
