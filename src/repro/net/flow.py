"""Per-flow delivery records.

:class:`FlowStats` is the raw measurement log every experiment consumes:
each delivered data packet appends an arrival timestamp, its size and its
one-way delay.  Windowed throughput and delay order statistics are
computed by :mod:`repro.harness.metrics` from these records, mirroring
the paper's convention of 100-millisecond measurement windows.
"""

from __future__ import annotations

from array import array

from .units import US_PER_MS, US_PER_S


class FlowStats:
    """Append-only log of packet deliveries for one flow.

    The three per-packet columns are flat ``array('q')`` buffers rather
    than lists of boxed ints: a busy flow appends hundreds of thousands
    of rows per simulated minute, and the packed columns cut that
    storage ~4× while keeping every consumer — ``tuple()`` for
    fingerprints, ``numpy.asarray`` for metrics, ``list()`` for
    serialization, iteration/``zip`` everywhere else — working
    unchanged.
    """

    def __init__(self, flow_id: int) -> None:
        self.flow_id = flow_id
        #: Arrival timestamps, µs (packed int64 column).
        self.arrival_us = array("q")
        #: Packet sizes, bits (packed int64 column).
        self.size_bits = array("q")
        #: One-way delays, µs (packed int64 column).
        self.delay_us = array("q")
        self.first_arrival_us: int = -1
        self.last_arrival_us: int = -1
        self.total_bits: int = 0

    def record(self, arrival_us: int, size_bits: int, delay_us: int) -> None:
        """Log one delivered packet."""
        if self.first_arrival_us < 0:
            self.first_arrival_us = arrival_us
        self.last_arrival_us = arrival_us
        self.arrival_us.append(arrival_us)
        self.size_bits.append(size_bits)
        self.delay_us.append(delay_us)
        self.total_bits += size_bits

    # ------------------------------------------------------------------
    @property
    def packets(self) -> int:
        """Number of delivered packets."""
        return len(self.arrival_us)

    def average_throughput_bps(self) -> float:
        """Mean goodput across the flow's active span."""
        span = self.last_arrival_us - self.first_arrival_us
        if span <= 0:
            return 0.0
        return self.total_bits * US_PER_S / span

    def delays_ms(self) -> list[float]:
        """All one-way delays in milliseconds."""
        return [d / US_PER_MS for d in self.delay_us]
