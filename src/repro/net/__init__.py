"""Discrete-event network simulation substrate.

This package provides the wired half of the end-to-end path the paper's
flows traverse (server → Internet → cell tower → mobile): an integer-
microsecond event loop, packets, finite-rate droptail links, pure-delay
pipes and per-flow delivery logs.
"""

from .flow import FlowStats
from .link import (
    BatchingPipe,
    DelayPipe,
    FlowDemux,
    Link,
    PacketSink,
    Receiver,
)
from .packet import ACK_BITS, Packet
from .sim import Event, Simulator
from .units import (
    MSS_BITS,
    MSS_BYTES,
    SUBFRAME_US,
    US_PER_MS,
    US_PER_S,
    bps_from_mbps,
    mbps,
    ms,
    seconds,
    transmission_time_us,
    us_from_ms,
    us_from_seconds,
)

__all__ = [
    "ACK_BITS", "BatchingPipe", "DelayPipe", "Event", "FlowDemux",
    "FlowStats", "Link", "MSS_BITS",
    "MSS_BYTES", "Packet", "PacketSink", "Receiver", "SUBFRAME_US",
    "Simulator", "US_PER_MS", "US_PER_S", "bps_from_mbps", "mbps", "ms",
    "seconds", "transmission_time_us", "us_from_ms", "us_from_seconds",
]
