"""Discrete-event simulation core.

The simulator keeps a single priority queue of timestamped callbacks.
Time is an integer number of microseconds (see :mod:`repro.net.units`).
Events scheduled for the same instant fire in scheduling order (a
monotonically increasing sequence number breaks ties), which makes runs
fully deterministic for a given seed.

Implementation notes for the hot loop: heap entries are plain
``(time, seq, event)`` tuples so ordering is resolved by C-level tuple
comparison instead of a Python ``__lt__`` call, and cancelled events
are lazily deleted — they stay in the heap and are skipped when popped.
Lazy deletion alone lets retransmission/pacing-heavy runs accumulate
dead entries (every RTO re-arm cancels its predecessor), inflating
every push and pop, so the simulator tracks how many queued entries
are dead and compacts the heap once more than half of it is cancelled.
Compaction preserves execution order exactly: the (time, seq) key is a
strict total order, so rebuilding the heap cannot reorder live events.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .units import US_PER_S

#: Never bother compacting heaps smaller than this; the scan costs more
#: than the dead entries do.
_COMPACT_MIN_EVENTS = 64


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events can be cancelled; cancelled events stay in the heap but are
    skipped when popped (lazy deletion), which is O(1) instead of O(n).
    The owning simulator counts cancellations so it can compact the
    heap when dead entries start to dominate.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_owner")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: The simulator whose heap still holds this event (``None``
        #: once popped, so late cancels cannot skew the dead count).
        self._owner: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Mark this event so it will not fire."""
        if self.cancelled:
            return
        self.cancelled = True
        owner = self._owner
        if owner is not None:
            owner._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Deterministic discrete-event simulator with an integer-µs clock.

    ``perf_counters`` (see :class:`repro.perf.PerfCounters`) is an
    optional observability hook: when attached, the run loop maintains
    pop/cancel/compaction counters.  It never alters behaviour.
    """

    def __init__(self, perf_counters: Optional[Any] = None) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._seq: int = 0
        self._running = False
        #: Cancelled events still sitting in the heap.
        self._cancelled: int = 0
        self.perf = perf_counters

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_us: int,
                 callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_us`` from now."""
        if delay_us < 0:
            raise ValueError(f"cannot schedule into the past ({delay_us} us)")
        # Inlined schedule_at: this is the hottest allocation site in
        # the simulator (every pace/ACK/RTO passes through here), and
        # the extra Python call was measurable.
        time_us = self.now + delay_us
        seq = self._seq
        event = Event(time_us, seq, callback, args)
        event._owner = self
        heapq.heappush(self._heap, (time_us, seq, event))
        self._seq = seq + 1
        if self.perf is not None:
            self.perf.events_scheduled += 1
        return event

    def schedule_at(self, time_us: int,
                    callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time_us``."""
        if time_us < self.now:
            raise ValueError(
                f"cannot schedule at {time_us} us; now is {self.now} us")
        event = Event(time_us, self._seq, callback, args)
        event._owner = self
        heapq.heappush(self._heap, (time_us, self._seq, event))
        self._seq += 1
        if self.perf is not None:
            self.perf.events_scheduled += 1
        return event

    # ------------------------------------------------------------------
    # Lazy-deletion bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """One queued event was just cancelled; compact if dead-heavy."""
        self._cancelled += 1
        heap_len = len(self._heap)
        if (heap_len >= _COMPACT_MIN_EVENTS
                and self._cancelled * 2 > heap_len):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors.

        O(live) rather than O(n log n): heapify on the filtered list.
        Execution order is untouched — (time, seq) totally orders live
        events regardless of internal heap layout.  The list is mutated
        in place so the run loop's local alias stays valid even when a
        callback's cancel triggers compaction mid-run.
        """
        self._heap[:] = [entry for entry in self._heap
                         if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        if self.perf is not None:
            self.perf.heap_compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until_us: Optional[int] = None) -> None:
        """Run events until the heap drains or the clock passes ``until_us``.

        When ``until_us`` is given the clock is left exactly there, so
        consecutive ``run`` calls see a continuous timeline.
        """
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        perf = self.perf
        # One comparison per pop instead of a None check + comparison.
        limit = float("inf") if until_us is None else until_us
        while heap and self._running:
            entry = heap[0]
            if entry[0] > limit:
                break
            heappop(heap)
            event = entry[2]
            event._owner = None
            if event.cancelled:
                self._cancelled -= 1
                if perf is not None:
                    perf.events_cancelled_popped += 1
                continue
            self.now = entry[0]
            if perf is not None:
                perf.events_popped += 1
            event.callback(*event.args)
        if until_us is not None and self.now < until_us:
            self.now = until_us
        self._running = False

    def run_for(self, duration_us: int) -> None:
        """Run for ``duration_us`` from the current clock."""
        self.run(until_us=self.now + duration_us)

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._running = False

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self, encode_entry: Callable[[int, int, Event], Any]
                       ) -> dict:
        """Serializable clock + heap state.

        ``encode_entry(time, seq, event)`` turns one heap entry into
        plain data (the checkpoint layer encodes the callback as an
        owner key and the args through the state-dict codec).  The heap
        array is kept **verbatim** — cancelled entries included, in heap
        order — so a restored simulator replays the exact same pop
        sequence, compactions and all.
        """
        return {
            "now": self.now,
            "seq": self._seq,
            "cancelled": self._cancelled,
            "heap": [encode_entry(time, seq, event)
                     for time, seq, event in self._heap],
        }

    def restore_state(self, state: dict,
                      make_event: Callable[[Any], Event]) -> None:
        """Restore clock and heap from :meth:`snapshot_state` output.

        ``make_event(raw_entry)`` must return an :class:`Event` with its
        ``time``/``seq``/``cancelled`` fields set (callback and args may
        be resolved by the caller afterwards — the heap only orders on
        the ``(time, seq)`` tuple key).  The serialized order is reused
        verbatim; it was a valid heap when captured.
        """
        self.now = state["now"]
        self._seq = state["seq"]
        self._cancelled = state["cancelled"]
        heap = []
        for raw in state["heap"]:
            event = make_event(raw)
            event._owner = self
            heap.append((event.time, event.seq, event))
        self._heap[:] = heap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return len(self._heap) - self._cancelled

    @property
    def queued_entries(self) -> int:
        """Raw heap size, cancelled entries included (diagnostics)."""
        return len(self._heap)

    @property
    def now_seconds(self) -> float:
        """Current simulation time in float seconds (reporting only)."""
        return self.now / US_PER_S
