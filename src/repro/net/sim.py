"""Discrete-event simulation core.

The simulator keeps a single priority queue of timestamped callbacks.
Time is an integer number of microseconds (see :mod:`repro.net.units`).
Events scheduled for the same instant fire in scheduling order (a
monotonically increasing sequence number breaks ties), which makes runs
fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .units import US_PER_S


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events can be cancelled; cancelled events stay in the heap but are
    skipped when popped (lazy deletion), which is O(1) instead of O(n).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so it will not fire."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Deterministic discrete-event simulator with an integer-µs clock."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_us: int,
                 callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_us`` from now."""
        if delay_us < 0:
            raise ValueError(f"cannot schedule into the past ({delay_us} us)")
        return self.schedule_at(self.now + delay_us, callback, *args)

    def schedule_at(self, time_us: int,
                    callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time_us``."""
        if time_us < self.now:
            raise ValueError(
                f"cannot schedule at {time_us} us; now is {self.now} us")
        event = Event(time_us, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until_us: Optional[int] = None) -> None:
        """Run events until the heap drains or the clock passes ``until_us``.

        When ``until_us`` is given the clock is left exactly there, so
        consecutive ``run`` calls see a continuous timeline.
        """
        self._running = True
        heap = self._heap
        while heap and self._running:
            event = heap[0]
            if until_us is not None and event.time > until_us:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(*event.args)
        if until_us is not None and self.now < until_us:
            self.now = until_us
        self._running = False

    def run_for(self, duration_us: int) -> None:
        """Run for ``duration_us`` from the current clock."""
        self.run(until_us=self.now + duration_us)

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of (possibly cancelled) events still queued."""
        return len(self._heap)

    @property
    def now_seconds(self) -> float:
        """Current simulation time in float seconds (reporting only)."""
        return self.now / US_PER_S
