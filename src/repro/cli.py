"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``        one flow over a configurable cell (scheme, SINR,
               carriers, busy/idle, duration)
``compare``    several schemes head-to-head on the same cell
``experiment`` run one of the paper's table/figure drivers by name
``sweep``      the §6.3.1 stationary sweep, parallel and cacheable
``resilience`` fault-injection sweep: DCI miss-rate × decoder-outage
               grid with graceful-degradation telemetry
``metro``      metro-scale scenario engine: hundreds of cells with
               diurnal populations, walker handover churn and
               coexistence fleets; writes the per-cell fairness/
               capacity matrix (``--smoke`` for the CI-sized set;
               ``--fleet-dir`` routes shards through a worker fleet)
``fleet``      distributed sweep fabric: ``fleet sweep`` drives the
               stationary sweep through a shared-directory worker
               fleet (leases, heartbeats, crash reclamation, optional
               seeded chaos injection); ``fleet worker`` joins a
               fleet from any host that shares the directory
``cache``      audit the result cache: ``verify`` (scan, checksum,
               quarantine) or ``gc`` (reclaim quarantined/temp space)
``perf``       hot-path benchmark suite; writes ``BENCH_hotpath.json``
               (``--smoke`` for the CI-sized run)
``list``       list schemes, experiments and metro scenario sets

Multi-run commands (``experiment`` sweeps, ``sweep``) accept ``--jobs
N`` to fan simulations out over worker processes and ``--cache-dir``
to memoize completed runs on disk (see :mod:`repro.exec`).  The long
sweeps (``sweep``, ``resilience``) are additionally *supervised*:
``--timeout`` enforces a concurrent per-job deadline, ``--retries``
re-submits crashed/timed-out jobs with jittered backoff, failures are
isolated as structured records instead of aborting (``--strict`` to
abort on the first failure, ``--failure-budget PCT`` to abort once
more than PCT%% of jobs fail), Ctrl-C drains in-flight work and
persists everything finished, and ``--resume`` replays the journal
next to the cache to skip finished work and re-attempt only failures.

Examples
--------
    python -m repro run --scheme pbe --sinr 18 --busy --duration 6
    python -m repro compare --schemes pbe,bbr,cubic --duration 5
    python -m repro experiment fig02
    python -m repro experiment table1 --locations 4 --jobs 4
    python -m repro sweep --schemes pbe,bbr --busy 8 --idle 5 \\
        --jobs 8 --cache-dir .repro-cache --view table1
    python -m repro resilience --miss 0,0.05,0.2 --outage-ms 0,500 \\
        --jobs 4
    python -m repro resilience --smoke
    python -m repro sweep --jobs 8 --cache-dir .repro-cache --resume
    python -m repro metro --smoke --out metro_matrix.json
    python -m repro metro --set metro-240 --jobs 8 \\
        --cache-dir .repro-cache --resume
    python -m repro cache verify --cache-dir .repro-cache
    python -m repro perf --smoke --out BENCH_hotpath.json
    python -m repro fleet sweep --dir /shared/fleet --workers 4 \\
        --cache-dir .repro-cache --resume
    python -m repro fleet worker --dir /shared/fleet   # on any host
    python -m repro metro --smoke --fleet-dir /tmp/fleet \\
        --fleet-workers 2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .harness import Experiment, FlowSpec, Scenario
from .harness.report import format_table
from .harness.runner import SCHEMES

#: Experiment-name registry for the ``experiment`` command.
EXPERIMENTS = ("table1", "fig02", "fig05", "fig06", "fig07", "fig08",
               "fig11",
               "fig12", "fig13", "fig15", "fig16", "fig18", "fig20",
               "fig21", "ablation")


def _build_scenario(args: argparse.Namespace) -> Scenario:
    return Scenario(
        name="cli",
        aggregated_cells=args.carriers,
        mean_sinr_db=args.sinr,
        busy=args.busy,
        background_users=4 if args.busy else 0,
        internet_rate_bps=args.internet_mbps * 1e6,
        duration_s=args.duration,
        seed=args.seed)


def _run_one(scenario: Scenario, scheme: str) -> list:
    experiment = Experiment(scenario)
    experiment.add_flow(FlowSpec(scheme=scheme))
    result = experiment.run()[0]
    s = result.summary
    return [scheme, s.average_throughput_mbps, s.average_delay_ms,
            s.p95_delay_ms, result.lost_packets,
            "yes" if result.ca_activations else "no"]


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: one flow over the configured cell."""
    row = _run_one(_build_scenario(args), args.scheme)
    print(format_table(
        ["scheme", "tput (Mbit/s)", "avg delay (ms)", "p95 delay (ms)",
         "lost", "CA"], [row]))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """``repro compare``: several schemes on the identical cell."""
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    rows = []
    for scheme in schemes:
        print(f"running {scheme}...", file=sys.stderr)
        rows.append(_run_one(_build_scenario(args), scheme))
    rows.sort(key=lambda r: -r[1])
    print(format_table(
        ["scheme", "tput (Mbit/s)", "avg delay (ms)", "p95 delay (ms)",
         "lost", "CA"], rows))
    return 0


def _exec_kwargs(args: argparse.Namespace) -> dict:
    """Runner configuration shared by the multi-run commands."""
    from .exec import StderrReporter
    progress = StderrReporter() if (args.jobs > 1 or args.cache_dir) \
        else None
    return {"jobs": args.jobs, "cache_dir": args.cache_dir,
            "progress": progress}


def _supervised_runner(args: argparse.Namespace, backend=None):
    """Build the supervised runner for the long sweep commands."""
    from .exec import make_runner
    budget = (args.failure_budget / 100.0
              if args.failure_budget is not None else None)
    kwargs = _exec_kwargs(args)
    return make_runner(
        retries=args.retries, timeout_s=args.timeout,
        strict=args.strict, failure_budget=budget, backend=backend,
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        checkpoint_every=getattr(args, "checkpoint_every", None),
        **kwargs)


def _chaos_spec(args: argparse.Namespace, ttl_s: float):
    """A :class:`ChaosSpec` from the ``--chaos-*`` flags (or None)."""
    from .exec import ChaosSpec
    stall_s = (args.chaos_stall_s if args.chaos_stall_s is not None
               else 2.5 * ttl_s)  # long enough to trip lease reclaim
    spec = ChaosSpec(seed=args.chaos_seed, kill_prob=args.chaos_kill,
                     kill_mid_job_prob=args.chaos_kill_mid,
                     stall_prob=args.chaos_stall, stall_s=stall_s,
                     claim_delay_prob=args.chaos_delay,
                     claim_delay_s=args.chaos_delay_s,
                     duplicate_claim_prob=args.chaos_dup,
                     corrupt_prob=args.chaos_corrupt)
    return spec if spec.active else None


def _fleet_backend(args: argparse.Namespace, root: str, workers: int,
                   ttl_s: float):
    """Build the fleet backend (and its telemetry line) for a driver."""
    from .exec import FleetBackend
    chaos = _chaos_spec(args, ttl_s)
    if chaos is not None:
        print(f"[repro] chaos injection armed: {chaos.to_dict()}",
              file=sys.stderr)

    def telemetry(line: str) -> None:
        print(f"[repro] {line}", file=sys.stderr, flush=True)

    return FleetBackend(root, ttl_s=ttl_s, local_workers=workers,
                        chaos=chaos, telemetry=telemetry)


def _report_resume(args: argparse.Namespace) -> None:
    """``--resume``: replay the journal and report what it skips."""
    from .exec import JOURNAL_NAME, SweepJournal
    if not args.cache_dir:
        raise SystemExit("--resume requires --cache-dir (the journal "
                         "lives beside the result cache)")
    from pathlib import Path
    journal = SweepJournal(Path(args.cache_dir) / JOURNAL_NAME)
    state = journal.replay()
    print(f"[repro] resume: journal {journal.path} shows "
          f"{state.summary()}; finished jobs load from cache, "
          f"failures re-attempt", file=sys.stderr)
    for failure in state.failed.values():
        print(f"[repro] resume: re-attempting {failure.summary()}",
              file=sys.stderr)


def _finish_supervised(runner, failures) -> int:
    """Surface degraded-run telemetry; exit non-zero on failures."""
    stats = runner.stats
    if (runner.progress is not None or failures or stats.failed
            or stats.quarantined):
        print(f"[repro] {stats.format()}", file=sys.stderr)
    for failure in failures:
        print(f"[repro] FAILED {failure.summary()}", file=sys.stderr)
    return 1 if failures else 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """``repro experiment <name>``: run a paper table/figure driver."""
    from .harness import experiments as exp
    name = args.name
    if name == "table1":
        sweep = exp.run_stationary_sweep(
            schemes=("pbe", "bbr", "verus", "copa"),
            n_busy=args.locations, n_idle=max(1, args.locations * 3 // 5),
            duration_s=args.duration, **_exec_kwargs(args))
        print(exp.table1_from_sweep(sweep).format())
    elif name == "fig12":
        sweep = exp.run_stationary_sweep(
            schemes=("pbe", "bbr", "cubic", "verus"),
            n_busy=args.locations, n_idle=max(1, args.locations * 3 // 5),
            duration_s=args.duration, **_exec_kwargs(args))
        print(exp.fig12_from_sweep(sweep).format())
    elif name == "fig15":
        sweep = exp.run_stationary_sweep(
            schemes=("pbe", "bbr", "cubic", "copa", "sprout"),
            n_busy=args.locations, n_idle=max(1, args.locations * 3 // 5),
            duration_s=args.duration, **_exec_kwargs(args))
        print(exp.fig15_from_sweep(sweep).format())
    elif name == "fig02":
        print(exp.run_fig02().format())
    elif name == "fig05":
        print(exp.run_fig05().format())
    elif name == "fig06":
        print(exp.run_fig06().format())
    elif name == "fig07":
        print(exp.run_fig07(duration_s=args.duration).format())
    elif name == "fig08":
        print(exp.run_fig08().format())
    elif name == "fig11":
        print(exp.run_fig11().format())
    elif name == "fig13":
        print(exp.run_fig13_14(duration_s=args.duration,
                               **_exec_kwargs(args)).format())
    elif name == "fig16":
        print(exp.run_fig16_17(duration_s=2 * args.duration).format())
    elif name == "fig18":
        print(exp.run_fig18_19(duration_s=2 * args.duration).format())
    elif name == "fig20":
        print(exp.run_fig20(duration_s=args.duration).format())
    elif name == "fig21":
        print(exp.run_fig21(time_scale=args.duration / 60.0).format())
    elif name == "ablation":
        print(exp.run_ablation(duration_s=args.duration,
                               **_exec_kwargs(args)).format())
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(name)
    return 0


def _print_sweep(args: argparse.Namespace, sweep) -> None:
    """Render a finished stationary sweep per ``--view`` / ``--save``."""
    from .harness import experiments as exp
    from .harness.serialize import write_json_atomic
    if args.view == "table1":
        print(exp.table1_from_sweep(sweep).format())
    elif args.view == "fig12":
        print(exp.fig12_from_sweep(sweep).format())
    elif args.view == "fig15":
        print(exp.fig15_from_sweep(sweep).format())
    else:
        rows = []
        for scheme in sweep.schemes():
            for condition in ("busy", "idle"):
                entries = [e for e in sweep.for_scheme(scheme)
                           if e.busy == (condition == "busy")]
                if not entries:
                    continue
                n = len(entries)
                rows.append([
                    scheme, condition, n,
                    sum(e.summary.average_throughput_mbps
                        for e in entries) / n,
                    sum(e.summary.average_delay_ms for e in entries) / n,
                    sum(e.summary.p95_delay_ms for e in entries) / n])
        print(format_table(
            ["scheme", "cond", "locs", "tput (Mbit/s)",
             "avg delay (ms)", "p95 delay (ms)"], rows,
            title=f"Stationary sweep ({args.busy} busy + {args.idle} "
                  f"idle locations, {args.duration:g} s flows)"))
    if args.save:
        write_json_atomic([exp.entry_to_dict(e) for e in sweep.entries],
                          args.save)
        print(f"saved {len(sweep.entries)} entries to {args.save}",
              file=sys.stderr)


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: the stationary sweep, supervised end to end."""
    from .exec import FailureBudgetExceeded, SweepInterrupted
    from .harness import experiments as exp
    schemes = tuple(s.strip() for s in args.schemes.split(",")
                    if s.strip())
    if args.resume:
        _report_resume(args)
    runner = _supervised_runner(args)
    try:
        sweep = exp.run_stationary_sweep(
            schemes=schemes, n_busy=args.busy, n_idle=args.idle,
            duration_s=args.duration, base_seed=args.seed,
            runner=runner)
    except SweepInterrupted as exc:
        print(f"[repro] {exc}", file=sys.stderr)
        return 130
    except FailureBudgetExceeded as exc:
        print(f"[repro] {exc}", file=sys.stderr)
        return 3
    _print_sweep(args, sweep)
    return _finish_supervised(runner, sweep.failures)


def cmd_fleet_worker(args: argparse.Namespace) -> int:
    """``repro fleet worker``: join a fleet and pull jobs until stopped."""
    from .exec import run_worker
    return run_worker(args.dir, worker_id=args.id, ttl_s=args.ttl,
                      poll_s=args.poll, max_jobs=args.max_jobs)


def cmd_fleet_status(args: argparse.Namespace) -> int:
    """``repro fleet status``: observe a fleet directory, read-only."""
    from .exec import fleet_status
    status = fleet_status(args.dir)
    print(f"fleet {status['root']}: {status['queued']} queued, "
          f"{len(status['leases'])} leases in flight, "
          f"{status['results']} results")
    if status["workers"]:
        rows = []
        for worker in status["workers"]:
            rows.append([worker["worker"], worker["pid"],
                         worker["executed"], worker["reclaimed"],
                         round(worker["jobs_per_min"], 2),
                         round(worker["stale_s"], 1)])
        print(format_table(
            ["worker", "pid", "executed", "reclaimed", "jobs/min",
             "beacon age (s)"],
            rows))
    if status["leases"]:
        rows = []
        for lease in status["leases"]:
            subframe = lease["checkpoint_subframe"]
            age = lease["checkpoint_age_s"]
            rows.append([
                lease["label"], lease["worker"],
                round(lease["held_s"], 1),
                "-" if subframe is None else subframe,
                "-" if age is None else round(age, 1)])
        print(format_table(
            ["job", "worker", "held (s)", "ckpt subframe",
             "ckpt age (s)"], rows))
    return 0


def cmd_fleet_sweep(args: argparse.Namespace) -> int:
    """``repro fleet sweep``: drive the stationary sweep via a fleet."""
    from .exec import FailureBudgetExceeded, SweepInterrupted
    from .harness import experiments as exp
    schemes = tuple(s.strip() for s in args.schemes.split(",")
                    if s.strip())
    if args.resume:
        _report_resume(args)
    backend = _fleet_backend(args, args.dir, args.workers, args.ttl)
    runner = _supervised_runner(args, backend=backend)
    try:
        sweep = exp.run_stationary_sweep(
            schemes=schemes, n_busy=args.busy, n_idle=args.idle,
            duration_s=args.duration, base_seed=args.seed,
            runner=runner)
    except SweepInterrupted as exc:
        print(f"[repro] {exc}", file=sys.stderr)
        return 130
    except FailureBudgetExceeded as exc:
        print(f"[repro] {exc}", file=sys.stderr)
        return 3
    finally:
        # The runner shuts a persistent backend down when it ran jobs;
        # cover the all-cache-hits path (and idempotently otherwise)
        # so spawned local workers never outlive the drive.
        backend.shutdown(wait=True)
    _print_sweep(args, sweep)
    return _finish_supervised(runner, sweep.failures)


def cmd_resilience(args: argparse.Namespace) -> int:
    """``repro resilience``: the fault-injection degradation sweep."""
    from .harness import experiments as exp
    if args.smoke:
        # CI-sized: one scheme, one impaired cell with a mid-run
        # outage, so the fallback/recovery path runs on every push.
        schemes: tuple = ("pbe",)
        miss_rates: tuple = (0.0, 0.2)
        outages_ms: tuple = (0, 500)
        duration = 2.0
    else:
        schemes = tuple(s.strip() for s in args.schemes.split(",")
                        if s.strip())
        miss_rates = tuple(float(m) for m in args.miss.split(","))
        outages_ms = tuple(int(o) for o in args.outage_ms.split(","))
        duration = args.duration
    from .exec import FailureBudgetExceeded, SweepInterrupted
    if args.resume:
        _report_resume(args)
    runner = _supervised_runner(args)
    try:
        result = exp.run_resilience(
            schemes=schemes, miss_rates=miss_rates,
            outages_ms=outages_ms, duration_s=duration,
            base_seed=args.seed, fault_seed=args.fault_seed,
            runner=runner)
    except SweepInterrupted as exc:
        print(f"[repro] {exc}", file=sys.stderr)
        return 130
    except FailureBudgetExceeded as exc:
        print(f"[repro] {exc}", file=sys.stderr)
        return 3
    print(result.format())
    return _finish_supervised(runner, result.failures)


def cmd_metro(args: argparse.Namespace) -> int:
    """``repro metro``: the metro-scale fairness/capacity matrix."""
    from .exec import FailureBudgetExceeded, SweepInterrupted
    from .harness.serialize import write_json_atomic
    from .metro import format_summary, resolve_set, run_metro
    mset = resolve_set("smoke" if args.smoke else args.set)
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
        overrides["grid"] = {"seed": args.seed}
    if args.cells is not None:
        overrides.setdefault("grid", {})["n_cells"] = args.cells
    if args.hours is not None:
        overrides["hours"] = tuple(
            int(h) for h in args.hours.split(",") if h.strip())
    if args.hour_s is not None:
        overrides["hour_s"] = args.hour_s
    if args.shard_cells is not None:
        overrides["shard_cells"] = args.shard_cells
    if args.walkers is not None:
        overrides["walkers_per_shard"] = args.walkers
    if overrides:
        mset = mset.with_overrides(**overrides)
    if args.resume:
        _report_resume(args)
    backend = (_fleet_backend(args, args.fleet_dir, args.fleet_workers,
                              args.fleet_ttl)
               if args.fleet_dir else None)
    runner = _supervised_runner(args, backend=backend)
    try:
        result = run_metro(mset, runner=runner)
    except SweepInterrupted as exc:
        print(f"[repro] {exc}", file=sys.stderr)
        return 130
    except FailureBudgetExceeded as exc:
        print(f"[repro] {exc}", file=sys.stderr)
        return 3
    finally:
        if backend is not None:
            backend.shutdown(wait=True)
    print(format_summary(result.matrix))
    write_json_atomic(result.matrix, args.out)
    print(f"wrote matrix ({len(result.matrix['cells'])} cells) to "
          f"{args.out}", file=sys.stderr)
    return _finish_supervised(runner, result.failures)


def cmd_cache(args: argparse.Namespace) -> int:
    """``repro cache verify|gc``: audit/repair the result store."""
    from .exec import ResultStore
    store = ResultStore(args.cache_dir)
    if args.action == "verify":
        report = store.verify(upgrade=not args.no_upgrade)
        print(f"checked {report['checked']} entries: {report['ok']} ok, "
              f"{report['upgraded']} upgraded to checksummed envelope, "
              f"{report['quarantined']} quarantined, "
              f"{report['foreign']} foreign files skipped")
        print(f"store: {store.stats().format()}")
        return 1 if report["quarantined"] else 0
    out = store.gc(tmp_grace_s=args.tmp_grace)
    print(f"gc: removed {out['removed']} quarantined/temp files, "
          f"reclaimed {out['bytes']} bytes")
    print(f"store: {store.stats().format()}")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """``repro perf``: run (or compare) the hot-path benchmark suite."""
    from .perf.bench import compare_benchmarks, run_benchmarks
    if args.compare:
        old_path, new_path = args.compare
        with open(old_path) as fh:
            old = json.load(fh)
        with open(new_path) as fh:
            new = json.load(fh)
        lines, regressions = compare_benchmarks(old, new)
        for line in lines:
            print(line)
        if regressions:
            print(f"warning: possible regression in "
                  f"{', '.join(regressions)} (advisory only — wall "
                  f"clocks are machine/load dependent)", file=sys.stderr)
        return 0
    doc = run_benchmarks(smoke=args.smoke, progress=sys.stderr,
                         only=args.only)
    benches = doc["benches"]
    # Per-bench table row: b -> (wall column, rate column).  The doc may
    # be a subset when --only is given, so look up lazily.
    row_formats = {
        "estimator": lambda b: (
            b["wall_s"], f'{b["estimates_per_s"]:,.0f} estimates/s'),
        "scheduler": lambda b: (
            b["wall_s"], f'{b["calls_per_s"]:,.0f} allocations/s'),
        "channel_block": lambda b: (
            b["block_wall_s"],
            f'{b["block_subframes_per_s"]:,.0f} subframes/s '
            f'({b["speedup"]:g}x scalar)'),
        "dci_batch": lambda b: (
            b["batch_wall_s"],
            f'{b["batch_rows_per_s"]:,.0f} rows/s '
            f'({b["speedup"]:g}x scalar)'),
        "transport_batch": lambda b: (
            b["batch_wall_s"],
            f'{b["batch_acks_per_s"]:,.0f} acks/s '
            f'({b["speedup"]:g}x scalar)'),
        "cc_block": lambda b: (
            b["block_wall_s"],
            f'{b["block_contexts_per_s"]:,.0f} acks/s '
            f'({b["speedup"]:g}x scalar)'),
        "subframe_loop": lambda b: (
            b["wall_s"],
            f'{b["ticks_per_s"]:,.0f} ticks/s ({b["sim_s"]:g} sim-s)'),
        "sweep": lambda b: (
            b["wall_s"],
            f'{b["entries"]} runs x {b["flow_s"]:g} s flows'),
        "metro_smoke": lambda b: (
            b["batch_wall_s"],
            f'{b["cells"]} cells ({b["speedup"]:g}x scalar)'),
    }
    rows = []
    for name, bench in benches.items():
        wall, rate = row_formats[name](bench)
        rows.append([name, wall, rate])
    print(format_table(["bench", "wall (s)", "rate"], rows,
                       title="Hot-path benchmarks "
                             f"({'smoke' if doc['smoke'] else 'full'})"))
    if "subframe_loop" in benches:
        counters = benches["subframe_loop"]["counters"]
        print(f"loop counters: events={counters['events_popped']} "
              f"cancelled_ratio={counters['cancelled_event_ratio']} "
              f"compactions={counters['heap_compactions']}",
              file=sys.stderr)
    if args.out:
        from .harness.serialize import write_json_atomic
        write_json_atomic(doc, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """``repro list``: schemes, experiments and metro scenario sets."""
    from .metro import metro_scenario_sets
    print("schemes:     " + ", ".join(sorted(SCHEMES)))
    print("experiments: " + ", ".join(EXPERIMENTS))
    print("metro sets:")
    for name, mset in sorted(metro_scenario_sets().items()):
        print(f"  {name:<14} {mset.grid.n_cells} cells — "
              f"{mset.description}")
    return 0


def _add_exec_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent runs "
                             "(default 1 = inline)")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed result cache directory "
                             "(skips runs whose inputs are unchanged)")


def _add_supervision_options(parser: argparse.ArgumentParser) -> None:
    """Failure-isolation/deadline/resume knobs for the long sweeps."""
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="per-job deadline in seconds, enforced "
                             "concurrently across in-flight jobs")
    parser.add_argument("--retries", type=int, default=1,
                        help="re-submissions after a worker crash or "
                             "timeout, with jittered exponential "
                             "backoff (default 1)")
    parser.add_argument("--strict", action="store_true",
                        help="abort on the first failed job instead of "
                             "isolating it as a structured failure")
    parser.add_argument("--failure-budget", type=float, default=None,
                        metavar="PCT",
                        help="abort early once more than PCT%% of jobs "
                             "have failed")
    parser.add_argument("--resume", action="store_true",
                        help="replay the journal beside --cache-dir: "
                             "report finished work (loaded from cache) "
                             "and re-attempt only failures; with "
                             "--checkpoint-dir, interrupted jobs "
                             "restore their newest mid-run snapshot "
                             "instead of starting over")
    parser.add_argument("--checkpoint-dir", default=None,
                        metavar="DIR",
                        help="write crash-consistent mid-run snapshots "
                             "under DIR/<fingerprint>/ so killed or "
                             "preempted jobs resume byte-identically "
                             "from the last subframe boundary")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="snapshot cadence in simulated subframes "
                             "(default 1000 = one simulated second)")


def _add_chaos_options(parser: argparse.ArgumentParser) -> None:
    """Seeded fault-injection knobs for fleet drivers."""
    group = parser.add_argument_group(
        "chaos injection (deterministic per --chaos-seed; each fault "
        "fires at most once per job fleet-wide, so sweeps converge to "
        "the chaos-free result)")
    group.add_argument("--chaos-seed", type=int, default=0,
                       help="seed of the fault plan (default 0)")
    group.add_argument("--chaos-kill", type=float, default=0.0,
                       metavar="P",
                       help="P(worker SIGKILLs itself mid-job)")
    group.add_argument("--chaos-kill-mid", type=float, default=0.0,
                       metavar="P",
                       help="P(worker SIGKILLs itself mid-simulation "
                            "at a deterministic subframe boundary; "
                            "needs --checkpoint-dir so the retry "
                            "resumes from the snapshot)")
    group.add_argument("--chaos-stall", type=float, default=0.0,
                       metavar="P",
                       help="P(worker stalls heartbeats mid-job)")
    group.add_argument("--chaos-stall-s", type=float, default=None,
                       metavar="S",
                       help="stall duration (default 2.5x the lease "
                            "TTL, enough to trip reclamation)")
    group.add_argument("--chaos-delay", type=float, default=0.0,
                       metavar="P",
                       help="P(worker holds its lease idle before "
                            "executing, with heartbeats)")
    group.add_argument("--chaos-delay-s", type=float, default=1.0,
                       metavar="S", help="claim-delay duration")
    group.add_argument("--chaos-dup", type=float, default=0.0,
                       metavar="P",
                       help="P(worker claims over a live lease -> "
                            "duplicate execution)")
    group.add_argument("--chaos-corrupt", type=float, default=0.0,
                       metavar="P",
                       help="P(worker corrupts the result envelope "
                            "it writes)")


def _add_cell_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sinr", type=float, default=18.0,
                        help="mean SINR in dB (default 18)")
    parser.add_argument("--carriers", type=int, default=2,
                        choices=(1, 2, 3),
                        help="aggregated carriers (default 2)")
    parser.add_argument("--busy", action="store_true",
                        help="busy cell with background users")
    parser.add_argument("--internet-mbps", type=float, default=1000.0,
                        help="wired-path rate (default: non-bottleneck)")
    parser.add_argument("--duration", type=float, default=6.0,
                        help="flow duration in seconds (default 6)")
    parser.add_argument("--seed", type=int, default=1)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PBE-CC reproduction (SIGCOMM 2020) simulator")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one flow")
    p_run.add_argument("--scheme", default="pbe",
                       choices=sorted(SCHEMES))
    _add_cell_options(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="compare schemes")
    p_cmp.add_argument("--schemes", default="pbe,bbr,cubic")
    _add_cell_options(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_exp = sub.add_parser("experiment",
                           help="run a paper table/figure driver")
    p_exp.add_argument("name", choices=EXPERIMENTS)
    p_exp.add_argument("--locations", type=int, default=4,
                       help="busy locations for sweep experiments")
    p_exp.add_argument("--duration", type=float, default=6.0)
    _add_exec_options(p_exp)
    p_exp.set_defaults(func=cmd_experiment)

    p_sweep = sub.add_parser(
        "sweep", help="run the stationary location sweep "
                      "(parallel, cacheable)")
    p_sweep.add_argument("--schemes", default="pbe,bbr",
                         help="comma-separated scheme list")
    p_sweep.add_argument("--busy", type=int, default=4,
                         help="busy locations (paper: 25)")
    p_sweep.add_argument("--idle", type=int, default=2,
                         help="idle locations (paper: 15)")
    p_sweep.add_argument("--duration", type=float, default=6.0,
                         help="flow duration in seconds")
    p_sweep.add_argument("--seed", type=int, default=100,
                         help="base seed of the location grid")
    p_sweep.add_argument("--view", default="summary",
                         choices=("summary", "table1", "fig12", "fig15"),
                         help="how to reduce the sweep for printing")
    p_sweep.add_argument("--save", default=None, metavar="FILE",
                         help="also write per-run JSON entries here")
    _add_exec_options(p_sweep)
    _add_supervision_options(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_res = sub.add_parser(
        "resilience",
        help="fault-injection sweep: DCI miss-rate x outage grid")
    p_res.add_argument("--schemes", default="pbe,bbr",
                       help="comma-separated scheme list")
    p_res.add_argument("--miss", default="0,0.05,0.2",
                       help="comma-separated DCI miss probabilities")
    p_res.add_argument("--outage-ms", default="0,500",
                       help="comma-separated decoder outage durations")
    p_res.add_argument("--duration", type=float, default=6.0,
                       help="flow duration in seconds")
    p_res.add_argument("--seed", type=int, default=400,
                       help="scenario seed")
    p_res.add_argument("--fault-seed", type=int, default=7,
                       help="fault-schedule seed")
    p_res.add_argument("--smoke", action="store_true",
                       help="CI-sized grid (one scheme, short flows)")
    _add_exec_options(p_res)
    _add_supervision_options(p_res)
    p_res.set_defaults(func=cmd_resilience)

    p_metro = sub.add_parser(
        "metro", help="metro-scale scenario engine: run a named set "
                      "and write the per-cell fairness matrix")
    p_metro.add_argument("--set", default="metro-240",
                         help="scenario set name (see `repro list`; "
                              "default metro-240)")
    p_metro.add_argument("--smoke", action="store_true",
                         help="CI-sized run (the 'smoke' set)")
    p_metro.add_argument("--seed", type=int, default=None,
                         help="override the set's seed (grid layout, "
                              "populations, mobility, fleets)")
    p_metro.add_argument("--cells", type=int, default=None,
                         help="override the grid's carrier count")
    p_metro.add_argument("--hours", default=None,
                         help="comma-separated hours of day to "
                              "simulate (e.g. 3,9,14,21)")
    p_metro.add_argument("--hour-s", type=float, default=None,
                         metavar="S",
                         help="simulated seconds per diurnal hour")
    p_metro.add_argument("--shard-cells", type=int, default=None,
                         help="target cells per exec shard")
    p_metro.add_argument("--walkers", type=int, default=None,
                         help="override walkers per shard")
    p_metro.add_argument("--out", default="metro_matrix.json",
                         metavar="FILE",
                         help="matrix output path "
                              "(default metro_matrix.json)")
    p_metro.add_argument("--fleet-dir", default=None, metavar="DIR",
                         help="route shards through a worker fleet "
                              "sharing DIR instead of a local process "
                              "pool (external workers may join with "
                              "`repro fleet worker --dir DIR`)")
    p_metro.add_argument("--fleet-workers", type=int, default=2,
                         metavar="N",
                         help="local fleet workers to spawn "
                              "(default 2; 0 = external workers only)")
    p_metro.add_argument("--fleet-ttl", type=float, default=10.0,
                         metavar="S",
                         help="fleet lease TTL in seconds (default 10)")
    _add_exec_options(p_metro)
    _add_supervision_options(p_metro)
    _add_chaos_options(p_metro)
    p_metro.set_defaults(func=cmd_metro)

    p_fleet = sub.add_parser(
        "fleet", help="distributed sweep fabric: drive a sweep "
                      "through (or join) a shared-directory worker "
                      "fleet")
    fleet_sub = p_fleet.add_subparsers(dest="fleet_cmd", required=True)

    p_fw = fleet_sub.add_parser(
        "worker", help="join the fleet at --dir: claim jobs under "
                       "heartbeat-renewed leases until stopped "
                       "(first SIGTERM finishes the current job and "
                       "exits; a second abandons it)")
    p_fw.add_argument("--dir", required=True,
                      help="the fleet's shared directory")
    p_fw.add_argument("--id", default=None,
                      help="worker id (default host-pid)")
    p_fw.add_argument("--ttl", type=float, default=10.0, metavar="S",
                      help="lease TTL in seconds (default 10)")
    p_fw.add_argument("--poll", type=float, default=0.2, metavar="S",
                      help="idle queue poll interval (default 0.2)")
    p_fw.add_argument("--max-jobs", type=int, default=None,
                      help="exit after executing this many jobs")
    p_fw.set_defaults(func=cmd_fleet_worker)

    p_fstat = fleet_sub.add_parser(
        "status", help="read-only snapshot of a fleet directory: "
                       "queue depth, live leases (with each job's "
                       "newest-checkpoint age), and per-worker "
                       "throughput from the liveness beacons")
    p_fstat.add_argument("--dir", required=True,
                         help="the fleet's shared directory")
    p_fstat.set_defaults(func=cmd_fleet_status)

    p_fs = fleet_sub.add_parser(
        "sweep", help="run the stationary sweep through a fleet at "
                      "--dir (spawns local workers; remote ones may "
                      "join mid-sweep)")
    p_fs.add_argument("--dir", required=True,
                      help="shared fleet directory (local path, or a "
                           "mount every worker host shares)")
    p_fs.add_argument("--workers", type=int, default=2, metavar="N",
                      help="local workers to spawn (default 2; "
                           "0 = external workers only)")
    p_fs.add_argument("--ttl", type=float, default=10.0, metavar="S",
                      help="lease TTL in seconds (default 10)")
    p_fs.add_argument("--schemes", default="pbe,bbr",
                      help="comma-separated scheme list")
    p_fs.add_argument("--busy", type=int, default=4,
                      help="busy locations (paper: 25)")
    p_fs.add_argument("--idle", type=int, default=2,
                      help="idle locations (paper: 15)")
    p_fs.add_argument("--duration", type=float, default=6.0,
                      help="flow duration in seconds")
    p_fs.add_argument("--seed", type=int, default=100,
                      help="base seed of the location grid")
    p_fs.add_argument("--view", default="summary",
                      choices=("summary", "table1", "fig12", "fig15"),
                      help="how to reduce the sweep for printing")
    p_fs.add_argument("--save", default=None, metavar="FILE",
                      help="also write per-run JSON entries here")
    p_fs.add_argument("--cache-dir", default=None,
                      help="content-addressed result cache directory "
                           "(required for --resume)")
    _add_supervision_options(p_fs)
    _add_chaos_options(p_fs)
    # The fleet paces itself (capacity=None); `jobs` only gates the
    # runner's inline shortcut and progress reporting.
    p_fs.set_defaults(func=cmd_fleet_sweep, jobs=2)

    p_cache = sub.add_parser(
        "cache", help="audit the result cache (verify / gc)")
    p_cache.add_argument("action", choices=("verify", "gc"),
                         help="verify: scan+checksum every entry, "
                              "quarantine invalid ones; gc: reclaim "
                              "quarantined/temp space")
    p_cache.add_argument("--cache-dir", required=True,
                         help="result cache directory to audit")
    p_cache.add_argument("--tmp-grace", type=float, default=None,
                         metavar="S",
                         help="gc: skip *.tmp files younger than S "
                              "seconds (default 3600) — they may be a "
                              "live sweep's in-flight atomic write; "
                              "pass 0 when no sweep is running")
    p_cache.add_argument("--no-upgrade", action="store_true",
                         help="verify only; do not rewrite valid "
                              "legacy entries into the checksummed "
                              "envelope")
    p_cache.set_defaults(func=cmd_cache)

    p_perf = sub.add_parser(
        "perf", help="run the hot-path benchmark suite")
    p_perf.add_argument("--smoke", action="store_true",
                        help="CI-sized benchmarks (seconds, not minutes)")
    p_perf.add_argument("--out", default=None, metavar="FILE",
                        help="write the BENCH_hotpath.json document here")
    p_perf.add_argument("--only", action="append", default=None,
                        metavar="BENCH",
                        help="run only this bench (repeatable); the "
                             "emitted document carries the subset and "
                             "--compare treats it as partial")
    p_perf.add_argument("--compare", nargs=2, default=None,
                        metavar=("OLD.json", "NEW.json"),
                        help="diff two benchmark documents on their "
                             "headline metrics instead of running; "
                             "always exits 0 (advisory)")
    p_perf.set_defaults(func=cmd_perf)

    p_list = sub.add_parser("list", help="list schemes and experiments")
    p_list.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` script."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
