"""Pantheon-like evaluation harness (§6.1).

Scenario definitions, the experiment runner and the paper's
measurement conventions (100 ms throughput windows, one-way-delay
order statistics, Jain's fairness index).
"""

from .metrics import (
    ORDER_STATS,
    WINDOW_US,
    FlowSummary,
    jain_index,
    percentile,
    summarize_flow,
    windowed_throughput_bps,
)
from .runner import (
    SCHEMES,
    Experiment,
    FlowHandle,
    FlowResult,
    FlowSpec,
    make_cc,
    run_flow,
)
from .scenarios import (
    Scenario,
    default_carriers,
    representative_locations,
    stationary_locations,
)
from .serialize import (
    load_results,
    result_to_dict,
    save_results,
    summary_from_dict,
    summary_to_dict,
    write_json_atomic,
)

__all__ = [
    "Experiment", "FlowHandle", "FlowResult", "FlowSpec", "FlowSummary",
    "ORDER_STATS", "SCHEMES", "Scenario", "WINDOW_US", "default_carriers",
    "jain_index", "load_results", "make_cc", "percentile",
    "representative_locations", "result_to_dict", "run_flow",
    "save_results", "stationary_locations", "summarize_flow",
    "summary_from_dict", "summary_to_dict", "windowed_throughput_bps",
    "write_json_atomic",
]
