"""Experiment scenario definitions (§6.1's methodology).

A :class:`Scenario` bundles everything that made one of the paper's
measurement "locations": the set of component carriers, how many of
them the phone under test aggregates (Redmi 8 = 1, MIX3 = 2, S8 = 3),
signal strength (indoor/outdoor), cell business (busy daytime vs idle
late-night) and the wired-path properties toward the content server.

:func:`stationary_locations` generates the 40-location sweep of
§6.3.1: all combinations of indoor/outdoor, one/two/three aggregated
cells and busy/idle links (25 busy + 15 idle, as in Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..phy.carrier import CarrierConfig
from ..phy.channel import ChannelModel, StaticChannel

#: Default wired one-way delay, server -> base station (µs).
DEFAULT_INTERNET_DELAY_US = 18_000
#: Default uplink one-way delay, UE -> server (µs).
DEFAULT_UPLINK_DELAY_US = 20_000
#: A wired rate high enough never to bottleneck a cellular flow.
NON_BOTTLENECK_RATE_BPS = 1e9

#: Control-plane burst arrival rates (per subframe) for busy/idle cells,
#: calibrated so busy cells show the paper's ~15.8 detected users per
#: 40 ms window (Figure 7).
BUSY_CONTROL_ARRIVALS = 0.40
IDLE_CONTROL_ARRIVALS = 0.02


def default_carriers() -> list[CarrierConfig]:
    """The cell set around campus: one 20 MHz primary, two secondaries."""
    return [
        CarrierConfig(cell_id=0, bandwidth_mhz=20.0, frequency_ghz=1.94),
        CarrierConfig(cell_id=1, bandwidth_mhz=10.0, frequency_ghz=2.11),
        CarrierConfig(cell_id=2, bandwidth_mhz=10.0, frequency_ghz=0.87),
    ]


@dataclass
class Scenario:
    """One measurement location / network condition."""

    name: str
    carriers: list[CarrierConfig] = field(default_factory=default_carriers)
    #: Cells configured for the device under test (1, 2 or 3).
    aggregated_cells: int = 2
    mean_sinr_db: float = 20.0
    fading_std_db: float = 1.0
    busy: bool = False
    #: Background on-off data users on the primary cell (busy links).
    background_users: int = 0
    #: Per-on-period offered rate range of each background user, bits/s.
    #: Busy towers see short web-transfer-style sessions: sub-second
    #: bursts at tens of Mbit/s (this churn rate is what distinguishes
    #: explicit capacity tracking from BBR's windowed filters).
    background_rate_range: tuple = (8e6, 40e6)
    #: Mean on/off durations of background users, seconds.
    background_on_s: float = 0.5
    background_off_s: float = 1.0
    internet_rate_bps: float = NON_BOTTLENECK_RATE_BPS
    internet_delay_us: int = DEFAULT_INTERNET_DELAY_US
    uplink_delay_us: int = DEFAULT_UPLINK_DELAY_US
    #: LTE uplink scheduling-grant period: ACKs leave the phone in
    #: batches at this interval (sender-side ACK compression, §2).
    uplink_batch_us: int = 5_000
    internet_queue_packets: int = 1000
    #: Base-station PRB fairness policy (§7): "equal", "equal_rate"
    #: or "proportional_fair".
    scheduler_policy: str = "equal"
    #: CQI reporting delay, subframes (0 = oracle link adaptation).
    cqi_delay_subframes: int = 0
    duration_s: float = 8.0
    seed: int = 0
    #: Optional per-cell control-plane burst rates (``{cell_id: rate}``).
    #: When set it overrides the scenario-wide busy/idle rate — metro
    #: grids mix busy hotspots and idle cells in one network.
    control_arrivals_by_cell: Optional[dict] = None

    def __post_init__(self) -> None:
        if not 1 <= self.aggregated_cells <= len(self.carriers):
            raise ValueError("aggregated_cells out of range")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")

    @property
    def control_arrivals_per_subframe(self) -> "float | dict":
        if self.control_arrivals_by_cell is not None:
            return dict(self.control_arrivals_by_cell)
        return (BUSY_CONTROL_ARRIVALS if self.busy
                else IDLE_CONTROL_ARRIVALS)

    @property
    def device_cells(self) -> list[int]:
        """Cell ids configured for the device under test."""
        return [c.cell_id for c in self.carriers[:self.aggregated_cells]]

    def channel(self, seed_offset: int = 0) -> ChannelModel:
        """Default stationary channel for this location."""
        return StaticChannel(self.mean_sinr_db, self.fading_std_db,
                             seed=self.seed + seed_offset)

    def with_overrides(self, **kwargs) -> "Scenario":
        """A copy of this scenario with fields replaced."""
        return replace(self, **kwargs)


def stationary_locations(duration_s: float = 8.0,
                         base_seed: int = 100) -> list[Scenario]:
    """The §6.3.1 sweep: 40 locations, 25 busy + 15 idle.

    Covers all combinations of indoor/outdoor, 1/2/3 aggregated cells
    and busy/idle, with per-location SINR and competition diversity.
    """
    locations: list[Scenario] = []
    index = 0
    # (busy, count) chosen to land on the paper's 25 busy / 15 idle.
    for busy, count in ((True, 25), (False, 15)):
        for i in range(count):
            indoor = i % 2 == 0
            aggregated = 1 + (i % 3)
            sinr = (14.0 + (i * 1.7) % 8.0 if indoor
                    else 19.0 + (i * 2.3) % 8.0)
            locations.append(Scenario(
                name=(f"loc{index:02d}-{'busy' if busy else 'idle'}-"
                      f"{'indoor' if indoor else 'outdoor'}-"
                      f"{aggregated}cc"),
                aggregated_cells=aggregated,
                mean_sinr_db=sinr,
                fading_std_db=1.0 if indoor else 1.5,
                busy=busy,
                background_users=(4 + i % 4) if busy else 0,
                duration_s=duration_s,
                seed=base_seed + index))
            index += 1
    return locations


def representative_locations(duration_s: float = 8.0) -> dict[str, Scenario]:
    """The six drill-down locations of Figures 13-14."""
    return {
        "fig13a_1cc_indoor_busy": Scenario(
            name="1cc-indoor-busy", aggregated_cells=1, mean_sinr_db=16.0,
            busy=True, background_users=3, duration_s=duration_s, seed=201),
        "fig13b_2cc_indoor_busy": Scenario(
            name="2cc-indoor-busy", aggregated_cells=2, mean_sinr_db=17.0,
            busy=True, background_users=3, duration_s=duration_s, seed=202),
        "fig13c_3cc_indoor_busy": Scenario(
            name="3cc-indoor-busy", aggregated_cells=3, mean_sinr_db=18.0,
            busy=True, background_users=2, duration_s=duration_s, seed=203),
        "fig13d_3cc_indoor_idle": Scenario(
            name="3cc-indoor-idle", aggregated_cells=3, mean_sinr_db=21.0,
            busy=False, duration_s=duration_s, seed=204),
        "fig14a_2cc_outdoor_busy": Scenario(
            name="2cc-outdoor-busy", aggregated_cells=2, mean_sinr_db=22.0,
            fading_std_db=1.5, busy=True, background_users=3,
            duration_s=duration_s, seed=205),
        "fig14b_2cc_outdoor_idle": Scenario(
            name="2cc-outdoor-idle", aggregated_cells=2, mean_sinr_db=24.0,
            fading_std_db=1.5, busy=False, duration_s=duration_s, seed=206),
    }
