"""Plain-text table rendering for experiment outputs.

Every experiment driver returns structured rows; this module prints
them the way the paper's tables/figures report them, for benchmark
logs and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table."""
    rendered_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_cdf(values: Sequence[float], points: int = 5) -> str:
    """Summarize a distribution as evenly spaced CDF quantiles."""
    if not values:
        return "(empty)"
    ordered = sorted(values)
    quantiles = []
    for i in range(points):
        q = i / (points - 1) if points > 1 else 0.5
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1)))
        quantiles.append(f"p{q * 100:.0f}={ordered[index]:.2f}")
    return "  ".join(quantiles)
