"""JSON-serializable views of experiment results.

Turns the harness's result objects into plain dictionaries so runs can
be archived, diffed and post-processed outside the simulator (the
paper's artifact releases raw per-run logs the same way).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .metrics import FlowSummary
from .runner import FlowResult


def summary_to_dict(summary: FlowSummary) -> dict:
    """Flatten a :class:`FlowSummary` into JSON-ready primitives."""
    return {
        "scheme": summary.scheme,
        "average_throughput_bps": summary.average_throughput_bps,
        "average_throughput_mbps": summary.average_throughput_mbps,
        "throughput_percentiles_bps": {
            str(p): v
            for p, v in summary.throughput_percentiles_bps.items()},
        "average_delay_ms": summary.average_delay_ms,
        "median_delay_ms": summary.median_delay_ms,
        "p95_delay_ms": summary.p95_delay_ms,
        "delay_percentiles_ms": {
            str(p): v for p, v in summary.delay_percentiles_ms.items()},
        "packets": summary.packets,
    }


def result_to_dict(result: FlowResult,
                   include_samples: bool = False) -> dict:
    """Flatten a :class:`FlowResult`.

    ``include_samples=True`` additionally embeds the raw per-packet
    arrival/delay series (large!).
    """
    out = {
        "scheme": result.spec.scheme,
        "rnti": result.spec.rnti,
        "summary": summary_to_dict(result.summary),
        "sent_packets": result.sent_packets,
        "lost_packets": result.lost_packets,
        "ca_activations": result.ca_activations,
        "state_fractions": result.state_fractions,
    }
    if include_samples:
        out["samples"] = {
            "arrival_us": list(result.stats.arrival_us),
            "delay_us": list(result.stats.delay_us),
            "size_bits": list(result.stats.size_bits),
        }
    return out


def save_results(results: list, path: Union[str, Path],
                 include_samples: bool = False) -> None:
    """Write a list of :class:`FlowResult` to a JSON file."""
    payload = [result_to_dict(r, include_samples) for r in results]
    Path(path).write_text(json.dumps(payload, indent=2))


def load_results(path: Union[str, Path]) -> list:
    """Read back what :func:`save_results` wrote (as dictionaries)."""
    return json.loads(Path(path).read_text())
