"""JSON-serializable views of experiment results.

Turns the harness's result objects into plain dictionaries so runs can
be archived, diffed and post-processed outside the simulator (the
paper's artifact releases raw per-run logs the same way).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from .metrics import FlowSummary
from .runner import FlowResult


def summary_to_dict(summary: FlowSummary) -> dict:
    """Flatten a :class:`FlowSummary` into JSON-ready primitives."""
    return {
        "scheme": summary.scheme,
        "average_throughput_bps": summary.average_throughput_bps,
        "average_throughput_mbps": summary.average_throughput_mbps,
        "throughput_percentiles_bps": {
            str(p): v
            for p, v in summary.throughput_percentiles_bps.items()},
        "average_delay_ms": summary.average_delay_ms,
        "median_delay_ms": summary.median_delay_ms,
        "p95_delay_ms": summary.p95_delay_ms,
        "delay_percentiles_ms": {
            str(p): v for p, v in summary.delay_percentiles_ms.items()},
        "packets": summary.packets,
    }


def summary_from_dict(data: dict) -> FlowSummary:
    """Rebuild a :class:`FlowSummary` from :func:`summary_to_dict` output.

    Accepts both freshly-built dictionaries (integer percentile keys)
    and JSON round-tripped ones (string keys).
    """
    return FlowSummary(
        scheme=data["scheme"],
        average_throughput_bps=data["average_throughput_bps"],
        throughput_percentiles_bps={
            int(p): v
            for p, v in data["throughput_percentiles_bps"].items()},
        average_delay_ms=data["average_delay_ms"],
        median_delay_ms=data["median_delay_ms"],
        p95_delay_ms=data["p95_delay_ms"],
        delay_percentiles_ms={
            int(p): v for p, v in data["delay_percentiles_ms"].items()},
        packets=data["packets"])


def result_to_dict(result: FlowResult,
                   include_samples: bool = False) -> dict:
    """Flatten a :class:`FlowResult`.

    ``include_samples=True`` additionally embeds the raw per-packet
    arrival/delay series (large!).
    """
    out = {
        "scheme": result.spec.scheme,
        "rnti": result.spec.rnti,
        "summary": summary_to_dict(result.summary),
        "sent_packets": result.sent_packets,
        "lost_packets": result.lost_packets,
        "ca_activations": result.ca_activations,
        "state_fractions": result.state_fractions,
        "sender_states": result.sender_states,
        "fault_stats": result.fault_stats,
    }
    if include_samples:
        out["samples"] = {
            "arrival_us": list(result.stats.arrival_us),
            "delay_us": list(result.stats.delay_us),
            "size_bits": list(result.stats.size_bits),
        }
    return out


def write_json_atomic(payload, path: Union[str, Path],
                      indent: Optional[int] = 2,
                      fsync: bool = False) -> None:
    """Write ``payload`` as JSON, atomically.

    Missing parent directories are created, and the payload lands in a
    temporary file that is :func:`os.replace`'d over ``path`` only once
    fully written — a crash mid-write can never leave a truncated
    archive behind, and concurrent writers racing on the same path
    resolve to last-write-wins with each version complete (the rename
    is the commit point; readers only ever see a whole file).  The
    experiment result cache (:class:`repro.exec.ResultStore`) relies on
    both guarantees.  ``fsync=True`` additionally flushes the data to
    disk before the rename — and the parent directory after it, so the
    rename itself is durable (matching ``ResultStore.put``): a machine
    crash immediately after the call can surface neither an empty file
    nor a vanished one under ``path``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=indent)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def save_results(results: list, path: Union[str, Path],
                 include_samples: bool = False) -> None:
    """Write a list of :class:`FlowResult` to a JSON file (atomically,
    with the file and its directory entry both flushed to disk)."""
    payload = [result_to_dict(r, include_samples) for r in results]
    write_json_atomic(payload, path, fsync=True)


def load_results(path: Union[str, Path]) -> list:
    """Read back what :func:`save_results` wrote (as dictionaries)."""
    return json.loads(Path(path).read_text())
