"""Measurement conventions of the paper's evaluation (§6.1).

Throughput is measured in 100-millisecond windows; delay statistics are
per-packet one-way delays; order statistics (10/25/50/75/90th
percentiles) drive Figures 13-14; Jain's fairness index drives §6.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..net.flow import FlowStats
from ..net.units import US_PER_MS, US_PER_S

#: The paper's throughput measurement window.
WINDOW_US = 100_000


def windowed_throughput_bps(stats: FlowStats,
                            window_us: int = WINDOW_US,
                            start_us: int | None = None,
                            end_us: int | None = None) -> np.ndarray:
    """Per-window goodput across the flow's active span, bits/s."""
    if window_us <= 0:
        raise ValueError("window must be positive")
    if stats.packets == 0:
        return np.array([])
    start = stats.first_arrival_us if start_us is None else start_us
    end = stats.last_arrival_us if end_us is None else end_us
    if end <= start:
        return np.array([])
    arrivals = np.asarray(stats.arrival_us)
    sizes = np.asarray(stats.size_bits)
    n_windows = int(np.ceil((end - start) / window_us))
    indices = np.clip((arrivals - start) // window_us, 0, n_windows - 1)
    mask = (arrivals >= start) & (arrivals <= end)
    sums = np.bincount(indices[mask].astype(int), weights=sizes[mask],
                       minlength=n_windows)
    return sums * (US_PER_S / window_us)


def percentile(values: Sequence[float], p: float) -> float:
    """Percentile with the paper's plotting convention (linear interp)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, p))


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²); 1.0 is perfectly fair.

    Two degenerate inputs get defined values instead of a
    ZeroDivisionError: an empty sequence and all-zero throughputs both
    return 1.0 (no flow is disadvantaged relative to any other — the
    metro matrix reports these for cells that carry no test flows).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 1.0
    denom = arr.size * float(np.sum(arr ** 2))
    if denom == 0:
        return 1.0
    return float(np.sum(arr)) ** 2 / denom


@dataclass
class FlowSummary:
    """Everything the paper reports about one flow."""

    scheme: str
    average_throughput_bps: float
    throughput_percentiles_bps: dict
    average_delay_ms: float
    median_delay_ms: float
    p95_delay_ms: float
    delay_percentiles_ms: dict
    packets: int

    @property
    def average_throughput_mbps(self) -> float:
        return self.average_throughput_bps / 1e6


#: Order statistics plotted in Figures 13-14.
ORDER_STATS = (10, 25, 50, 75, 90)


def summarize_flow(stats: FlowStats, scheme: str = "",
                   window_us: int = WINDOW_US,
                   skip_first_us: int = 0) -> FlowSummary:
    """Compute the paper's reported statistics for one flow.

    ``skip_first_us`` optionally trims the startup transient (the paper
    reports whole-flow figures; some drill-downs exclude slow-start).
    """
    if stats.packets == 0:
        empty = {p: 0.0 for p in ORDER_STATS}
        return FlowSummary(scheme, 0.0, dict(empty), 0.0, 0.0, 0.0,
                           dict(empty), 0)
    start = stats.first_arrival_us + skip_first_us
    delays_ms = [d / US_PER_MS for t, d in
                 zip(stats.arrival_us, stats.delay_us) if t >= start]
    if not delays_ms:
        delays_ms = stats.delays_ms()
        start = stats.first_arrival_us
    windows = windowed_throughput_bps(stats, window_us, start_us=start)
    tput_pct = {p: percentile(windows, p) for p in ORDER_STATS}
    delay_pct = {p: percentile(delays_ms, p) for p in ORDER_STATS}
    return FlowSummary(
        scheme=scheme,
        average_throughput_bps=float(np.mean(windows)) if windows.size
        else 0.0,
        throughput_percentiles_bps=tput_pct,
        average_delay_ms=float(np.mean(delays_ms)),
        median_delay_ms=percentile(delays_ms, 50),
        p95_delay_ms=percentile(delays_ms, 95),
        delay_percentiles_ms=delay_pct,
        packets=len(delays_ms))
