"""Pantheon-like experiment runner (§6.1).

Assembles the full end-to-end path for each flow — content server,
wired Internet segment, base-station queues, wireless subframe engine,
mobile receiver, ACK return path — runs the event loop and returns the
paper's measurement set per flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..baselines import (
    AckingReceiver,
    Bbr,
    CongestionControl,
    Copa,
    Cubic,
    FixedRate,
    PccAllegro,
    PccVivace,
    Reno,
    Sender,
    Sprout,
    Vegas,
    Verus,
)
from ..cell.basestation import CellularNetwork
from ..core.client import PbeClient
from ..core.sender import PbeSender
from ..faults import FaultSpec, ImpairedPipe, LossyDecoder
from ..monitor.pbe import PbeMonitor
from ..net.flow import FlowStats
from ..net.link import BatchingPipe, FlowDemux, Link, Receiver
from ..net.sim import Simulator
from ..net.units import US_PER_S, us_from_seconds
from ..phy.channel import ChannelModel
from ..traces.workload import OnOffRandomDemand
from .metrics import FlowSummary, summarize_flow
from .scenarios import Scenario

#: RNTI range for devices under test.
TEST_RNTI_BASE = 100
#: RNTI range for background (exogenous) users.
BACKGROUND_RNTI_BASE = 1_000

#: Scheme-name registry (the eight algorithms of §6.1 plus Reno).
SCHEMES: dict[str, Callable[..., CongestionControl]] = {
    "pbe": PbeSender,
    "bbr": Bbr,
    "cubic": Cubic,
    "reno": Reno,
    "verus": Verus,
    "sprout": Sprout,
    "copa": Copa,
    "pcc": PccAllegro,
    "vivace": PccVivace,
    "vegas": Vegas,
    "cbr": FixedRate,
}


def make_cc(scheme: str, seed: int = 0,
            **kwargs) -> CongestionControl:
    """Instantiate a congestion controller by scheme name."""
    try:
        factory = SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; known: {sorted(SCHEMES)}") from None
    if scheme in ("pcc", "vivace"):
        kwargs.setdefault("seed", seed)
    return factory(**kwargs)


@dataclass
class FlowSpec:
    """One flow's configuration inside a scenario."""

    scheme: str
    rnti: int = TEST_RNTI_BASE
    start_s: float = 0.0
    #: ``None`` runs until the scenario ends.
    duration_s: Optional[float] = None
    #: Per-flow server distance (one-way wired delay override), µs.
    internet_delay_us: Optional[int] = None
    #: Channel override (e.g. a mobility trace).
    channel: Optional[ChannelModel] = None
    #: Cells configured for this device (defaults to scenario's).
    cells: Optional[list[int]] = None
    #: Share this wired link instead of a private one (Internet-
    #: bottleneck experiments).
    shared_link: Optional[Link] = None
    log_allocations: bool = False
    #: Application-limited source: cap the send rate below what the
    #: congestion controller allows (e.g. a fixed-bitrate video).
    app_rate_bps: Optional[float] = None
    #: Extra keyword arguments for the scheme's constructor
    #: (e.g. ``{"rate_bps": 60e6}`` for the ``cbr`` scheme).
    cc_kwargs: dict = field(default_factory=dict)
    #: PBE-only ablation knobs for the mobile client / monitor.
    pbe_client_kwargs: dict = field(default_factory=dict)
    pbe_monitor_kwargs: dict = field(default_factory=dict)
    #: Fault-injection knobs, as a JSON-ready
    #: :meth:`repro.faults.FaultSpec.to_dict` dictionary (kept as plain
    #: primitives so batch jobs stay content-fingerprintable).
    faults: Optional[dict] = None

    def fault_spec(self) -> Optional[FaultSpec]:
        """Parsed fault spec, or ``None`` when no faults configured."""
        if not self.faults:
            return None
        return FaultSpec.from_dict(self.faults)


@dataclass
class FlowHandle:
    """Live wiring of one flow (available while the sim runs)."""

    spec: FlowSpec
    sender: Sender
    receiver: AckingReceiver
    cc: CongestionControl
    monitor: Optional[PbeMonitor] = None
    #: Fault injectors installed for this flow, when any.
    impaired_pipe: Optional[ImpairedPipe] = None
    lossy_decoders: dict = field(default_factory=dict)
    #: Wiring kept for checkpointing: the private Internet link
    #: (``None`` when the flow rides a shared bottleneck) and the LTE
    #: uplink batching stage.
    egress: Optional[Link] = None
    uplink: Optional[Receiver] = None

    @property
    def stats(self) -> FlowStats:
        return self.receiver.stats

    def fault_stats(self) -> Optional[dict]:
        """Impairment counters from this flow's injectors."""
        if self.impaired_pipe is None and not self.lossy_decoders:
            return None
        out: dict = {}
        if self.impaired_pipe is not None:
            out["ack_pipe"] = self.impaired_pipe.stats()
        if self.lossy_decoders:
            out["decoders"] = {
                str(cell): lossy.stats()
                for cell, lossy in sorted(self.lossy_decoders.items())}
        return out


@dataclass
class FlowResult:
    """Post-run measurements for one flow."""

    spec: FlowSpec
    summary: FlowSummary
    stats: FlowStats
    sent_packets: int
    lost_packets: int
    ca_activations: int
    #: PBE-only: fraction of time in each bottleneck state.
    state_fractions: Optional[dict] = None
    #: Per-subframe ``(subframe, cell_id, prbs)`` log, if requested.
    allocations: Optional[list] = None
    #: PBE-only: seconds the sender spent in each control state
    #: (startup/wireless/drain/internet/fallback).
    sender_states: Optional[dict] = None
    #: Impairment counters from any installed fault injectors.
    fault_stats: Optional[dict] = None


class Experiment:
    """One scenario's simulation: network plus any number of flows."""

    def __init__(self, scenario: Scenario,
                 perf_counters=None, batched: bool = True) -> None:
        self.scenario = scenario
        #: Optional :class:`repro.perf.PerfCounters`; wired into both
        #: the simulator and the MAC engine (observability only — an
        #: instrumented run stays byte-identical).
        self.perf = perf_counters
        self.sim = Simulator(perf_counters=perf_counters)
        #: ``batched=False`` selects the scalar reference engine — the
        #: batched engine is byte-identical to it (the equivalence tests
        #: run both and compare fingerprints).  The flag also flows into
        #: each flow's monitor so a scalar run is scalar end to end.
        self.batched = batched
        self.network = CellularNetwork(
            self.sim, scenario.carriers,
            control_arrivals_per_subframe=(
                scenario.control_arrivals_per_subframe),
            scheduler_policy=scenario.scheduler_policy,
            cqi_delay_subframes=scenario.cqi_delay_subframes,
            seed=scenario.seed,
            perf_counters=perf_counters,
            batched=batched)
        self.flows: list[FlowHandle] = []
        #: Shared bottleneck links (checkpointed alongside the flows).
        self._shared_links: list[Link] = []
        self._add_background_users()
        self.network.start()

    # ------------------------------------------------------------------
    def _add_background_users(self) -> None:
        scenario = self.scenario
        for i in range(scenario.background_users):
            rnti = BACKGROUND_RNTI_BASE + i
            demand = OnOffRandomDemand(
                mean_on_s=scenario.background_on_s,
                mean_off_s=scenario.background_off_s,
                rate_range_bps=scenario.background_rate_range,
                seed=scenario.seed + 31 * (i + 1))
            self.network.add_exogenous_user(
                rnti, [scenario.carriers[0].cell_id],
                scenario.channel(seed_offset=97 + i), demand)

    # ------------------------------------------------------------------
    def add_flow(self, spec: FlowSpec) -> FlowHandle:
        """Wire up one end-to-end flow and schedule its start/stop."""
        scenario = self.scenario
        sim = self.sim
        cells = spec.cells or scenario.device_cells
        channel = spec.channel or scenario.channel(seed_offset=spec.rnti)
        delay_us = (spec.internet_delay_us
                    if spec.internet_delay_us is not None
                    else scenario.internet_delay_us)

        private_link: Optional[Link] = None
        if spec.shared_link is not None:
            # Shared bottleneck: the link's sink must be a FlowDemux
            # (see make_shared_bottleneck); register this flow's route.
            egress: Receiver = spec.shared_link
            demux = spec.shared_link.sink
            if not isinstance(demux, FlowDemux):
                raise ValueError(
                    "shared_link's sink must be a FlowDemux "
                    "(use Experiment.make_shared_bottleneck)")
            demux.add_route(spec.rnti, self.network.ingress(spec.rnti))
        else:
            private_link = Link(
                sim, self.network.ingress(spec.rnti),
                rate_bps=scenario.internet_rate_bps,
                delay_us=delay_us,
                queue_packets=scenario.internet_queue_packets,
                name=f"internet-{spec.rnti}")
            egress = private_link

        cc = make_cc(spec.scheme, seed=scenario.seed + spec.rnti,
                     **spec.cc_kwargs)
        sender = Sender(sim, flow_id=spec.rnti, cc=cc, egress=egress,
                        app_rate_bps=spec.app_rate_bps)
        # ACK-impaired flows keep the batched transport: the injector
        # sits *upstream* of the batching stage and draws its RNG
        # per packet in arrival order either way, so its loss/reorder/
        # dup/corruption decisions land in the batch columns unchanged
        # (pinned by the faulted fingerprint configs and
        # tests/test_cc_block.py).  The scalar-demotion rule PR 9
        # carried is gone.
        fault_spec = spec.fault_spec()
        batching = BatchingPipe(
            sim, sender, scenario.uplink_delay_us,
            batch_interval_us=scenario.uplink_batch_us,
            name=f"uplink-{spec.rnti}", batched=self.batched)
        uplink: Receiver = batching

        # Reverse-path fault injection sits between the phone and the
        # LTE uplink batching stage (any scheme can be impaired).
        impaired_pipe: Optional[ImpairedPipe] = None
        if fault_spec is not None and fault_spec.impairs_pipe:
            impaired_pipe = ImpairedPipe(
                sim, uplink, fault_spec, flow_id=spec.rnti,
                name=f"impaired-{spec.rnti}")
            uplink = impaired_pipe

        monitor: Optional[PbeMonitor] = None
        lossy_decoders: dict = {}
        if spec.scheme == "pbe":
            receiver, monitor, lossy_decoders = self._wire_pbe(
                spec, cells, uplink, fault_spec)
        else:
            receiver = AckingReceiver(sim, spec.rnti, uplink)

        ue = self.network.add_user(
            spec.rnti, cells, channel, on_packet=receiver.receive,
            log_allocations=spec.log_allocations)
        if self.batched:
            # Columnar ACK generation: released transport blocks hand
            # their packets over as one burst (scalar engine keeps the
            # per-packet reference callback).
            ue.on_packet_block = receiver.receive_block

        sim.schedule(us_from_seconds(spec.start_s), sender.start)
        end_s = (spec.start_s + spec.duration_s
                 if spec.duration_s is not None else scenario.duration_s)
        sim.schedule(us_from_seconds(min(end_s, scenario.duration_s)),
                     sender.stop)

        handle = FlowHandle(spec, sender, receiver, cc, monitor,
                            impaired_pipe=impaired_pipe,
                            lossy_decoders=lossy_decoders,
                            egress=private_link, uplink=batching)
        self.flows.append(handle)
        return handle

    def make_shared_bottleneck(self, rate_bps: float, delay_us: int,
                               queue_packets: int = 300) -> Link:
        """Build a wired bottleneck link several flows can share.

        Pass the returned link as each flow's ``FlowSpec.shared_link``;
        routes to the per-user cellular ingress are registered
        automatically as flows are added (§4.2.3's shared-Internet-
        bottleneck topology).
        """
        link = Link(self.sim, FlowDemux(), rate_bps=rate_bps,
                    delay_us=delay_us, queue_packets=queue_packets,
                    name="shared-bottleneck")
        self._shared_links.append(link)
        return link

    def schedule_handover(self, handle: FlowHandle, at_s: float,
                          new_cells: list[int],
                          channel: Optional[ChannelModel] = None) -> None:
        """Hand the flow's device over to a new cell group at ``at_s``.

        For PBE flows the device must have decoders configured for the
        target cells — pass the union of all visited cells in the
        flow's ``cells`` spec.
        """
        self.sim.schedule(us_from_seconds(at_s), self._perform_handover,
                          handle.spec.rnti, new_cells, channel)

    def _perform_handover(self, rnti: int, new_cells: list[int],
                          channel: Optional[ChannelModel]) -> None:
        """Deferred handover body (a bound method — not a closure — so
        a checkpointed heap can re-bind the pending event on restore)."""
        self.network.handover(rnti, new_cells, channel=channel)
        for handle in self.flows:
            if handle.spec.rnti == rnti and handle.monitor is not None:
                handle.monitor.set_primary(new_cells[0])

    def _wire_pbe(self, spec: FlowSpec, cells: list[int],
                  uplink: Receiver,
                  fault_spec: Optional[FaultSpec] = None,
                  ) -> tuple[PbeClient, PbeMonitor, dict]:
        """Build the PBE monitor + client (and injectors) for one device."""
        network = self.network

        def own_rate_hint() -> tuple[int, float]:
            user = network.user(spec.rnti)
            return user.bits_per_prb_now, user.ber_now

        cell_prbs = {c: network.carriers[c].total_prbs for c in cells}
        monitor_kwargs = dict(spec.pbe_monitor_kwargs)
        if fault_spec is not None and fault_spec.impairs_decoder:
            # LossyDecoder drops/forges per record; the monitor must run
            # the per-record reference path so the impaired stream keeps
            # its exact scalar semantics.
            monitor_kwargs.setdefault("batch_ingest", False)
        monitor_kwargs.setdefault("batch_ingest", self.batched)
        monitor = PbeMonitor(spec.rnti, cell_prbs, primary_cell=cells[0],
                             own_rate_hint=own_rate_hint,
                             **monitor_kwargs)
        lossy_decoders: dict = {}
        for cell_id in cells:
            callback = monitor.decoder_callback(cell_id)
            if fault_spec is not None and fault_spec.impairs_decoder:
                lossy = LossyDecoder(monitor.decoders[cell_id],
                                     fault_spec)
                lossy_decoders[cell_id] = lossy
                callback = lossy.on_subframe
            network.attach_monitor(cell_id, callback)
        receiver = PbeClient(self.sim, spec.rnti, uplink, monitor,
                             **spec.pbe_client_kwargs)
        return receiver, monitor, lossy_decoders

    # ------------------------------------------------------------------
    def _checkpoint_owners(self) -> dict:
        """Stable key -> live object map for heap-event serialization.

        Every object whose bound methods may sit on the event heap gets
        a deterministic key; :mod:`repro.harness.checkpoint` encodes
        pending events as ``(owner_key, method_name, args)`` and
        re-binds them against this map on restore.  Built on demand —
        after a restore it reflects dynamically (re)materialized users.
        """
        owners: dict = {"exp": self, "net": self.network}
        for i, link in enumerate(self._shared_links):
            owners[f"shared:{i}"] = link
            owners[f"sharedsink:{i}"] = link.sink
        for handle in self.flows:
            rnti = handle.spec.rnti
            owners[f"sender:{rnti}"] = handle.sender
            owners[f"recv:{rnti}"] = handle.receiver
            owners[f"uplink:{rnti}"] = handle.uplink
            if handle.impaired_pipe is not None:
                owners[f"imp:{rnti}"] = handle.impaired_pipe
            if handle.egress is not None:
                owners[f"link:{rnti}"] = handle.egress
                owners[f"ingress:{rnti}"] = handle.egress.sink
        for rnti, user in self.network._users.items():
            if user.ue is not None:
                owners[f"ue:{rnti}"] = user.ue
        return owners

    def run(self, checkpoint=None) -> list[FlowResult]:
        """Run to the scenario's end and summarize every flow.

        ``checkpoint`` (a :class:`repro.harness.checkpoint.
        CheckpointManager`) switches the single event-loop call to the
        snapshotting run loop; results are byte-identical either way.
        """
        end_us = us_from_seconds(self.scenario.duration_s)
        if checkpoint is None:
            self.sim.run(until_us=end_us)
        else:
            checkpoint.run_to(self, end_us)
        results = []
        for handle in self.flows:
            state_fractions = None
            if isinstance(handle.receiver, PbeClient):
                state_fractions = handle.receiver.state_fractions(
                    self.sim.now)
            if handle.monitor is not None:
                # Teardown: drain decoder latency buffers so the last
                # records of the stream are not stranded in _pending.
                handle.monitor.flush()
            sender_states = None
            if isinstance(handle.cc, PbeSender):
                sender_states = {
                    state: us / US_PER_S
                    for state, us in handle.cc.state_durations_us(
                        self.sim.now).items()}
            allocations = None
            user = self.network.user(handle.spec.rnti)
            if user.allocated_history is not None:
                allocations = list(user.allocated_history)
            results.append(FlowResult(
                spec=handle.spec,
                summary=summarize_flow(handle.stats, handle.spec.scheme),
                stats=handle.stats,
                sent_packets=handle.sender.sent_packets,
                lost_packets=handle.sender.lost_packets,
                ca_activations=self.network.ca.activations_for(
                    handle.spec.rnti),
                state_fractions=state_fractions,
                allocations=allocations,
                sender_states=sender_states,
                fault_stats=handle.fault_stats()))
        return results


def run_flow(scenario: Scenario, scheme: str,
             spec_overrides: Optional[dict] = None,
             checkpoint=None) -> FlowResult:
    """Convenience: one flow, full scenario duration.

    With a :class:`repro.harness.checkpoint.CheckpointManager`, the
    newest valid snapshot (if any) is restored before running and the
    run snapshots on the manager's cadence.
    """
    experiment = Experiment(scenario)
    spec = FlowSpec(scheme=scheme, **(spec_overrides or {}))
    experiment.add_flow(spec)
    if checkpoint is not None:
        checkpoint.try_restore(experiment)
    return experiment.run(checkpoint=checkpoint)[0]
