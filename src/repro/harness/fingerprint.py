"""Byte-identity fingerprints for whole simulation runs.

The repo's invariant since PR 4 is that performance work never changes
behaviour: every optimized path must be *byte-identical* to the code it
replaced.  This module turns one simulated run into a SHA-256 digest of
everything observable — per-packet delivery logs, sender/client state
machines, carrier-aggregation decisions, and the monitor's internal
estimator state — so two engine variants (e.g. the batched subframe
engine vs. the scalar reference) can be compared with a string equality.

:func:`fingerprint_configs` defines the 6-configuration suite the perf
PRs verify against; :func:`run_fingerprint` executes one configuration
and returns its digest.  ``tests/test_batch_engine.py`` adds randomized
configurations on top.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..monitor.pbe import PbeMonitor
from ..phy.channel import GaussMarkovChannel, TraceChannel
from .runner import Experiment, FlowSpec
from .scenarios import Scenario


def _canon(part: object) -> object:
    """Canonicalize to plain Python values before hashing.

    The engines store bitwise-equal numbers with different Python types
    (the scalar path leaves ``np.float64`` where the batched path's
    ``.tolist()`` produces ``float``); ``repr`` would tell them apart,
    the IEEE bit pattern does not.  Identity means identical *values*.
    """
    if isinstance(part, np.generic):
        return part.item()
    if isinstance(part, (list, tuple)):
        return tuple(_canon(p) for p in part)
    if isinstance(part, dict):
        return tuple(sorted((repr(_canon(k)), _canon(v))
                            for k, v in part.items()))
    return part


def _hash_update(hasher: "hashlib._Hash", *parts: object) -> None:
    for part in parts:
        hasher.update(repr(_canon(part)).encode())
        hasher.update(b"\x00")


def _monitor_digest(hasher: "hashlib._Hash", monitor: PbeMonitor) -> None:
    """Fold the monitor's full internal state into the digest.

    Monitor state that never fed back into the sender would not show up
    in the packet log, so it is hashed explicitly — this is what makes
    the fingerprint sensitive to batch-ingest bugs on quiet cells.
    """
    _hash_update(hasher, monitor.last_subframe, monitor.gap_events,
                 monitor.missed_subframes, monitor.active_cells())
    for cell_id in sorted(monitor.estimators):
        est = monitor.estimators[cell_id]
        cap1 = est._cap + 1
        _hash_update(
            hasher, cell_id, est._count, est.last_subframe,
            est.last_own_grant_subframe,
            est._cum_pa[est._count % cap1],
            est._cum_idle[est._count % cap1],
            est._cum_rate[est._count % cap1],
            tuple(est._subframes), tuple(est._bers),
            sorted((rnti, act.active_subframes, act.total_prbs)
                   for rnti, act in est.users._activity.items()))
        decoder = monitor.decoders[cell_id]
        _hash_update(hasher, decoder.subframes_decoded,
                     decoder.messages_decoded, decoder.search_attempts)


def digest_run(experiment: Experiment, handles: list, results: list,
               report_window: int = 40) -> str:
    """Digest a completed experiment (any number of flows).

    ``handles``/``results`` are the :meth:`Experiment.add_flow` handles
    and the matching :meth:`Experiment.run` results.  Callers that wire
    their own multi-flow experiments (e.g. ``repro.metro`` shards) use
    this directly; :func:`run_fingerprint` wraps it for the standard
    one-scenario/spec-list configurations.
    """
    hasher = hashlib.sha256()
    _hash_update(hasher, experiment.sim.now, experiment.network.subframe)
    for handle, result in zip(handles, results):
        stats = result.stats
        _hash_update(
            hasher, tuple(stats.arrival_us), tuple(stats.size_bits),
            tuple(stats.delay_us), result.sent_packets,
            result.lost_packets, result.ca_activations,
            result.state_fractions, result.sender_states,
            result.fault_stats)
        if handle.monitor is not None:
            _monitor_digest(hasher, handle.monitor)
            report = handle.monitor.report(
                report_window, now_subframe=experiment.network.subframe)
            _hash_update(hasher, report.physical_capacity,
                         report.transport_capacity, report.fair_share,
                         report.transport_fair_share,
                         report.users_per_cell, report.active_cells,
                         report.staleness_subframes, report.confidence)
    return hasher.hexdigest()


def run_fingerprint(scenario: Scenario, specs: list[FlowSpec],
                    report_window: int = 40, batched: bool = True) -> str:
    """Run one configuration and digest everything observable.

    ``batched=False`` runs the same configuration on the scalar
    reference engine; the equivalence tests assert both digests match.
    """
    experiment = Experiment(scenario, batched=batched)
    handles = [experiment.add_flow(spec) for spec in specs]
    results = experiment.run()
    return digest_run(experiment, handles, results,
                      report_window=report_window)


def fingerprint_configs(duration_s: float = 2.0) \
        -> dict[str, tuple[Scenario, list[FlowSpec]]]:
    """The 6-configuration byte-identity suite.

    Covers: all three channel models, 1/2/3 aggregated cells (CA on and
    off), busy and idle cells, CQI reporting delay, a second competing
    scheme, and decoder/ACK fault injection.
    """
    trace = TraceChannel(
        [(0, -92.0), (400_000, -101.0), (900_000, -88.0),
         (1_400_000, -104.0), (2_000_000, -95.0)],
        fading_std_db=1.0, seed=77)
    gauss = GaussMarkovChannel(
        mean_sinr_db=15.0, std_db=3.0, memory=0.9,
        coherence_us=8_000, seed=42)
    faults = {"seed": 5, "dci_miss_rate": 0.05, "dci_false_rate": 0.002,
              "ack_loss_rate": 0.01}
    return {
        "busy_2cc_pbe": (
            Scenario(name="fp-busy-2cc", aggregated_cells=2,
                     mean_sinr_db=18.0, busy=True, background_users=3,
                     duration_s=duration_s, seed=11),
            [FlowSpec(scheme="pbe")]),
        "idle_3cc_pbe": (
            Scenario(name="fp-idle-3cc", aggregated_cells=3,
                     mean_sinr_db=23.0, busy=False,
                     duration_s=duration_s, seed=12),
            [FlowSpec(scheme="pbe")]),
        "busy_1cc_gauss_cqi": (
            Scenario(name="fp-gauss-1cc", aggregated_cells=1,
                     mean_sinr_db=15.0, busy=True, background_users=2,
                     cqi_delay_subframes=4, duration_s=duration_s,
                     seed=13),
            [FlowSpec(scheme="pbe", channel=gauss)]),
        "trace_2cc_pbe": (
            Scenario(name="fp-trace-2cc", aggregated_cells=2,
                     mean_sinr_db=18.0, busy=False,
                     duration_s=duration_s, seed=14),
            [FlowSpec(scheme="pbe", channel=trace)]),
        "busy_2cc_bbr": (
            Scenario(name="fp-bbr-2cc", aggregated_cells=2,
                     mean_sinr_db=19.0, busy=True, background_users=2,
                     duration_s=duration_s, seed=15),
            [FlowSpec(scheme="bbr")]),
        "faulted_2cc_pbe": (
            Scenario(name="fp-faults-2cc", aggregated_cells=2,
                     mean_sinr_db=17.0, busy=True, background_users=2,
                     duration_s=duration_s, seed=16),
            [FlowSpec(scheme="pbe", faults=faults)]),
    }


def fingerprint_suite(duration_s: float = 2.0) -> dict[str, str]:
    """Run the whole 6-configuration suite; ``{name: digest}``."""
    return {name: run_fingerprint(scenario, specs)
            for name, (scenario, specs) in
            fingerprint_configs(duration_s).items()}
