"""Crash-consistent mid-run snapshots with byte-identical resume.

A checkpoint captures a live :class:`repro.harness.runner.Experiment`
at a subframe boundary — event heap, derived RNG streams, PHY/channel/
HARQ state, scheduler and PF state, monitor/decoder columnar buffers,
per-flow transport state — as one versioned state document built by the
:mod:`repro.statedict` codec (no raw pickling of live objects; every
class is registered with an explicit skip list, and anything
unrecognized raises instead of silently corrupting the snapshot).

The restore contract is **byte identity**: rebuild the experiment from
its spec exactly as an uninterrupted run would, restore the newest
valid snapshot on top, finish the run — the run fingerprint
(:mod:`repro.harness.fingerprint`) equals the straight-through run's.
This holds because snapshots are taken between events (``Simulator.run``
segments see a continuous timeline), the encoder only *reads* state,
and the heap is preserved verbatim (cancelled entries included, so
sequence numbers and compaction behaviour replay exactly).

On-disk format (one file per snapshot, ``ckpt-<subframe>.snap``)::

    {"schema": ..., "version": 1, "subframe": N,
     "length": L, "sha256": ...}\\n
    <L bytes of pickle payload>

written with the same fsync + atomic-rename + parent-directory-fsync
discipline as ``ResultStore.put``.  Corrupt or truncated files (bad
checksum, short payload, unknown schema/version) are quarantined by
renaming to ``*.quarantined`` and the loader falls back to the next
older snapshot — or to from-scratch execution.

Pickle loading goes through a restricted unpickler that only admits
the state-dict marker classes, the registered identity record types
(packets, transport blocks, DCI records) and numpy array machinery.
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import os
import pickle
import signal
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from .. import statedict
from ..baselines.base import AckingReceiver, Sender
from ..baselines.bbr import Bbr
from ..baselines.copa import Copa
from ..baselines.cubic import Cubic, Reno
from ..baselines.fixedrate import FixedRate
from ..baselines.pcc import PccAllegro, PccVivace, _MonitorInterval, _PccBase
from ..baselines.sprout import Sprout
from ..baselines.vegas import Vegas
from ..baselines.verus import Verus
from ..baselines.windowed import WindowedMax, WindowedMin
from ..cell.basestation import CellularNetwork, UeCategory, _HarqState, _User
from ..cell.ca_manager import CarrierAggregationManager, _UserCaState
from ..cell.control_traffic import ControlBurst, ControlTrafficGenerator
from ..cell.queues import DownlinkQueue, TransportBlock
from ..cell.scheduler import ProportionalFairState
from ..cell.ue import UserEquipment
from ..core.client import PbeClient
from ..core.feedback import PbeFeedback
from ..core.guard import FeedbackGuard
from ..core.sender import PbeSender
from ..faults.decoder import LossyDecoder
from ..faults.pipe import ImpairedPipe
from ..monitor.capacity import CellCapacityEstimator, CellEstimate
from ..monitor.decoder import ControlChannelDecoder, MessageFusion
from ..monitor.filters import ActiveUserFilter, UserActivity, _SubframeUsers
from ..monitor.pbe import MonitorReport, PbeMonitor
from ..net.flow import FlowStats
from ..net.link import BatchingPipe, DelayPipe, FlowDemux, Link
from ..net.packet import AckBatch, Packet
from ..net.sim import Event, Simulator
from ..net.units import SUBFRAME_US
from ..phy.carrier import AggregationState
from ..phy.channel import GaussMarkovChannel, StaticChannel, TraceChannel
from ..phy.dci import DciMessage, SubframeBatch, SubframeRecord
from ..phy.harq import ReorderingBuffer
from ..traces.workload import CbrDemand, OnOffRandomDemand, ScheduledDemand

logger = logging.getLogger("repro.checkpoint")

#: Schema tag + version written into every snapshot header.
SCHEMA = "repro.harness/checkpoint"
VERSION = 1

SNAPSHOT_SUFFIX = ".snap"
QUARANTINE_SUFFIX = ".quarantined"

#: Default snapshot cadence, subframes (1 subframe = 1 ms simulated).
#: Boundaries this often are *eligible* for a snapshot; whether one is
#: actually persisted is governed by ``DEFAULT_WALL_BUDGET`` below.
DEFAULT_INTERVAL_SUBFRAMES = 1000

#: Amortized wall-clock budget for snapshotting, as a fraction of run
#: time.  Snapshot cost grows with accumulated state (per-packet stats
#: arrays), so a fixed subframe cadence cannot bound overhead on long
#: runs; instead the run loop skips an eligible boundary until the wall
#: time elapsed since the last save has amortized that save's cost
#: below this fraction.  The first eligible boundary always saves (it
#: establishes the cost estimate and guarantees an early restore
#: point), and drain/kill saves are unconditional.  2% leaves headroom
#: under the 5% acceptance bound: the cost estimate trails growth by
#: one save, so the realized fraction can exceed the nominal budget.
#: Measured overhead on the busy 2-carrier PBE scenario is in
#: EXPERIMENTS.md.
DEFAULT_WALL_BUDGET = 0.02


# ---------------------------------------------------------------------
# Type registration
# ---------------------------------------------------------------------
#: Data-record classes that ride through the state tree as live objects
#: (one pickle document => memoization preserves aliasing: a transport
#: block queued for HARQ retransmission and parked in a reordering
#: buffer decodes back to one shared object).
_IDENTITY = (Packet, TransportBlock, PbeFeedback, DciMessage,
             SubframeRecord, AckBatch)

#: Classes restored through the generic attribute walker.
_STATE = (
    # network / transport plumbing
    Link, DelayPipe, BatchingPipe, FlowDemux, FlowStats,
    Sender, AckingReceiver,
    # congestion controllers
    Bbr, Cubic, Reno, Copa, Sprout, Verus, Vegas, FixedRate,
    _PccBase, PccAllegro, PccVivace, _MonitorInterval,
    WindowedMax, WindowedMin,
    PbeSender, PbeClient, FeedbackGuard,
    # cellular network
    CellularNetwork, _User, _HarqState, UeCategory, UserEquipment,
    DownlinkQueue, ReorderingBuffer, AggregationState,
    ControlTrafficGenerator, ControlBurst,
    ProportionalFairState, CarrierAggregationManager, _UserCaState,
    # channels and demand
    StaticChannel, GaussMarkovChannel, TraceChannel,
    CbrDemand, ScheduledDemand, OnOffRandomDemand,
    # monitor pipeline
    PbeMonitor, CellCapacityEstimator, CellEstimate,
    ControlChannelDecoder,
    MessageFusion, ActiveUserFilter, UserActivity, _SubframeUsers,
    SubframeBatch, MonitorReport,
    # fault injectors
    ImpairedPipe, LossyDecoder,
)

for _cls in _IDENTITY:
    statedict.register_identity_type(_cls)
for _cls in _STATE:
    statedict.register_state_type(_cls)


# ---------------------------------------------------------------------
# Drain requests (SIGTERM-driven graceful preemption)
# ---------------------------------------------------------------------
class CheckpointDrain(OSError):
    """A drain request interrupted a checkpointed run.

    Raised from the run loop right after a boundary snapshot was
    persisted.  Subclasses :class:`OSError` so the exec layer's crash
    handling (`_CRASH_ERRORS`) retries the job — the retry restores the
    snapshot and loses no work.
    """


_drain_requested = False


def request_drain() -> None:
    """Ask the running checkpointed experiment to snapshot and stop."""
    global _drain_requested
    _drain_requested = True


def drain_requested() -> bool:
    return _drain_requested


def clear_drain() -> None:
    global _drain_requested
    _drain_requested = False


# ---------------------------------------------------------------------
# Experiment <-> state document
# ---------------------------------------------------------------------
def _noop() -> None:  # pragma: no cover - cancelled-event placeholder
    pass


def snapshot_experiment(experiment: Any) -> dict:
    """Encode a live experiment into a pickle-ready state document.

    Read-only: the experiment can keep running afterwards, and a run
    that snapshots is byte-identical to one that does not.
    """
    sim: Simulator = experiment.sim
    owners = experiment._checkpoint_owners()
    keys_by_id = {id(obj): key for key, obj in owners.items()}

    def encode_event_ref(event: Event, path: str) -> statedict.EventRef:
        if event._owner is not sim:
            raise statedict.SnapshotError(
                f"dangling event reference at {path} (event already "
                f"popped from the heap)")
        return statedict.EventRef(event.seq)

    ctx = statedict.EncodeContext(event_type=Event,
                                  encode_event=encode_event_ref)

    def encode_entry(time: int, seq: int, event: Event) -> tuple:
        callback = event.callback
        owner = getattr(callback, "__self__", None)
        if owner is None:
            raise statedict.SnapshotError(
                f"heap event seq={seq} has a non-method callback "
                f"{callback!r}; schedule bound methods with args")
        key = keys_by_id.get(id(owner))
        if key is None:
            raise statedict.SnapshotError(
                f"heap event seq={seq} callback {callback!r} is bound "
                f"to an unregistered owner {type(owner).__name__}")
        args = statedict.encode_value(event.args, ctx,
                                      f"$.heap[{seq}].args")
        return (time, seq, bool(event.cancelled), key,
                callback.__name__, args)

    flows = []
    for handle in experiment.flows:
        flows.append({
            "rnti": handle.spec.rnti,
            "scheme": handle.spec.scheme,
            "sender": statedict.snapshot_object(
                handle.sender, ctx, "$.sender"),
            "receiver": statedict.snapshot_object(
                handle.receiver, ctx, "$.receiver"),
            "monitor": (statedict.snapshot_object(
                handle.monitor, ctx, "$.monitor")
                if handle.monitor is not None else None),
            "egress": (statedict.snapshot_object(
                handle.egress, ctx, "$.egress")
                if handle.egress is not None else None),
            "uplink": statedict.snapshot_object(
                handle.uplink, ctx, "$.uplink"),
            "impaired": (statedict.snapshot_object(
                handle.impaired_pipe, ctx, "$.impaired")
                if handle.impaired_pipe is not None else None),
            "lossy": {
                cell: statedict.snapshot_object(lossy, ctx, "$.lossy")
                for cell, lossy in handle.lossy_decoders.items()},
        })
    shared = [{
        "link": statedict.snapshot_object(link, ctx, "$.shared.link"),
        "demux": statedict.snapshot_object(link.sink, ctx,
                                           "$.shared.demux"),
    } for link in experiment._shared_links]

    return {
        "sim": sim.snapshot_state(encode_entry),
        "network": statedict.snapshot_object(
            experiment.network, ctx, "$.network"),
        "flows": flows,
        "shared": shared,
    }


def restore_experiment(experiment: Any, doc: dict) -> None:
    """Restore a state document onto a freshly rebuilt experiment.

    The experiment must have been reconstructed from the same scenario
    and flow specs (same construction order) as the snapshotted one —
    exactly what re-running the job does.  Wiring (simulator
    references, callbacks, config) is kept from the rebuild; state is
    overwritten in place so identities captured by heap callbacks and
    closures stay valid.
    """
    sim: Simulator = experiment.sim
    if len(doc["flows"]) != len(experiment.flows):
        raise statedict.SnapshotError(
            f"snapshot has {len(doc['flows'])} flows, rebuilt "
            f"experiment has {len(experiment.flows)}")
    if len(doc["shared"]) != len(experiment._shared_links):
        raise statedict.SnapshotError("shared-link count mismatch")

    # Pass 1: placeholder events so EventRef attrs (pacing/RTO timers)
    # can resolve before callbacks are bound.
    pending: list[tuple[Event, tuple]] = []
    seq_map: dict[int, Event] = {}

    def make_event(raw: tuple) -> Event:
        time, seq, cancelled = raw[0], raw[1], raw[2]
        event = Event(time, seq, _noop, ())
        event.cancelled = cancelled
        seq_map[seq] = event
        pending.append((event, raw))
        return event

    sim.restore_state(doc["sim"], make_event)
    dctx = statedict.DecodeContext(
        decode_event=lambda ref: seq_map[ref.seq])

    # Pass 2: state (this also materializes users the rebuilt network
    # lacks — e.g. metro background churn — and drops rebuilt-only
    # ones, because the in-place dict restore mirrors snapshot keys).
    statedict.restore_into(experiment.network, doc["network"], dctx)
    for handle, fstate in zip(experiment.flows, doc["flows"]):
        if handle.spec.rnti != fstate["rnti"] \
                or handle.spec.scheme != fstate["scheme"]:
            raise statedict.SnapshotError(
                f"flow mismatch: snapshot ({fstate['scheme']}, rnti "
                f"{fstate['rnti']}) vs spec ({handle.spec.scheme}, "
                f"rnti {handle.spec.rnti})")
        statedict.restore_into(handle.sender, fstate["sender"], dctx)
        statedict.restore_into(handle.receiver, fstate["receiver"], dctx)
        if fstate["monitor"] is not None:
            statedict.restore_into(handle.monitor, fstate["monitor"],
                                   dctx)
        if fstate["egress"] is not None:
            statedict.restore_into(handle.egress, fstate["egress"], dctx)
        statedict.restore_into(handle.uplink, fstate["uplink"], dctx)
        if fstate["impaired"] is not None:
            statedict.restore_into(handle.impaired_pipe,
                                   fstate["impaired"], dctx)
        for cell, lstate in fstate["lossy"].items():
            statedict.restore_into(handle.lossy_decoders[cell], lstate,
                                   dctx)
    for link, sstate in zip(experiment._shared_links, doc["shared"]):
        statedict.restore_into(link, sstate["link"], dctx)
        statedict.restore_into(link.sink, sstate["demux"], dctx)

    # Pass 3: bind heap callbacks now that every owner (including
    # dynamically materialized users) exists.
    owners = experiment._checkpoint_owners()
    for event, raw in pending:
        _time, seq, cancelled, key, name, args = raw
        owner = owners.get(key)
        if owner is None:
            if cancelled:
                # A dead entry whose owner no longer exists (e.g. a
                # departed user): it only occupies heap space until
                # popped or compacted; never fires.
                continue
            raise statedict.SnapshotError(
                f"heap event seq={seq} targets unknown owner {key!r}")
        event.callback = getattr(owner, name)
        event.args = statedict.decode_value(args, dctx)


# ---------------------------------------------------------------------
# On-disk snapshot files
# ---------------------------------------------------------------------
class SnapshotCorrupt(Exception):
    """A snapshot file failed validation (checksum/schema/truncation)."""


class _RestrictedUnpickler(pickle.Unpickler):
    """Only admits state-dict markers, identity records and numpy."""

    _NUMPY_NAMES = frozenset(
        {"_reconstruct", "ndarray", "dtype", "scalar", "_frombuffer"})
    _MARKERS = frozenset(
        {"ObjState", "ObjRef", "NpRngState", "PyRngState", "EventRef"})

    def find_class(self, module: str, name: str):
        if module == "collections" and name == "deque":
            import collections
            return collections.deque
        if module == "array" and name in ("array", "_array_reconstructor"):
            import array
            return getattr(array, name)
        if module.partition(".")[0] == "numpy" \
                and name in self._NUMPY_NAMES:
            import importlib
            return getattr(importlib.import_module(module), name)
        if module == "repro.statedict" and name in self._MARKERS:
            return getattr(statedict, name)
        for cls in statedict.identity_types():
            if module == cls.__module__ and name == cls.__qualname__:
                return cls
        raise pickle.UnpicklingError(
            f"snapshot payload references forbidden {module}.{name}")


def snapshot_path(directory: "str | Path", subframe: int) -> Path:
    return Path(directory) / f"ckpt-{subframe:010d}{SNAPSHOT_SUFFIX}"


def write_snapshot(directory: "str | Path", subframe: int,
                   doc: dict) -> Path:
    """Persist one snapshot crash-consistently; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = pickle.dumps(doc, protocol=4)
    header = json.dumps(
        {"schema": SCHEMA, "version": VERSION, "subframe": subframe,
         "length": len(payload),
         "sha256": hashlib.sha256(payload).hexdigest()},
        sort_keys=True).encode("ascii")
    final = snapshot_path(directory, subframe)
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=final.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(header)
            handle.write(b"\n")
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # Make the rename itself durable (matches ResultStore.put).
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return final


def read_snapshot(path: "str | Path") -> tuple[int, dict]:
    """Validate and load one snapshot file -> (subframe, document).

    Raises :class:`SnapshotCorrupt` on any integrity failure.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise SnapshotCorrupt(f"unreadable: {exc}") from exc
    header_bytes, sep, payload = blob.partition(b"\n")
    if not sep:
        raise SnapshotCorrupt("missing header line")
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise SnapshotCorrupt(f"bad header: {exc}") from exc
    if not isinstance(header, dict) or header.get("schema") != SCHEMA:
        raise SnapshotCorrupt(f"unknown schema {header!r}")
    if header.get("version") != VERSION:
        raise SnapshotCorrupt(
            f"unknown snapshot version {header.get('version')!r}")
    length = header.get("length")
    if not isinstance(length, int) or len(payload) != length:
        raise SnapshotCorrupt(
            f"truncated payload: {len(payload)} bytes, header says "
            f"{length}")
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("sha256"):
        raise SnapshotCorrupt("checksum mismatch")
    try:
        doc = _RestrictedUnpickler(io.BytesIO(payload)).load()
    except Exception as exc:
        raise SnapshotCorrupt(f"payload does not unpickle: {exc}") \
            from exc
    if not isinstance(doc, dict) or "sim" not in doc:
        raise SnapshotCorrupt("payload is not a snapshot document")
    return int(header["subframe"]), doc


def quarantine_snapshot(path: Path, reason: str) -> Path:
    """Rename a corrupt snapshot aside so it is never retried."""
    target = path.with_name(path.name + QUARANTINE_SUFFIX)
    try:
        os.replace(path, target)
    except OSError:  # pragma: no cover - already gone
        return path
    logger.warning("quarantined corrupt checkpoint %s (%s)", path,
                   reason)
    return target


def count_quarantined(directory: "str | Path") -> int:
    """Quarantined snapshot files under ``directory`` (recursive)."""
    root = Path(directory)
    if not root.is_dir():
        return 0
    return sum(1 for _ in root.rglob(f"*{QUARANTINE_SUFFIX}"))


# ---------------------------------------------------------------------
# Checkpoint manager
# ---------------------------------------------------------------------
@dataclass
class CheckpointConfig:
    """Where and how often to snapshot one job's run.

    ``kill_at_subframe`` is the chaos hook: the run loop persists a
    boundary snapshot at that subframe and then SIGKILLs its own
    process — the retried job restores the snapshot and must finish
    byte-identical to an uninterrupted run.

    ``wall_budget`` caps the amortized wall-clock fraction spent
    saving snapshots (see :data:`DEFAULT_WALL_BUDGET`); ``None`` or
    ``0`` disables the throttle and saves at every eligible boundary
    (tests that assert exact snapshot sets rely on that).
    """

    directory: str
    interval_subframes: int = DEFAULT_INTERVAL_SUBFRAMES
    kill_at_subframe: Optional[int] = None
    wall_budget: Optional[float] = DEFAULT_WALL_BUDGET

    def to_dict(self) -> dict:
        out: dict = {"dir": self.directory,
                     "interval_subframes": self.interval_subframes}
        if self.kill_at_subframe is not None:
            out["kill_at_subframe"] = self.kill_at_subframe
        if self.wall_budget != DEFAULT_WALL_BUDGET:
            out["wall_budget"] = self.wall_budget
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CheckpointConfig":
        return cls(directory=data["dir"],
                   interval_subframes=data.get(
                       "interval_subframes",
                       DEFAULT_INTERVAL_SUBFRAMES),
                   kill_at_subframe=data.get("kill_at_subframe"),
                   wall_budget=data.get("wall_budget",
                                        DEFAULT_WALL_BUDGET))


class CheckpointManager:
    """Drives the snapshot/restore cycle for one experiment run."""

    def __init__(self, config: CheckpointConfig) -> None:
        if config.interval_subframes < 1:
            raise ValueError("checkpoint interval must be >= 1 subframe")
        self.config = config
        self.saved = 0
        self.quarantined = 0
        self.restored_subframe: Optional[int] = None
        #: Wall-clock bookkeeping for the amortization throttle.
        self._last_save_end: Optional[float] = None
        self._save_cost = 0.0

    # -- persistence ---------------------------------------------------
    def save(self, experiment: Any) -> Path:
        start = time.monotonic()
        subframe = experiment.sim.now // SUBFRAME_US
        doc = snapshot_experiment(experiment)
        path = write_snapshot(self.config.directory, subframe, doc)
        self.saved += 1
        end = time.monotonic()
        # Latest cost, not an average: snapshot size (and so cost)
        # grows monotonically with accumulated run state.
        self._save_cost = end - start
        self._last_save_end = end
        return path

    def _should_save(self) -> bool:
        """Throttle boundary saves to the amortized wall budget."""
        budget = self.config.wall_budget
        if not budget:
            return True
        if self._last_save_end is None:
            return True  # first eligible boundary: establish the cost
        elapsed = time.monotonic() - self._last_save_end
        return elapsed * budget >= self._save_cost * (1.0 - budget)

    def try_restore(self, experiment: Any) -> Optional[int]:
        """Restore the newest valid snapshot, quarantining bad ones.

        Returns the restored subframe, or ``None`` (from-scratch run)
        when no usable snapshot exists.
        """
        root = Path(self.config.directory)
        if not root.is_dir():
            return None
        candidates = sorted(root.glob(f"ckpt-*{SNAPSHOT_SUFFIX}"),
                            reverse=True)
        for path in candidates:
            try:
                subframe, doc = read_snapshot(path)
            except SnapshotCorrupt as exc:
                quarantine_snapshot(path, str(exc))
                self.quarantined += 1
                continue
            restore_experiment(experiment, doc)
            self.restored_subframe = subframe
            logger.info("restored checkpoint %s (subframe %d)",
                        path.name, subframe)
            return subframe
        return None

    # -- run loop ------------------------------------------------------
    def run_to(self, experiment: Any, end_us: int) -> None:
        """Run the experiment to ``end_us``, snapshotting on cadence.

        Byte-identical to a single ``sim.run(until_us=end_us)``:
        segments split the same continuous timeline and snapshotting
        only reads state.
        """
        sim: Simulator = experiment.sim
        interval_us = self.config.interval_subframes * SUBFRAME_US
        kill_us: Optional[int] = None
        if self.config.kill_at_subframe is not None:
            kill_us = self.config.kill_at_subframe * SUBFRAME_US
            if kill_us <= sim.now:
                kill_us = None  # already past it (restored run)
        while sim.now < end_us:
            target = min(end_us,
                         (sim.now // interval_us + 1) * interval_us)
            if kill_us is not None and sim.now < kill_us:
                target = min(target, kill_us)
            sim.run(until_us=target)
            if kill_us is not None and sim.now >= kill_us:
                # Chaos fault: persist the boundary snapshot, then die
                # the hard way — the retry must resume, not restart.
                self.save(experiment)
                os.kill(os.getpid(), signal.SIGKILL)
            if sim.now >= end_us:
                break
            if drain_requested():
                # Preemption must persist a restore point regardless of
                # the amortization budget — losing work is the one
                # thing a drain exists to prevent.
                self.save(experiment)
                raise CheckpointDrain(
                    f"drained at subframe {sim.now // SUBFRAME_US} "
                    f"after snapshot")
            if self._should_save():
                self.save(experiment)
