"""Ablation benches for PBE-CC's design choices (DESIGN.md list).

Each variant disables one mechanism the paper argues for:

* ``no_averaging``   — instantaneous estimates instead of the §4.2.1
  RTprop-window averaging of Rw/Pa/Pidle.
* ``no_user_filter`` — count every detected user (including parameter-
  update bursts) in the fair-share denominator N.
* ``no_delay_margin``— Dth = Dprop (the "theoretical threshold" §4.2.2
  shows working poorly, flapping into the Internet state on HARQ
  jitter).
* ``no_linear_ramp`` — jump straight to Cf instead of the 3-RTT ramp.
* ``bare_bdp_cwnd``  — no HARQ-stall margin in the congestion window.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...exec import Job, make_runner
from ..metrics import FlowSummary
from ..report import format_table
from ..scenarios import Scenario
from ..serialize import summary_from_dict

VARIANTS: dict[str, dict] = {
    "paper": {},
    "no_averaging": {
        "pbe_monitor_kwargs": {"averaging_window_override": 1}},
    "no_user_filter": {
        "pbe_monitor_kwargs": {"filter_control_users": False}},
    "no_delay_margin": {
        "pbe_client_kwargs": {"delay_margin_us": 0}},
    "no_linear_ramp": {
        "cc_kwargs": {"ramp_rtts": 0}},
    "bare_bdp_cwnd": {
        "cc_kwargs": {"retx_margin_us": 0}},
}


@dataclass
class AblationRow:
    variant: str
    summary: FlowSummary
    internet_fraction: float


@dataclass
class AblationResult:
    rows: list

    def row(self, variant: str) -> AblationRow:
        for r in self.rows:
            if r.variant == variant:
                return r
        raise KeyError(variant)

    def format(self) -> str:
        return format_table(
            ["variant", "tput (Mbit/s)", "avg delay", "p95 delay",
             "internet-state %"],
            [[r.variant, r.summary.average_throughput_mbps,
              r.summary.average_delay_ms, r.summary.p95_delay_ms,
              100 * r.internet_fraction] for r in self.rows],
            title="PBE-CC ablations (busy two-carrier cell)")


def run_ablation(variants: tuple = tuple(VARIANTS),
                 duration_s: float = 6.0, seed: int = 53,
                 jobs: int = 1, cache_dir=None,
                 runner=None, progress=None) -> AblationResult:
    """Run each PBE variant on the same busy cell.

    Variants are independent jobs; ``jobs``/``cache_dir`` parallelize
    and memoize them (see :mod:`repro.exec`).
    """
    job_list = [
        Job(Scenario(name=f"ablation-{variant}",
                     aggregated_cells=2, mean_sinr_db=17.0,
                     busy=True, background_users=2,
                     duration_s=duration_s, seed=seed),
            "pbe", spec_overrides=dict(VARIANTS[variant]))
        for variant in variants]
    # Strict: this driver consumes payloads positionally, so a failed
    # job must abort (pass a non-strict ``runner`` to override).
    runner = make_runner(jobs=jobs, cache_dir=cache_dir, runner=runner,
                         progress=progress, strict=True)
    rows = []
    for variant, payload in zip(variants, runner.run(job_list)):
        fractions = payload["state_fractions"] or {}
        rows.append(AblationRow(
            variant=variant,
            summary=summary_from_dict(payload["summary"]),
            internet_fraction=fractions.get("internet", 0.0)))
    return AblationResult(rows)
