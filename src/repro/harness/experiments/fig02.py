"""Figure 2: secondary-cell activation and deactivation timeline.

A fixed 40 Mbit/s offered load exceeds the primary cell's capacity, so
the network activates a secondary cell (~0.13 s in), drains the queue
that built up meanwhile, and deactivates the secondary again once the
sender drops to 6 Mbit/s.  The figure plots per-cell allocated PRBs
and packet delay over time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...phy.carrier import CarrierConfig
from ..report import format_table
from ..runner import Experiment, FlowSpec
from ..scenarios import Scenario


@dataclass
class Fig02Result:
    #: (time_s, primary PRBs, secondary PRBs, mean delay ms) rows at
    #: 100 ms resolution.
    timeline: list
    activation_s: float | None
    deactivation_s: float | None
    peak_delay_ms: float
    steady_delay_ms: float

    def format(self) -> str:
        rows = [[f"{t:.1f}", p, s, d] for t, p, s, d in self.timeline]
        header = (f"Figure 2: CA timeline — activation at "
                  f"{self.activation_s}s (paper: ~0.13s), deactivation "
                  f"at {self.deactivation_s}s after the rate drop; "
                  f"peak delay {self.peak_delay_ms:.0f} ms, steady "
                  f"{self.steady_delay_ms:.0f} ms")
        return header + "\n" + format_table(
            ["t (s)", "primary PRBs", "secondary PRBs", "delay (ms)"],
            rows)


def run_fig02(high_rate_bps: float = 40e6, low_rate_bps: float = 6e6,
              switch_s: float = 2.0, duration_s: float = 4.0,
              seed: int = 3) -> Fig02Result:
    """Reproduce the Figure 2 experiment.

    The primary carrier is sized (5 MHz) so the high offered load
    exceeds it, forcing a secondary-cell activation.
    """
    scenario = Scenario(
        name="fig02",
        carriers=[CarrierConfig(0, 5.0), CarrierConfig(1, 10.0)],
        aggregated_cells=2, busy=False, mean_sinr_db=20.0,
        duration_s=duration_s, seed=seed)
    experiment = Experiment(scenario)
    handle = experiment.add_flow(FlowSpec(
        scheme="cbr", log_allocations=True,
        cc_kwargs={"rate_bps": high_rate_bps,
                   "schedule": [(0.0, high_rate_bps),
                                (switch_s, low_rate_bps)]}))
    results = experiment.run()

    allocations = results[0].allocations or []
    stats = results[0].stats
    arrivals = np.asarray(stats.arrival_us)
    delays = np.asarray(stats.delay_us) / 1_000.0

    timeline = []
    for lo_ms in range(0, int(duration_s * 1_000), 100):
        hi_ms = lo_ms + 100
        per_cell = {0: 0, 1: 0}
        for subframe, cell_id, prbs in allocations:
            if lo_ms <= subframe < hi_ms:
                per_cell[cell_id] = per_cell.get(cell_id, 0) + prbs
        mask = (arrivals >= lo_ms * 1_000) & (arrivals < hi_ms * 1_000)
        delay = float(delays[mask].mean()) if mask.any() else 0.0
        timeline.append((lo_ms / 1_000.0, per_cell[0] // 100,
                         per_cell[1] // 100, delay))

    events = experiment.network.ca.events
    activation = next((sf / 1_000.0 for sf, _, kind, _ in events
                       if kind == "activate"), None)
    deactivation = next((sf / 1_000.0 for sf, _, kind, _ in events
                         if kind == "deactivate"), None)
    steady_mask = arrivals < switch_s * 1e6
    return Fig02Result(
        timeline=timeline,
        activation_s=activation,
        deactivation_s=deactivation,
        peak_delay_ms=float(delays.max()) if delays.size else 0.0,
        steady_delay_ms=float(np.median(delays[steady_mask]))
        if steady_mask.any() else 0.0)
