"""Figure 7: detected active users and the control-traffic filter.

On a busy tower the monitor sees ~15.8 active users on average inside
a 40 ms window (max 28), but most are parameter-update traffic: 68.2%
are active for exactly one subframe, 47.7% occupy exactly 4 PRBs.
After the ``Ta > 1, Pa > 4`` filter the average drops to ~1.3 with at
most ~7 genuine competitors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...monitor.filters import ActiveUserFilter
from ...phy.carrier import CarrierConfig
from ..report import format_cdf
from ..runner import Experiment, FlowSpec
from ..scenarios import Scenario


@dataclass
class Fig07Result:
    #: Per-40ms-window counts of all detected users.
    all_user_counts: list
    #: Per-window counts after the Ta/Pa filter.
    filtered_counts: list
    #: Per-user activity lengths (subframes) across the run.
    active_lengths: list
    #: Per-user average occupied PRBs.
    average_prbs: list

    @property
    def mean_detected(self) -> float:
        return float(np.mean(self.all_user_counts))

    @property
    def mean_filtered(self) -> float:
        return float(np.mean(self.filtered_counts))

    @property
    def frac_single_subframe(self) -> float:
        return float(np.mean(np.asarray(self.active_lengths) == 1))

    def format(self) -> str:
        return "\n".join([
            "Figure 7a: active users per 40 ms window",
            f"  all users      mean={self.mean_detected:.1f} "
            f"max={max(self.all_user_counts)}  (paper: 15.8 / 28)",
            f"  Ta>1, Pa>4     mean={self.mean_filtered:.2f} "
            f"max={max(self.filtered_counts)}  (paper: 1.3 / 7)",
            "Figure 7b: per-user activity",
            f"  active length (subframes): "
            f"{format_cdf(self.active_lengths)}",
            f"  single-subframe users: "
            f"{100 * self.frac_single_subframe:.1f}%  (paper: 68.2%)",
            f"  occupied PRBs: {format_cdf(self.average_prbs)}",
        ])


def run_fig07(duration_s: float = 20.0, busy_arrivals: float = 0.4,
              background_users: int = 2, seed: int = 23) -> Fig07Result:
    """Observe a busy cell through the monitor's user filter."""
    scenario = Scenario(
        name="fig07", carriers=[CarrierConfig(0, 20.0)],
        aggregated_cells=1, mean_sinr_db=18.0, busy=True,
        background_users=background_users, duration_s=duration_s,
        seed=seed)
    experiment = Experiment(scenario)
    user_filter = ActiveUserFilter(window_subframes=40)
    all_counts: list[int] = []
    filtered_counts: list[int] = []
    user_activity: dict[int, list[int]] = {}

    def observe(record):
        user_filter.update(record)
        if record.subframe % 40 == 39:
            all_counts.append(len(user_filter.detected_users()))
            filtered_counts.append(len(user_filter.data_users()))
        for message in record.messages:
            if message.n_prbs > 0:
                user_activity.setdefault(message.rnti, []).append(
                    message.n_prbs)

    experiment.network.attach_monitor(0, observe)
    # One data flow of our own plus the scenario's background users.
    experiment.add_flow(FlowSpec(scheme="pbe"))
    experiment.run()

    lengths = [len(prbs) for prbs in user_activity.values()]
    avg_prbs = [float(np.mean(prbs)) for prbs in user_activity.values()]
    return Fig07Result(all_counts, filtered_counts, lengths, avg_prbs)
