"""Figures 16-17: performance under mobility (§6.3.2).

The phone follows the paper's scripted trajectory (hold at −85 dBm,
move to −105 dBm over 13 s, move back fast, hold).  Figure 16 compares
all eight algorithms' overall delay/throughput; Figure 17 plots PBE
and BBR's per-2-second medians, showing PBE tracking the capacity both
down and up while BBR over-reacts and queues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...traces.mobility import paper_trajectory
from ..metrics import FlowSummary, windowed_throughput_bps
from ..report import format_table
from ..runner import Experiment, FlowSpec
from ..scenarios import Scenario
from .fig13 import EIGHT_SCHEMES


@dataclass
class MobilityTimeline:
    """Per-2-second medians for one scheme (Figure 17)."""

    scheme: str
    interval_s: float
    throughput_mbps: list
    delay_ms: list


@dataclass
class Fig16Result:
    #: {scheme: FlowSummary} — Figure 16.
    summaries: dict
    #: Figure 17 timelines (PBE and BBR by default).
    timelines: list

    def format(self) -> str:
        rows = [[s, v.average_throughput_mbps, v.average_delay_ms,
                 v.p95_delay_ms]
                for s, v in self.summaries.items()]
        parts = [format_table(
            ["scheme", "tput (Mbit/s)", "avg delay", "p95 delay"],
            rows, title="Figure 16: mobility (40 s trajectory)")]
        for tl in self.timelines:
            rows = [[f"{i * tl.interval_s:.0f}", t, d]
                    for i, (t, d) in enumerate(
                        zip(tl.throughput_mbps, tl.delay_ms))]
            parts.append(format_table(
                ["t (s)", "tput (Mbit/s)", "median delay (ms)"], rows,
                title=f"Figure 17 ({tl.scheme})"))
        return "\n\n".join(parts)


def _timeline(scheme: str, stats, duration_s: float,
              interval_s: float) -> MobilityTimeline:
    arrivals = np.asarray(stats.arrival_us)
    delays = np.asarray(stats.delay_us) / 1_000.0
    sizes = np.asarray(stats.size_bits)
    tputs, meds = [], []
    step = int(interval_s * 1e6)
    for lo in range(0, int(duration_s * 1e6), step):
        mask = (arrivals >= lo) & (arrivals < lo + step)
        tputs.append(float(sizes[mask].sum() / interval_s / 1e6))
        meds.append(float(np.median(delays[mask])) if mask.any()
                    else 0.0)
    return MobilityTimeline(scheme, interval_s, tputs, meds)


def run_fig16_17(schemes: tuple = EIGHT_SCHEMES,
                 timeline_schemes: tuple = ("pbe", "bbr"),
                 duration_s: float = 40.0, interval_s: float = 2.0,
                 seed: int = 37) -> Fig16Result:
    """Run the mobility experiment (idle cell, scripted trajectory).

    ``duration_s != 40`` compresses/stretches the paper's 40-second
    trajectory proportionally.
    """
    scenario = Scenario(name="mobility", aggregated_cells=2,
                        busy=False, duration_s=duration_s, seed=seed)
    summaries: dict[str, FlowSummary] = {}
    timelines = []
    for scheme in schemes:
        channel = paper_trajectory(time_scale=duration_s / 40.0,
                                   seed=seed)
        experiment = Experiment(scenario)
        experiment.add_flow(FlowSpec(scheme=scheme, channel=channel))
        result = experiment.run()[0]
        summaries[scheme] = result.summary
        if scheme in timeline_schemes:
            timelines.append(_timeline(scheme, result.stats,
                                       duration_s, interval_s))
    return Fig16Result(summaries, timelines)
