"""The §6.3.1 stationary-location sweep.

Runs every requested scheme over every location of the 40-location
grid (or a subset — the full sweep is hundreds of flow-seconds of
simulation).  Table 1, Figure 12 and Figure 15 are all views of this
one sweep's results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics import FlowSummary
from ..runner import FlowSpec, Experiment
from ..scenarios import Scenario, stationary_locations


@dataclass
class SweepEntry:
    """One (scheme, location) run."""

    scheme: str
    location: str
    busy: bool
    aggregated_cells: int
    summary: FlowSummary
    ca_activations: int
    state_fractions: dict | None


@dataclass
class SweepResult:
    """All runs of one stationary sweep."""

    entries: list[SweepEntry] = field(default_factory=list)

    def for_scheme(self, scheme: str) -> list[SweepEntry]:
        return [e for e in self.entries if e.scheme == scheme]

    def for_location(self, location: str) -> dict[str, SweepEntry]:
        return {e.scheme: e for e in self.entries
                if e.location == location}

    def locations(self) -> list[str]:
        seen: list[str] = []
        for entry in self.entries:
            if entry.location not in seen:
                seen.append(entry.location)
        return seen

    def schemes(self) -> list[str]:
        seen: list[str] = []
        for entry in self.entries:
            if entry.scheme not in seen:
                seen.append(entry.scheme)
        return seen


def run_stationary_sweep(schemes: tuple[str, ...] = ("pbe", "bbr"),
                         n_busy: int = 25, n_idle: int = 15,
                         duration_s: float = 8.0,
                         base_seed: int = 100) -> SweepResult:
    """Run ``schemes`` over a busy/idle location grid.

    ``n_busy=25, n_idle=15`` reproduces the paper's full 40-location
    grid; smaller values subsample it proportionally (benchmarks use a
    reduced grid by default to keep runtimes sane).
    """
    if n_busy < 0 or n_idle < 0 or n_busy + n_idle == 0:
        raise ValueError("need at least one location")
    grid = stationary_locations(duration_s=duration_s,
                                base_seed=base_seed)
    busy = [s for s in grid if s.busy][:n_busy]
    idle = [s for s in grid if not s.busy][:n_idle]
    result = SweepResult()
    for scenario in busy + idle:
        for scheme in schemes:
            result.entries.append(_run_one(scenario, scheme))
    return result


def _run_one(scenario: Scenario, scheme: str) -> SweepEntry:
    experiment = Experiment(scenario)
    experiment.add_flow(FlowSpec(scheme=scheme))
    flow = experiment.run()[0]
    return SweepEntry(
        scheme=scheme, location=scenario.name, busy=scenario.busy,
        aggregated_cells=scenario.aggregated_cells,
        summary=flow.summary, ca_activations=flow.ca_activations,
        state_fractions=flow.state_fractions)
