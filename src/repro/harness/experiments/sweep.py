"""The §6.3.1 stationary-location sweep.

Runs every requested scheme over every location of the 40-location
grid (or a subset — the full sweep is hundreds of flow-seconds of
simulation).  Table 1, Figure 12 and Figure 15 are all views of this
one sweep's results.

Each (location, scheme) run is an independent, deterministic job, so
the sweep submits through :class:`repro.exec.ParallelRunner`: pass
``jobs=N`` to fan runs out over worker processes and ``cache_dir`` to
memoize completed runs on disk (re-running a sweep then only executes
jobs whose inputs changed, and interrupted sweeps resume for free).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...exec import Job, is_failure, make_runner
from ..metrics import FlowSummary
from ..scenarios import Scenario, stationary_locations
from ..serialize import summary_from_dict, summary_to_dict


@dataclass
class SweepEntry:
    """One (scheme, location) run."""

    scheme: str
    location: str
    busy: bool
    aggregated_cells: int
    summary: FlowSummary
    ca_activations: int
    state_fractions: dict | None


@dataclass
class SweepResult:
    """All runs of one stationary sweep."""

    entries: list[SweepEntry] = field(default_factory=list)
    #: Structured :class:`repro.exec.JobFailure` records for runs that
    #: failed (non-strict execution keeps the rest of the sweep).
    failures: list = field(default_factory=list)
    #: Lazily built {location: {scheme: entry}} index, rebuilt whenever
    #: the entry count changes (entries are append-only in practice).
    _location_index: dict | None = field(
        default=None, init=False, repr=False, compare=False)
    _indexed_len: int = field(
        default=-1, init=False, repr=False, compare=False)

    def for_scheme(self, scheme: str) -> list[SweepEntry]:
        return [e for e in self.entries if e.scheme == scheme]

    def for_location(self, location: str) -> dict[str, SweepEntry]:
        return dict(self._by_location().get(location, {}))

    def locations(self) -> list[str]:
        return list(dict.fromkeys(e.location for e in self.entries))

    def schemes(self) -> list[str]:
        return list(dict.fromkeys(e.scheme for e in self.entries))

    def _by_location(self) -> dict:
        if (self._location_index is None
                or self._indexed_len != len(self.entries)):
            index: dict[str, dict] = {}
            for entry in self.entries:
                index.setdefault(entry.location, {})[entry.scheme] = entry
            self._location_index = index
            self._indexed_len = len(self.entries)
        return self._location_index


def entry_to_dict(entry: SweepEntry) -> dict:
    """Flatten one sweep entry to JSON-ready primitives."""
    return {
        "scheme": entry.scheme,
        "location": entry.location,
        "busy": entry.busy,
        "aggregated_cells": entry.aggregated_cells,
        "summary": summary_to_dict(entry.summary),
        "ca_activations": entry.ca_activations,
        "state_fractions": entry.state_fractions,
    }


def entry_from_payload(job: Job, payload: dict) -> SweepEntry:
    """Build a :class:`SweepEntry` from a job and its runner payload."""
    scenario = job.scenario
    return SweepEntry(
        scheme=job.scheme, location=scenario.name, busy=scenario.busy,
        aggregated_cells=scenario.aggregated_cells,
        summary=summary_from_dict(payload["summary"]),
        ca_activations=payload["ca_activations"],
        state_fractions=payload["state_fractions"])


def sweep_jobs(schemes: tuple[str, ...] = ("pbe", "bbr"),
               n_busy: int = 25, n_idle: int = 15,
               duration_s: float = 8.0,
               base_seed: int = 100) -> list[Job]:
    """The sweep's job list ((location × scheme), submission order)."""
    if n_busy < 0 or n_idle < 0 or n_busy + n_idle == 0:
        raise ValueError("need at least one location")
    grid = stationary_locations(duration_s=duration_s,
                                base_seed=base_seed)
    busy = [s for s in grid if s.busy][:n_busy]
    idle = [s for s in grid if not s.busy][:n_idle]
    return [Job(scenario, scheme)
            for scenario in busy + idle for scheme in schemes]


def run_stationary_sweep(schemes: tuple[str, ...] = ("pbe", "bbr"),
                         n_busy: int = 25, n_idle: int = 15,
                         duration_s: float = 8.0,
                         base_seed: int = 100,
                         jobs: int = 1, cache_dir=None,
                         runner=None, progress=None,
                         timeout_s=None, retries: int = 1,
                         strict: bool = False,
                         failure_budget=None) -> SweepResult:
    """Run ``schemes`` over a busy/idle location grid.

    ``n_busy=25, n_idle=15`` reproduces the paper's full 40-location
    grid; smaller values subsample it proportionally (benchmarks use a
    reduced grid by default to keep runtimes sane).

    ``jobs``/``cache_dir`` configure parallelism and result caching
    (see :func:`repro.exec.make_runner`); pass a ``runner`` directly to
    reuse a pool/store across sweeps or to inspect its telemetry.
    Supervision knobs pass straight through: ``timeout_s`` (concurrent
    per-job deadline), ``retries`` (crash/timeout re-submissions with
    jittered backoff), ``strict`` (abort on first failure instead of
    recording a :class:`repro.exec.JobFailure` in ``.failures``) and
    ``failure_budget`` (abort once that fraction of jobs has failed).
    With a ``cache_dir`` the sweep journals every outcome beside the
    cache, so an interrupted run resumes with zero recomputation.
    """
    job_list = sweep_jobs(schemes, n_busy=n_busy, n_idle=n_idle,
                          duration_s=duration_s, base_seed=base_seed)
    runner = make_runner(jobs=jobs, cache_dir=cache_dir, runner=runner,
                         progress=progress, timeout_s=timeout_s,
                         retries=retries, strict=strict,
                         failure_budget=failure_budget)
    payloads = runner.run(job_list)
    result = SweepResult()
    for job, payload in zip(job_list, payloads):
        if is_failure(payload):
            result.failures.append(payload)
        else:
            result.entries.append(entry_from_payload(job, payload))
    return result
