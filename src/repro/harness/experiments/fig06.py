"""Figure 6: retransmission/protocol overhead and TB error rates.

(a) The fraction of wireless capacity spent on HARQ retransmissions
(grows with offered load, larger at the weak-signal location) and on
protocol headers (constant γ = 6.8%), measured from decoded control
messages at two signal strengths.

(b) Transport-block error rate vs TB size: the theoretical
``1-(1-p)^L`` curves against the error rate the simulated MAC actually
produces.

Substitution note: the paper's two locations are RSSI −98/−113 dBm;
we use the SINRs those map to under our noise-floor model, and sweep
the offered load as a fraction of each location's capacity so both
locations cover the same relative range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...phy.carrier import CarrierConfig
from ...phy.error import block_error_rate, sinr_to_ber
from ..report import format_table
from ..runner import Experiment, FlowSpec
from ..scenarios import Scenario

#: SINRs standing in for the paper's −98 dBm and −113 dBm locations.
STRONG_SINR_DB = 13.0
WEAK_SINR_DB = 4.0


@dataclass
class OverheadPoint:
    sinr_db: float
    offered_mbps: float
    retransmission_pct: float
    protocol_pct: float


@dataclass
class TblerPoint:
    tb_bits: int
    ber: float
    theory: float
    empirical: float


@dataclass
class Fig06Result:
    overhead: list        #: Figure 6(a) points
    tbler: list           #: Figure 6(b) points

    def format(self) -> str:
        a = format_table(
            ["SINR (dB)", "load (Mbit/s)", "retx %", "protocol %"],
            [[p.sinr_db, p.offered_mbps, p.retransmission_pct,
              p.protocol_pct] for p in self.overhead],
            title="Figure 6a: overhead vs offered load")
        b = format_table(
            ["TB size (kbit)", "BER", "TBLER theory", "TBLER measured"],
            [[p.tb_bits / 1_000, f"{p.ber:.1e}", p.theory, p.empirical]
             for p in self.tbler],
            title="Figure 6b: transport-block error rate vs TB size")
        return a + "\n\n" + b


def _overhead_at(sinr_db: float, load_fraction: float,
                 duration_s: float, seed: int) -> OverheadPoint:
    scenario = Scenario(
        name="fig06", carriers=[CarrierConfig(0, 20.0)],
        aggregated_cells=1, mean_sinr_db=sinr_db, fading_std_db=0.0,
        busy=False, duration_s=duration_s, seed=seed)
    experiment = Experiment(scenario)

    records = []
    experiment.network.attach_monitor(0, records.append)
    # Estimate the location's capacity from the PHY tables, then offer
    # the requested fraction of it.
    user_probe = Experiment(scenario)  # fresh sim for a probe
    probe_net = user_probe.network
    probe_net.add_user(1, [0], scenario.channel())
    probe_net.user(1).refresh_channel(0)
    capacity_bps = probe_net.user(1).bits_per_prb_now * 100 * 1_000
    offered = load_fraction * capacity_bps

    experiment.add_flow(FlowSpec(scheme="cbr",
                                 cc_kwargs={"rate_bps": offered}))
    experiment.run()

    new_bits = retx_bits = 0
    for record in records:
        for message in record.messages:
            if message.is_control:
                continue
            if message.new_data:
                new_bits += message.tbs_bits
            else:
                retx_bits += message.tbs_bits
    total = new_bits + retx_bits
    retx_pct = 100.0 * retx_bits / total if total else 0.0
    from ...cell.queues import PROTOCOL_OVERHEAD
    return OverheadPoint(
        sinr_db=sinr_db, offered_mbps=offered / 1e6,
        retransmission_pct=retx_pct,
        protocol_pct=100.0 * PROTOCOL_OVERHEAD)


def _empirical_tbler(ber: float, tb_bits: int, trials: int,
                     rng: np.random.Generator) -> float:
    """Monte-Carlo the MAC's per-TB error draw."""
    p = block_error_rate(ber, tb_bits)
    return float(np.mean(rng.random(trials) < p))


def run_fig06(load_fractions: tuple = (0.15, 0.3, 0.5, 0.7, 0.9),
              tb_sizes_kbit: tuple = (10, 20, 30, 40, 50, 60, 70),
              duration_s: float = 2.0, trials: int = 4_000,
              seed: int = 17) -> Fig06Result:
    """Run both halves of Figure 6."""
    overhead = []
    for sinr in (STRONG_SINR_DB, WEAK_SINR_DB):
        for fraction in load_fractions:
            overhead.append(_overhead_at(sinr, fraction, duration_s,
                                         seed))
    rng = np.random.default_rng(seed)
    tbler = []
    for ber in (sinr_to_ber(STRONG_SINR_DB), sinr_to_ber(WEAK_SINR_DB)):
        for kbit in tb_sizes_kbit:
            bits = kbit * 1_000
            tbler.append(TblerPoint(
                tb_bits=bits, ber=ber,
                theory=block_error_rate(ber, bits),
                empirical=_empirical_tbler(ber, bits, trials, rng)))
    return Fig06Result(overhead, tbler)
