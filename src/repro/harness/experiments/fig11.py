"""Figure 11: cell-status micro-benchmark (§6.2).

(a) Distinct users communicating with a 20 MHz and a 10 MHz cell per
hour of the day: peak-hour averages of ~181/~97 users, maxima 233/135,
and the 10 MHz cell switched off between midnight and 3 am.

(b) The distribution of users' wireless physical data rates: most
users are low-rate (77.4%/71.9% below half the 1.8 Mbit/s/PRB peak).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...traces.cellactivity import paper_cells
from ..report import format_cdf, format_table


@dataclass
class Fig11Result:
    #: {cell_name: [users in hour 0..23]}
    hourly_counts: dict
    #: {cell_name: sorted user physical rates, Mbit/s/PRB}
    user_rates: dict

    def peak_average(self, cell: str) -> float:
        """Mean users/hour over the paper's 12:00-20:00 peak window."""
        return float(np.mean(self.hourly_counts[cell][12:20]))

    def frac_below_half_peak(self, cell: str) -> float:
        rates = np.asarray(self.user_rates[cell])
        return float(np.mean(rates < 0.9))  # half of 1.8 Mbit/s/PRB

    def format(self) -> str:
        rows = []
        for hour in range(24):
            rows.append([hour] + [self.hourly_counts[c][hour]
                                  for c in self.hourly_counts])
        a = format_table(["hour"] + list(self.hourly_counts), rows,
                         title="Figure 11a: detected users per hour")
        lines = [a, "Figure 11b: physical data rate (Mbit/s/PRB)"]
        for cell, rates in self.user_rates.items():
            lines.append(f"  {cell}: {format_cdf(list(rates))} "
                         f"({100 * self.frac_below_half_peak(cell):.1f}%"
                         f" below half peak; paper: ~72-77%)")
        return "\n".join(lines)


def run_fig11(seed: int = 31) -> Fig11Result:
    """Generate and measure the two cells' diurnal populations."""
    cells = paper_cells(seed=seed)
    hourly = {name: cell.hourly_user_counts()
              for name, cell in cells.items()}
    rates = {}
    for name, cell in cells.items():
        total_users = sum(hourly[name])
        rates[name] = sorted(cell.user_rates_mbps_per_prb(
            max(100, total_users)))
    return Fig11Result(hourly, rates)
