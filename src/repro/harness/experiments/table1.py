"""Table 1: PBE-CC throughput speedup and delay reduction vs baselines.

The paper reports, separately over 25 busy and 15 idle links, the
ratios PBE-tput / baseline-tput, baseline-p95-delay / PBE-p95-delay
and baseline-avg-delay / PBE-avg-delay, for BBR, Verus and Copa.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..report import format_table
from .sweep import SweepResult

#: The paper's Table 1 numbers, for side-by-side comparison:
#: {(baseline, condition): (tput speedup, p95 reduction, avg reduction)}.
PAPER_TABLE1 = {
    ("bbr", "busy"): (1.04, 1.54, 1.39),
    ("bbr", "idle"): (1.10, 2.07, 1.84),
    ("verus", "busy"): (1.25, 3.97, 2.53),
    ("verus", "idle"): (2.01, 3.44, 2.67),
    ("copa", "busy"): (10.35, 0.80, 0.80),
    ("copa", "idle"): (12.94, 0.79, 0.82),
}


@dataclass
class Table1Row:
    baseline: str
    condition: str          #: "busy" or "idle"
    locations: int
    throughput_speedup: float
    p95_delay_reduction: float
    avg_delay_reduction: float

    @property
    def paper(self) -> tuple | None:
        return PAPER_TABLE1.get((self.baseline, self.condition))


@dataclass
class Table1Result:
    rows: list[Table1Row]

    def row(self, baseline: str, condition: str) -> Table1Row:
        for r in self.rows:
            if r.baseline == baseline and r.condition == condition:
                return r
        raise KeyError((baseline, condition))

    def format(self) -> str:
        headers = ["scheme", "cond", "locs", "tput speedup", "(paper)",
                   "p95 delay red.", "(paper)", "avg delay red.",
                   "(paper)"]
        table_rows = []
        for r in self.rows:
            paper = r.paper or ("-", "-", "-")
            table_rows.append([
                r.baseline, r.condition, r.locations,
                r.throughput_speedup, paper[0],
                r.p95_delay_reduction, paper[1],
                r.avg_delay_reduction, paper[2]])
        return format_table(
            headers, table_rows,
            title="Table 1: PBE-CC vs baselines (ratios, >1 favours PBE"
                  " for tput/delay-reduction)")


def table1_from_sweep(sweep: SweepResult,
                      baselines: tuple[str, ...] = ("bbr", "verus",
                                                    "copa")) -> \
        Table1Result:
    """Reduce a stationary sweep to the paper's Table 1 ratios."""
    pbe = {e.location: e for e in sweep.for_scheme("pbe")}
    if not pbe:
        raise ValueError("sweep must include the 'pbe' scheme")
    rows = []
    for baseline in baselines:
        base_entries = sweep.for_scheme(baseline)
        if not base_entries:
            continue
        for condition in ("busy", "idle"):
            matched = [(pbe[e.location], e) for e in base_entries
                       if e.busy == (condition == "busy")
                       and e.location in pbe]
            if not matched:
                continue
            speedups, p95s, avgs = [], [], []
            for p, b in matched:
                if b.summary.average_throughput_bps > 0:
                    speedups.append(p.summary.average_throughput_bps
                                    / b.summary.average_throughput_bps)
                if p.summary.p95_delay_ms > 0:
                    p95s.append(b.summary.p95_delay_ms
                                / p.summary.p95_delay_ms)
                if p.summary.average_delay_ms > 0:
                    avgs.append(b.summary.average_delay_ms
                                / p.summary.average_delay_ms)
            rows.append(Table1Row(
                baseline=baseline, condition=condition,
                locations=len(matched),
                throughput_speedup=float(np.mean(speedups)),
                p95_delay_reduction=float(np.mean(p95s)),
                avg_delay_reduction=float(np.mean(avgs))))
    return Table1Result(rows)
