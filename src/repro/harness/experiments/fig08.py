"""Figure 8: one-way delay under increasing fixed offered loads.

Higher send rates mean bigger transport blocks, hence higher TB error
rates, so more packets pick up 8 ms HARQ retransmission delays — the
delay trace quantizes into 8 ms bands above the propagation floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...phy.carrier import CarrierConfig
from ..report import format_table
from ..runner import Experiment, FlowSpec
from ..scenarios import Scenario


@dataclass
class Fig08Series:
    offered_mbps: float
    min_delay_ms: float
    #: Fraction of packets within 4 ms of the floor (no retx).
    baseline_fraction: float
    #: Fraction delayed by roughly one HARQ cycle (6-12 ms above).
    one_retx_fraction: float
    #: Fraction delayed further (chained retransmissions/reordering).
    more_fraction: float
    p95_delay_ms: float


@dataclass
class Fig08Result:
    series: list

    def format(self) -> str:
        return format_table(
            ["load (Mbit/s)", "floor (ms)", "no-retx %", "+8ms %",
             ">12ms %", "p95 (ms)"],
            [[s.offered_mbps, s.min_delay_ms,
              100 * s.baseline_fraction, 100 * s.one_retx_fraction,
              100 * s.more_fraction, s.p95_delay_ms]
             for s in self.series],
            title="Figure 8: retransmission-quantized one-way delay")


def run_fig08(loads_mbps: tuple = (6.0, 24.0, 36.0),
              sinr_db: float = 10.0, duration_s: float = 4.0,
              seed: int = 29) -> Fig08Result:
    """Run the three fixed-load delay traces of Figure 8."""
    series = []
    for load in loads_mbps:
        scenario = Scenario(
            name="fig08", carriers=[CarrierConfig(0, 20.0)],
            aggregated_cells=1, mean_sinr_db=sinr_db,
            fading_std_db=0.0, busy=False, duration_s=duration_s,
            seed=seed)
        experiment = Experiment(scenario)
        experiment.add_flow(FlowSpec(scheme="cbr",
                                     cc_kwargs={"rate_bps": load * 1e6}))
        result = experiment.run()[0]
        delays = np.asarray(result.stats.delay_us) / 1_000.0
        floor = float(delays.min())
        over = delays - floor
        series.append(Fig08Series(
            offered_mbps=load,
            min_delay_ms=floor,
            baseline_fraction=float(np.mean(over < 4.0)),
            one_retx_fraction=float(np.mean((over >= 4.0)
                                            & (over < 12.0))),
            more_fraction=float(np.mean(over >= 12.0)),
            p95_delay_ms=float(np.percentile(delays, 95))))
    return Fig08Result(series)
