"""Figures 18-19: controlled on-off competition (§6.3.3).

A 40-second flow shares an idle cell with a competitor that switches
on for 4 seconds out of every 8 at a fixed 60 Mbit/s offered load.
Figure 18 compares all schemes' overall delay/throughput; Figure 19
plots the victim's 200 ms throughput and per-packet delay around the
competition windows — PBE yields promptly (no queue) and re-grabs the
idle capacity the moment the competitor stops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...traces.workload import ScheduledDemand
from ..metrics import FlowSummary
from ..report import format_table
from ..runner import Experiment, FlowSpec
from ..scenarios import Scenario
from .fig13 import EIGHT_SCHEMES


@dataclass
class CompetitionTimeline:
    scheme: str
    interval_s: float
    throughput_mbps: list
    mean_delay_ms: list


@dataclass
class Fig18Result:
    summaries: dict
    timelines: list
    #: For each scheme: mean tput while the competitor is on vs off.
    on_off_split: dict

    def format(self) -> str:
        rows = [[s, v.average_throughput_mbps, v.average_delay_ms,
                 v.p95_delay_ms, self.on_off_split[s][0],
                 self.on_off_split[s][1]]
                for s, v in self.summaries.items()]
        parts = [format_table(
            ["scheme", "tput", "avg delay", "p95 delay",
             "tput comp-on", "tput comp-off"],
            rows, title="Figure 18: controlled on-off competition "
                        "(Mbit/s, ms)")]
        for tl in self.timelines:
            rows = [[f"{i * tl.interval_s:.1f}", t, d]
                    for i, (t, d) in enumerate(
                        zip(tl.throughput_mbps, tl.mean_delay_ms))]
            parts.append(format_table(
                ["t (s)", "tput (Mbit/s)", "delay (ms)"], rows,
                title=f"Figure 19 ({tl.scheme})"))
        return "\n\n".join(parts)


def _competitor_on(t_s: float, period_s: float, on_s: float,
                   offset_s: float) -> bool:
    phase = (t_s - offset_s) % period_s
    return t_s >= offset_s and phase < on_s


def run_fig18_19(schemes: tuple = EIGHT_SCHEMES,
                 timeline_schemes: tuple = ("pbe", "bbr"),
                 duration_s: float = 40.0, period_s: float = 8.0,
                 on_s: float = 4.0, competitor_rate_bps: float = 60e6,
                 offset_s: float = 4.0, interval_s: float = 0.2,
                 seed: int = 41) -> Fig18Result:
    """Run the controlled-competition experiment for each scheme."""
    summaries: dict[str, FlowSummary] = {}
    timelines = []
    split = {}
    for scheme in schemes:
        scenario = Scenario(name="competition", aggregated_cells=2,
                            busy=False, duration_s=duration_s,
                            seed=seed)
        experiment = Experiment(scenario)
        # The paper's victim is the single-carrier Redmi 8; the MIX3
        # competitor aggregates two carriers.
        handle = experiment.add_flow(FlowSpec(
            scheme=scheme, cells=[scenario.carriers[0].cell_id]))
        demand = ScheduledDemand.on_off(
            period_s=period_s, on_s=on_s, rate_bps=competitor_rate_bps,
            total_s=duration_s, offset_s=offset_s)
        experiment.network.add_exogenous_user(
            900, [scenario.carriers[0].cell_id,
                  scenario.carriers[1].cell_id],
            scenario.channel(seed_offset=900), demand)
        result = experiment.run()[0]
        summaries[scheme] = result.summary

        arrivals = np.asarray(result.stats.arrival_us) / 1e6
        sizes = np.asarray(result.stats.size_bits)
        on_mask = np.array([_competitor_on(t, period_s, on_s, offset_s)
                            for t in arrivals])
        # Integrate the on/off spans over the whole run (1 ms grid).
        grid = np.arange(0.0, duration_s, 0.001)
        grid_on = np.array([_competitor_on(t, period_s, on_s, offset_s)
                            for t in grid])
        span_on = max(0.001, float(grid_on.sum()) * 0.001)
        span_off = max(0.001, duration_s - span_on)
        tput_on = sizes[on_mask].sum() / span_on / 1e6
        tput_off = sizes[~on_mask].sum() / span_off / 1e6
        split[scheme] = (float(tput_on), float(tput_off))

        if scheme in timeline_schemes:
            delays = np.asarray(result.stats.delay_us) / 1_000.0
            tl_t, tl_d = [], []
            step = interval_s
            for lo in np.arange(0.0, duration_s, step):
                mask = (arrivals >= lo) & (arrivals < lo + step)
                tl_t.append(float(sizes[mask].sum() / step / 1e6))
                tl_d.append(float(delays[mask].mean())
                            if mask.any() else 0.0)
            timelines.append(CompetitionTimeline(scheme, step, tl_t,
                                                 tl_d))
    return Fig18Result(summaries, timelines, split)
