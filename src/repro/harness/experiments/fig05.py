"""Figure 5: subframe-level tracking of allocations and idle PRBs.

Figure 5 is the paper's design-section walkthrough: three users share
a cell; when User 2's flow finishes, the others "immediately observe
idle PRBs in subframe seven and then share the available PRBs in
subframe eight"; a rate-limited User 3 cannot grow, so the rest of the
idle capacity converges to the unconstrained users.

End to end the sender sits one RTT behind the monitor, so the
reproduction measures the two latencies separately:

* **detection latency** — how long after the competitor's last grant
  the victim's *monitor* reports the larger capacity (subframe scale,
  bounded by the RTprop averaging window);
* **occupation latency** — how long until the victim's *delivered*
  rate reaches most of the freed capacity (a couple of RTTs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...phy.carrier import CarrierConfig
from ..report import format_table
from ..runner import Experiment, FlowSpec
from ..scenarios import Scenario


@dataclass
class Fig05Result:
    #: (time_s, victim Ct estimate Mbit/s) samples.
    estimate_series: list
    #: (time_s, victim delivered Mbit/s per 50 ms window) samples.
    delivered_series: list
    competitor_end_s: float
    detection_latency_ms: float
    occupation_latency_ms: float
    #: Rate-limited user's throughput before/after (should not change).
    limited_before_mbps: float
    limited_after_mbps: float

    def format(self) -> str:
        rows = [[f"{t:.2f}", c] for t, c in self.estimate_series]
        return "\n".join([
            f"Figure 5: competitor departs at "
            f"t={self.competitor_end_s:.1f}s",
            f"  monitor detection latency:  "
            f"{self.detection_latency_ms:.0f} ms "
            f"(bounded by the RTprop averaging window)",
            f"  capacity occupation latency: "
            f"{self.occupation_latency_ms:.0f} ms (~1-2 RTT)",
            f"  rate-limited user: {self.limited_before_mbps:.1f} -> "
            f"{self.limited_after_mbps:.1f} Mbit/s (cannot grow)",
            format_table(["t (s)", "victim Ct (Mbit/s)"], rows,
                         title="  victim capacity estimate around the "
                               "departure"),
        ])


def run_fig05(duration_s: float = 4.0, competitor_end_s: float = 2.0,
              limited_rate_bps: float = 5e6,
              seed: int = 51) -> Fig05Result:
    """Three users; the unconstrained competitor departs mid-run."""
    scenario = Scenario(name="fig05",
                        carriers=[CarrierConfig(0, 20.0)],
                        aggregated_cells=1, mean_sinr_db=18.0,
                        fading_std_db=0.0, duration_s=duration_s,
                        seed=seed)
    experiment = Experiment(scenario)
    victim = experiment.add_flow(FlowSpec(scheme="pbe", rnti=100))
    experiment.add_flow(FlowSpec(scheme="pbe", rnti=101,
                                 duration_s=competitor_end_s))
    limited = experiment.add_flow(FlowSpec(
        scheme="pbe", rnti=102, app_rate_bps=limited_rate_bps))

    estimates: list[tuple[float, float]] = []
    original = victim.receiver.feedback_for

    def tap(packet):
        feedback = original(packet)
        estimates.append((experiment.sim.now / 1e6,
                          feedback.target_rate_bps / 1e6))
        return feedback

    victim.receiver.feedback_for = tap
    results = experiment.run()

    end = competitor_end_s
    before = [r for t, r in estimates if end - 0.4 < t < end]
    baseline = float(np.mean(before))
    # The freed share roughly doubles the victim's capacity estimate;
    # detection = first estimate 30% above the pre-departure level.
    detection = next((t for t, r in estimates
                      if t > end and r > 1.3 * baseline), duration_s)

    stats = results[0].stats
    arrivals = np.asarray(stats.arrival_us) / 1e6
    sizes = np.asarray(stats.size_bits)
    delivered = []
    for lo in np.arange(0.0, duration_s, 0.05):
        mask = (arrivals >= lo) & (arrivals < lo + 0.05)
        delivered.append((lo, sizes[mask].sum() / 0.05 / 1e6))
    target = 1.5 * np.mean([v for t, v in delivered
                            if end - 0.4 < t < end])
    occupation = next((t for t, v in delivered
                       if t > end and v >= target), duration_s)

    limited_stats = results[2].stats
    larr = np.asarray(limited_stats.arrival_us) / 1e6
    lsz = np.asarray(limited_stats.size_bits)
    lim_before = lsz[(larr > end - 1.0) & (larr < end)].sum() / 1e6
    lim_after = lsz[(larr > end) & (larr < end + 1.0)].sum() / 1e6

    window = [(t, r) for t, r in estimates if end - 0.2 < t < end + 0.4]
    return Fig05Result(
        estimate_series=window[::max(1, len(window) // 20)],
        delivered_series=delivered,
        competitor_end_s=end,
        detection_latency_ms=(detection - end) * 1e3,
        occupation_latency_ms=(occupation - end) * 1e3,
        limited_before_mbps=lim_before,
        limited_after_mbps=lim_after)
