"""Figures 13-14: order-statistic drill-down at six locations.

For each representative location (indoor/outdoor × busy/idle × 1/2/3
aggregated cells) and each of the eight algorithms, the paper plots
the 10/25/50/75/90th percentiles of 100 ms-window throughput and
one-way delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import ORDER_STATS, FlowSummary
from ..runner import Experiment, FlowSpec
from ..report import format_table
from ..scenarios import representative_locations

EIGHT_SCHEMES = ("pbe", "bbr", "cubic", "verus", "sprout", "copa",
                 "pcc", "vivace")


@dataclass
class Fig13Result:
    #: {location_key: {scheme: FlowSummary}}
    locations: dict

    def summary(self, location_key: str, scheme: str) -> FlowSummary:
        return self.locations[location_key][scheme]

    def format(self) -> str:
        blocks = []
        for key, by_scheme in self.locations.items():
            rows = []
            for scheme, summary in by_scheme.items():
                tput = summary.throughput_percentiles_bps
                delay = summary.delay_percentiles_ms
                rows.append(
                    [scheme]
                    + [tput[p] / 1e6 for p in ORDER_STATS]
                    + [delay[p] for p in ORDER_STATS])
            headers = (["scheme"]
                       + [f"tput p{p}" for p in ORDER_STATS]
                       + [f"delay p{p}" for p in ORDER_STATS])
            blocks.append(format_table(
                headers, rows,
                title=f"{key} (tput Mbit/s, delay ms)"))
        return "\n\n".join(blocks)


def run_fig13_14(schemes: tuple = EIGHT_SCHEMES,
                 location_keys: tuple | None = None,
                 duration_s: float = 8.0) -> Fig13Result:
    """Run the drill-down grid (all six locations by default)."""
    reps = representative_locations(duration_s=duration_s)
    keys = location_keys or tuple(reps)
    out: dict[str, dict] = {}
    for key in keys:
        scenario = reps[key]
        out[key] = {}
        for scheme in schemes:
            experiment = Experiment(scenario)
            experiment.add_flow(FlowSpec(scheme=scheme))
            out[key][scheme] = experiment.run()[0].summary
    return Fig13Result(out)
