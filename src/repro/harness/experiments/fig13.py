"""Figures 13-14: order-statistic drill-down at six locations.

For each representative location (indoor/outdoor × busy/idle × 1/2/3
aggregated cells) and each of the eight algorithms, the paper plots
the 10/25/50/75/90th percentiles of 100 ms-window throughput and
one-way delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...exec import Job, make_runner
from ..metrics import ORDER_STATS, FlowSummary
from ..report import format_table
from ..scenarios import representative_locations
from ..serialize import summary_from_dict

EIGHT_SCHEMES = ("pbe", "bbr", "cubic", "verus", "sprout", "copa",
                 "pcc", "vivace")


@dataclass
class Fig13Result:
    #: {location_key: {scheme: FlowSummary}}
    locations: dict

    def summary(self, location_key: str, scheme: str) -> FlowSummary:
        return self.locations[location_key][scheme]

    def format(self) -> str:
        blocks = []
        for key, by_scheme in self.locations.items():
            rows = []
            for scheme, summary in by_scheme.items():
                tput = summary.throughput_percentiles_bps
                delay = summary.delay_percentiles_ms
                rows.append(
                    [scheme]
                    + [tput[p] / 1e6 for p in ORDER_STATS]
                    + [delay[p] for p in ORDER_STATS])
            headers = (["scheme"]
                       + [f"tput p{p}" for p in ORDER_STATS]
                       + [f"delay p{p}" for p in ORDER_STATS])
            blocks.append(format_table(
                headers, rows,
                title=f"{key} (tput Mbit/s, delay ms)"))
        return "\n\n".join(blocks)


def run_fig13_14(schemes: tuple = EIGHT_SCHEMES,
                 location_keys: tuple | None = None,
                 duration_s: float = 8.0,
                 jobs: int = 1, cache_dir=None,
                 runner=None, progress=None) -> Fig13Result:
    """Run the drill-down grid (all six locations by default).

    The (location × scheme) grid is submitted as independent jobs;
    ``jobs``/``cache_dir`` parallelize and memoize it (see
    :mod:`repro.exec`).
    """
    reps = representative_locations(duration_s=duration_s)
    keys = location_keys or tuple(reps)
    job_list = [Job(reps[key], scheme)
                for key in keys for scheme in schemes]
    # Strict: this driver consumes payloads positionally, so a failed
    # job must abort (pass a non-strict ``runner`` to override).
    runner = make_runner(jobs=jobs, cache_dir=cache_dir, runner=runner,
                         progress=progress, strict=True)
    payloads = iter(runner.run(job_list))
    out: dict[str, dict] = {}
    for key in keys:
        out[key] = {scheme: summary_from_dict(next(payloads)["summary"])
                    for scheme in schemes}
    return Fig13Result(out)
