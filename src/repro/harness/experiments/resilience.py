"""The resilience sweep: PBE-CC under decoder/feedback impairments.

The paper's §5 prototype decodes control channels with real CRC error
rates and §2's reverse path loses and compresses ACKs; this driver
quantifies how gracefully each scheme degrades when we inject those
faults.  It sweeps DCI miss-rate × decoder-outage-duration (plus a
fixed dose of ACK-path impairment) over a busy stationary cell and
reports, per cell of the grid, throughput relative to the same
scheme's unimpaired run and the time PBE-CC spent on its delay-based
fallback.

Each (scheme, miss, outage) run is an independent deterministic job —
the fault schedule is part of the job's content fingerprint — so the
sweep submits through :mod:`repro.exec` like the others: ``jobs=N``
fans it over worker processes, ``cache_dir`` memoizes completed runs.

Exposed on the command line as ``python -m repro resilience`` (with
``--smoke`` for the CI-sized variant).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...exec import Job, is_failure, make_runner
from ...faults import FaultSpec
from ..metrics import FlowSummary
from ..report import format_table
from ..scenarios import Scenario
from ..serialize import summary_from_dict

#: Reverse-path impairment applied to every impaired run (a fixed dose
#: of §2's lossy ACK channel, so the sweep axes stay two-dimensional).
ACK_LOSS_RATE = 0.01
FEEDBACK_CORRUPT_RATE = 0.005


def resilience_scenario(duration_s: float = 6.0,
                        base_seed: int = 400) -> Scenario:
    """The fixed busy-cell location every resilience run shares."""
    return Scenario(
        name="resilience-busy", aggregated_cells=2, mean_sinr_db=18.0,
        busy=True, background_users=3, duration_s=duration_s,
        seed=base_seed)


def fault_dict(miss_rate: float, outage_ms: int, duration_s: float,
               fault_seed: int = 0) -> dict | None:
    """The JSON fault spec for one grid cell (None = clean run).

    A non-zero outage is scheduled at the midpoint of the flow, so the
    run shows all three phases: healthy tracking, degraded/fallback
    operation, and recovery after reports resume.
    """
    if miss_rate == 0 and outage_ms == 0:
        return None
    outages = []
    if outage_ms > 0:
        start = max(0, int(duration_s * 1_000 / 2 - outage_ms / 2))
        outages.append([start, int(outage_ms)])
    return FaultSpec(
        seed=fault_seed,
        dci_miss_rate=miss_rate,
        outages=tuple(tuple(pair) for pair in outages),
        ack_loss_rate=ACK_LOSS_RATE,
        feedback_corrupt_rate=FEEDBACK_CORRUPT_RATE).to_dict()


@dataclass
class ResilienceEntry:
    """One (scheme, miss-rate, outage) run of the sweep."""

    scheme: str
    miss_rate: float
    outage_ms: int
    summary: FlowSummary
    lost_packets: int
    #: Seconds the PBE sender spent per control state (None for
    #: baselines without the watchdog machinery).
    sender_states: dict | None
    fault_stats: dict | None

    @property
    def is_clean(self) -> bool:
        return self.miss_rate == 0 and self.outage_ms == 0

    @property
    def fallback_s(self) -> float:
        if not self.sender_states:
            return 0.0
        return float(self.sender_states.get("fallback", 0.0))


@dataclass
class ResilienceResult:
    """All runs of one resilience sweep."""

    duration_s: float
    entries: list = field(default_factory=list)
    #: Structured :class:`repro.exec.JobFailure` records for grid
    #: cells that failed (the rest of the grid still reports).
    failures: list = field(default_factory=list)

    def schemes(self) -> list[str]:
        return list(dict.fromkeys(e.scheme for e in self.entries))

    def clean_for(self, scheme: str) -> ResilienceEntry | None:
        for entry in self.entries:
            if entry.scheme == scheme and entry.is_clean:
                return entry
        return None

    def format(self) -> str:
        rows = []
        for entry in self.entries:
            clean = self.clean_for(entry.scheme)
            relative = float("nan")
            if clean is not None and clean.summary.average_throughput_bps:
                relative = (100.0 * entry.summary.average_throughput_bps
                            / clean.summary.average_throughput_bps)
            rows.append([
                entry.scheme,
                f"{100 * entry.miss_rate:g}%",
                entry.outage_ms,
                entry.summary.average_throughput_mbps,
                relative,
                entry.fallback_s,
                entry.summary.p95_delay_ms,
                entry.lost_packets,
            ])
        table = format_table(
            ["scheme", "DCI miss", "outage (ms)", "tput (Mbit/s)",
             "vs clean (%)", "fallback (s)", "p95 delay (ms)", "lost"],
            rows,
            title=("Resilience sweep: impaired decode/feedback, busy "
                   f"cell, {self.duration_s:g} s flows"))
        if self.failures:
            lines = [f"  FAILED {f.summary()}" for f in self.failures]
            table += (f"\n{len(self.failures)} run(s) failed:\n"
                      + "\n".join(lines))
        return table


def resilience_jobs(schemes: tuple[str, ...] = ("pbe", "bbr"),
                    miss_rates: tuple[float, ...] = (0.0, 0.05, 0.2),
                    outages_ms: tuple[int, ...] = (0, 500),
                    duration_s: float = 6.0,
                    base_seed: int = 400,
                    fault_seed: int = 7) -> list[Job]:
    """The sweep's job grid (scheme × miss-rate × outage)."""
    if not schemes or not miss_rates or not outages_ms:
        raise ValueError("need at least one scheme, miss rate and outage")
    scenario = resilience_scenario(duration_s, base_seed)
    jobs = []
    for scheme in schemes:
        for miss in miss_rates:
            for outage in outages_ms:
                faults = fault_dict(miss, outage, duration_s, fault_seed)
                overrides = {"faults": faults} if faults else {}
                jobs.append(Job(scenario, scheme, overrides))
    return jobs


def run_resilience(schemes: tuple[str, ...] = ("pbe", "bbr"),
                   miss_rates: tuple[float, ...] = (0.0, 0.05, 0.2),
                   outages_ms: tuple[int, ...] = (0, 500),
                   duration_s: float = 6.0,
                   base_seed: int = 400, fault_seed: int = 7,
                   jobs: int = 1, cache_dir=None,
                   runner=None, progress=None,
                   timeout_s=None, retries: int = 1,
                   strict: bool = False,
                   failure_budget=None) -> ResilienceResult:
    """Run the miss-rate × outage-duration resilience grid.

    Every scheme's (0, 0) cell is its unimpaired reference; the
    formatted table reports each impaired cell's throughput relative
    to it, plus the time PBE-CC spent on the delay-based fallback.
    """
    job_list = resilience_jobs(schemes, miss_rates, outages_ms,
                               duration_s, base_seed, fault_seed)
    runner = make_runner(jobs=jobs, cache_dir=cache_dir, runner=runner,
                         progress=progress, timeout_s=timeout_s,
                         retries=retries, strict=strict,
                         failure_budget=failure_budget)
    payloads = runner.run(job_list)
    result = ResilienceResult(duration_s=duration_s)
    for job, payload in zip(job_list, payloads):
        if is_failure(payload):
            result.failures.append(payload)
            continue
        faults = job.spec_overrides.get("faults") or {}
        outages = faults.get("outages") or []
        result.entries.append(ResilienceEntry(
            scheme=job.scheme,
            miss_rate=faults.get("dci_miss_rate", 0.0),
            outage_ms=sum(duration for _, duration in outages),
            summary=summary_from_dict(payload["summary"]),
            lost_packets=payload["lost_packets"],
            sender_states=payload.get("sender_states"),
            fault_stats=payload.get("fault_stats")))
    return result
