"""Experiment drivers: one module per table/figure of the paper.

Each ``run_*`` function executes the corresponding experiment on the
simulator and returns a structured result with a ``format()`` method
that prints the same rows/series the paper reports.  The benchmark
suite under ``benchmarks/`` is a thin wrapper around these drivers, and
EXPERIMENTS.md records one full run's output against the paper's
numbers.
"""

from .ablation import run_ablation
from .fig02 import run_fig02
from .fig05 import run_fig05
from .fig06 import run_fig06
from .fig07 import run_fig07
from .fig08 import run_fig08
from .fig11 import run_fig11
from .fig12 import fig12_from_sweep
from .fig13 import run_fig13_14
from .fig15 import fig15_from_sweep
from .fig16 import run_fig16_17
from .fig18 import run_fig18_19
from .fig20 import run_fig20
from .fig21 import run_fig21
from .resilience import (
    ResilienceEntry,
    ResilienceResult,
    resilience_jobs,
    run_resilience,
)
from .sweep import (
    SweepEntry,
    SweepResult,
    entry_to_dict,
    run_stationary_sweep,
    sweep_jobs,
)
from .table1 import table1_from_sweep

__all__ = [
    "ResilienceEntry", "ResilienceResult", "SweepEntry", "SweepResult",
    "entry_to_dict", "fig12_from_sweep",
    "fig15_from_sweep", "resilience_jobs", "run_ablation",
    "run_fig02", "run_fig05", "run_fig06", "run_fig07", "run_fig08",
    "run_fig11",
    "run_fig13_14", "run_fig16_17", "run_fig18_19", "run_fig20",
    "run_fig21", "run_resilience", "run_stationary_sweep", "sweep_jobs",
    "table1_from_sweep",
]
