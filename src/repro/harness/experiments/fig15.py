"""Figure 15: locations at which each scheme triggers carrier
aggregation.

Aggressive schemes (PBE, BBR, CUBIC, Verus) push the cell hard enough
that the network activates secondary carriers at most multi-carrier
locations; conservative schemes (Copa, PCC, Vivace, Sprout) send so
little that carrier aggregation stays off — the paper's explanation
for their capacity under-utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..report import format_table
from .sweep import SweepResult


@dataclass
class Fig15Row:
    scheme: str
    ca_triggered: int      #: locations where ≥1 secondary was activated
    eligible: int          #: locations with ≥2 configured carriers


@dataclass
class Fig15Result:
    rows: list[Fig15Row]

    def count(self, scheme: str) -> int:
        for row in self.rows:
            if row.scheme == scheme:
                return row.ca_triggered
        raise KeyError(scheme)

    def format(self) -> str:
        return format_table(
            ["scheme", "CA triggered", "eligible locations"],
            [[r.scheme, r.ca_triggered, r.eligible] for r in self.rows],
            title="Figure 15: locations triggering carrier aggregation")


def fig15_from_sweep(sweep: SweepResult) -> Fig15Result:
    """Count CA-triggering locations per scheme.

    A location is *eligible* when the device aggregates more than one
    carrier there (the paper's Redmi 8 single-carrier locations cannot
    trigger CA for any scheme).
    """
    rows = []
    for scheme in sweep.schemes():
        entries = sweep.for_scheme(scheme)
        eligible = [e for e in entries if e.aggregated_cells > 1]
        triggered = sum(1 for e in eligible if e.ca_activations > 0)
        rows.append(Fig15Row(scheme=scheme, ca_triggered=triggered,
                             eligible=len(eligible)))
    rows.sort(key=lambda r: -r.ca_triggered)
    return Fig15Result(rows)
