"""Figure 20: one device, two concurrent connections (§6.3.4).

Two flows from the same phone to two different servers.  PBE-CC's
shared monitor splits the estimated capacity fairly, so both flows see
similar throughput; other schemes can end up badly unbalanced (the
paper measured BBR at 10 vs 35 Mbit/s).

Modelling note: the two connections terminate at one phone, i.e. one
RNTI at the base station.  We model the device as two co-located UEs
with consecutive RNTIs sharing the same channel — the cell scheduler's
per-user fairness then plays the role of the phone's internal
per-connection scheduling, and PBE's fair-share term (each monitor
sees the other connection as one more active user) matches the paper's
"fairly allocates the estimated capacity for two flows".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import FlowSummary, jain_index
from ..report import format_table
from ..runner import Experiment, FlowSpec
from ..scenarios import Scenario
from .fig13 import EIGHT_SCHEMES


@dataclass
class Fig20Result:
    #: {scheme: (FlowSummary flow1, FlowSummary flow2)}
    pairs: dict

    def balance(self, scheme: str) -> float:
        a, b = self.pairs[scheme]
        return jain_index([a.average_throughput_bps,
                           b.average_throughput_bps])

    def format(self) -> str:
        rows = []
        for scheme, (a, b) in self.pairs.items():
            rows.append([scheme, a.average_throughput_mbps,
                         b.average_throughput_mbps,
                         self.balance(scheme),
                         a.median_delay_ms, b.median_delay_ms])
        return format_table(
            ["scheme", "flow1 tput", "flow2 tput", "jain", "flow1 med d",
             "flow2 med d"],
            rows, title="Figure 20: two concurrent flows from one "
                        "device (Mbit/s, ms)")


def run_fig20(schemes: tuple = EIGHT_SCHEMES,
              duration_s: float = 10.0, seed: int = 43) -> Fig20Result:
    """Run the two-connection experiment per scheme."""
    pairs = {}
    for scheme in schemes:
        scenario = Scenario(name="fig20", aggregated_cells=2,
                            busy=False, duration_s=duration_s,
                            seed=seed)
        experiment = Experiment(scenario)
        # Two servers at different distances (the paper used two AWS
        # regions).
        experiment.add_flow(FlowSpec(scheme=scheme, rnti=100,
                                     internet_delay_us=15_000))
        experiment.add_flow(FlowSpec(scheme=scheme, rnti=101,
                                     internet_delay_us=22_000))
        results = experiment.run()
        pairs[scheme] = (results[0].summary, results[1].summary)
    return Fig20Result(pairs)
