"""Figure 12: distributions across locations for the four
high-throughput algorithms (PBE, BBR, CUBIC, Verus).

(a) CDF of per-location average throughput; (b) CDF of per-location
95th-percentile one-way delay.  The paper's headline from this figure:
PBE-CC has the highest throughput at most locations while keeping the
delay distribution far to the left of BBR/CUBIC/Verus.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..report import format_cdf
from .sweep import SweepResult

HIGH_THROUGHPUT_SCHEMES = ("pbe", "bbr", "cubic", "verus")


@dataclass
class Fig12Result:
    #: {scheme: sorted per-location average throughput, Mbit/s}
    throughput_mbps: dict
    #: {scheme: sorted per-location 95th-percentile delay, ms}
    p95_delay_ms: dict

    def format(self) -> str:
        lines = ["Figure 12a: per-location average throughput CDF "
                 "(Mbit/s)"]
        for scheme, values in self.throughput_mbps.items():
            lines.append(f"  {scheme:6s} {format_cdf(values)}")
        lines.append("Figure 12b: per-location 95th-pctl delay CDF (ms)")
        for scheme, values in self.p95_delay_ms.items():
            lines.append(f"  {scheme:6s} {format_cdf(values)}")
        return "\n".join(lines)


def fig12_from_sweep(sweep: SweepResult,
                     schemes: tuple[str, ...] = HIGH_THROUGHPUT_SCHEMES)\
        -> Fig12Result:
    """Reduce a stationary sweep to Figure 12's two CDFs."""
    throughput: dict[str, list[float]] = {}
    delay: dict[str, list[float]] = {}
    for scheme in schemes:
        entries = sweep.for_scheme(scheme)
        if not entries:
            continue
        throughput[scheme] = sorted(
            e.summary.average_throughput_mbps for e in entries)
        delay[scheme] = sorted(
            e.summary.p95_delay_ms for e in entries)
    if not throughput:
        raise ValueError("sweep contains none of the requested schemes")
    return Fig12Result(throughput, delay)
