"""Figure 21: fairness at the shared primary cell (§6.4).

Three phones share one primary cell; flows start at 0/10/20 s and end
at 60/50/40 s.  The figure plots each user's allocated primary-cell
PRBs (averaged over 50 subframes); fairness is quantified with Jain's
index over the windows where two and three flows overlap.

Variants: (a) three PBE flows, similar RTTs; (b) three PBE flows with
RTTs ~52/64/297 ms; (c) two PBE + one BBR; (d) two PBE + one CUBIC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics import jain_index
from ..report import format_table
from ..runner import Experiment, FlowSpec
from ..scenarios import Scenario

#: Flow schedule: (start_s, end_s) per phone, scaled by `time_scale`.
SCHEDULE = ((0.0, 60.0), (10.0, 50.0), (20.0, 40.0))


@dataclass
class Fig21Variant:
    name: str
    schemes: tuple
    #: Per-flow mean primary-cell PRBs during the three-flow overlap.
    prb_shares_3: list
    jain_2: float
    jain_3: float
    #: (time_s, prbs per flow) rows for plotting, 50-subframe averages.
    timeline: list


@dataclass
class Fig21Result:
    variants: list

    def variant(self, name: str) -> Fig21Variant:
        for v in self.variants:
            if v.name == name:
                return v
        raise KeyError(name)

    def format(self) -> str:
        rows = [[v.name, "/".join(v.schemes),
                 " ".join(f"{p:.1f}" for p in v.prb_shares_3),
                 100 * v.jain_2, 100 * v.jain_3]
                for v in self.variants]
        return format_table(
            ["variant", "schemes", "PRB shares (3 flows)", "jain2 %",
             "jain3 %"],
            rows, title="Figure 21: primary-cell fairness "
                        "(paper: all Jain indices > 98%)")


def _run_variant(name: str, schemes: tuple, delays_us: tuple,
                 duration_s: float, time_scale: float,
                 seed: int) -> Fig21Variant:
    scenario = Scenario(name=f"fig21-{name}", aggregated_cells=1,
                        busy=False, mean_sinr_db=20.0,
                        duration_s=duration_s, seed=seed)
    experiment = Experiment(scenario)
    for i, (scheme, delay) in enumerate(zip(schemes, delays_us)):
        start, end = SCHEDULE[i]
        experiment.add_flow(FlowSpec(
            scheme=scheme, rnti=100 + i,
            start_s=start * time_scale,
            duration_s=(end - start) * time_scale,
            internet_delay_us=delay, log_allocations=True))
    results = experiment.run()

    def shares(lo_s, hi_s):
        out = []
        for r in results:
            history = r.allocations or []
            prbs = [p for sf, _, p in history
                    if lo_s * 1_000 <= sf < hi_s * 1_000]
            out.append(sum(prbs) / ((hi_s - lo_s) * 1_000))
        return out

    # Overlap windows (scaled): [10,20) two flows, [20,40) three.
    two = shares(12 * time_scale, 19 * time_scale)[:2]
    three = shares(24 * time_scale, 38 * time_scale)
    timeline = []
    step_ms = 50
    for lo in range(0, int(duration_s * 1_000), 500):
        row = [lo / 1_000.0]
        for r in results:
            history = r.allocations or []
            prbs = [p for sf, _, p in history if lo <= sf < lo + 500]
            row.append(sum(prbs) / 500)
        timeline.append(tuple(row))
    return Fig21Variant(
        name=name, schemes=schemes, prb_shares_3=three,
        jain_2=jain_index(two), jain_3=jain_index(three),
        timeline=timeline)


def run_fig21(time_scale: float = 1.0, seed: int = 47,
              variants: tuple = ("multi_user", "rtt", "vs_bbr",
                                 "vs_cubic")) -> Fig21Result:
    """Run the four fairness variants.

    ``time_scale < 1`` shrinks the paper's 60-second schedule
    proportionally (benchmarks use 0.25 to keep runtimes sane).
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    duration = 60.0 * time_scale
    similar = (18_000, 20_000, 22_000)
    spec = {
        "multi_user": (("pbe", "pbe", "pbe"), similar),
        # ~52/64/297 ms RTTs: one-way wired delays of ~16/22/138 ms.
        "rtt": (("pbe", "pbe", "pbe"), (16_000, 22_000, 138_000)),
        "vs_bbr": (("pbe", "pbe", "bbr"), similar),
        "vs_cubic": (("pbe", "pbe", "cubic"), similar),
    }
    out = []
    for name in variants:
        schemes, delays = spec[name]
        out.append(_run_variant(name, schemes, delays, duration,
                                time_scale, seed))
    return Fig21Result(out)
