"""Impaired reverse-path pipe (§2's lossy, compressed ACK channel).

:class:`ImpairedPipe` is a :class:`~repro.net.link.Receiver` that sits
in front of any downstream pipe (typically the LTE-uplink
:class:`~repro.net.link.BatchingPipe`) and impairs the packet stream:

* **loss** — drop with ``ack_loss_rate``;
* **duplication** — deliver twice with ``ack_dup_rate`` (the sender's
  spurious-ACK path absorbs the copy);
* **reordering** — with ``ack_reorder_rate`` hold one packet for
  ``ack_reorder_delay_us`` so later packets overtake it;
* **feedback corruption** — with ``feedback_corrupt_rate`` mangle the
  PBE capacity report riding on an ACK: half the corruptions erase the
  feedback entirely (an undecodable option field), half flip the
  encoded target interval to a random 32-bit value, exercising the
  saturating decode path in :mod:`repro.core.feedback`.

Untouched packets are forwarded synchronously and object-identical,
so a zero-probability spec leaves event timing exactly as if the pipe
were absent.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.feedback import PbeFeedback
from ..net.link import Receiver
from ..net.packet import Packet
from ..net.sim import Simulator
from .spec import FaultSpec


class ImpairedPipe(Receiver):
    """Loss / reordering / duplication / corruption packet wrapper."""

    #: Checkpointing: wiring and the (immutable) fault spec come from
    #: the rebuilt experiment; only the RNG stream and counters travel.
    SNAPSHOT_SKIP = ("sim", "sink", "spec")

    def __init__(self, sim: Simulator, sink: Receiver, spec: FaultSpec,
                 flow_id: int = 0, name: str = "impaired") -> None:
        self.sim = sim
        self.sink = sink
        self.spec = spec
        self.name = name
        self._rng = spec.rng("pipe", flow_id)

        self.forwarded = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.corrupted = 0

    # ------------------------------------------------------------------
    def _corrupt_feedback(self, packet: Packet) -> Packet:
        """Mangle the PBE feedback field (never mutates the original)."""
        self.corrupted += 1
        mangled = Packet(packet.flow_id, packet.seq,
                         size_bits=packet.size_bits, is_ack=packet.is_ack,
                         sent_time_us=packet.sent_time_us,
                         acked_seq=packet.acked_seq)
        mangled.recv_time_us = packet.recv_time_us
        mangled.delivered_at_send = packet.delivered_at_send
        mangled.delivered_time_at_send = packet.delivered_time_at_send
        mangled.app_limited = packet.app_limited
        mangled.hops = packet.hops
        mangled.meta = dict(packet.meta)
        if self._rng.random() < 0.5:
            mangled.feedback = None  # undecodable option field
        else:
            mangled.feedback = replace(
                packet.feedback,
                target_interval_us=self._rng.getrandbits(32))
        return mangled

    def receive(self, packet: Packet) -> None:
        spec = self.spec
        rng = self._rng
        if spec.ack_loss_rate > 0 and rng.random() < spec.ack_loss_rate:
            self.dropped += 1
            return
        if (spec.feedback_corrupt_rate > 0
                and isinstance(packet.feedback, PbeFeedback)
                and rng.random() < spec.feedback_corrupt_rate):
            packet = self._corrupt_feedback(packet)
        if (spec.ack_reorder_rate > 0
                and rng.random() < spec.ack_reorder_rate):
            # Hold this packet back so its successors overtake it.
            self.reordered += 1
            self.forwarded += 1
            self.sim.schedule(spec.ack_reorder_delay_us,
                              self.sink.receive, packet)
            return
        self.forwarded += 1
        self.sink.receive(packet)
        if spec.ack_dup_rate > 0 and rng.random() < spec.ack_dup_rate:
            self.duplicated += 1
            self.sink.receive(packet)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Impairment counters (for telemetry/results)."""
        return {
            "forwarded": self.forwarded,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "corrupted": self.corrupted,
        }
