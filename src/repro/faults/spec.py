"""Fault specifications and seed-derived random streams.

A :class:`FaultSpec` is the single JSON-serializable description of
every impairment applied to one flow, so it can ride inside
:class:`~repro.harness.runner.FlowSpec` overrides and therefore inside
content-fingerprinted :class:`repro.exec.Job` submissions: two runs
with the same fault spec (and seed) replay the identical impairment
schedule, on any machine, in any process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from dataclasses import dataclass


def derived_rng(seed: int, *scope) -> random.Random:
    """A private random stream for one injector.

    The stream is keyed by the fault seed plus a scope tuple (e.g.
    ``("dci", cell_id)``), hashed with SHA-256 so that streams are
    independent of each other, of consumption order, and of the
    platform — the cross-process determinism the result cache needs.
    """
    key = ":".join(str(part) for part in (seed, *scope))
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


_RATE_FIELDS = ("dci_miss_rate", "dci_false_rate", "outage_enter_rate",
                "ack_loss_rate", "ack_dup_rate", "ack_reorder_rate",
                "feedback_corrupt_rate")


@dataclass(frozen=True)
class FaultSpec:
    """Impairment knobs for one flow (all probabilities in [0, 1])."""

    #: Seed of every derived impairment stream.
    seed: int = 0

    # -- control-channel decoder faults (LossyDecoder) -----------------
    #: Per-DCI-message miss probability (CRC failures on single
    #: messages; OWL reports ~1-5% in the wild).
    dci_miss_rate: float = 0.0
    #: Per-subframe probability of synthesizing a false-positive DCI
    #: (a bogus CRC pass inventing a ghost user on idle PRBs).
    dci_false_rate: float = 0.0
    #: Gilbert-Elliott burst outages: per-subframe probability of
    #: entering the bad state, in which entire subframes fail to decode.
    outage_enter_rate: float = 0.0
    #: Mean burst length, subframes (exit probability is its inverse).
    outage_mean_subframes: float = 8.0
    #: Deterministically scheduled outages, ``(start_subframe,
    #: duration_subframes)`` pairs — e.g. a 500 ms decoder blackout.
    outages: tuple = ()

    # -- ACK return-path faults (ImpairedPipe) -------------------------
    ack_loss_rate: float = 0.0
    ack_dup_rate: float = 0.0
    #: Probability of delaying one packet past its successors.
    ack_reorder_rate: float = 0.0
    #: Extra delay a reordered packet picks up, µs.
    ack_reorder_delay_us: int = 8_000
    #: Probability of corrupting the PBE feedback field on an ACK
    #: (half the corruptions erase the feedback entirely, half flip its
    #: encoded interval to a random 32-bit value).
    feedback_corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.outage_mean_subframes <= 0:
            raise ValueError("outage_mean_subframes must be positive")
        if self.ack_reorder_delay_us < 0:
            raise ValueError("ack_reorder_delay_us must be non-negative")
        # JSON round-trips lists; normalize to hashable tuples.
        object.__setattr__(self, "outages", tuple(
            (int(start), int(duration)) for start, duration in self.outages))
        for start, duration in self.outages:
            if start < 0 or duration < 0:
                raise ValueError("outages must use non-negative "
                                 "start/duration subframes")

    # ------------------------------------------------------------------
    @property
    def impairs_decoder(self) -> bool:
        """True when a :class:`LossyDecoder` would do anything."""
        return (self.dci_miss_rate > 0 or self.dci_false_rate > 0
                or self.outage_enter_rate > 0
                or any(duration > 0 for _, duration in self.outages))

    @property
    def impairs_pipe(self) -> bool:
        """True when an :class:`ImpairedPipe` would do anything."""
        return (self.ack_loss_rate > 0 or self.ack_dup_rate > 0
                or self.ack_reorder_rate > 0
                or self.feedback_corrupt_rate > 0)

    @property
    def is_noop(self) -> bool:
        return not (self.impairs_decoder or self.impairs_pipe)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        payload = dataclasses.asdict(self)
        payload["outages"] = [list(pair) for pair in self.outages]
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault fields: {sorted(unknown)}")
        return cls(**data)

    def rng(self, *scope) -> random.Random:
        """This spec's derived stream for one injector scope."""
        return derived_rng(self.seed, *scope)
