"""Seeded, composable fault injection for the PBE-CC pipeline.

The paper's prototype lives with an imperfect physical world: the SDR
decoder misses control messages and occasionally passes a bogus CRC
(§5), the reverse path loses and compresses ACKs (§2), and a client
can stop reporting entirely (§7).  This package makes those
impairments a first-class evaluation axis:

* :class:`FaultSpec` — a JSON-round-trippable bundle of impairment
  knobs, seed-keyed so identical specs reproduce identical impairment
  schedules across processes;
* :class:`LossyDecoder` — wraps a
  :class:`~repro.monitor.decoder.ControlChannelDecoder` with
  per-message miss probability, false-positive DCI synthesis and
  Gilbert-Elliott burst outages (CRC-failure runs, handover gaps);
* :class:`ImpairedPipe` — wraps any ACK return-path pipe with loss,
  reordering, duplication and feedback-field corruption.

Every injector is a no-op passthrough at probability zero (the
record/packet stream is object-identical to an uninjected run), and
every random decision comes from a private :func:`derived_rng` stream,
so injectors compose without perturbing each other's schedules.

The degradation machinery that lets PBE-CC survive these faults lives
with the components themselves: gap/staleness tracking in
:mod:`repro.monitor.pbe`, saturating feedback decoding in
:mod:`repro.core.feedback`, and the feedback watchdog + delay-based
fallback in :mod:`repro.core.sender`.  The sweep driver is
:mod:`repro.harness.experiments.resilience`.
"""

from .decoder import LossyDecoder
from .pipe import ImpairedPipe
from .spec import FaultSpec, derived_rng

__all__ = ["FaultSpec", "ImpairedPipe", "LossyDecoder", "derived_rng"]
