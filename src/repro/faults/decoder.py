"""Lossy control-channel decoding (§5's imperfect blind search).

:class:`LossyDecoder` wraps one cell's
:class:`~repro.monitor.decoder.ControlChannelDecoder` and impairs the
record stream the way a real SDR decoder does:

* **missed messages** — each DCI message independently fails its CRC
  with ``dci_miss_rate`` (the monitor then under-counts occupancy);
* **false positives** — with ``dci_false_rate`` per subframe a bogus
  CRC pass invents a ghost user, allocated only within the subframe's
  idle PRBs so the record stays physically consistent;
* **burst outages** — a Gilbert-Elliott good/bad chain
  (``outage_enter_rate`` / ``outage_mean_subframes``) plus explicitly
  scheduled ``outages`` drop entire subframes, modelling CRC-failure
  runs, retunes and handover gaps.

Records that no fault touches are forwarded *object-identical*, so a
zero-probability spec is indistinguishable from no injector at all.
"""

from __future__ import annotations

from ..phy.dci import DciMessage, SubframeRecord
from ..monitor.decoder import ControlChannelDecoder
from .spec import FaultSpec

#: RNTI base for synthesized false-positive (ghost) users.
GHOST_RNTI_BASE = 60_000
#: Largest PRB grant a false positive may fabricate.
MAX_GHOST_PRBS = 8
#: MCS index range a bogus CRC pass may land on.
MAX_GHOST_MCS = 28


class LossyDecoder:
    """Impairment wrapper around one cell's control-channel decoder."""

    #: Checkpointing: the wrapped decoder is snapshotted through the
    #: monitor; the fault spec is immutable config.
    SNAPSHOT_SKIP = ("decoder", "spec")

    def __init__(self, decoder: ControlChannelDecoder,
                 spec: FaultSpec) -> None:
        self.decoder = decoder
        self.spec = spec
        self._rng = spec.rng("dci", decoder.cell_id)
        self._in_burst = False
        self._exit_rate = 1.0 / spec.outage_mean_subframes

        self.records_seen = 0
        self.records_dropped = 0
        self.messages_missed = 0
        self.false_positives = 0
        self.outage_subframes = 0

    @property
    def cell_id(self) -> int:
        return self.decoder.cell_id

    # ------------------------------------------------------------------
    def _scheduled_outage(self, subframe: int) -> bool:
        return any(start <= subframe < start + duration
                   for start, duration in self.spec.outages)

    def _advance_burst(self) -> bool:
        """Step the Gilbert-Elliott chain one subframe; True = bad."""
        if self.spec.outage_enter_rate <= 0:
            return False
        if self._in_burst:
            if self._rng.random() < self._exit_rate:
                self._in_burst = False
        elif self._rng.random() < self.spec.outage_enter_rate:
            self._in_burst = True
        return self._in_burst

    def _synthesize_ghost(self, record: SubframeRecord,
                          free_prbs: int) -> DciMessage:
        rng = self._rng
        n_prbs = min(free_prbs, rng.randint(1, MAX_GHOST_PRBS))
        mcs = rng.randint(0, MAX_GHOST_MCS)
        return DciMessage(
            subframe=record.subframe, cell_id=record.cell_id,
            rnti=GHOST_RNTI_BASE + rng.randrange(1_000),
            n_prbs=n_prbs, mcs=mcs, spatial_streams=1,
            tbs_bits=n_prbs * rng.randrange(100, 1_000))

    # ------------------------------------------------------------------
    def on_subframe(self, record: SubframeRecord) -> None:
        """Entry point: attach this to the cell's control channel."""
        self.records_seen += 1
        spec = self.spec
        burst = self._advance_burst()
        if burst or self._scheduled_outage(record.subframe):
            # Entire subframe fails to decode: nothing reaches the sink.
            self.records_dropped += 1
            self.outage_subframes += 1
            return

        messages = record.messages
        touched = False
        if spec.dci_miss_rate > 0 and messages:
            kept = [m for m in messages
                    if self._rng.random() >= spec.dci_miss_rate]
            if len(kept) != len(messages):
                self.messages_missed += len(messages) - len(kept)
                messages = kept
                touched = True
        if (spec.dci_false_rate > 0
                and self._rng.random() < spec.dci_false_rate):
            free = record.total_prbs - sum(m.n_prbs for m in messages)
            if free > 0:
                ghost = self._synthesize_ghost(record, free)
                messages = list(messages) + [ghost]
                self.false_positives += 1
                touched = True

        if not touched:
            self.decoder.on_subframe(record)
            return
        self.decoder.on_subframe(SubframeRecord(
            subframe=record.subframe, cell_id=record.cell_id,
            total_prbs=record.total_prbs, messages=list(messages)))

    def flush(self) -> None:
        """Drain the wrapped decoder's latency buffer (end of stream)."""
        self.decoder.flush()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Impairment counters (for telemetry/results)."""
        return {
            "cell_id": self.cell_id,
            "records_seen": self.records_seen,
            "records_dropped": self.records_dropped,
            "messages_missed": self.messages_missed,
            "false_positives": self.false_positives,
            "outage_subframes": self.outage_subframes,
        }
