#!/usr/bin/env python3
"""Interrupted-sweep smoke test: SIGINT a sweep, then resume it.

Spawns ``python -m repro sweep`` with a result cache, delivers SIGINT
once at least one payload has persisted, and checks the contract the
supervision layer promises:

* the interrupted process exits 130 after a clean drain;
* the journal beside the cache is valid JSONL ending in an
  ``interrupted`` marker, and every persisted entry passes
  ``repro cache verify``;
* a ``--resume`` run recomputes only the unfinished jobs (finished
  fingerprints are cache hits) and its final payloads are byte-
  identical to an uninterrupted run of the same sweep.

CI runs this (CI-sized) on every push; run it locally with no
arguments, or ``--duration/--jobs`` to scale it up.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def sweep_cmd(cache_dir: str, args, extra=()) -> list:
    return [sys.executable, "-m", "repro", "sweep",
            "--schemes", "pbe,bbr", "--busy", "2", "--idle", "2",
            "--duration", str(args.duration), "--jobs", str(args.jobs),
            "--cache-dir", cache_dir, *extra]


def env() -> dict:
    out = dict(os.environ)
    src = str(REPO_ROOT / "src")
    out["PYTHONPATH"] = (src + os.pathsep + out["PYTHONPATH"]
                         if out.get("PYTHONPATH") else src)
    return out


def store_entries(cache_dir: Path) -> list:
    return sorted(p for p in cache_dir.glob("??/*.json"))


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="SIGINT a sweep mid-run, then resume it")
    parser.add_argument("--duration", type=float, default=1.0)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="overall smoke deadline in seconds")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as workdir:
        cache = Path(workdir) / "cache"

        # --- interrupted run -----------------------------------------
        proc = subprocess.Popen(
            sweep_cmd(str(cache), args), env=env(), cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            text=True)
        deadline = time.time() + args.timeout / 2
        while (time.time() < deadline and proc.poll() is None
               and len(store_entries(cache)) < 1):
            time.sleep(0.05)
        if proc.poll() is not None:
            fail("sweep finished before SIGINT could be delivered; "
                 "increase --duration")
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=args.timeout / 2)
        if proc.returncode != 130:
            fail(f"interrupted sweep exited {proc.returncode}, "
                 f"expected 130\n{stderr}")

        journal = cache / "journal.jsonl"
        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        if records[-1] != {"kind": "end", "status": "interrupted"}:
            fail(f"journal does not end interrupted: {records[-1]}")
        done = {r["fingerprint"] for r in records
                if r.get("kind") == "job" and r.get("status") == "done"}
        persisted = store_entries(cache)
        if {p.stem for p in persisted} != done:
            fail("journal done-set does not match persisted entries")
        verify = subprocess.run(
            [sys.executable, "-m", "repro", "cache", "verify",
             "--cache-dir", str(cache), "--no-upgrade"],
            env=env(), cwd=REPO_ROOT, capture_output=True, text=True)
        if verify.returncode != 0:
            fail(f"cache verify failed after interrupt:\n"
                 f"{verify.stdout}{verify.stderr}")
        snapshot = {p.stem: p.read_bytes() for p in persisted}
        print(f"interrupt ok: {len(done)} jobs drained+persisted, "
              f"journal and store intact", flush=True)

        # --- resumed run ---------------------------------------------
        resumed = subprocess.run(
            sweep_cmd(str(cache), args,
                      extra=("--resume", "--save",
                             str(Path(workdir) / "resumed.json"))),
            env=env(), cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=args.timeout)
        if resumed.returncode != 0:
            fail(f"resume exited {resumed.returncode}\n"
                 f"{resumed.stderr}")
        executed = sum(" executed " in line
                       for line in resumed.stderr.splitlines())
        cached = sum(" cached " in line and "[repro.exec]" in line
                     for line in resumed.stderr.splitlines())
        if executed != 8 - len(done) or cached != len(done):
            fail(f"resume recomputed finished work: {executed} "
                 f"executed / {cached} cached with {len(done)} done")
        for fp, blob in snapshot.items():
            path = cache / fp[:2] / f"{fp}.json"
            if path.read_bytes() != blob:
                fail(f"resume rewrote finished entry {fp}")
        print(f"resume ok: {executed} executed, {cached} cached, "
              f"finished entries untouched", flush=True)

        # --- equivalence with an uninterrupted run -------------------
        fresh = subprocess.run(
            sweep_cmd(str(Path(workdir) / "fresh-cache"), args,
                      extra=("--save",
                             str(Path(workdir) / "fresh.json"))),
            env=env(), cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=args.timeout)
        if fresh.returncode != 0:
            fail(f"fresh sweep exited {fresh.returncode}\n"
                 f"{fresh.stderr}")
        resumed_bytes = (Path(workdir) / "resumed.json").read_bytes()
        fresh_bytes = (Path(workdir) / "fresh.json").read_bytes()
        if resumed_bytes != fresh_bytes:
            fail("resumed sweep is not byte-identical to an "
                 "uninterrupted run")
        print("equivalence ok: resumed == uninterrupted "
              "(byte-identical)", flush=True)

    print("sigint smoke PASSED", flush=True)


if __name__ == "__main__":
    main()
