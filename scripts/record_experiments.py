#!/usr/bin/env python3
"""Run every table/figure experiment and record the outputs.

Writes the formatted result of each driver to stdout (pipe it into a
file for EXPERIMENTS.md).  Scale knobs sit between the benchmark
defaults and the paper's full setup so one pass finishes in well under
an hour on a laptop.

The multi-run drivers (the stationary sweep, Figures 13-14, the
ablations) go through :mod:`repro.exec`: ``--jobs N`` fans their
simulations out over worker processes, and ``--cache-dir DIR`` memoizes
completed runs so an interrupted or repeated recording pass only
executes what changed.

Run:  python scripts/record_experiments.py --jobs 8 | tee experiments_raw.txt
"""

import argparse
import os
import time

from repro.exec import StderrReporter
from repro.harness import experiments as exp


def section(name):
    print(f"\n{'=' * 72}\n== {name}\n{'=' * 72}", flush=True)


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="record all table/figure experiment outputs")
    parser.add_argument("--jobs", type=int,
                        default=min(os.cpu_count() or 1, 8),
                        help="worker processes for multi-run drivers "
                             "(default: one per CPU, capped at 8)")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed result cache directory "
                             "(resume/replay recording passes cheaply; "
                             "a sweep journal is kept beside it, so an "
                             "interrupted pass resumes with zero "
                             "recomputation)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job deadline in seconds for the long "
                             "sweeps (enforced concurrently)")
    parser.add_argument("--retries", type=int, default=1,
                        help="crash/timeout re-submissions with "
                             "jittered backoff (default 1)")
    parser.add_argument("--failure-budget", type=float, default=None,
                        help="abort a sweep once more than this "
                             "percentage of its jobs has failed")
    return parser.parse_args(argv)


def main(argv=None) -> None:
    args = parse_args(argv)
    execution = {"jobs": args.jobs, "cache_dir": args.cache_dir,
                 "progress": StderrReporter()}
    # The long sweeps additionally run supervised: per-job deadlines,
    # retry backoff and a failure budget (failed configurations are
    # isolated and reported instead of aborting the recording pass).
    supervised = dict(
        execution, timeout_s=args.timeout, retries=args.retries,
        failure_budget=(args.failure_budget / 100.0
                        if args.failure_budget is not None else None))
    t0 = time.time()

    section("Stationary sweep (Table 1 / Figure 12 / Figure 15)")
    sweep = exp.run_stationary_sweep(
        schemes=("pbe", "bbr", "cubic", "verus", "copa"),
        n_busy=8, n_idle=5, duration_s=10.0, **supervised)
    for failure in sweep.failures:
        print(f"FAILED {failure.summary()}", flush=True)
    print(exp.table1_from_sweep(sweep).format())
    print()
    print(exp.fig12_from_sweep(sweep).format())
    print()
    print(exp.fig15_from_sweep(sweep).format())

    section("Figure 2: carrier activation/deactivation")
    print(exp.run_fig02().format())

    section("Figure 6: overhead and TBLER")
    print(exp.run_fig06().format())

    section("Figure 7: active-user filtering")
    print(exp.run_fig07(duration_s=20.0).format())

    section("Figure 8: retransmission delay quantization")
    print(exp.run_fig08().format())

    section("Figure 11: cell-status micro-benchmark")
    print(exp.run_fig11().format())

    section("Figures 13-14: six-location drill-down")
    print(exp.run_fig13_14(duration_s=8.0, **execution).format())

    section("Figures 16-17: mobility")
    print(exp.run_fig16_17(duration_s=24.0, interval_s=1.2).format())

    section("Figures 18-19: controlled competition")
    print(exp.run_fig18_19(duration_s=24.0).format())

    section("Figure 20: two connections, one device")
    print(exp.run_fig20(duration_s=10.0).format())

    section("Figure 21: fairness")
    print(exp.run_fig21(time_scale=0.34).format())

    section("Ablations")
    print(exp.run_ablation(duration_s=8.0, **execution).format())

    print(f"\ntotal wall time: {time.time() - t0:.0f} s", flush=True)


if __name__ == "__main__":
    main()
