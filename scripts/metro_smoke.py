#!/usr/bin/env python3
"""Metro matrix smoke test: determinism, SIGINT drain, resume.

Checks the ``python -m repro metro`` acceptance contract end to end:

* two fresh runs of the same set/seed write byte-identical matrix
  files;
* a run interrupted with SIGINT mid-sweep exits 130 with a valid
  journal beside the cache;
* a ``--resume`` run completes from the journal (finished shards are
  cache hits) and its matrix is byte-identical to the uninterrupted
  one.

CI runs this on every push; run it locally with no arguments, or
``--hour-s/--jobs`` to scale the interrupted phase.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def metro_cmd(out: str, args, extra=()) -> list:
    return [sys.executable, "-m", "repro", "metro", "--set", "smoke",
            "--hour-s", str(args.hour_s), "--jobs", str(args.jobs),
            "--out", out, *extra]


def env() -> dict:
    out = dict(os.environ)
    src = str(REPO_ROOT / "src")
    out["PYTHONPATH"] = (src + os.pathsep + out["PYTHONPATH"]
                         if out.get("PYTHONPATH") else src)
    return out


def store_entries(cache_dir: Path) -> list:
    return sorted(p for p in cache_dir.glob("??/*.json"))


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_metro(out: str, args, extra=(), timeout=None):
    return subprocess.run(
        metro_cmd(out, args, extra), env=env(), cwd=REPO_ROOT,
        capture_output=True, text=True, timeout=timeout)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="metro determinism + SIGINT/resume smoke")
    parser.add_argument("--hour-s", type=float, default=1.5,
                        help="simulated seconds per diurnal hour "
                             "(stretches the run so SIGINT lands "
                             "mid-sweep)")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="overall smoke deadline in seconds")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as workdir:
        work = Path(workdir)

        # --- determinism: two fresh runs, byte-identical matrices ----
        for name in ("a.json", "b.json"):
            proc = run_metro(str(work / name), args,
                             timeout=args.timeout / 3)
            if proc.returncode != 0:
                fail(f"fresh metro run exited {proc.returncode}\n"
                     f"{proc.stderr}")
        if (work / "a.json").read_bytes() != (work / "b.json").read_bytes():
            fail("two fresh runs with the same seed wrote different "
                 "matrices")
        print("determinism ok: fresh runs byte-identical", flush=True)

        # --- interrupted run -----------------------------------------
        cache = work / "cache"
        proc = subprocess.Popen(
            metro_cmd(str(work / "interrupted.json"), args,
                      extra=("--cache-dir", str(cache))),
            env=env(), cwd=REPO_ROOT, stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE, text=True)
        deadline = time.time() + args.timeout / 3
        while (time.time() < deadline and proc.poll() is None
               and len(store_entries(cache)) < 1):
            time.sleep(0.05)
        if proc.poll() is not None:
            fail("metro run finished before SIGINT could be "
                 "delivered; increase --hour-s")
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=args.timeout / 3)
        if proc.returncode != 130:
            fail(f"interrupted metro run exited {proc.returncode}, "
                 f"expected 130\n{stderr}")
        journal = cache / "journal.jsonl"
        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        if records[-1] != {"kind": "end", "status": "interrupted"}:
            fail(f"journal does not end interrupted: {records[-1]}")
        done = {r["fingerprint"] for r in records
                if r.get("kind") == "job" and r.get("status") == "done"}
        print(f"interrupt ok: exit 130, {len(done)} shards "
              f"drained+persisted", flush=True)

        # --- resumed run ---------------------------------------------
        resumed = run_metro(str(work / "resumed.json"), args,
                            extra=("--cache-dir", str(cache),
                                   "--resume"),
                            timeout=args.timeout / 3)
        if resumed.returncode != 0:
            fail(f"resume exited {resumed.returncode}\n"
                 f"{resumed.stderr}")
        cached = sum(" cached " in line and "[repro.exec]" in line
                     for line in resumed.stderr.splitlines())
        if cached < len(done):
            fail(f"resume recomputed finished shards: only {cached} "
                 f"cache hits with {len(done)} journaled done")
        if ((work / "resumed.json").read_bytes()
                != (work / "a.json").read_bytes()):
            fail("resumed matrix is not byte-identical to an "
                 "uninterrupted run")
        print(f"resume ok: {cached} shards from cache, matrix "
              f"byte-identical to uninterrupted run", flush=True)

    print("metro smoke PASSED", flush=True)


if __name__ == "__main__":
    main()
