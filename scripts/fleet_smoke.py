#!/usr/bin/env python3
"""Fleet smoke test: chaos-laden fleet sweep, SIGINT, resume, verify.

Spawns ``python -m repro fleet sweep`` — two local workers pulling
from a shared queue directory under a seeded :class:`ChaosSpec` that
SIGKILLs every worker once per job — and checks the fabric's promises
end to end:

* the chaos run completes with exit 0, reports reclaimed leases and
  respawned workers, and its saved entries are byte-identical to a
  plain ``repro sweep`` of the same jobs on a process pool;
* a second fleet run is SIGINTed mid-sweep: the driver drains, exits
  130, its journal ends ``interrupted``, and every persisted cache
  entry passes ``repro cache verify``;
* ``--resume`` on the same fleet+cache finishes only the unfinished
  jobs and saves entries byte-identical to the chaos run's;
* a fourth fleet run arms the ``kill_mid_job`` fault with
  ``--checkpoint-dir``: every worker SIGKILLs itself *mid-simulation*
  right after writing a snapshot, the reclaimed retry restores that
  snapshot, and the final entries are still byte-identical to the
  pool baseline.

CI runs this (CI-sized) on every push; run it locally with no
arguments, or ``--duration`` to scale it up.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SWEEP = ("--schemes", "pbe,bbr", "--busy", "2", "--idle", "1")
CHAOS = ("--chaos-seed", "3", "--chaos-kill", "1")


def fleet_cmd(fleet_dir: str, cache_dir: str, args,
              extra=(), chaos=CHAOS) -> list:
    return [sys.executable, "-m", "repro", "fleet", "sweep",
            "--dir", fleet_dir, "--workers", "2", "--ttl", "3",
            *SWEEP, "--duration", str(args.duration),
            "--retries", "3", "--cache-dir", cache_dir,
            *chaos, *extra]


def env() -> dict:
    out = dict(os.environ)
    src = str(REPO_ROOT / "src")
    out["PYTHONPATH"] = (src + os.pathsep + out["PYTHONPATH"]
                         if out.get("PYTHONPATH") else src)
    return out


def store_entries(cache_dir: Path) -> list:
    return sorted(p for p in cache_dir.glob("??/*.json"))


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="fleet + chaos + SIGINT + resume smoke test")
    parser.add_argument("--duration", type=float, default=1.0)
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="overall smoke deadline in seconds")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as workdir:
        work = Path(workdir)

        # --- chaos run vs. pool baseline (byte-identity) -------------
        pool = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", *SWEEP,
             "--duration", str(args.duration), "--jobs", "2",
             "--save", str(work / "pool.json")],
            env=env(), cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=args.timeout)
        if pool.returncode != 0:
            fail(f"pool baseline exited {pool.returncode}\n"
                 f"{pool.stderr}")

        chaos = subprocess.run(
            fleet_cmd(str(work / "fleet-a"), str(work / "cache-a"),
                      args, extra=("--save", str(work / "chaos.json"))),
            env=env(), cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=args.timeout)
        if chaos.returncode != 0:
            fail(f"chaos fleet sweep exited {chaos.returncode}\n"
                 f"{chaos.stderr}")
        if "leases reclaimed" not in chaos.stderr:
            fail(f"chaos run reclaimed no leases — kill fault did not "
                 f"fire?\n{chaos.stderr}")
        if ((work / "chaos.json").read_bytes()
                != (work / "pool.json").read_bytes()):
            fail("chaos fleet entries differ from pool baseline")
        print("chaos ok: kill-per-job fleet sweep byte-identical to "
              "pool run, leases reclaimed", flush=True)

        # --- interrupted fleet run -----------------------------------
        fleet_b = str(work / "fleet-b")
        cache_b = work / "cache-b"
        proc = subprocess.Popen(
            fleet_cmd(fleet_b, str(cache_b), args),
            env=env(), cwd=REPO_ROOT, stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE, text=True)
        deadline = time.time() + args.timeout / 2
        while (time.time() < deadline and proc.poll() is None
               and len(store_entries(cache_b)) < 1):
            time.sleep(0.05)
        if proc.poll() is not None:
            fail("fleet sweep finished before SIGINT could be "
                 "delivered; increase --duration")
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=args.timeout / 2)
        if proc.returncode != 130:
            fail(f"interrupted fleet sweep exited {proc.returncode}, "
                 f"expected 130\n{stderr}")
        journal = cache_b / "journal.jsonl"
        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        if records[-1] != {"kind": "end", "status": "interrupted"}:
            fail(f"journal does not end interrupted: {records[-1]}")
        done = {r["fingerprint"] for r in records
                if r.get("kind") == "job" and r.get("status") == "done"}
        verify = subprocess.run(
            [sys.executable, "-m", "repro", "cache", "verify",
             "--cache-dir", str(cache_b), "--no-upgrade"],
            env=env(), cwd=REPO_ROOT, capture_output=True, text=True)
        if verify.returncode != 0:
            fail(f"cache verify failed after interrupt:\n"
                 f"{verify.stdout}{verify.stderr}")
        print(f"interrupt ok: fleet drained, {len(done)} jobs "
              f"persisted, journal and store intact", flush=True)

        # --- resumed fleet run (idempotent restart) ------------------
        resumed = subprocess.run(
            fleet_cmd(fleet_b, str(cache_b), args,
                      extra=("--resume", "--save",
                             str(work / "resumed.json"))),
            env=env(), cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=args.timeout)
        if resumed.returncode != 0:
            fail(f"fleet resume exited {resumed.returncode}\n"
                 f"{resumed.stderr}")
        executed = sum(" executed " in line
                       for line in resumed.stderr.splitlines())
        cached = sum(" cached " in line and "[repro.exec]" in line
                     for line in resumed.stderr.splitlines())
        total = 6  # 2 schemes x (2 busy + 1 idle)
        if executed != total - len(done) or cached != len(done):
            fail(f"fleet resume recomputed finished work: {executed} "
                 f"executed / {cached} cached with {len(done)} done")
        if ((work / "resumed.json").read_bytes()
                != (work / "pool.json").read_bytes()):
            fail("resumed fleet sweep is not byte-identical to the "
                 "uninterrupted pool run")
        print(f"resume ok: {executed} executed, {cached} cached, "
              f"byte-identical output", flush=True)

        # --- mid-job SIGKILL -> checkpoint restore -------------------
        fleet_c = Path(work / "fleet-c")
        ck_dir = work / "checkpoints"
        midkill = subprocess.run(
            fleet_cmd(str(fleet_c), str(work / "cache-c"), args,
                      chaos=("--chaos-seed", "5",
                             "--chaos-kill-mid", "1"),
                      extra=("--checkpoint-dir", str(ck_dir),
                             "--checkpoint-every", "200",
                             "--save", str(work / "midkill.json"))),
            env=env(), cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=args.timeout)
        if midkill.returncode != 0:
            fail(f"mid-job-kill fleet sweep exited "
                 f"{midkill.returncode}\n{midkill.stderr}")
        fired = list((fleet_c / "chaos-events").glob("kill_mid_job.*"))
        if not fired:
            fail("kill_mid_job fault never fired")
        worker_logs = "".join(
            p.read_text() for p in (fleet_c / "workers").glob("*.log"))
        if "chaos: SIGKILL at subframe" not in worker_logs:
            fail("no worker logged the mid-simulation SIGKILL")
        if "leases reclaimed" not in midkill.stderr:
            fail(f"mid-job kills reclaimed no leases\n{midkill.stderr}")
        snapshots = list(ck_dir.glob("*/ckpt-*.snap"))
        if not snapshots:
            fail("no mid-run snapshots were persisted")
        if ((work / "midkill.json").read_bytes()
                != (work / "pool.json").read_bytes()):
            fail("checkpoint-restored sweep differs from the "
                 "uninterrupted pool baseline")
        print(f"checkpoint ok: {len(fired)} mid-simulation SIGKILLs, "
              f"{len(snapshots)} snapshots, restored entries "
              f"byte-identical to pool run", flush=True)

    print("fleet smoke PASSED", flush=True)


if __name__ == "__main__":
    main()
