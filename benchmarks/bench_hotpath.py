"""Hot-path microbenchmarks (scheduler, estimator, batched-engine
block paths, subframe loop, sparse metro fast-forward).

Complements the figure/table benches: these time the measured hot
paths directly, so a regression in one of them is attributable
before it shows up as a slower sweep.  ``python -m repro perf`` runs
the same bodies outside pytest and records them to
``BENCH_hotpath.json``.
"""

from repro.cell.scheduler import DemandEntry, allocate_prbs
from repro.monitor.capacity import CellCapacityEstimator
from repro.perf import PerfCounters
from repro.perf.bench import (
    _bench_cc_block,
    _bench_channel_block,
    _bench_dci_batch,
    _bench_estimator,
    _bench_metro_smoke,
    _bench_scheduler,
    _bench_subframe_loop,
    _bench_transport_batch,
)
from repro.phy.dci import DciMessage, SubframeRecord


def test_scheduler_waterfill(benchmark):
    demands = (
        [DemandEntry(rnti=i, demand_bits=4_000, bits_per_prb=400)
         for i in range(4)]
        + [DemandEntry(rnti=100 + i, demand_bits=10**7,
                       bits_per_prb=500 + 37 * i)
           for i in range(8)])

    def body():
        for rotation in range(100):
            allocate_prbs(100, demands, rotation=rotation)

    benchmark(body)


def test_estimator_window(benchmark):
    est = CellCapacityEstimator(cell_id=0, total_prbs=100, own_rnti=1)
    for sf in range(500):
        record = SubframeRecord(sf, 0, 100)
        record.messages.append(
            DciMessage(sf, 0, 1, 20, 15, 2, tbs_bits=10_000))
        record.messages.append(
            DciMessage(sf, 0, 7, 30, 12, 1, tbs_bits=9_000))
        est.update(record, own_rate_hint=500, ber_hint=1e-5)

    def body():
        # Fresh estimate (memo miss) then the hit pattern.
        est._memo.clear()
        for window in (40, 40, 80, 80, 400):
            est.estimate(window)

    benchmark(body)


def test_channel_block_chain(benchmark):
    """Block-sampled SINR→MCS→rate→BER chain vs its scalar reference."""
    result = benchmark.pedantic(
        _bench_channel_block, kwargs={"n_subframes": 20_000},
        rounds=1, iterations=1)
    print(f"\nchannel block: {result['block_subframes_per_s']:,.0f} "
          f"subframes/s ({result['speedup']:g}x scalar)")
    # The block path must never be slower than per-subframe sampling.
    assert result["speedup"] >= 1.0


def test_dci_batch_ingest(benchmark):
    """Columnar monitor ingest vs the per-record reference path."""
    result = benchmark.pedantic(
        _bench_dci_batch, kwargs={"n_subframes": 10_000},
        rounds=1, iterations=1)
    print(f"\ndci batch: {result['batch_rows_per_s']:,.0f} rows/s "
          f"({result['speedup']:g}x scalar)")
    assert result["subframes"] == 10_000


def test_transport_batch_ack_clock(benchmark):
    """Columnar per-ACK transport vs the scalar per-packet reference.

    End-state equality is asserted inside the bench body; the block
    loop must never be slower than per-packet delivery.
    """
    result = benchmark.pedantic(
        _bench_transport_batch, kwargs={"sim_s": 1.0},
        rounds=1, iterations=1)
    print(f"\ntransport batch: {result['batch_acks_per_s']:,.0f} acks/s "
          f"({result['speedup']:g}x scalar)")
    assert result["acks"] > 0


def test_cc_block_scheme_loops(benchmark):
    """Per-scheme columnar on_ack_block vs the scalar on_ack loop.

    Decision equality is asserted inside the bench body; the block
    paths must never be slower than the sequential reference.
    """
    result = benchmark.pedantic(
        _bench_cc_block, kwargs={"n_blocks": 1_000},
        rounds=1, iterations=1)
    print(f"\ncc block: {result['block_contexts_per_s']:,.0f} acks/s "
          f"({result['speedup']:g}x scalar)")
    assert result["speedup"] > 0
    assert set(result["schemes"]) == {"pbe", "bbr", "cubic", "copa"}


def test_subframe_loop_ticks(benchmark):
    result = benchmark.pedantic(
        _bench_subframe_loop, kwargs={"duration_s": 2.0},
        rounds=1, iterations=1)
    print(f"\nsubframe loop: {result['ticks_per_s']:,.0f} ticks/s")
    assert result["ticks"] >= 2_000


def test_metro_smoke_fast_forward(benchmark):
    """Sparse ≥100-cell metro shard: batched vs scalar, same digest.

    This is the idle-cell fast-forward's target workload; the batched
    engine must be at least 2x faster here while staying byte-identical
    (the fingerprint comparison lives inside the bench body).
    """
    result = benchmark.pedantic(
        _bench_metro_smoke, kwargs={"hour_s": 1.2},
        rounds=1, iterations=1)
    print(f"\nmetro smoke: {result['cells']} cells, "
          f"batched {result['batch_wall_s']:g}s vs "
          f"scalar {result['scalar_wall_s']:g}s "
          f"({result['speedup']:g}x)")
    assert result["cells"] >= 100
    assert result["speedup"] >= 2.0


def test_bench_suite_bodies(benchmark):
    """The repro.perf.bench micro bodies, as one smoke unit."""

    def body():
        _bench_estimator(200)
        _bench_scheduler(200)

    benchmark(body)


def test_perf_counters_overhead(benchmark):
    """Counter attachment must stay cheap (its design constraint)."""
    perf = PerfCounters()

    def body():
        for _ in range(1_000):
            perf.ticks += 1
            perf.events_popped += 1
        return perf.ticks

    benchmark(body)
