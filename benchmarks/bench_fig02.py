"""Figure 2: secondary-cell activation/deactivation timeline."""

from repro.harness.experiments import run_fig02


def test_fig02_carrier_aggregation_timeline(benchmark):
    result = benchmark.pedantic(run_fig02, rounds=1, iterations=1)
    print("\n" + result.format())

    # The network activates the secondary cell ~0.13 s into the
    # overload (paper: 0.13 s)...
    assert result.activation_s is not None
    assert 0.05 < result.activation_s < 0.4
    # ...and deactivates it a few hundred ms after the rate drops to
    # 6 Mbit/s at t=2 s.
    assert result.deactivation_s is not None
    assert 2.0 < result.deactivation_s < 3.5
    # Queue builds while the primary is overloaded, then drains to a
    # low steady-state delay.
    assert result.peak_delay_ms > 2 * result.steady_delay_ms
