"""Figure 5: millisecond-scale idle-capacity detection and grabbing."""

from repro.harness.experiments import run_fig05


def test_fig05_idle_prb_grab(benchmark):
    result = benchmark.pedantic(run_fig05, rounds=1, iterations=1)
    print("\n" + result.format())

    # The monitor sees the freed capacity within roughly one RTprop
    # averaging window (tens of ms; an end-to-end estimator would need
    # several RTTs of probing).
    assert result.detection_latency_ms < 150.0
    # And the sender occupies it within a couple of RTTs.
    assert result.occupation_latency_ms < 300.0
    # The rate-limited user (Figure 5's User 3) cannot grow.
    assert abs(result.limited_after_mbps
               - result.limited_before_mbps) < 1.0
