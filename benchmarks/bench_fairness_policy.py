"""§7 fairness-policy ablation: equal-PRB vs equal-rate scheduling."""

from repro.harness import Experiment, FlowSpec, Scenario, jain_index
from repro.harness.report import format_table
from repro.phy.carrier import CarrierConfig
from repro.phy.channel import StaticChannel


def _run(policy):
    scenario = Scenario(
        name=f"policy-{policy}", carriers=[CarrierConfig(0, 20.0)],
        aggregated_cells=1, duration_s=4.0, seed=19,
        scheduler_policy=policy)
    exp = Experiment(scenario)
    exp.add_flow(FlowSpec(scheme="pbe", rnti=100,
                          log_allocations=True))
    exp.add_flow(FlowSpec(scheme="pbe", rnti=101,
                          log_allocations=True))
    # One strong user (cell centre) and one weak user (cell edge).
    exp.network.user(100).channel = StaticChannel(24.0)
    exp.network.user(101).channel = StaticChannel(8.0)
    results = exp.run()
    tputs = [r.summary.average_throughput_bps for r in results]
    prbs = []
    for r in results:
        grants = [p for _, _, p in (r.allocations or [])]
        prbs.append(sum(grants) / 4_000)  # mean PRBs/subframe
    return tputs, prbs


def test_fairness_policy_tradeoff(benchmark):
    def run_both():
        return {"equal": _run("equal"), "equal_rate": _run("equal_rate")}

    outcome = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for policy, (tputs, prbs) in outcome.items():
        rows.append([policy,
                     tputs[0] / 1e6, tputs[1] / 1e6,
                     jain_index(tputs),
                     prbs[0], prbs[1]])
    print("\n" + format_table(
        ["policy", "strong tput", "weak tput", "tput jain",
         "strong PRBs", "weak PRBs"],
        rows, title="§7 fairness policies: strong (24 dB) vs weak "
                    "(8 dB) user (Mbit/s)"))

    equal_tputs, equal_prbs = outcome["equal"]
    rate_tputs, rate_prbs = outcome["equal_rate"]
    # equal: PRB-fair (similar PRBs, unequal throughput).
    assert abs(equal_prbs[0] - equal_prbs[1]) < 0.15 * max(equal_prbs)
    assert equal_tputs[0] > 2 * equal_tputs[1]
    # equal_rate: throughput-fair (weak user gets many more PRBs).
    assert rate_prbs[1] > 1.5 * rate_prbs[0]
    assert jain_index(rate_tputs) > jain_index(equal_tputs)