"""Figure 11: cell-status micro-benchmark (diurnal users + rates)."""

from repro.harness.experiments import run_fig11


def test_fig11_cell_status(benchmark):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    print("\n" + result.format())

    # Peak-hour (12:00-20:00) averages: paper measured 181 and 97.
    assert 140 < result.peak_average("20MHz") < 230
    assert 70 < result.peak_average("10MHz") < 130
    # The 10 MHz cell is switched off from midnight to 3 am.
    assert result.hourly_counts["10MHz"][:3] == [0, 0, 0]
    assert result.hourly_counts["20MHz"][0] > 0
    # Most users are low-rate (paper: 77.4% / 71.9% below half peak).
    for cell in ("20MHz", "10MHz"):
        assert 0.6 < result.frac_below_half_peak(cell) < 0.9
    # Rates never exceed the 1.8 Mbit/s/PRB ceiling.
    assert max(result.user_rates["20MHz"]) <= 1.85
