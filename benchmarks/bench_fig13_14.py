"""Figures 13-14: order-statistic drill-down, eight schemes per
location."""

import os

from repro.harness.experiments import run_fig13_14

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: Reduced run covers one busy indoor, the idle indoor, and the busy
#: outdoor location; the full run covers all six.
REDUCED_KEYS = ("fig13b_2cc_indoor_busy", "fig13d_3cc_indoor_idle",
                "fig14a_2cc_outdoor_busy")


def test_fig13_14_order_statistics(benchmark):
    kwargs = {"duration_s": 20.0 if FULL else 6.0}
    if not FULL:
        kwargs["location_keys"] = REDUCED_KEYS
    result = benchmark.pedantic(run_fig13_14, kwargs=kwargs,
                                rounds=1, iterations=1)
    print("\n" + result.format())

    for key, by_scheme in result.locations.items():
        pbe = by_scheme["pbe"]
        bbr = by_scheme["bbr"]
        # PBE: throughput comparable to BBR, much lower delay (the
        # figures' visual headline).
        assert pbe.average_throughput_bps > \
            0.85 * bbr.average_throughput_bps
        assert pbe.median_delay_ms < bbr.median_delay_ms
        # The four conservative schemes have a large throughput
        # disadvantage at every location.
        for scheme in ("copa", "sprout", "vivace"):
            assert (by_scheme[scheme].average_throughput_bps
                    < 0.6 * pbe.average_throughput_bps)
        # Verus: high throughput but excessive delay.
        verus = by_scheme["verus"]
        assert verus.median_delay_ms > 2 * pbe.median_delay_ms


def test_fig13d_idle_cell_is_stable(benchmark):
    result = benchmark.pedantic(
        run_fig13_14,
        kwargs={"schemes": ("pbe",),
                "location_keys": ("fig13d_3cc_indoor_idle",),
                "duration_s": 20.0 if FULL else 6.0},
        rounds=1, iterations=1)
    summary = result.summary("fig13d_3cc_indoor_idle", "pbe")
    # Paper: on idle cells PBE has low variance in delay and throughput.
    spread = (summary.delay_percentiles_ms[90]
              - summary.delay_percentiles_ms[10])
    assert spread < 15.0
    tput = summary.throughput_percentiles_bps
    assert tput[90] < 1.5 * tput[10]
