"""Figure 20: one device, two concurrent connections."""

import os

from repro.harness.experiments import run_fig20

FULL = os.environ.get("REPRO_FULL", "") == "1"


def test_fig20_two_connections(benchmark):
    result = benchmark.pedantic(
        run_fig20, kwargs={"duration_s": 40.0 if FULL else 8.0},
        rounds=1, iterations=1)
    print("\n" + result.format())

    # Paper: PBE splits the capacity almost evenly (26 vs 28 Mbit/s);
    # both flows see low median delay (48/56 ms).
    assert result.balance("pbe") > 0.95
    a, b = result.pairs["pbe"]
    assert a.average_throughput_bps > 0
    assert b.average_throughput_bps > 0
    # PBE at least as balanced as BBR (the paper measured BBR at
    # 10 vs 35 Mbit/s).
    assert result.balance("pbe") >= result.balance("bbr") - 0.02
    # And with lower delay than BBR on both flows.
    bbr_a, bbr_b = result.pairs["bbr"]
    assert a.median_delay_ms < bbr_a.median_delay_ms * 1.1
    assert b.median_delay_ms < bbr_b.median_delay_ms * 1.1
