"""Figure 8: one-way delay quantization under fixed offered loads."""

from repro.harness.experiments import run_fig08


def test_fig08_retransmission_delay(benchmark):
    result = benchmark.pedantic(run_fig08, rounds=1, iterations=1)
    print("\n" + result.format())

    series = sorted(result.series, key=lambda s: s.offered_mbps)
    # Higher offered load -> bigger TBs -> more packets in the +8 ms
    # retransmission band (paper: 6 -> 24 -> 36 Mbit/s).
    retx = [s.one_retx_fraction + s.more_fraction for s in series]
    assert retx[0] < retx[-1]
    assert retx[0] < 0.10          # light load: few retransmissions
    assert retx[-1] > 0.10         # heavy load: clearly visible band
    # The minimum delay still tracks the propagation floor (§4.2.2).
    floors = [s.min_delay_ms for s in series]
    assert max(floors) - min(floors) < 5.0
