"""Table 1: summary throughput speedup and delay reduction vs BBR,
Verus and Copa over busy and idle links."""

from repro.harness.experiments import table1_from_sweep


def test_table1(benchmark, stationary_sweep):
    result = benchmark.pedantic(
        table1_from_sweep, args=(stationary_sweep,),
        rounds=1, iterations=1)
    print("\n" + result.format())

    # Shape checks against the paper's Table 1:
    for condition in ("busy", "idle"):
        bbr = result.row("bbr", condition)
        # PBE matches BBR's throughput (paper: 1.04-1.10x)...
        assert bbr.throughput_speedup > 0.90
        # ...while cutting its delay substantially (paper: 1.4-2.1x).
        assert bbr.p95_delay_reduction > 1.3
        assert bbr.avg_delay_reduction > 1.2

        verus = result.row("verus", condition)
        assert verus.p95_delay_reduction > 2.0  # paper: 3.4-4.0x

        copa = result.row("copa", condition)
        # Copa's throughput collapse (paper: 10-13x) at slightly lower
        # delay than PBE (paper: 0.79-0.82).
        assert copa.throughput_speedup > 3.0
        assert copa.p95_delay_reduction < 1.0
