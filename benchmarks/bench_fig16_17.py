"""Figures 16-17: performance under mobility."""

import os

import numpy as np

from repro.harness.experiments import run_fig16_17

FULL = os.environ.get("REPRO_FULL", "") == "1"


def test_fig16_17_mobility(benchmark):
    duration = 40.0 if FULL else 16.0
    result = benchmark.pedantic(
        run_fig16_17,
        kwargs={"duration_s": duration,
                "interval_s": duration / 20.0},
        rounds=1, iterations=1)
    print("\n" + result.format())

    pbe = result.summaries["pbe"]
    bbr = result.summaries["bbr"]
    # Paper: comparable throughput (55 vs 55 Mbit/s), but BBR's delay
    # explodes under mobility (156 vs 64 ms p95) while PBE tracks the
    # channel.
    assert pbe.average_throughput_bps > 0.85 * bbr.average_throughput_bps
    assert pbe.p95_delay_ms < 0.7 * bbr.p95_delay_ms
    # Conservative schemes under-utilize; mobility barely affects
    # their delay (paper's last observation).
    for scheme in ("copa", "sprout", "vivace"):
        s = result.summaries[scheme]
        assert (s.average_throughput_bps
                < 0.5 * pbe.average_throughput_bps)

    # Figure 17: PBE's 2-second medians dip and recover with the
    # trajectory; its delay stays near the floor throughout.
    pbe_tl = next(t for t in result.timelines if t.scheme == "pbe")
    tputs = np.asarray(pbe_tl.throughput_mbps[1:-1])
    # Capacity at the far point is well below the starting point.
    assert tputs.min() < 0.7 * tputs[:3].mean()
    # And it recovers at the end.
    assert tputs[-3:].mean() > 0.8 * tputs[:3].mean()
    bbr_tl = next(t for t in result.timelines if t.scheme == "bbr")
    assert max(pbe_tl.delay_ms) < max(d for d in bbr_tl.delay_ms if d)
