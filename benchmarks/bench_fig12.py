"""Figure 12: throughput/delay CDFs across locations for the four
high-throughput schemes."""

import numpy as np

from repro.harness.experiments import fig12_from_sweep


def test_fig12_location_cdfs(benchmark, stationary_sweep):
    result = benchmark.pedantic(
        fig12_from_sweep, args=(stationary_sweep,),
        rounds=1, iterations=1)
    print("\n" + result.format())

    med = {s: np.median(v) for s, v in result.throughput_mbps.items()}
    med_delay = {s: np.median(v) for s, v in result.p95_delay_ms.items()}

    # PBE's throughput distribution is at least on par with every other
    # high-throughput scheme (paper: highest at most locations).
    for scheme in ("bbr", "cubic", "verus"):
        assert med["pbe"] > 0.9 * med[scheme]
    # And its delay distribution is far to the left (paper Figure 12b).
    assert med_delay["pbe"] < 0.75 * med_delay["bbr"]
    assert med_delay["pbe"] < 0.5 * med_delay["cubic"]
    assert med_delay["pbe"] < 0.5 * med_delay["verus"]
