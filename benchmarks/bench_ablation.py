"""Ablations of PBE-CC's design choices (DESIGN.md list)."""

import os

from repro.harness.experiments import run_ablation

FULL = os.environ.get("REPRO_FULL", "") == "1"


def test_pbe_ablations(benchmark):
    result = benchmark.pedantic(
        run_ablation, kwargs={"duration_s": 20.0 if FULL else 6.0},
        rounds=1, iterations=1)
    print("\n" + result.format())

    paper = result.row("paper")

    # Without the Ta>1/Pa>4 filter, N is inflated by parameter-update
    # users, so the fair-share estimate (and throughput) collapses.
    no_filter = result.row("no_user_filter")
    assert (no_filter.summary.average_throughput_bps
            < 0.7 * paper.summary.average_throughput_bps)

    # Without the 27 ms margin, HARQ jitter trips the Internet-state
    # switch constantly (the paper's "works poorly in practice").
    no_margin = result.row("no_delay_margin")
    assert no_margin.internet_fraction > 5 * max(
        paper.internet_fraction, 0.01)

    # A bare-BDP window cannot ride through reordering stalls.
    bare = result.row("bare_bdp_cwnd")
    assert (bare.summary.average_throughput_bps
            < paper.summary.average_throughput_bps)

    # Instantaneous estimates still work but are noisier; they must
    # not *beat* the averaged design on delay while the paper variant
    # keeps its throughput edge over the worst ablations.
    no_avg = result.row("no_averaging")
    assert (no_avg.summary.average_throughput_bps
            < 1.1 * paper.summary.average_throughput_bps)
