"""Figure 6: retransmission/protocol overhead and TB error rate."""

import pytest

from repro.harness.experiments import run_fig06
from repro.harness.experiments.fig06 import STRONG_SINR_DB, WEAK_SINR_DB


def test_fig06_overhead_and_tbler(benchmark):
    result = benchmark.pedantic(run_fig06, rounds=1, iterations=1)
    print("\n" + result.format())

    # 6(a): retransmission overhead grows with offered load.
    for sinr in (STRONG_SINR_DB, WEAK_SINR_DB):
        points = [p for p in result.overhead if p.sinr_db == sinr]
        points.sort(key=lambda p: p.offered_mbps)
        assert points[-1].retransmission_pct >= \
            points[0].retransmission_pct
        # Protocol overhead is the constant gamma = 6.8%.
        assert all(p.protocol_pct == pytest.approx(6.8)
                   for p in points)

    # 6(b): theory and the MAC's empirical draw agree, and TBLER grows
    # with TB size (the paper's 1-(1-p)^L curves).
    for point in result.tbler:
        assert point.empirical == pytest.approx(point.theory, abs=0.03)
    by_ber: dict = {}
    for point in result.tbler:
        by_ber.setdefault(point.ber, []).append(point)
    for points in by_ber.values():
        points.sort(key=lambda p: p.tb_bits)
        assert points[-1].theory > points[0].theory
