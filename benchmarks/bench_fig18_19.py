"""Figures 18-19: controlled on-off competition."""

import os

from repro.harness.experiments import run_fig18_19

FULL = os.environ.get("REPRO_FULL", "") == "1"


def test_fig18_19_controlled_competition(benchmark):
    duration = 40.0 if FULL else 16.0
    result = benchmark.pedantic(
        run_fig18_19, kwargs={"duration_s": duration},
        rounds=1, iterations=1)
    print("\n" + result.format())

    pbe = result.summaries["pbe"]
    bbr = result.summaries["bbr"]
    # Paper: PBE ~57 Mbit/s at 61/71 ms avg/p95; BBR slightly higher
    # throughput but 147/227 ms delays.
    assert pbe.average_throughput_bps > 0.8 * bbr.average_throughput_bps
    assert pbe.average_delay_ms < 0.75 * bbr.average_delay_ms
    assert pbe.p95_delay_ms < 0.65 * bbr.p95_delay_ms

    # PBE yields while the competitor is on and grabs the capacity
    # back when it stops (Figure 19's timeline shape).
    on_tput, off_tput = result.on_off_split["pbe"]
    assert on_tput < 0.8 * off_tput
