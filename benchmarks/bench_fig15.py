"""Figure 15: locations at which each scheme triggers carrier
aggregation."""

from repro.harness.experiments import fig15_from_sweep


def test_fig15_ca_triggering(benchmark, stationary_sweep):
    result = benchmark.pedantic(
        fig15_from_sweep, args=(stationary_sweep,),
        rounds=1, iterations=1)
    print("\n" + result.format())

    eligible = result.rows[0].eligible
    # Aggressive schemes trigger CA almost everywhere eligible...
    assert result.count("pbe") >= 0.8 * eligible
    assert result.count("bbr") >= 0.8 * eligible
    assert result.count("cubic") >= 0.8 * eligible
    # ...while Copa's conservative rate rarely does (paper: near zero).
    assert result.count("copa") <= 0.3 * eligible
