"""Figure 21: multi-user fairness, RTT fairness, TCP friendliness."""

import os

from repro.harness.experiments import run_fig21

FULL = os.environ.get("REPRO_FULL", "") == "1"


def test_fig21_fairness(benchmark):
    result = benchmark.pedantic(
        run_fig21, kwargs={"time_scale": 1.0 if FULL else 0.2},
        rounds=1, iterations=1)
    print("\n" + result.format())

    # Paper: every Jain index above 98% with two flows and above ~98%
    # with three.
    multi = result.variant("multi_user")
    assert multi.jain_2 > 0.97
    assert multi.jain_3 > 0.95

    # RTT fairness: a 297 ms-RTT flow gets its share too (paper:
    # 99.45%).
    rtt = result.variant("rtt")
    assert rtt.jain_3 > 0.95

    # TCP friendliness: the cell's per-user fairness keeps BBR/CUBIC
    # from starving PBE (paper: >98%).
    assert result.variant("vs_bbr").jain_3 > 0.90
    assert result.variant("vs_cubic").jain_3 > 0.90
