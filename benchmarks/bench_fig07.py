"""Figure 7: detected active users and the control-traffic filter."""

import os

from repro.harness.experiments import run_fig07

FULL = os.environ.get("REPRO_FULL", "") == "1"


def test_fig07_user_filtering(benchmark):
    duration = 20.0 if FULL else 8.0
    result = benchmark.pedantic(run_fig07,
                                kwargs={"duration_s": duration},
                                rounds=1, iterations=1)
    print("\n" + result.format())

    # Busy tower: ~15.8 users per 40 ms window before filtering...
    assert 10.0 < result.mean_detected < 25.0
    # ...and ~1.3 with at most a handful after Ta>1, Pa>4 (paper: 7).
    assert result.mean_filtered < 5.0
    assert max(result.filtered_counts) <= 8
    # Most detected users are one-subframe parameter updates (68.2%).
    assert 0.55 < result.frac_single_subframe < 0.85
