"""Shared fixtures for the benchmark suite.

Benchmark scale: by default every experiment runs a *reduced* version
of the paper's setup (fewer locations, shorter flows) so the whole
suite finishes in tens of minutes.  Set ``REPRO_FULL=1`` in the
environment to run the paper-scale versions (40 locations, 40-second
flows) — that is what EXPERIMENTS.md records.
"""

import os

import pytest

from repro.harness.experiments import run_stationary_sweep

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: Reduced-scale knobs (paper-scale value in the comment).
SWEEP_BUSY = 25 if FULL else 5           # 25
SWEEP_IDLE = 15 if FULL else 3           # 15
SWEEP_DURATION_S = 20.0 if FULL else 6.0  # 20 s flows
LONG_RUN_S = 40.0 if FULL else 16.0      # mobility / competition
FAIRNESS_SCALE = 1.0 if FULL else 0.2    # 60 s fairness schedule


@pytest.fixture(scope="session")
def stationary_sweep():
    """One shared sweep feeding Table 1, Figure 12 and Figure 15."""
    return run_stationary_sweep(
        schemes=("pbe", "bbr", "cubic", "verus", "copa"),
        n_busy=SWEEP_BUSY, n_idle=SWEEP_IDLE,
        duration_s=SWEEP_DURATION_S)
