"""Shared fixtures for the benchmark suite.

Benchmark scale: by default every experiment runs a *reduced* version
of the paper's setup (fewer locations, shorter flows) so the whole
suite finishes in tens of minutes.  Set ``REPRO_FULL=1`` in the
environment to run the paper-scale versions (40 locations, 40-second
flows) — that is what EXPERIMENTS.md records.

The shared sweep is built through :mod:`repro.exec`: ``REPRO_JOBS``
sets the worker-process count (default: one per CPU, capped at 8) and
``REPRO_CACHE_DIR`` points the content-addressed result cache at a
directory, so repeated benchmark invocations only re-simulate runs
whose inputs changed.  The sweep is fixture *setup* — the timed bodies
(the table/figure reductions) are untouched by parallelism.
"""

import os

import pytest

from repro.harness.experiments import run_stationary_sweep

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: Reduced-scale knobs (paper-scale value in the comment).
SWEEP_BUSY = 25 if FULL else 5           # 25
SWEEP_IDLE = 15 if FULL else 3           # 15
SWEEP_DURATION_S = 20.0 if FULL else 6.0  # 20 s flows
LONG_RUN_S = 40.0 if FULL else 16.0      # mobility / competition
FAIRNESS_SCALE = 1.0 if FULL else 0.2    # 60 s fairness schedule

#: Execution knobs for the shared sweep (see repro.exec).
SWEEP_JOBS = int(os.environ.get("REPRO_JOBS", "0") or 0) \
    or min(os.cpu_count() or 1, 8)
SWEEP_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None


@pytest.fixture(scope="session")
def stationary_sweep():
    """One shared sweep feeding Table 1, Figure 12 and Figure 15."""
    return run_stationary_sweep(
        schemes=("pbe", "bbr", "cubic", "verus", "copa"),
        n_busy=SWEEP_BUSY, n_idle=SWEEP_IDLE,
        duration_s=SWEEP_DURATION_S,
        jobs=SWEEP_JOBS, cache_dir=SWEEP_CACHE_DIR)
