"""Fleet fabric: leases, heartbeats, reclamation, worker lifecycle.

In-process :class:`FleetWorker` threads cover the queue/lease protocol
(deterministic, fast); a handful of subprocess tests cover the real
``python -m repro fleet worker`` entry point, SIGTERM handling and
driver-spawned local workers.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.exec import (
    FleetBackend,
    FleetWorker,
    ParallelRunner,
    ProbeJob,
    RunnerStats,
    WorkerLostError,
    is_failure,
    job_to_wire,
    payload_checksum,
    spawn_local_workers,
)
from repro.exec.fleet import (
    CLAIM_FRESH,
    CLAIM_TAKEOVER,
    LEASE_DIR,
    QUEUE_DIR,
    RESULT_DIR,
    STOP_FILE,
    WORKERS_DIR,
    fleet_status,
    lease_expired,
    release_lease,
    try_claim,
)
from repro.exec.store import ENVELOPE_KEY, SCHEMA_VERSION


def probe(i, **extra):
    return ProbeJob(params={"id": i, "value": i * 10, **extra})


def enqueue(root, job):
    """What FleetBackend.submit writes, without a backend."""
    wire = job_to_wire(job)
    path = root / QUEUE_DIR / f"{wire['fingerprint']}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(wire))
    return wire["fingerprint"]


def worker_thread(root, max_jobs, **kw):
    worker = FleetWorker(root, worker_id=f"t-{max_jobs}",
                         ttl_s=kw.pop("ttl_s", 1.0),
                         poll_s=kw.pop("poll_s", 0.02),
                         max_jobs=max_jobs,
                         log=open(os.devnull, "w"), **kw)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


# ---------------------------------------------------------------------
# Lease protocol units.

def test_claim_is_exclusive(tmp_path):
    assert try_claim(tmp_path, "ab" * 16, "w1", ttl_s=60)
    assert not try_claim(tmp_path, "ab" * 16, "w2", ttl_s=60)


def test_expired_lease_can_be_taken_over(tmp_path):
    fp = "cd" * 16
    assert try_claim(tmp_path, fp, "w1", ttl_s=0.05)
    time.sleep(0.2)
    assert try_claim(tmp_path, fp, "w2", ttl_s=60)
    lease = json.loads(
        (tmp_path / LEASE_DIR / f"{fp}.json").read_text())
    assert lease["worker"] == "w2"


def test_force_claim_races_a_live_lease(tmp_path):
    fp = "ef" * 16
    assert try_claim(tmp_path, fp, "w1", ttl_s=60)
    assert not try_claim(tmp_path, fp, "w2", ttl_s=60)
    assert try_claim(tmp_path, fp, "w2", ttl_s=60, force=True)


def test_claim_codes_distinguish_takeover_from_fresh(tmp_path):
    fp = "12" * 16
    assert try_claim(tmp_path, fp, "w1", ttl_s=0.05) == CLAIM_FRESH
    time.sleep(0.2)
    # Replacing an expired lease is a reclamation...
    assert try_claim(tmp_path, fp, "w2", ttl_s=60) == CLAIM_TAKEOVER
    # ...but a forced duplicate of a live lease is just a race.
    assert try_claim(tmp_path, fp, "w3", ttl_s=60,
                     force=True) == CLAIM_FRESH


def test_release_lease_tolerates_absence(tmp_path):
    release_lease(tmp_path, "00" * 16)  # no lease: no error


def test_lease_expired_semantics():
    now = time.time()
    assert lease_expired(None)
    assert lease_expired({"renewed": now - 10, "ttl_s": 1}, now)
    assert not lease_expired({"renewed": now, "ttl_s": 1}, now)
    assert lease_expired({"renewed": "junk", "ttl_s": 1}, now)


# ---------------------------------------------------------------------
# Worker loop.

def test_worker_executes_queue_and_releases_lease(tmp_path):
    fp = enqueue(tmp_path, probe(1))
    worker = FleetWorker(tmp_path, worker_id="w", ttl_s=1.0,
                         poll_s=0.02, max_jobs=1,
                         log=open(os.devnull, "w"))
    assert worker.run() == 0
    assert worker.executed == 1
    entry = json.loads(
        (tmp_path / RESULT_DIR / f"{fp}.json").read_text())
    assert entry[ENVELOPE_KEY] == SCHEMA_VERSION
    assert entry["payload"] == {"probe": 1, "value": 10}
    assert entry["sha256"] == payload_checksum(entry["payload"])
    assert not (tmp_path / LEASE_DIR / f"{fp}.json").exists()


def test_worker_writes_failure_file_for_job_errors(tmp_path):
    fp = enqueue(tmp_path, probe(2, fail=True))
    worker = FleetWorker(tmp_path, worker_id="w", poll_s=0.02,
                         max_jobs=1, log=open(os.devnull, "w"))
    assert worker.run() == 0
    entry = json.loads(
        (tmp_path / RESULT_DIR / f"{fp}.json").read_text())
    assert entry["kind"] == "failure"
    assert entry["failure"]["exc_type"] == "RuntimeError"
    assert "asked to fail" in entry["failure"]["message"]


def test_worker_exits_on_stop_sentinel(tmp_path):
    enqueue(tmp_path, probe(3))
    (tmp_path / STOP_FILE).touch()
    worker = FleetWorker(tmp_path, worker_id="w", poll_s=0.02,
                         log=open(os.devnull, "w"))
    assert worker.run() == 0
    assert worker.executed == 0  # sentinel precedes claiming


def test_worker_skips_live_leases(tmp_path):
    fp = enqueue(tmp_path, probe(4))
    assert try_claim(tmp_path, fp, "other", ttl_s=60)
    worker = FleetWorker(tmp_path, worker_id="w", poll_s=0.02,
                         log=open(os.devnull, "w"))
    assert list(worker._claimable()) == []


# ---------------------------------------------------------------------
# Driver backend.

def test_fleet_backend_completes_probe_sweep(tmp_path):
    backend = FleetBackend(tmp_path, ttl_s=2.0, poll_s=0.02)
    runner = ParallelRunner(jobs=2, backend=backend)
    _, thread = worker_thread(tmp_path, max_jobs=3)
    payloads = runner.run([probe(i) for i in range(3)])
    thread.join(timeout=10)
    assert payloads == [{"probe": i, "value": i * 10}
                        for i in range(3)]
    assert runner.stats.executed == 3
    # Collection cleans the shared directory behind itself.
    assert list((tmp_path / QUEUE_DIR).glob("*.json")) == []
    assert list((tmp_path / RESULT_DIR).glob("*.json")) == []


def test_expired_lease_is_reclaimed_and_job_retried(tmp_path):
    backend = FleetBackend(tmp_path, ttl_s=1.0, poll_s=0.02)
    runner = ParallelRunner(jobs=2, backend=backend, retries=2)
    job = probe(5)
    fp = job.fingerprint()

    def die_then_serve():
        # A "worker" claims and dies (never renews, never writes);
        # after the TTL the driver must reclaim and a healthy worker
        # completes the retry.
        assert try_claim(tmp_path, fp, "dead-worker", ttl_s=1.0)
        time.sleep(1.4)
        FleetWorker(tmp_path, worker_id="healthy", ttl_s=1.0,
                    poll_s=0.02, max_jobs=1,
                    log=open(os.devnull, "w")).run()

    thread = threading.Thread(target=die_then_serve, daemon=True)
    thread.start()
    payloads = runner.run([job])
    thread.join(timeout=10)
    assert payloads == [{"probe": 5, "value": 50}]
    assert runner.stats.lease_reclaims >= 1
    assert runner.stats.retries >= 1
    assert "leases reclaimed" in runner.stats.format()


def test_worker_takeover_is_counted_and_folded_into_stats(tmp_path):
    # A sibling worker can take over an expired lease before the
    # driver's poll notices the dead heartbeat; the driver would
    # otherwise undercount lease_reclaims.  The worker counts the
    # takeover, publishes it through its beacon, and the backend
    # folds beacon counts into the telemetry.
    backend = FleetBackend(tmp_path, ttl_s=0.2, poll_s=0.02)
    fp = enqueue(tmp_path, probe(9))
    assert try_claim(tmp_path, fp, "dead-worker", ttl_s=0.2)
    time.sleep(0.5)
    worker = FleetWorker(tmp_path, worker_id="healthy", ttl_s=1.0,
                         poll_s=0.02, max_jobs=1,
                         log=open(os.devnull, "w"))
    worker.run()
    assert worker.reclaimed == 1
    beacon = json.loads(
        (tmp_path / WORKERS_DIR / "healthy.json").read_text())
    assert beacon["reclaimed"] == 1
    assert backend.lease_reclaims == 1  # driver never saw the expiry
    row, = [w for w in fleet_status(tmp_path)["workers"]
            if w["worker"] == "healthy"]
    assert row["reclaimed"] == 1


def test_backend_baselines_stale_beacon_reclaims(tmp_path):
    # Beacons persist across sweeps of a reused fleet directory: a
    # fresh driver must not inherit a previous run's takeover counts.
    (tmp_path / WORKERS_DIR).mkdir(parents=True)
    (tmp_path / WORKERS_DIR / "old.json").write_text(json.dumps(
        {"worker": "old", "renewed": 0.0, "reclaimed": 7}))
    backend = FleetBackend(tmp_path, ttl_s=1.0, poll_s=0.02)
    assert backend.lease_reclaims == 0


def test_remote_job_error_is_a_structured_failure(tmp_path):
    backend = FleetBackend(tmp_path, ttl_s=2.0, poll_s=0.02)
    runner = ParallelRunner(jobs=2, backend=backend, retries=1)
    _, thread = worker_thread(tmp_path, max_jobs=2)
    payloads = runner.run([probe(6), probe(7, fail=True)])
    thread.join(timeout=10)
    assert payloads[0] == {"probe": 6, "value": 60}
    assert is_failure(payloads[1])
    assert payloads[1].kind == "job-error"
    assert "RuntimeError" in payloads[1].message


def test_corrupt_result_is_quarantined_and_retried(tmp_path):
    backend = FleetBackend(tmp_path, ttl_s=2.0, poll_s=0.02)
    job = probe(8)
    handle = backend.submit(job)
    # A torn write lands in results/: half an envelope.
    good = {ENVELOPE_KEY: SCHEMA_VERSION, "sha256": "x",
            "payload": {}}
    (tmp_path / RESULT_DIR / f"{handle.fingerprint}.json").write_text(
        json.dumps(good)[:20])
    done = backend.wait({handle}, timeout=5)
    assert handle in done
    with pytest.raises(WorkerLostError, match="corrupt in transit"):
        backend.result(handle)
    assert backend.corrupt_results == 1
    assert (tmp_path / "quarantine"
            / f"{handle.fingerprint}.json").exists()
    # The queue entry survives, so the retry re-executes normally.
    assert (tmp_path / QUEUE_DIR
            / f"{handle.fingerprint}.json").exists()


def test_checksum_mismatch_is_rejected(tmp_path):
    backend = FleetBackend(tmp_path, ttl_s=2.0, poll_s=0.02)
    handle = backend.submit(probe(9))
    bad = {ENVELOPE_KEY: SCHEMA_VERSION, "sha256": "0" * 64,
           "payload": {"probe": 9, "value": 1234}}
    (tmp_path / RESULT_DIR / f"{handle.fingerprint}.json").write_text(
        json.dumps(bad))
    with pytest.raises(WorkerLostError):
        backend.result(handle)


def test_dead_fleet_restart_collects_existing_results(tmp_path):
    # A SIGKILLed fleet leaves a completed-but-uncollected result and
    # an expired lease behind; a fresh driver must harvest the result
    # without re-executing and clear the stale lease.
    job = probe(10)
    fp = job.fingerprint()
    payload = {"probe": 10, "value": 100}
    entry = {ENVELOPE_KEY: SCHEMA_VERSION,
             "sha256": payload_checksum(payload), "payload": payload}
    (tmp_path / RESULT_DIR).mkdir(parents=True)
    (tmp_path / RESULT_DIR / f"{fp}.json").write_text(
        json.dumps(entry))
    (tmp_path / LEASE_DIR).mkdir(parents=True)
    (tmp_path / LEASE_DIR / f"{fp}.json").write_text(json.dumps(
        {"worker": "gone", "renewed": time.time() - 999,
         "ttl_s": 1.0}))
    (tmp_path / STOP_FILE).touch()  # dead driver's sentinel

    backend = FleetBackend(tmp_path, ttl_s=1.0, poll_s=0.02)
    assert not (tmp_path / STOP_FILE).exists()  # cleared for workers
    handle = backend.submit(job)
    assert not (tmp_path / LEASE_DIR / f"{fp}.json").exists()
    assert handle in backend.wait({handle}, timeout=5)
    assert backend.result(handle) == payload


def test_submit_discards_invalid_leftover_results(tmp_path):
    job = probe(11)
    fp = job.fingerprint()
    (tmp_path / RESULT_DIR).mkdir(parents=True)
    (tmp_path / RESULT_DIR / f"{fp}.json").write_text("{garbage")
    backend = FleetBackend(tmp_path, ttl_s=1.0, poll_s=0.02)
    backend.submit(job)
    assert not (tmp_path / RESULT_DIR / f"{fp}.json").exists()


def test_exec_elapsed_is_claim_relative(tmp_path):
    backend = FleetBackend(tmp_path, ttl_s=60.0, poll_s=0.02)
    handle = backend.submit(probe(12))
    # Unclaimed: queue wait must not run the deadline clock.
    assert backend.exec_elapsed(handle, 100.0) == 0.0
    assert try_claim(tmp_path, handle.fingerprint, "w", ttl_s=60)
    elapsed = backend.exec_elapsed(handle, 100.0)
    assert 0.0 <= elapsed < 5.0


def test_cancel_only_unclaimed_jobs(tmp_path):
    backend = FleetBackend(tmp_path, ttl_s=60.0, poll_s=0.02)
    unclaimed = backend.submit(probe(13))
    claimed = backend.submit(probe(14))
    assert try_claim(tmp_path, claimed.fingerprint, "w", ttl_s=60)
    assert backend.cancel(unclaimed)
    assert not (tmp_path / QUEUE_DIR
                / f"{unclaimed.fingerprint}.json").exists()
    assert not backend.cancel(claimed)


def test_runner_stats_format_mentions_fleet_counters_only_when_used():
    quiet = RunnerStats(total=1)
    assert "reclaimed" not in quiet.format()
    loud = RunnerStats(total=1, lease_reclaims=2, worker_restarts=1)
    assert "2 leases reclaimed" in loud.format()
    assert "1 workers respawned" in loud.format()


# ---------------------------------------------------------------------
# Real subprocess workers (the `repro fleet worker` entry point).

def test_spawned_local_workers_complete_a_sweep(tmp_path):
    backend = FleetBackend(tmp_path, ttl_s=5.0, poll_s=0.05,
                           local_workers=2)
    runner = ParallelRunner(jobs=2, backend=backend)
    payloads = runner.run([probe(i) for i in range(4)])
    assert payloads == [{"probe": i, "value": i * 10}
                        for i in range(4)]
    # The runner's teardown stopped the workers via the sentinel.
    assert (tmp_path / STOP_FILE).exists()
    for proc in backend._procs:
        assert proc.wait(timeout=20) == 0


def test_sigterm_finishes_job_and_releases_lease(tmp_path):
    fp = enqueue(tmp_path, probe("slow", sleep_s=2.0))
    procs = spawn_local_workers(tmp_path, 1, ttl_s=5.0, poll_s=0.05)
    proc = procs[0]
    try:
        deadline = time.monotonic() + 30
        lease = tmp_path / LEASE_DIR / f"{fp}.json"
        while not lease.exists():
            assert time.monotonic() < deadline, "job never claimed"
            assert proc.poll() is None, "worker died early"
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        # First SIGTERM: the in-flight job completes, then exit 0.
        assert proc.wait(timeout=30) == 0
        entry = json.loads(
            (tmp_path / RESULT_DIR / f"{fp}.json").read_text())
        assert entry["payload"]["probe"] == "slow"
        assert not lease.exists()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
