"""Tests for JSON result serialization."""

import json

import pytest

from repro.harness import Experiment, FlowSpec, Scenario
from repro.harness.serialize import (
    load_results,
    result_to_dict,
    save_results,
    summary_to_dict,
)
from repro.phy.carrier import CarrierConfig


@pytest.fixture(scope="module")
def results():
    scenario = Scenario(name="ser", carriers=[CarrierConfig(0, 10.0)],
                        aggregated_cells=1, mean_sinr_db=14.0,
                        duration_s=1.5, seed=6)
    exp = Experiment(scenario)
    exp.add_flow(FlowSpec(scheme="pbe"))
    exp.add_flow(FlowSpec(scheme="bbr", rnti=101))
    return exp.run()


def test_summary_roundtrips_through_json(results):
    d = summary_to_dict(results[0].summary)
    again = json.loads(json.dumps(d))
    assert again["scheme"] == "pbe"
    assert again["packets"] > 0
    assert set(again["delay_percentiles_ms"]) == {"10", "25", "50",
                                                  "75", "90"}


def test_result_dict_fields(results):
    d = result_to_dict(results[0])
    assert d["scheme"] == "pbe"
    assert d["state_fractions"] is not None
    assert "samples" not in d


def test_result_dict_with_samples(results):
    d = result_to_dict(results[1], include_samples=True)
    samples = d["samples"]
    assert (len(samples["arrival_us"]) == len(samples["delay_us"])
            == d["summary"]["packets"])


def test_save_and_load(results, tmp_path):
    path = tmp_path / "run.json"
    save_results(results, path)
    loaded = load_results(path)
    assert len(loaded) == 2
    assert {r["scheme"] for r in loaded} == {"pbe", "bbr"}
    assert loaded[0]["summary"]["average_throughput_bps"] == \
        results[0].summary.average_throughput_bps
