"""Tests for the emulated control-channel decoder and message fusion."""

import pytest

from repro.monitor.decoder import ControlChannelDecoder, MessageFusion
from repro.phy.dci import DciMessage, SubframeRecord


def _record(subframe, cell=0, n_msgs=2):
    rec = SubframeRecord(subframe, cell, 100)
    for i in range(n_msgs):
        rec.messages.append(DciMessage(subframe, cell, 10 + i, 4, 10, 1,
                                       tbs_bits=2_000))
    return rec


def test_decoder_forwards_immediately_by_default():
    got = []
    dec = ControlChannelDecoder(0, got.append)
    dec.on_subframe(_record(0))
    assert len(got) == 1
    assert dec.subframes_decoded == 1
    assert dec.messages_decoded == 2


def test_decoder_latency_delays_by_n_subframes():
    got = []
    dec = ControlChannelDecoder(0, got.append, decode_latency_subframes=2)
    for sf in range(5):
        dec.on_subframe(_record(sf))
    assert [r.subframe for r in got] == [0, 1, 2]


def test_decoder_rejects_wrong_cell():
    dec = ControlChannelDecoder(0, lambda r: None)
    with pytest.raises(ValueError):
        dec.on_subframe(_record(0, cell=3))


def test_decoder_search_cost_model():
    dec = ControlChannelDecoder(0, lambda r: None)
    dec.on_subframe(_record(0, n_msgs=3))
    # 3 occupied positions x 10 formats + 13 empty looks.
    assert dec.search_attempts == 3 * 10 + 13
    assert dec.mean_messages_per_subframe == 3.0


def test_fusion_waits_for_all_cells():
    got = []
    fusion = MessageFusion([0, 1], got.append)
    fusion.on_record(_record(5, cell=0))
    assert got == []
    fusion.on_record(_record(5, cell=1))
    assert len(got) == 1
    assert set(got[0]) == {0, 1}
    assert fusion.emitted == 1


def test_fusion_single_cell_passthrough():
    got = []
    fusion = MessageFusion([0], got.append)
    fusion.on_record(_record(0))
    fusion.on_record(_record(1))
    assert len(got) == 2


def test_fusion_flushes_stale_incomplete_subframes():
    got = []
    fusion = MessageFusion([0, 1], got.append)
    fusion.on_record(_record(0, cell=0))   # cell 1 never reports sf 0
    fusion.on_record(_record(1, cell=0))
    fusion.on_record(_record(2, cell=0))   # sf 0 is now stale -> flushed
    subframes = [list(d.values())[0].subframe for d in got]
    assert 0 in subframes


def test_fusion_rejects_unsubscribed_cell():
    fusion = MessageFusion([0], lambda d: None)
    with pytest.raises(ValueError):
        fusion.on_record(_record(0, cell=7))


def test_fusion_requires_cells():
    with pytest.raises(ValueError):
        MessageFusion([], lambda d: None)


def test_decoder_latency_validation():
    with pytest.raises(ValueError):
        ControlChannelDecoder(0, lambda r: None,
                              decode_latency_subframes=-1)


def test_decoder_flush_drains_pending_records():
    got = []
    dec = ControlChannelDecoder(0, got.append, decode_latency_subframes=2)
    for sf in range(5):
        dec.on_subframe(_record(sf))
    assert len(got) == 3  # last two stranded in the latency buffer
    dec.flush()
    assert [r.subframe for r in got] == list(range(5))
    dec.flush()  # idempotent on an empty buffer
    assert len(got) == 5


def test_decoder_flush_noop_without_latency():
    got = []
    dec = ControlChannelDecoder(0, got.append)
    dec.on_subframe(_record(0))
    dec.flush()
    assert len(got) == 1


def test_fusion_flush_emits_residual_subframes_in_order():
    got = []
    fusion = MessageFusion([0, 1], got.append)
    fusion.on_record(_record(2, cell=0))
    fusion.on_record(_record(1, cell=0))
    fusion.on_record(_record(1, cell=1))  # sf 1 complete -> emitted
    fusion.on_record(_record(3, cell=1))
    fusion.flush()
    emitted = [max(r.subframe for r in d.values()) for d in got]
    assert emitted == [1, 2, 3]
    assert fusion.emitted == 3
