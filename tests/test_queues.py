"""Tests for base-station downlink queues and transport-block packing."""

import pytest

from repro.cell.queues import PROTOCOL_OVERHEAD, DownlinkQueue, TransportBlock
from repro.net.packet import Packet


def _tb(seq=0, bits=0):
    return TransportBlock(seq=seq, rnti=1, cell_id=0, subframe=0,
                          bits=bits, n_prbs=0, mcs=10, spatial_streams=1)


def _packet(seq, bits=12_000):
    return Packet(flow_id=1, seq=seq, size_bits=bits)


def test_protocol_overhead_is_papers_gamma():
    assert PROTOCOL_OVERHEAD == pytest.approx(0.068)


def test_push_and_backlog():
    q = DownlinkQueue()
    assert q.push(_packet(0))
    assert q.push(_packet(1))
    assert len(q) == 2
    assert q.backlog_bits == 24_000
    assert not q.empty


def test_droptail():
    q = DownlinkQueue(capacity_packets=2)
    assert q.push(_packet(0))
    assert q.push(_packet(1))
    assert not q.push(_packet(2))
    assert q.dropped == 1
    assert len(q) == 2


def test_capacity_validation():
    with pytest.raises(ValueError):
        DownlinkQueue(capacity_packets=0)


def test_pull_whole_packets():
    q = DownlinkQueue()
    q.push(_packet(0))
    q.push(_packet(1))
    tb = _tb()
    taken = q.pull(24_000, tb)
    assert taken == 24_000
    assert [p.seq for p in tb.completes] == [0, 1]
    assert q.empty
    assert q.backlog_bits == 0


def test_pull_splits_packet_across_blocks():
    q = DownlinkQueue()
    q.push(_packet(0, bits=12_000))
    tb1, tb2 = _tb(0), _tb(1)
    assert q.pull(5_000, tb1) == 5_000
    assert tb1.completes == []          # packet not finished yet
    assert len(tb1.touches) == 1
    assert q.backlog_bits == 7_000
    assert q.pull(50_000, tb2) == 7_000  # only the remainder available
    assert [p.seq for p in tb2.completes] == [0]


def test_pull_from_empty_queue():
    q = DownlinkQueue()
    assert q.pull(10_000, _tb()) == 0


def test_pull_rejects_negative():
    q = DownlinkQueue()
    with pytest.raises(ValueError):
        q.pull(-1, _tb())


def test_touches_includes_partially_carried_packets():
    q = DownlinkQueue()
    q.push(_packet(0, bits=10_000))
    q.push(_packet(1, bits=10_000))
    tb = _tb()
    q.pull(15_000, tb)  # all of packet 0, half of packet 1
    assert [p.seq for p in tb.touches] == [0, 1]
    assert [p.seq for p in tb.completes] == [0]
