"""Tests for the §7 misreported-feedback guard."""

import pytest

from repro.core.guard import FeedbackGuard


def _feed(guard, seconds, reported_bps, achieved_bps, start_s=0.0):
    """One ACK per 10 ms carrying a report and a delivery sample."""
    t = int(start_s * 1e6)
    for _ in range(int(seconds * 100)):
        guard.observe(t, reported_bps, achieved_bps)
        t += 10_000
    return t / 1e6


def test_honest_client_never_flagged():
    guard = FeedbackGuard()
    _feed(guard, 20.0, reported_bps=50e6, achieved_bps=48e6)
    assert not guard.flagged
    assert guard.cap_rate(50e6) == 50e6


def test_reports_above_achieved_within_tolerance_ok():
    # Reporting somewhat above achieved is normal (idle capacity).
    guard = FeedbackGuard()
    _feed(guard, 20.0, reported_bps=60e6, achieved_bps=45e6)
    assert not guard.flagged


def test_consistent_overreporting_flagged_and_capped():
    guard = FeedbackGuard()
    _feed(guard, 20.0, reported_bps=500e6, achieved_bps=40e6)
    assert guard.flagged
    # The granted rate is capped near the measured throughput.
    assert guard.cap_rate(500e6) <= 1.2 * 40e6 * 1.01


def test_brief_spike_not_flagged():
    guard = FeedbackGuard()
    end = _feed(guard, 3.0, reported_bps=500e6, achieved_bps=40e6)
    _feed(guard, 20.0, reported_bps=45e6, achieved_bps=40e6,
          start_s=end)
    assert not guard.flagged


def test_achieved_estimate_tracks_delivery():
    guard = FeedbackGuard()
    _feed(guard, 2.0, reported_bps=10e6, achieved_bps=33e6)
    assert guard.achieved_bps == pytest.approx(33e6)


def test_validation():
    with pytest.raises(ValueError):
        FeedbackGuard(suspicion_ratio=1.0)
    with pytest.raises(ValueError):
        FeedbackGuard(flag_after=0)


def test_guarded_sender_ignores_inflated_reports():
    """End to end: a lying client cannot hold an inflated rate."""
    from repro.baselines.base import AckContext
    from repro.core.feedback import PbeFeedback
    from repro.core.sender import PbeSender
    from repro.net.packet import Packet

    cc = PbeSender(guard=FeedbackGuard())
    t = 0
    for _ in range(4_000):   # 40 s of ACKs at 10 ms spacing
        ack = Packet(1, 0, is_ack=True)
        # Client claims 500 Mbit/s; actual delivery is 30 Mbit/s.
        ack.feedback = PbeFeedback.from_rates(500e6, 500e6, False)
        cc.on_ack(AckContext(ack=ack, now_us=t, rtt_us=40_000,
                             delivery_rate_bps=30e6,
                             newly_acked_bits=12_000,
                             inflight_bits=120_000, app_limited=False,
                             srtt_us=40_000))
        t += 10_000
    assert cc.guard.flagged
    assert cc.pacing_rate_bps(t) < 2 * 30e6 * 1.25
