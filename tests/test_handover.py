"""Tests for inter-cell handover (§1's challenge case)."""

import numpy as np
import pytest

from repro.harness import Experiment, FlowSpec, Scenario
from repro.phy.carrier import CarrierConfig
from repro.phy.channel import StaticChannel


def _scenario(**kw):
    defaults = dict(
        name="ho",
        carriers=[CarrierConfig(0, 10.0), CarrierConfig(1, 10.0)],
        aggregated_cells=1, mean_sinr_db=15.0, fading_std_db=0.5,
        duration_s=4.0, seed=13)
    defaults.update(kw)
    return Scenario(**defaults)


def test_network_handover_validation():
    exp = Experiment(_scenario())
    exp.add_flow(FlowSpec(scheme="bbr", cells=[0]))
    with pytest.raises(ValueError):
        exp.network.handover(999, [1])
    with pytest.raises(ValueError):
        exp.network.handover(100, [9])
    with pytest.raises(ValueError):
        exp.network.handover(100, [1], interruption_subframes=-1)


def test_flow_survives_handover():
    exp = Experiment(_scenario())
    handle = exp.add_flow(FlowSpec(scheme="bbr", cells=[0]))
    exp.schedule_handover(handle, at_s=2.0, new_cells=[1])
    result = exp.run()[0]
    arrivals = np.asarray(result.stats.arrival_us)
    # Delivery continues on both sides of the handover.
    assert (arrivals < 1.9e6).sum() > 100
    assert (arrivals > 2.3e6).sum() > 100


def test_handover_moves_traffic_between_cells():
    exp = Experiment(_scenario())
    handle = exp.add_flow(FlowSpec(scheme="bbr", cells=[0],
                                   log_allocations=True))
    exp.schedule_handover(handle, at_s=2.0, new_cells=[1])
    result = exp.run()[0]
    cells_before = {c for sf, c, _ in result.allocations if sf < 2_000}
    cells_after = {c for sf, c, _ in result.allocations if sf > 2_100}
    assert cells_before == {0}
    assert cells_after == {1}


def test_handover_gap_pauses_scheduling():
    exp = Experiment(_scenario())
    handle = exp.add_flow(FlowSpec(scheme="bbr", cells=[0],
                                   log_allocations=True))
    exp.schedule_handover(handle, at_s=2.0, new_cells=[1])
    exp.run()
    result_alloc = exp.network.user(100).allocated_history
    gap = [sf for sf, _, _ in result_alloc if 2_000 <= sf < 2_040]
    assert gap == []  # 40-subframe interruption


def test_pbe_monitor_follows_handover():
    exp = Experiment(_scenario(duration_s=5.0))
    # The PBE device has decoders for both cells (union of the path).
    handle = exp.add_flow(FlowSpec(scheme="pbe", cells=[0, 1]))
    # But cell 1 is not activated pre-handover: restrict via network.
    exp.network.user(100).agg.configured[:] = [0]
    exp.schedule_handover(handle, at_s=2.5, new_cells=[1])
    result = exp.run()[0]
    assert handle.monitor.primary_cell == 1
    arrivals = np.asarray(result.stats.arrival_us)
    sizes = np.asarray(result.stats.size_bits)
    late = sizes[arrivals > 3.5e6].sum() / 1.4e6
    # PBE re-converges to the new cell's capacity (~40 Mbit/s here).
    assert late > 25.0
    # And delay stays controlled after the handover.
    delays_late = np.asarray(result.stats.delay_us)[arrivals > 3.5e6]
    assert np.percentile(delays_late, 95) / 1_000 < 60.0


def test_monitor_set_primary_validation():
    exp = Experiment(_scenario())
    handle = exp.add_flow(FlowSpec(scheme="pbe", cells=[0]))
    with pytest.raises(ValueError):
        handle.monitor.set_primary(1)  # no decoder for cell 1


def test_handover_with_channel_change():
    exp = Experiment(_scenario())
    handle = exp.add_flow(FlowSpec(scheme="bbr", cells=[0]))
    exp.schedule_handover(handle, at_s=2.0, new_cells=[1],
                          channel=StaticChannel(24.0))
    exp.run()
    assert exp.network.user(100).channel.mean_sinr_db == 24.0
