"""Chaos harness: injected faults, byte-identical final matrices.

The acceptance bar for the fleet fabric is convergence under fire:
with a fixed :class:`ChaosSpec` seed that kills workers mid-job,
stalls heartbeats, corrupts results in transit and duplicates claims,
a fleet sweep must finish with a result matrix *byte-identical* to a
chaos-free run of the same jobs.  Each integration test below runs
one fault at probability 1 against real ``repro fleet worker``
subprocesses and asserts exactly that.
"""

import json
import time

import pytest

from repro.exec import (
    ChaosSpec,
    FleetBackend,
    ParallelRunner,
    ProbeJob,
    canonical_json,
    chaos_events,
    execute_job,
)
from repro.exec.chaos import FAULT_PROBS, corrupt_bytes
from repro.exec.fleet import QUEUE_DIR, RESULT_DIR

FP = "ab" * 32


def probe(i, **extra):
    return ProbeJob(params={"id": i, "value": i * 10, **extra})


# ---------------------------------------------------------------------
# Spec units.

def test_roll_is_deterministic_and_seed_sensitive():
    spec = ChaosSpec(seed=1, kill_prob=0.5)
    assert spec.roll("kill", FP) == spec.roll("kill", FP)
    rolls = {ChaosSpec(seed=s, kill_prob=0.5).roll("kill", FP)
             for s in range(32)}
    assert rolls == {True, False}  # some seeds hit, some miss


def test_roll_probability_edges():
    assert not ChaosSpec(seed=1).roll("kill", FP)  # prob 0
    spec = ChaosSpec(seed=1, kill_prob=1.0)
    assert all(spec.roll("kill", f"{i:064x}") for i in range(20))


def test_fire_claims_each_fault_exactly_once(tmp_path):
    spec = ChaosSpec(seed=1, corrupt_prob=1.0)
    assert spec.fire(tmp_path, "corrupt", FP)
    assert not spec.fire(tmp_path, "corrupt", FP)  # marker persists
    assert spec.fire(tmp_path, "corrupt", "cd" * 32)
    assert chaos_events(tmp_path)["corrupt"] == 2


def test_spec_validation_rejects_bad_probabilities():
    with pytest.raises(ValueError, match="probability"):
        ChaosSpec(kill_prob=1.5)
    with pytest.raises(ValueError, match="durations"):
        ChaosSpec(stall_s=-1)


def test_spec_save_load_round_trip(tmp_path):
    spec = ChaosSpec(seed=9, kill_prob=0.25, stall_prob=0.5,
                     stall_s=3.0, corrupt_prob=1.0)
    spec.save(tmp_path / "chaos.json")
    assert ChaosSpec.load(tmp_path / "chaos.json") == spec
    assert ChaosSpec.load(tmp_path / "missing.json") is None


def test_inactive_spec_reports_inactive():
    assert not ChaosSpec(seed=3).active
    assert ChaosSpec(seed=3, duplicate_claim_prob=0.1).active
    assert set(FAULT_PROBS) == {"kill", "stall", "claim_delay",
                                "duplicate_claim", "corrupt",
                                "kill_mid_job"}


def test_corrupt_bytes_is_deterministic_and_damaging():
    payload = json.dumps({"k": list(range(50))}).encode()
    out = corrupt_bytes(payload, seed=1, fingerprint=FP)
    assert out == corrupt_bytes(payload, seed=1, fingerprint=FP)
    assert out != payload
    # Across fingerprints both damage modes (truncate, byte-flip)
    # appear, and no output round-trips to the original payload.
    shapes = set()
    for i in range(16):
        fp = f"{i:064x}"
        damaged = corrupt_bytes(payload, 1, fp)
        shapes.add(len(damaged) < len(payload))
        try:
            assert json.loads(damaged.decode()) != json.loads(payload)
        except (ValueError, UnicodeDecodeError):
            pass  # unparseable is corrupt enough
    assert shapes == {True, False}


# ---------------------------------------------------------------------
# Integration: each fault against real worker subprocesses, asserting
# byte-identical convergence with the chaos-free run.

def chaos_free_baseline(jobs):
    return canonical_json([execute_job(job) for job in jobs])


def run_fleet(tmp_path, jobs, chaos, ttl_s=1.5, retries=3,
              timeout_s=None):
    backend = FleetBackend(tmp_path, ttl_s=ttl_s, poll_s=0.05,
                           local_workers=2, chaos=chaos)
    runner = ParallelRunner(jobs=2, backend=backend, retries=retries,
                            timeout_s=timeout_s)
    payloads = runner.run(jobs)
    return payloads, runner.stats, backend


def test_kill_worker_mid_job_converges(tmp_path):
    jobs = [probe(i) for i in range(3)]
    chaos = ChaosSpec(seed=5, kill_prob=1.0)  # every job kills once
    payloads, stats, _ = run_fleet(tmp_path, jobs, chaos)
    assert canonical_json(payloads) == chaos_free_baseline(jobs)
    assert chaos_events(tmp_path)["kill"] == 3
    assert stats.lease_reclaims >= 3  # every kill leaked a lease
    assert stats.worker_restarts >= 1  # and the driver respawned


def test_heartbeat_stall_converges(tmp_path):
    # Stall far past the TTL while the job runs: the driver must
    # reclaim, retry, and survive the stalled worker's late duplicate
    # completion.
    jobs = [probe(i, sleep_s=0.8) for i in range(2)]
    chaos = ChaosSpec(seed=6, stall_prob=1.0, stall_s=6.0)
    payloads, stats, _ = run_fleet(tmp_path, jobs, chaos, ttl_s=1.0)
    assert canonical_json(payloads) == chaos_free_baseline(jobs)
    assert chaos_events(tmp_path)["stall"] == 2


def test_corrupt_result_in_transit_converges(tmp_path):
    jobs = [probe(i) for i in range(3)]
    chaos = ChaosSpec(seed=7, corrupt_prob=1.0)
    payloads, stats, backend = run_fleet(tmp_path, jobs, chaos)
    assert canonical_json(payloads) == chaos_free_baseline(jobs)
    assert chaos_events(tmp_path)["corrupt"] == 3
    assert backend.corrupt_results == 3
    assert stats.retries >= 3
    # Quarantine keeps the damaged envelopes for diagnosis.
    assert len(list((tmp_path / "quarantine").glob("*.json"))) == 3


def test_duplicate_claim_converges(tmp_path):
    # Enough overlapping work that a worker scans a live lease, then
    # races its owner to completion; last-write-wins must hold and
    # the matrix must not change.
    jobs = [probe(i, sleep_s=0.6) for i in range(3)]
    chaos = ChaosSpec(seed=8, duplicate_claim_prob=1.0)
    payloads, stats, _ = run_fleet(tmp_path, jobs, chaos, ttl_s=5.0)
    assert canonical_json(payloads) == chaos_free_baseline(jobs)


def test_mixed_chaos_converges_and_cleans_up(tmp_path):
    jobs = [probe(i, sleep_s=0.2) for i in range(4)]
    chaos = ChaosSpec(seed=9, kill_prob=0.5, corrupt_prob=0.5,
                      duplicate_claim_prob=0.25)
    payloads, stats, _ = run_fleet(tmp_path, jobs, chaos)
    assert canonical_json(payloads) == chaos_free_baseline(jobs)
    fired = chaos_events(tmp_path)
    assert sum(fired.values()) >= 1  # seed 9 hits at least one fault
    # Collection drained the fleet directory despite the faults.
    assert list((tmp_path / QUEUE_DIR).glob("*.json")) == []
    assert list((tmp_path / RESULT_DIR).glob("*.json")) == []


def test_chaos_spec_travels_with_the_fleet_dir(tmp_path):
    chaos = ChaosSpec(seed=10, kill_prob=0.5)
    FleetBackend(tmp_path, ttl_s=1.0, chaos=chaos)
    assert ChaosSpec.load(tmp_path / "chaos.json") == chaos
    # Workers pick the spec up from the directory automatically.
    from repro.exec import FleetWorker
    worker = FleetWorker(tmp_path, worker_id="w")
    assert worker.chaos == chaos
