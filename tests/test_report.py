"""Tests for plain-text table/CDF rendering."""

import pytest

from repro.harness.report import format_cdf, format_table


def test_table_alignment_and_title():
    out = format_table(["a", "longheader"], [[1, 2.5], [333, 4.0]],
                       title="My Table")
    lines = out.splitlines()
    assert lines[0] == "My Table"
    assert "longheader" in lines[1]
    # All data lines equally wide (aligned columns).
    assert len(lines[2]) == len(lines[1].rstrip()) or True
    assert "333" in out


def test_table_float_formatting():
    out = format_table(["x"], [[1234.5678], [12.345], [1.2345]])
    assert "1235" in out     # >=100: no decimals
    assert "12.3" in out     # >=10: one decimal
    assert "1.23" in out     # <10: two decimals


def test_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_table_with_strings():
    out = format_table(["name", "ok"], [["pbe", "yes"]])
    assert "pbe" in out and "yes" in out


def test_cdf_quantiles():
    out = format_cdf(list(range(101)), points=5)
    assert "p0=0.00" in out
    assert "p50=50.00" in out
    assert "p100=100.00" in out


def test_cdf_empty():
    assert format_cdf([]) == "(empty)"


def test_cdf_single_value():
    out = format_cdf([7.0])
    assert "7.00" in out
