"""Tests for wireless channel models."""

import numpy as np
import pytest

from repro.phy.channel import (
    NOISE_FLOOR_DBM,
    GaussMarkovChannel,
    StaticChannel,
    TraceChannel,
    rssi_to_sinr_db,
)


def test_rssi_to_sinr_spans_paper_locations():
    # -85 dBm (strong) and -113 dBm (weak) should bracket usable SINR.
    strong = rssi_to_sinr_db(-85.0)
    weak = rssi_to_sinr_db(-113.0)
    assert strong > 20.0
    assert weak < 0.0
    assert strong - weak == pytest.approx(28.0)


def test_static_channel_constant_without_fading():
    ch = StaticChannel(17.5)
    assert all(ch.sinr_db(t) == 17.5 for t in (0, 1_000, 10**9))


def test_static_channel_fading_jitters_around_mean():
    ch = StaticChannel(15.0, fading_std_db=2.0, seed=1)
    samples = np.array([ch.sinr_db(t) for t in range(2_000)])
    assert abs(samples.mean() - 15.0) < 0.3
    assert 1.5 < samples.std() < 2.5


def test_static_channel_rejects_negative_std():
    with pytest.raises(ValueError):
        StaticChannel(10.0, fading_std_db=-1.0)


def test_gauss_markov_is_deterministic_per_seed():
    a = GaussMarkovChannel(12.0, seed=3)
    b = GaussMarkovChannel(12.0, seed=3)
    for t in range(0, 200_000, 1_000):
        assert a.sinr_db(t) == b.sinr_db(t)


def test_gauss_markov_holds_within_coherence_interval():
    ch = GaussMarkovChannel(12.0, coherence_us=10_000, seed=5)
    assert ch.sinr_db(1_000) == ch.sinr_db(9_999)
    # A new coherence interval may (and generally does) differ.
    values = {ch.sinr_db(t) for t in range(0, 100_000, 10_000)}
    assert len(values) > 1


def test_gauss_markov_stationary_around_mean():
    ch = GaussMarkovChannel(12.0, std_db=3.0, memory=0.9,
                            coherence_us=1_000, seed=7)
    samples = np.array([ch.sinr_db(t) for t in range(0, 3_000_000, 1_000)])
    assert abs(samples.mean() - 12.0) < 1.0
    assert samples.std() < 6.0


def test_gauss_markov_validation():
    with pytest.raises(ValueError):
        GaussMarkovChannel(10.0, memory=1.0)
    with pytest.raises(ValueError):
        GaussMarkovChannel(10.0, coherence_us=0)


def test_trace_channel_interpolates():
    ch = TraceChannel([(0, -85.0), (1_000_000, -105.0)], fading_std_db=0.0)
    assert ch.rssi_dbm(0) == -85.0
    assert ch.rssi_dbm(500_000) == -95.0
    assert ch.rssi_dbm(1_000_000) == -105.0
    # Held constant beyond the ends.
    assert ch.rssi_dbm(2_000_000) == -105.0


def test_trace_channel_sinr_uses_noise_floor():
    ch = TraceChannel([(0, -85.0)], fading_std_db=0.0)
    assert ch.sinr_db(0) == pytest.approx(-85.0 - NOISE_FLOOR_DBM)


def test_trace_channel_validation():
    with pytest.raises(ValueError):
        TraceChannel([])
    with pytest.raises(ValueError):
        TraceChannel([(0, -85.0), (0, -90.0)])
