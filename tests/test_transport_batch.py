"""Columnar per-ACK transport core: block/scalar byte identity.

The uplink grant cycle hands the sender its ACKs in natural bursts;
the batched transport engine delivers each burst as one
:class:`AckBatch` event and runs :meth:`Sender.receive_batch` over the
columns.  The contract is the repo's usual one: byte-identical to the
scalar per-packet reference.  These tests pin the container, the
block loop (including losses, duplicate and spurious ACKs, and the
on_loss/on_ack interleaving), the harness engine-selection rule for
ACK-impaired flows, the per-ACK-hook fallback, checkpoint/restore with
an :class:`AckBatch` held mid-flight, and the srtt dedup between the
transport layer and PBE's control.
"""

from __future__ import annotations

import pytest

from repro.baselines.base import (
    AckingReceiver,
    CongestionControl,
    Sender,
)
from repro.harness import Experiment, FlowSpec, Scenario
from repro.harness.checkpoint import CheckpointConfig, CheckpointManager
from repro.harness.fingerprint import (
    digest_run,
    fingerprint_configs,
    run_fingerprint,
)
from repro.net.link import BatchingPipe, DelayPipe, Receiver
from repro.net.packet import AckBatch, Packet
from repro.net.sim import Simulator
from repro.net.units import us_from_seconds
from repro.perf import PerfCounters

DURATION_S = 0.4


# ---------------------------------------------------------------------------
# AckBatch container
# ---------------------------------------------------------------------------

def _ack_for(seq, flow_id=1, sent_time_us=100):
    data = Packet(flow_id=flow_id, seq=seq, size_bits=12_000,
                  sent_time_us=sent_time_us)
    data.delivered_at_send = seq * 12_000
    data.delivered_time_at_send = sent_time_us
    data.app_limited = bool(seq % 2)
    return data.make_ack(now_us=sent_time_us + 30_000)


def test_ackbatch_columns_mirror_the_packets():
    acks = [_ack_for(seq) for seq in range(5)]
    batch = AckBatch.from_packets(acks)
    assert len(batch) == 5
    assert not batch.mixed
    assert batch.flow_id == 1
    assert batch.packets == acks
    assert batch.acked_seq == [a.acked_seq for a in acks]
    assert batch.sent_time_us == [a.sent_time_us for a in acks]
    assert batch.size_bits == [a.size_bits for a in acks]
    assert batch.delivered_at_send == [a.delivered_at_send for a in acks]
    assert batch.delivered_time_at_send == [a.delivered_time_at_send
                                            for a in acks]
    assert batch.app_limited == [a.app_limited for a in acks]


def test_ackbatch_flags_mixed_content():
    foreign = AckBatch.from_packets([_ack_for(0), _ack_for(1, flow_id=2)])
    assert foreign.mixed
    data = Packet(flow_id=1, seq=7, size_bits=12_000)
    with_data = AckBatch.from_packets([_ack_for(0), data])
    assert with_data.mixed


# ---------------------------------------------------------------------------
# Sender block loop == scalar loop, byte for byte
# ---------------------------------------------------------------------------

class RecordingCc(CongestionControl):
    """Fixed-rate controller logging every callback with its payload."""

    name = "recording"

    def __init__(self, rate_bps=40e6, cwnd_bits_value=None):
        self.rate_bps = rate_bps
        self.cwnd = cwnd_bits_value
        self.calls = []

    def on_ack(self, ctx):
        self.calls.append((
            "ack", ctx.ack.acked_seq, ctx.now_us, ctx.rtt_us,
            ctx.delivery_rate_bps, ctx.newly_acked_bits,
            ctx.inflight_bits, ctx.app_limited, ctx.srtt_us))

    def on_loss(self, now_us, lost_bits, inflight_bits):
        self.calls.append(("loss", now_us, lost_bits, inflight_bits))

    def on_timeout(self, now_us):
        self.calls.append(("timeout", now_us))

    def pacing_rate_bps(self, now_us):
        return self.rate_bps

    def cwnd_bits(self, now_us):
        return self.cwnd


class SeqDropper(Receiver):
    """Deterministically drop data packets to provoke dup-ACK losses."""

    def __init__(self, sink, drop_residues=(3, 4, 5), modulus=17):
        self.sink = sink
        self.drop_residues = drop_residues
        self.modulus = modulus
        self.dropped = 0

    def receive(self, packet):
        if not packet.is_ack and packet.seq % self.modulus \
                in self.drop_residues:
            self.dropped += 1
            return
        self.sink.receive(packet)


class AckDuplicator(Receiver):
    """Duplicate every Nth ACK so the sender sees spurious ACKs."""

    def __init__(self, sim, sink, every=13):
        self.sim = sim
        self.sink = sink
        self.every = every
        self.seen = 0

    def receive(self, packet):
        self.sink.receive(packet)
        self.seen += 1
        if packet.is_ack and self.seen % self.every == 0:
            dup = Packet(packet.flow_id, packet.seq,
                         size_bits=packet.size_bits, is_ack=True,
                         sent_time_us=packet.sent_time_us,
                         acked_seq=packet.acked_seq)
            dup.delivered_at_send = packet.delivered_at_send
            dup.delivered_time_at_send = packet.delivered_time_at_send
            dup.app_limited = packet.app_limited
            self.sink.receive(dup)


def _run_transport(batched, with_losses=True, with_dups=True,
                   duration_s=0.25):
    """One sender/receiver loop through a (possibly batched) uplink."""
    sim = Simulator()
    cc = RecordingCc()
    sender = Sender(sim, flow_id=1, cc=cc, egress=None)
    uplink = BatchingPipe(sim, sender, delay_us=7_000,
                          batch_interval_us=5_000, batched=batched)
    ack_path = AckDuplicator(sim, uplink) if with_dups else uplink
    receiver = AckingReceiver(sim, 1, ack_path)
    downlink = DelayPipe(sim, receiver, delay_us=6_000)
    sender.egress = SeqDropper(downlink) if with_losses else downlink
    sender.start()
    sim.schedule(us_from_seconds(duration_s), sender.stop)
    sim.run(until_us=us_from_seconds(duration_s) + 100_000)
    return sim, sender, cc, receiver


def _sender_state(sender):
    return {
        "next_seq": sender.next_seq,
        "inflight_bits": sender.inflight_bits,
        "highest_acked": sender.highest_acked,
        "delivered_bits": sender.delivered_bits,
        "delivered_time_us": sender.delivered_time_us,
        "srtt_us": sender.srtt_us,
        "min_rtt_us": sender.min_rtt_us,
        "sent": sender.sent_packets,
        "acked": sender.acked_packets,
        "lost": sender.lost_packets,
        "timeouts": sender.timeouts,
        "outstanding": dict(sender._outstanding),
    }


@pytest.mark.parametrize("with_losses,with_dups", [
    (False, False), (True, False), (True, True)])
def test_block_loop_matches_scalar_exactly(with_losses, with_dups):
    _, s_sender, s_cc, s_recv = _run_transport(
        False, with_losses, with_dups)
    _, b_sender, b_cc, b_recv = _run_transport(
        True, with_losses, with_dups)
    # The CC call log is the strongest oracle: same callbacks, same
    # order, same payloads (including the on_loss interleaving and the
    # srtt carried in each context).
    assert b_cc.calls == s_cc.calls
    assert _sender_state(b_sender) == _sender_state(s_sender)
    assert list(b_recv.stats.arrival_us) == list(s_recv.stats.arrival_us)
    assert list(b_recv.stats.delay_us) == list(s_recv.stats.delay_us)
    if with_losses:
        assert s_sender.lost_packets > 0          # the oracle saw losses
    if with_dups:
        assert len(s_cc.calls) < s_sender.sent_packets + 50


def test_block_loop_counts_batches():
    perf = PerfCounters()
    sim = Simulator(perf_counters=perf)
    cc = RecordingCc()
    sender = Sender(sim, flow_id=1, cc=cc, egress=None)
    uplink = BatchingPipe(sim, sender, delay_us=7_000,
                          batch_interval_us=5_000, batched=True)
    receiver = AckingReceiver(sim, 1, uplink)
    sender.egress = DelayPipe(sim, receiver, delay_us=6_000)
    sender.start()
    sim.schedule(us_from_seconds(0.1), sender.stop)
    sim.run(until_us=us_from_seconds(0.15))
    assert perf.ack_batches > 0
    assert perf.acks_batched > perf.ack_batches   # real multi-ACK bursts
    assert perf.as_dict()["ack_batches"] == perf.ack_batches


def test_hooked_sender_falls_back_to_per_packet_delivery():
    """on_ack_hook observes per-ACK interleaving: the block path must
    route hooked senders through the scalar loop (and still deliver
    every ACK to the hook)."""
    _, s_sender, s_cc, _ = _run_transport(False, True, False)

    sim = Simulator()
    cc = RecordingCc()
    sender = Sender(sim, flow_id=1, cc=cc, egress=None)
    hooked = []
    sender.on_ack_hook = hooked.append
    uplink = BatchingPipe(sim, sender, delay_us=7_000,
                          batch_interval_us=5_000, batched=True)
    receiver = AckingReceiver(sim, 1, uplink)
    downlink = DelayPipe(sim, receiver, delay_us=6_000)
    sender.egress = SeqDropper(downlink)
    sender.start()
    sim.schedule(us_from_seconds(0.25), sender.stop)
    sim.run(until_us=us_from_seconds(0.25) + 100_000)

    assert cc.calls == s_cc.calls
    assert len(hooked) == sender.acked_packets


def test_mixed_batch_falls_back_to_per_packet_delivery():
    sim = Simulator()
    cc = RecordingCc()
    sender = Sender(sim, flow_id=1, cc=cc, egress=None)
    # Hand-deliver a mixed batch: the foreign-flow ACK must be ignored
    # exactly as the scalar path ignores it.
    sender._outstanding = {0: (12_000, 0)}
    sender._send_order.append(0)
    sender.inflight_bits = 12_000
    own = Packet(1, 0, is_ack=True, acked_seq=0, sent_time_us=0)
    foreign = Packet(2, 0, is_ack=True, acked_seq=0, sent_time_us=0)
    sender.receive_batch(AckBatch.from_packets([foreign, own]))
    assert sender.acked_packets == 1
    assert sender.inflight_bits == 0
    assert [c[0] for c in cc.calls] == ["ack"]


# ---------------------------------------------------------------------------
# Harness engine selection
# ---------------------------------------------------------------------------

def _scenario(seed=31, **kw):
    kw.setdefault("busy", True)
    kw.setdefault("background_users", 2)
    return Scenario(name=f"tb-{seed}", aggregated_cells=2,
                    mean_sinr_db=18.0, duration_s=DURATION_S,
                    seed=seed, **kw)


ACK_FAULTS = {"seed": 9, "ack_loss_rate": 0.02, "ack_dup_rate": 0.01}


def test_ack_impaired_flows_stay_on_the_batched_transport():
    # The AckBatch carries per-row columns through loss/dup/reorder
    # faults byte-identically, so ACK impairment no longer demotes the
    # uplink to the scalar path.
    experiment = Experiment(_scenario(), batched=True)
    impaired = experiment.add_flow(FlowSpec(scheme="pbe",
                                            faults=ACK_FAULTS))
    clean = experiment.add_flow(FlowSpec(scheme="pbe", rnti=101))
    assert impaired.uplink.batched is True
    assert clean.uplink.batched is True


def test_scalar_engine_never_batches_the_uplink():
    experiment = Experiment(_scenario(), batched=False)
    handle = experiment.add_flow(FlowSpec(scheme="pbe"))
    assert handle.uplink.batched is False


def test_ack_impaired_config_batched_matches_scalar():
    specs = [FlowSpec(scheme="pbe", faults=ACK_FAULTS)]
    batched = run_fingerprint(_scenario(seed=33), specs, batched=True)
    specs = [FlowSpec(scheme="pbe", faults=ACK_FAULTS)]
    scalar = run_fingerprint(_scenario(seed=33), specs, batched=False)
    assert batched == scalar


# ---------------------------------------------------------------------------
# Checkpoint/restore with an AckBatch held mid-grant-cycle
# ---------------------------------------------------------------------------

def _pending_ack_batches(sim):
    return [event for _, _, event in sim._heap
            if not event.cancelled and event.args
            and isinstance(event.args[0], AckBatch)
            and getattr(event.callback, "__name__", "") == "_deliver"]


def test_checkpoint_restores_a_held_ack_batch(tmp_path):
    name = "busy_2cc_pbe"
    scenario, specs = fingerprint_configs(DURATION_S)[name]
    straight = run_fingerprint(scenario, specs)

    # Snapshot every subframe with no wall throttle: the 20 ms uplink
    # propagation guarantees AckBatch delivery events span snapshot
    # boundaries once traffic is flowing.
    scenario, specs = fingerprint_configs(DURATION_S)[name]
    experiment = Experiment(scenario, batched=True)
    for spec in specs:
        experiment.add_flow(spec)
    manager = CheckpointManager(CheckpointConfig(
        directory=str(tmp_path), interval_subframes=1, wall_budget=None))
    manager.run_to(experiment, us_from_seconds(DURATION_S / 2))
    assert manager.saved >= 1
    assert _pending_ack_batches(experiment.sim)   # held at the "crash"

    scenario, specs = fingerprint_configs(DURATION_S)[name]
    resumed = Experiment(scenario, batched=True)
    handles = [resumed.add_flow(spec) for spec in specs]
    manager = CheckpointManager(CheckpointConfig(
        directory=str(tmp_path), interval_subframes=1, wall_budget=None))
    restored_at = manager.try_restore(resumed)
    assert restored_at is not None
    held = _pending_ack_batches(resumed.sim)
    assert held                                   # decoded back as one event
    for event in held:
        batch = event.args[0]
        assert isinstance(batch, AckBatch) and len(batch) >= 1
    results = resumed.run(checkpoint=manager)
    assert digest_run(resumed, handles, results) == straight


# ---------------------------------------------------------------------------
# srtt dedup: transport filter is the only filter
# ---------------------------------------------------------------------------

def test_pbe_srtt_agrees_with_transport_srtt():
    experiment = Experiment(_scenario(seed=35), batched=True)
    handle = experiment.add_flow(FlowSpec(scheme="pbe"))
    experiment.run()
    assert handle.sender.srtt_us > 0
    assert handle.cc._srtt_us == handle.sender.srtt_us
