"""Integration tests for the base-station MAC engine."""

import itertools

import numpy as np
import pytest

from repro.cell.basestation import CellularNetwork, DemandSource, UeCategory
from repro.net.packet import Packet
from repro.net.sim import Simulator
from repro.net.units import MSS_BITS
from repro.phy.carrier import CarrierConfig
from repro.phy.channel import StaticChannel


def _network(sim, carriers=None, **kw):
    carriers = carriers or [CarrierConfig(0, 20.0)]
    return CellularNetwork(sim, carriers, **kw)


def _offer_cbr(sim, ingress, rate_bps, duration_us, flow_id=1):
    """Push a CBR packet stream into an ingress."""
    gap = max(1, round(MSS_BITS * 1e6 / rate_bps))
    seq = itertools.count()

    def send():
        ingress.receive(Packet(flow_id, next(seq), MSS_BITS,
                               sent_time_us=sim.now))
        if sim.now < duration_us:
            sim.schedule(gap, send)

    sim.schedule(0, send)


def test_requires_carriers():
    with pytest.raises(ValueError):
        CellularNetwork(Simulator(), [])


def test_duplicate_cell_ids_rejected():
    with pytest.raises(ValueError):
        CellularNetwork(Simulator(), [CarrierConfig(0), CarrierConfig(0)])


def test_duplicate_rnti_rejected():
    sim = Simulator()
    net = _network(sim)
    net.add_user(1, [0], StaticChannel(20.0))
    with pytest.raises(ValueError):
        net.add_user(1, [0], StaticChannel(20.0))


def test_unknown_cell_rejected():
    sim = Simulator()
    net = _network(sim)
    with pytest.raises(ValueError):
        net.add_user(1, [0, 9], StaticChannel(20.0))


def test_cannot_start_twice():
    sim = Simulator()
    net = _network(sim)
    net.start()
    with pytest.raises(RuntimeError):
        net.start()


def test_low_load_delivered_with_low_delay():
    sim = Simulator()
    net = _network(sim)
    delivered = []
    net.add_user(1, [0], StaticChannel(20.0),
                 on_packet=delivered.append)
    net.start()
    _offer_cbr(sim, net.ingress(1), 10e6, 1_000_000)
    sim.run(until_us=1_100_000)
    bits = sum(p.size_bits for p in delivered)
    assert bits > 0.95 * 10e6  # ~all of the offered second of data
    delays = [(p.recv_time_us - p.sent_time_us) / 1000 for p in delivered]
    assert np.median(delays) < 3.0  # scheduling + subframe latency only


def test_overload_caps_at_cell_capacity():
    sim = Simulator()
    net = _network(sim)
    delivered = []
    net.add_user(1, [0], StaticChannel(20.0),
                 on_packet=delivered.append, queue_packets=200)
    net.start()
    _offer_cbr(sim, net.ingress(1), 500e6, 1_000_000)
    sim.run(until_us=1_200_000)
    bits = sum(p.size_bits for p in delivered)
    # 20 MHz at high SINR carries on the order of 100-130 Mbit/s.
    assert 80e6 < bits / 1.1 < 150e6
    assert net.user(1).queue.dropped > 0  # droptail engaged


def test_retransmission_delays_quantized_to_8ms():
    # At low SINR transport blocks fail regularly; delayed packets must
    # arrive in ~8 ms steps (Figure 8).
    sim = Simulator()
    net = _network(sim, seed=5)
    delivered = []
    net.add_user(1, [0], StaticChannel(4.0), on_packet=delivered.append)
    net.start()
    _offer_cbr(sim, net.ingress(1), 8e6, 3_000_000)
    sim.run(until_us=3_200_000)
    delays_ms = np.array(
        [(p.recv_time_us - p.sent_time_us) / 1000 for p in delivered])
    base = delays_ms.min()
    delayed = delays_ms[delays_ms > base + 6.0]
    assert delayed.size > 0
    assert np.all(delays_ms < base + 3 * 8 + 3)  # ≤ 3 chained retx


def test_in_order_delivery_despite_retx():
    sim = Simulator()
    net = _network(sim, seed=6)
    delivered = []
    net.add_user(1, [0], StaticChannel(0.0), on_packet=delivered.append)
    net.start()
    _offer_cbr(sim, net.ingress(1), 10e6, 2_000_000)
    sim.run(until_us=2_300_000)
    seqs = [p.seq for p in delivered]
    assert seqs == sorted(seqs)


def test_two_users_share_equally():
    sim = Simulator()
    net = _network(sim)
    got = {1: [], 2: []}
    for rnti in (1, 2):
        net.add_user(rnti, [0], StaticChannel(20.0, seed=rnti),
                     on_packet=got[rnti].append, queue_packets=400)
    net.start()
    for rnti in (1, 2):
        _offer_cbr(sim, net.ingress(rnti), 400e6, 1_000_000, flow_id=rnti)
    sim.run(until_us=1_100_000)
    bits = [sum(p.size_bits for p in got[r]) for r in (1, 2)]
    assert abs(bits[0] - bits[1]) / max(bits) < 0.05


def test_exogenous_user_occupies_prbs():
    class Constant(DemandSource):
        def bits(self, subframe):
            return 50_000

    sim = Simulator()
    net = _network(sim)
    records = []
    net.attach_monitor(0, records.append)
    net.add_exogenous_user(2, [0], StaticChannel(20.0), Constant())
    net.start()
    sim.run(until_us=200_000)
    steady = records[50:]
    assert all(r.prbs_for(2) > 0 for r in steady)
    assert all(r.idle_prbs > 0 for r in steady)  # demand below capacity


def test_user_removal_stops_service():
    sim = Simulator()
    net = _network(sim)
    delivered = []
    net.add_user(1, [0], StaticChannel(20.0), on_packet=delivered.append)
    net.start()
    _offer_cbr(sim, net.ingress(1), 10e6, 500_000)
    sim.run(until_us=250_000)
    before = len(delivered)
    assert before > 0
    net.remove_user(1)
    sim.run(until_us=600_000)
    assert len(delivered) <= before + 2  # nothing new after removal


def test_monitor_records_idle_accounting():
    sim = Simulator()
    net = _network(sim, control_arrivals_per_subframe=0.5, seed=9)
    records = []
    net.attach_monitor(0, records.append)
    net.add_user(1, [0], StaticChannel(20.0))
    net.start()
    _offer_cbr(sim, net.ingress(1), 20e6, 500_000)
    sim.run(until_us=500_000)
    for record in records:
        assert record.idle_prbs >= 0  # never over-allocated
        assert record.total_prbs == 100


def test_ue_category_limits_rate():
    sim = Simulator()
    net = _network(sim)
    low = net.add_user(1, [0], StaticChannel(30.0),
                       category=UeCategory(max_mcs=9, max_streams=1))
    net.start()
    sim.run(until_us=10_000)
    user = net.user(1)
    assert user.current_mcs <= 9
    assert user.current_streams == 1


def test_cqi_delay_uses_stale_reports():
    """Link adaptation with CQI delay picks the MCS the channel had
    N subframes ago; instantaneous errors still use the live SINR."""
    from repro.phy.channel import TraceChannel
    sim = Simulator()
    net = _network(sim, control_arrivals_per_subframe=0.0)
    net.cqi_delay_subframes = 6
    # A sharp RSSI step at t = 50 ms.
    channel = TraceChannel([(0, -90.0), (50_000, -90.0),
                            (50_001, -101.0)], fading_std_db=0.0)
    net.add_user(1, [0], channel)
    net.start()
    sim.run(until_us=52_000)
    user = net.user(1)
    from repro.phy.mcs import sinr_to_mcs
    from repro.phy.channel import rssi_to_sinr_db
    stale_mcs = sinr_to_mcs(rssi_to_sinr_db(-90.0))
    fresh_mcs = sinr_to_mcs(rssi_to_sinr_db(-101.0))
    assert user.current_mcs == stale_mcs != fresh_mcs
    sim.run(until_us=60_000)  # the report catches up
    assert net.user(1).current_mcs == fresh_mcs


def test_cqi_delay_validation():
    with pytest.raises(ValueError):
        CellularNetwork(Simulator(), [CarrierConfig(0)],
                        cqi_delay_subframes=-1)


def test_cqi_delay_increases_error_rate_under_fast_fading():
    """Stale link adaptation over a fast-fading channel causes more
    HARQ retransmissions than oracle adaptation."""
    from repro.phy.channel import GaussMarkovChannel

    def retx_fraction(delay):
        sim = Simulator()
        net = _network(sim, seed=4)
        net.cqi_delay_subframes = delay
        got = []
        net.add_user(1, [0],
                     GaussMarkovChannel(14.0, std_db=5.0, memory=0.5,
                                        coherence_us=5_000, seed=2),
                     on_packet=got.append)
        records = []
        net.attach_monitor(0, records.append)
        net.start()
        _offer_cbr(sim, net.ingress(1), 30e6, 2_000_000)
        sim.run(until_us=2_200_000)
        new = retx = 0
        for rec in records:
            for m in rec.messages:
                if m.rnti != 1:
                    continue
                if m.new_data:
                    new += 1
                else:
                    retx += 1
        return retx / max(1, new)

    assert retx_fraction(8) > retx_fraction(0)
