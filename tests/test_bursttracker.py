"""Tests for the BurstTracker bottleneck classifier."""

import pytest

from repro.monitor.bursttracker import (
    IDLE,
    UPSTREAM_BOTTLENECK,
    WIRELESS_BOTTLENECK,
    BurstTracker,
)
from repro.phy.dci import DciMessage, SubframeRecord

OWN = 100


def _feed(tracker, pattern, total=100):
    """pattern: iterable of own-PRB grants per subframe (0 = none)."""
    for subframe, prbs in enumerate(pattern):
        rec = SubframeRecord(subframe, 0, total)
        if prbs:
            rec.messages.append(DciMessage(subframe, 0, OWN, prbs, 12,
                                           2, tbs_bits=prbs * 1_000))
        tracker.update(rec)


def test_backlogged_user_is_wireless_bottleneck():
    tracker = BurstTracker(OWN, window_subframes=50)
    # Full-cell grants every subframe: the user takes everything.
    _feed(tracker, [100] * 100)
    assert tracker.classifications == [WIRELESS_BOTTLENECK] * 2
    assert tracker.verdict() == WIRELESS_BOTTLENECK


def test_backlogged_share_counts_even_with_competitor():
    tracker = BurstTracker(OWN, window_subframes=50)
    # Only 40 PRBs each subframe, but zero idle: still backlogged.
    for subframe in range(100):
        rec = SubframeRecord(subframe, 0, 100)
        rec.messages.append(DciMessage(subframe, 0, OWN, 40, 12, 2,
                                       tbs_bits=40_000))
        rec.messages.append(DciMessage(subframe, 0, 7, 60, 12, 2,
                                       tbs_bits=60_000))
        tracker.update(rec)
    assert tracker.verdict() == WIRELESS_BOTTLENECK


def test_starved_user_is_upstream_bottleneck():
    tracker = BurstTracker(OWN, window_subframes=50)
    # Scheduled every subframe but tiny grants with a mostly idle cell:
    # the queue keeps running dry.
    _feed(tracker, [3] * 100)
    assert tracker.verdict() == UPSTREAM_BOTTLENECK


def test_silence_is_idle():
    tracker = BurstTracker(OWN, window_subframes=50)
    _feed(tracker, [0] * 100)
    assert tracker.classifications == [IDLE] * 2
    assert tracker.verdict() == IDLE


def test_longest_gap_measured():
    tracker = BurstTracker(OWN, window_subframes=50)
    _feed(tracker, [100] * 20 + [0] * 15 + [100] * 15)
    assert tracker.windows[0].longest_gap == 15


def test_fraction_accounting():
    tracker = BurstTracker(OWN, window_subframes=50)
    _feed(tracker, [100] * 50 + [0] * 50)
    assert tracker.fraction(WIRELESS_BOTTLENECK) == 0.5
    assert tracker.fraction(IDLE) == 0.5


def test_validation():
    with pytest.raises(ValueError):
        BurstTracker(OWN, window_subframes=5)


def test_agrees_with_pbe_state_machine_end_to_end():
    """BurstTracker and the PBE client should localize the bottleneck
    identically, from independent signals."""
    from repro.harness import Experiment, FlowSpec, Scenario
    from repro.phy.carrier import CarrierConfig

    def run(internet_rate):
        scenario = Scenario(
            name="bt", carriers=[CarrierConfig(0, 10.0)],
            aggregated_cells=1, mean_sinr_db=15.0,
            internet_rate_bps=internet_rate,
            internet_queue_packets=300, duration_s=4.0, seed=21)
        exp = Experiment(scenario)
        exp.add_flow(FlowSpec(scheme="pbe"))
        tracker = BurstTracker(100)
        exp.network.attach_monitor(0, tracker.update)
        result = exp.run()[0]
        return tracker.verdict(), result.state_fractions

    verdict, fractions = run(internet_rate=1e9)
    assert verdict == WIRELESS_BOTTLENECK
    assert fractions["wireless"] > 0.9

    verdict, fractions = run(internet_rate=10e6)
    assert verdict == UPSTREAM_BOTTLENECK
    assert fractions["internet"] > 0.5
