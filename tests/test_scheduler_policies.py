"""Tests for the §7 alternative fairness policies."""

import pytest

from repro.cell.scheduler import DemandEntry, POLICIES, allocate_prbs


def _demand(rnti, bits, bpp):
    return DemandEntry(rnti=rnti, demand_bits=bits, bits_per_prb=bpp)


def test_policies_listed():
    assert "equal" in POLICIES
    assert "equal_rate" in POLICIES


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown policy"):
        allocate_prbs(100, [], policy="max-min-magic")


def test_equal_rate_favours_low_rate_users():
    # User 1 at 500 bits/PRB, user 2 at 1500: the equal_rate policy
    # gives user 1 three times the PRBs, equalizing throughput.
    demands = [_demand(1, 10**9, 500), _demand(2, 10**9, 1500)]
    grants = allocate_prbs(100, demands, policy="equal_rate")
    tput = {r: grants[r] * d.bits_per_prb
            for r, d in zip((1, 2), demands)}
    assert grants[1] > 2.5 * grants[2]
    assert tput[1] == pytest.approx(tput[2], rel=0.1)


def test_equal_policy_ignores_rates():
    demands = [_demand(1, 10**9, 500), _demand(2, 10**9, 1500)]
    grants = allocate_prbs(100, demands, policy="equal")
    assert abs(grants[1] - grants[2]) <= 1


def test_equal_rate_still_respects_demand():
    demands = [_demand(1, 2_000, 500), _demand(2, 10**9, 1500)]
    grants = allocate_prbs(100, demands, policy="equal_rate")
    assert grants[1] == 4           # ceil(2000/500): all it needs
    assert grants[2] == 96          # the rest


def test_equal_rate_never_overallocates():
    demands = [_demand(i, 10**9, 200 + 400 * i) for i in range(5)]
    grants = allocate_prbs(77, demands, policy="equal_rate")
    assert sum(grants.values()) <= 77


def test_network_accepts_policy():
    from repro.cell.basestation import CellularNetwork
    from repro.net.sim import Simulator
    from repro.phy.carrier import CarrierConfig

    net = CellularNetwork(Simulator(), [CarrierConfig(0)],
                          scheduler_policy="equal_rate")
    assert net.scheduler_policy == "equal_rate"


def test_equal_rate_end_to_end_equalizes_throughput():
    """Two full-buffer users at very different SINRs get similar
    goodput under equal_rate, very different under equal."""
    from repro.harness import Experiment, FlowSpec, Scenario
    from repro.phy.carrier import CarrierConfig

    def tputs(policy):
        scenario = Scenario(
            name=f"policy-{policy}",
            carriers=[CarrierConfig(0, 10.0)], aggregated_cells=1,
            duration_s=2.0, seed=9, scheduler_policy=policy)
        exp = Experiment(scenario)
        exp.add_flow(FlowSpec(scheme="cbr", rnti=100,
                              cc_kwargs={"rate_bps": 60e6}))
        exp.add_flow(FlowSpec(scheme="cbr", rnti=101,
                              cc_kwargs={"rate_bps": 60e6}))
        # Distinct channels: one strong, one weak user.
        exp.network.user(100).channel = scenario.channel()
        from repro.phy.channel import StaticChannel
        exp.network.user(100).channel = StaticChannel(24.0)
        exp.network.user(101).channel = StaticChannel(8.0)
        results = exp.run()
        return [r.summary.average_throughput_bps for r in results]

    equal = tputs("equal")
    rate_fair = tputs("equal_rate")
    ratio_equal = equal[0] / equal[1]
    ratio_rate = rate_fair[0] / rate_fair[1]
    assert ratio_equal > 1.5          # strong user dominates
    assert ratio_rate < ratio_equal   # equal_rate narrows the gap
    assert ratio_rate < 1.4


class TestProportionalFair:
    def test_requires_state(self):
        with pytest.raises(ValueError, match="pf_state"):
            allocate_prbs(100, [_demand(1, 10**9, 500)],
                          policy="proportional_fair")

    def test_unserved_user_gets_priority(self):
        from repro.cell.scheduler import ProportionalFairState
        pf = ProportionalFairState(time_constant_subframes=10)
        # User 1 has been served a lot; user 2 never.
        for _ in range(50):
            pf.record({1: 50_000}, {1, 2})
        demands = [_demand(1, 10**9, 1000), _demand(2, 10**9, 1000)]
        grants = allocate_prbs(100, demands,
                               policy="proportional_fair", pf_state=pf)
        assert grants[2] > grants[1]

    def test_converges_to_similar_long_run_throughput(self):
        """PF over equal channels converges to an equal split."""
        from repro.cell.scheduler import ProportionalFairState
        pf = ProportionalFairState(time_constant_subframes=50)
        served_total = {1: 0, 2: 0}
        for sf in range(2_000):
            demands = [_demand(1, 10**9, 1000), _demand(2, 10**9, 1000)]
            grants = allocate_prbs(100, demands, rotation=sf,
                                   policy="proportional_fair",
                                   pf_state=pf)
            served = {r: g * 1000 for r, g in grants.items()}
            for r, bits in served.items():
                served_total[r] += bits
            pf.record(served, {1, 2})
        ratio = served_total[1] / served_total[2]
        assert 0.9 < ratio < 1.1

    def test_pf_favours_good_channel_instants(self):
        """With equal history, the user whose channel is momentarily
        better is scheduled first (the PF r/T metric)."""
        from repro.cell.scheduler import ProportionalFairState
        pf = ProportionalFairState()
        for _ in range(50):
            pf.record({1: 30_000, 2: 30_000}, {1, 2})
        demands = [_demand(1, 10**9, 1500), _demand(2, 10**9, 500)]
        grants = allocate_prbs(100, demands,
                               policy="proportional_fair", pf_state=pf)
        assert grants[1] > grants[2]

    def test_network_runs_with_pf_policy(self):
        from repro.harness import Experiment, FlowSpec, Scenario
        from repro.phy.carrier import CarrierConfig
        scenario = Scenario(
            name="pf", carriers=[CarrierConfig(0, 10.0)],
            aggregated_cells=1, duration_s=1.5, seed=9,
            scheduler_policy="proportional_fair")
        exp = Experiment(scenario)
        exp.add_flow(FlowSpec(scheme="pbe", rnti=100))
        exp.add_flow(FlowSpec(scheme="pbe", rnti=101))
        results = exp.run()
        tputs = [r.summary.average_throughput_bps for r in results]
        # Same channels: PF behaves like an equal split, and PBE's
        # control loop reaches equilibrium on top of it (§4.3).
        assert min(tputs) > 0.6 * max(tputs)

    def test_state_validation(self):
        from repro.cell.scheduler import ProportionalFairState
        with pytest.raises(ValueError):
            ProportionalFairState(time_constant_subframes=0)
