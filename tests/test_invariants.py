"""System-level invariants under randomized load (property tests)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cell.basestation import CellularNetwork, DemandSource
from repro.net.packet import Packet
from repro.net.sim import Simulator
from repro.net.units import MSS_BITS
from repro.phy.carrier import CarrierConfig
from repro.phy.channel import StaticChannel


class RandomDemand(DemandSource):
    def __init__(self, seed, peak_bits):
        self._rng = np.random.default_rng(seed)
        self.peak_bits = peak_bits

    def bits(self, subframe):
        return int(self._rng.integers(0, self.peak_bits))


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=1_000, max_value=200_000),
       st.integers(min_value=0, max_value=10_000))
def test_scheduler_never_overallocates_cells(n_users, peak_bits, seed):
    sim = Simulator()
    net = CellularNetwork(
        sim, [CarrierConfig(0, 10.0), CarrierConfig(1, 5.0)],
        control_arrivals_per_subframe=0.5, seed=seed)
    records = {0: [], 1: []}
    for cell in (0, 1):
        net.attach_monitor(cell, records[cell].append)
    for i in range(n_users):
        net.add_exogenous_user(
            10 + i, [0, 1], StaticChannel(10.0 + 3 * i, seed=i),
            RandomDemand(seed + i, peak_bits))
    net.start()
    sim.run(until_us=300_000)
    for cell, recs in records.items():
        total = net.carriers[cell].total_prbs
        for record in recs:
            assert 0 <= record.idle_prbs <= total  # raises if over


def test_packet_conservation_under_overload():
    """enqueued = delivered + queue-dropped + harq-lost + in flight."""
    sim = Simulator()
    net = CellularNetwork(sim, [CarrierConfig(0, 5.0)], seed=3)
    delivered = []
    ue = net.add_user(1, [0], StaticChannel(3.0, seed=1),
                      on_packet=delivered.append, queue_packets=100)
    net.start()
    seq = itertools.count()

    def send():
        p = Packet(1, next(seq), MSS_BITS, sent_time_us=sim.now)
        net.ingress(1).receive(p)
        if sim.now < 2_000_000:
            sim.schedule(300, send)  # 40 Mbit/s into a ~5 Mbit/s cell

    sim.schedule(0, send)
    sim.run(until_us=2_500_000)
    user = net.user(1)
    accounted = (len(delivered) + user.queue.dropped + ue.lost_packets
                 + len(user.queue))
    total_sent = next(seq)
    # Allow a handful of packets still in HARQ/reordering flight.
    assert abs(total_sent - accounted) <= 30


def test_delay_never_below_propagation_floor():
    from repro.harness import Scenario, run_flow
    scenario = Scenario(name="floor", aggregated_cells=1,
                        carriers=[CarrierConfig(0, 10.0)],
                        mean_sinr_db=15.0, duration_s=2.0, seed=8)
    result = run_flow(scenario, "pbe")
    # One-way floor: 18 ms wired + >=1 ms subframe latency.
    assert min(result.stats.delay_us) >= 19_000


def test_delay_bounded_by_harq_chain_in_uncongested_cell():
    from repro.harness import Scenario, run_flow
    scenario = Scenario(name="bound", aggregated_cells=1,
                        carriers=[CarrierConfig(0, 10.0)],
                        mean_sinr_db=15.0, duration_s=2.0, seed=8)
    result = run_flow(scenario, "cbr",
                      spec_overrides={"cc_kwargs": {"rate_bps": 10e6}})
    floor = min(result.stats.delay_us)
    # Light load: nothing should exceed floor + 3 chained retx + jitter.
    assert max(result.stats.delay_us) <= floor + 27_000


def test_total_goodput_bounded_by_physical_capacity():
    from repro.harness import Experiment, FlowSpec, Scenario
    scenario = Scenario(name="cap", aggregated_cells=1,
                        carriers=[CarrierConfig(0, 10.0)],
                        mean_sinr_db=20.0, fading_std_db=0.0,
                        duration_s=2.0, seed=4)
    exp = Experiment(scenario)
    for i in range(3):
        exp.add_flow(FlowSpec(scheme="cubic", rnti=100 + i))
    results = exp.run()
    total = sum(r.summary.average_throughput_bps for r in results)
    # 50 PRBs x bits_per_prb(14, 2) = physical ceiling.
    from repro.phy.mcs import bits_per_prb
    ceiling = 50 * bits_per_prb(14, 2) * 1_000
    assert total < ceiling
