"""Ground-truth accuracy of the PBE capacity estimate (Eqns. 3+5).

The monitor's whole point is millisecond-accurate capacity knowledge;
these tests compare its transport-capacity report against the true
achievable goodput of the simulated cell.
"""

import pytest

from repro.harness import Experiment, FlowSpec, Scenario
from repro.phy.carrier import CarrierConfig
from repro.phy.error import sinr_to_ber
from repro.phy.mcs import bits_per_prb, sinr_to_mcs


def _true_goodput_bps(prbs, sinr_db, streams=2):
    """Analytic ceiling: phys rate minus protocol and retx overhead."""
    from repro.cell.queues import PROTOCOL_OVERHEAD
    from repro.phy.error import block_error_rate
    mcs = sinr_to_mcs(sinr_db)
    phys = prbs * bits_per_prb(mcs, streams)          # bits/subframe
    payload = phys * (1 - PROTOCOL_OVERHEAD)
    tbler = block_error_rate(sinr_to_ber(sinr_db), phys)
    return payload / (1 + tbler) * 1_000              # bits/s


@pytest.mark.parametrize("sinr", [12.0, 17.0, 25.0])
def test_sole_user_estimate_matches_cell_capacity(sinr):
    scenario = Scenario(name="acc", carriers=[CarrierConfig(0, 20.0)],
                        aggregated_cells=1, mean_sinr_db=sinr,
                        fading_std_db=0.0, duration_s=3.0, seed=2)
    exp = Experiment(scenario)
    handle = exp.add_flow(FlowSpec(scheme="pbe"))
    exp.run()
    report = handle.monitor.report(rtprop_subframes=40)
    truth = _true_goodput_bps(100, sinr)
    assert report.transport_capacity_bps == pytest.approx(truth,
                                                          rel=0.08)


def test_estimate_halves_with_equal_competitor():
    scenario = Scenario(name="acc2", carriers=[CarrierConfig(0, 20.0)],
                        aggregated_cells=1, mean_sinr_db=17.0,
                        fading_std_db=0.0, duration_s=3.0, seed=2)
    exp = Experiment(scenario)
    handle = exp.add_flow(FlowSpec(scheme="pbe", rnti=100))
    exp.add_flow(FlowSpec(scheme="pbe", rnti=101))
    exp.run()
    report = handle.monitor.report(rtprop_subframes=40)
    truth = _true_goodput_bps(100, 17.0)
    assert report.users_per_cell[0] == 2
    assert report.transport_capacity_bps == pytest.approx(truth / 2,
                                                          rel=0.12)


def test_estimate_tracks_capacity_within_feedback_delay():
    """When a competitor departs, the estimate doubles within ~2 RTprop
    windows — the millisecond-granularity responsiveness claim."""
    scenario = Scenario(name="acc3", carriers=[CarrierConfig(0, 20.0)],
                        aggregated_cells=1, mean_sinr_db=17.0,
                        fading_std_db=0.0, duration_s=3.0, seed=2)
    exp = Experiment(scenario)
    handle = exp.add_flow(FlowSpec(scheme="pbe", rnti=100))
    exp.add_flow(FlowSpec(scheme="pbe", rnti=101, duration_s=1.5))
    samples = []
    original = handle.receiver.feedback_for

    def tap(packet):
        feedback = original(packet)
        samples.append((exp.sim.now, feedback.target_rate_bps))
        return feedback

    handle.receiver.feedback_for = tap
    exp.run()
    before = [r for t, r in samples if 1.2e6 < t < 1.45e6]
    after = [r for t, r in samples if 1.8e6 < t < 2.2e6]
    assert min(after) > 1.5 * (sum(before) / len(before))
