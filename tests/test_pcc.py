"""Unit tests for PCC Allegro and PCC Vivace."""

import pytest

from repro.baselines.base import AckContext
from repro.baselines.pcc import (
    LOSS_THRESHOLD,
    PccAllegro,
    PccVivace,
    _MonitorInterval,
)
from repro.net.packet import Packet


def _ack(now_us, rtt_us=40_000, bits=12_000):
    return AckContext(ack=Packet(1, 0, is_ack=True), now_us=now_us,
                      rtt_us=rtt_us, delivery_rate_bps=10e6,
                      newly_acked_bits=bits, inflight_bits=120_000,
                      app_limited=False)


def _mi(rate=10e6, acked=100_000, lost=0, rtt0=40_000, rtt1=40_000,
        span=100_000):
    mi = _MonitorInterval(rate, 0, span)
    mi.acked_bits = acked
    mi.lost_bits = lost
    mi.first_rtt_us = rtt0
    mi.last_rtt_us = rtt1
    mi.acks = 10
    return mi


class TestMonitorInterval:
    def test_throughput(self):
        assert _mi(acked=100_000, span=100_000).throughput_bps == 1e6

    def test_loss_rate(self):
        assert _mi(acked=90, lost=10).loss_rate == pytest.approx(0.1)
        assert _mi(acked=0, lost=0).loss_rate == 0.0

    def test_rtt_gradient(self):
        mi = _mi(rtt0=40_000, rtt1=50_000, span=100_000)
        assert mi.rtt_gradient_s_per_s == pytest.approx(0.1)


class TestAllegro:
    def test_utility_rewards_lossless_throughput(self):
        cc = PccAllegro()
        high = cc.utility(_mi(acked=200_000))
        low = cc.utility(_mi(acked=50_000))
        assert high > low > 0

    def test_utility_cliff_at_loss_threshold(self):
        cc = PccAllegro()
        clean = cc.utility(_mi(acked=100_000, lost=0))
        total = 100_000
        lossy_bits = int(total * (LOSS_THRESHOLD + 0.10))
        lossy = cc.utility(_mi(acked=total - lossy_bits, lost=lossy_bits))
        assert lossy < 0 < clean

    def test_starting_doubles_until_utility_drops(self):
        cc = PccAllegro(initial_rate_bps=1e6)
        r1 = cc.decide(1e6, 1.0)
        assert r1 == 2e6
        r2 = cc.decide(r1, 2.0)
        assert r2 == 4e6
        r3 = cc.decide(r2, 1.5)  # utility fell: halve and exit starting
        assert r3 == 2e6
        assert not cc._starting

    def test_emergency_brake_on_heavy_loss(self):
        cc = PccAllegro()
        cc._starting = False
        cc.utility(_mi(acked=50_000, lost=50_000))  # 50% loss observed
        assert cc.decide(10e6, -5.0) == 5e6

    def test_end_to_end_rate_evolution(self):
        cc = PccAllegro(initial_rate_bps=1e6, seed=1)
        t = 0
        for _ in range(2_000):
            t += 5_000
            cc.on_ack(_ack(t))
        assert cc.rate_bps >= 120_000  # floor respected


class TestVivace:
    def test_delay_gradient_punishes_utility(self):
        cc = PccVivace()
        flat = cc.utility(_mi(rtt0=40_000, rtt1=40_000))
        rising = cc.utility(_mi(rtt0=40_000, rtt1=60_000))
        assert rising < flat

    def test_negative_gradient_not_rewarded(self):
        cc = PccVivace()
        falling = cc.utility(_mi(rtt0=60_000, rtt1=40_000))
        flat = cc.utility(_mi(rtt0=40_000, rtt1=40_000))
        assert falling == pytest.approx(flat)

    def test_gradient_ascent_moves_toward_better_rate(self):
        cc = PccVivace(initial_rate_bps=10e6)
        base = cc._base_rate
        cc.decide(10e6 * 1.05, util=10.0)   # up-probe did better
        cc.decide(10e6 * 0.95, util=5.0)
        assert cc._base_rate > base

    def test_timeout_halves_rate(self):
        cc = PccVivace(initial_rate_bps=10e6)
        cc.on_timeout(0)
        assert cc.rate_bps == 5e6

    def test_rate_floor(self):
        cc = PccVivace(initial_rate_bps=200_000)
        for util in [-100.0] * 50:
            cc.rate_bps = max(120_000, cc.decide(cc.rate_bps, util))
        assert cc.rate_bps >= 120_000


def test_validation():
    with pytest.raises(ValueError):
        PccAllegro(initial_rate_bps=0)
