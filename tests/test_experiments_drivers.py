"""Cheap-configuration tests for the experiment drivers.

These run each table/figure driver at reduced scale and check the
structure of the results plus the paper's qualitative shape where it
is already visible at small scale.  The benchmarks run the real
(bigger) versions.
"""

import pytest

from repro.harness.experiments import (
    fig12_from_sweep,
    fig15_from_sweep,
    run_ablation,
    run_fig02,
    run_fig06,
    run_fig08,
    run_fig11,
    run_fig13_14,
    run_fig16_17,
    run_fig18_19,
    run_fig20,
    run_fig21,
    run_stationary_sweep,
    table1_from_sweep,
)


@pytest.fixture(scope="module")
def tiny_sweep():
    return run_stationary_sweep(schemes=("pbe", "bbr"), n_busy=1,
                                n_idle=1, duration_s=2.0)


def test_sweep_structure(tiny_sweep):
    assert len(tiny_sweep.entries) == 4
    assert set(tiny_sweep.schemes()) == {"pbe", "bbr"}
    assert len(tiny_sweep.locations()) == 2
    by_scheme = tiny_sweep.for_location(tiny_sweep.locations()[0])
    assert set(by_scheme) == {"pbe", "bbr"}


def test_sweep_validation():
    with pytest.raises(ValueError):
        run_stationary_sweep(n_busy=0, n_idle=0)


def test_sweep_index_tracks_appended_entries():
    # Pure-data check of SweepResult's lazily built location index:
    # dedup is order-preserving and the index follows later appends.
    from dataclasses import replace

    from repro.harness.experiments import SweepEntry, SweepResult

    def entry(scheme, location):
        return SweepEntry(scheme=scheme, location=location, busy=True,
                          aggregated_cells=1, summary=None,
                          ca_activations=0, state_fractions=None)

    sweep = SweepResult(entries=[entry("pbe", "b"), entry("bbr", "b"),
                                 entry("pbe", "a")])
    assert sweep.locations() == ["b", "a"]
    assert sweep.schemes() == ["pbe", "bbr"]
    assert set(sweep.for_location("b")) == {"pbe", "bbr"}
    assert sweep.for_location("missing") == {}
    # mutating the returned view must not corrupt the index
    sweep.for_location("b").clear()
    assert set(sweep.for_location("b")) == {"pbe", "bbr"}

    sweep.entries.append(entry("bbr", "a"))
    assert set(sweep.for_location("a")) == {"pbe", "bbr"}
    assert replace(sweep.entries[0]) == sweep.entries[0]


def test_table1_reduction(tiny_sweep):
    result = table1_from_sweep(tiny_sweep, baselines=("bbr",))
    assert len(result.rows) == 2
    row = result.row("bbr", "busy")
    assert row.locations == 1
    assert row.throughput_speedup > 0
    assert "Table 1" in result.format()


def test_table1_requires_pbe():
    sweep = run_stationary_sweep(schemes=("bbr",), n_busy=1, n_idle=0,
                                 duration_s=1.0)
    with pytest.raises(ValueError, match="pbe"):
        table1_from_sweep(sweep)


def test_fig12_reduction(tiny_sweep):
    result = fig12_from_sweep(tiny_sweep, schemes=("pbe", "bbr"))
    assert set(result.throughput_mbps) == {"pbe", "bbr"}
    assert "Figure 12" in result.format()


def test_fig15_reduction(tiny_sweep):
    result = fig15_from_sweep(tiny_sweep)
    assert {r.scheme for r in result.rows} == {"pbe", "bbr"}
    assert "Figure 15" in result.format()


def test_fig02_structure():
    result = run_fig02(duration_s=3.0)
    assert result.activation_s is not None
    assert len(result.timeline) == 30
    assert "Figure 2" in result.format()


def test_fig06_structure():
    result = run_fig06(load_fractions=(0.5,), tb_sizes_kbit=(20, 60),
                       duration_s=1.0, trials=500)
    assert len(result.overhead) == 2      # two SINRs x one load
    assert len(result.tbler) == 4         # two BERs x two sizes
    assert "Figure 6" in result.format()


def test_fig08_structure():
    result = run_fig08(loads_mbps=(6.0, 24.0), duration_s=1.5)
    assert len(result.series) == 2
    fractions = result.series[0]
    total = (fractions.baseline_fraction + fractions.one_retx_fraction
             + fractions.more_fraction)
    assert total == pytest.approx(1.0)


def test_fig11_structure():
    result = run_fig11()
    assert set(result.hourly_counts) == {"20MHz", "10MHz"}
    assert all(len(v) == 24 for v in result.hourly_counts.values())


def test_fig13_structure():
    result = run_fig13_14(schemes=("pbe", "bbr"),
                          location_keys=("fig13d_3cc_indoor_idle",),
                          duration_s=2.0)
    assert set(result.locations) == {"fig13d_3cc_indoor_idle"}
    summary = result.summary("fig13d_3cc_indoor_idle", "pbe")
    assert summary.average_throughput_bps > 0


def test_fig16_structure():
    result = run_fig16_17(schemes=("pbe",), timeline_schemes=("pbe",),
                          duration_s=8.0, interval_s=1.0)
    assert "pbe" in result.summaries
    timeline = result.timelines[0]
    assert len(timeline.throughput_mbps) == 8


def test_fig18_structure():
    result = run_fig18_19(schemes=("pbe",), timeline_schemes=(),
                          duration_s=8.0)
    assert "pbe" in result.summaries
    on_tput, off_tput = result.on_off_split["pbe"]
    assert on_tput > 0 and off_tput > 0
    # Competitor on -> lower victim throughput.
    assert on_tput < off_tput


def test_fig20_structure():
    result = run_fig20(schemes=("pbe",), duration_s=3.0)
    a, b = result.pairs["pbe"]
    assert a.average_throughput_bps > 0
    assert 0 < result.balance("pbe") <= 1.0


def test_fig21_structure():
    result = run_fig21(time_scale=0.05, variants=("multi_user",))
    variant = result.variant("multi_user")
    assert len(variant.prb_shares_3) == 3
    assert 0 < variant.jain_3 <= 1.0
    with pytest.raises(ValueError):
        run_fig21(time_scale=0)


def test_ablation_structure():
    result = run_ablation(variants=("paper", "no_linear_ramp"),
                          duration_s=2.0)
    assert {r.variant for r in result.rows} == {"paper",
                                                "no_linear_ramp"}
    assert result.row("paper").summary.average_throughput_bps > 0
